// Workload explorer: generate, inspect, save and reload request traces —
// the data side of the reproduction as a standalone tool.
//
//   ./workload_explorer --model polymix --scale 0.01 --save /tmp/t.bin
//   ./workload_explorer --load /tmp/t.bin
//   ./workload_explorer --model wpb --requests 100000 --recency 0.6
//
// Prints the phase structure, recurrence, popularity skew (top-k request
// shares) and inter-reference distances — the knobs that decide how every
// caching scheme in this repository performs.
#include <algorithm>
#include <iostream>
#include <map>
#include <unordered_map>

#include "driver/report.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "workload/polygraph.h"
#include "workload/wpb.h"

namespace {

using namespace adc;

void describe(const workload::Trace& trace) {
  const auto stats = trace.stats();
  std::cout << "requests           " << util::with_thousands(stats.requests) << '\n'
            << "unique objects     " << util::with_thousands(stats.unique_objects) << '\n'
            << "recurrence rate    " << driver::fmt(stats.recurrence_rate, 4) << '\n'
            << "phase boundaries   fill_end=" << trace.phases().fill_end
            << " phase2_end=" << trace.phases().phase2_end << '\n';

  // Popularity skew: share of all requests taken by the top-k objects.
  std::unordered_map<ObjectId, std::uint64_t> counts;
  for (ObjectId object : trace.requests()) ++counts[object];
  std::vector<std::uint64_t> frequencies;
  frequencies.reserve(counts.size());
  for (const auto& [object, count] : counts) frequencies.push_back(count);
  std::sort(frequencies.rbegin(), frequencies.rend());
  const auto share = [&](std::size_t k) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < std::min(k, frequencies.size()); ++i) sum += frequencies[i];
    return static_cast<double>(sum) / static_cast<double>(trace.size());
  };
  std::cout << "top-10 share       " << driver::fmt(share(10), 4) << '\n'
            << "top-100 share      " << driver::fmt(share(100), 4) << '\n'
            << "top-1000 share     " << driver::fmt(share(1000), 4) << '\n';

  // Median inter-reference distance (temporal locality).
  std::unordered_map<ObjectId, std::uint64_t> last_seen;
  std::vector<std::uint64_t> distances;
  for (std::uint64_t i = 0; i < trace.size(); ++i) {
    const auto it = last_seen.find(trace[i]);
    if (it != last_seen.end()) distances.push_back(i - it->second);
    last_seen[trace[i]] = i;
  }
  if (!distances.empty()) {
    std::nth_element(distances.begin(), distances.begin() + distances.size() / 2,
                     distances.end());
    std::cout << "median reuse dist  " << distances[distances.size() / 2] << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Generate, inspect, save and reload request traces.");
  cli.option("model", "polymix", "polymix | wpb")
      .option("scale", "0.01", "polymix: scale vs the paper's 3.99M requests")
      .option("requests", "100000", "wpb: trace length")
      .option("recency", "0.5", "wpb: re-reference probability")
      .option("stack", "1000", "wpb: LRU stack depth")
      .option("seed", "42", "generator seed")
      .option("save", "", "write the trace (.txt = text, anything else = binary)")
      .option("load", "", "load a previously saved trace instead of generating");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  workload::Trace trace;
  const std::string load = cli.config().get_string("load", "");
  if (!load.empty()) {
    std::string load_error;
    const bool ok = util::ends_with(load, ".txt")
                        ? workload::Trace::load_text(load, &trace, &load_error)
                        : workload::Trace::load_binary(load, &trace, &load_error);
    if (!ok) {
      std::cerr << "cannot load " << load << ": " << load_error << '\n';
      return 1;
    }
    std::cout << "loaded " << load << "\n\n";
  } else if (cli.config().get_string("model", "polymix") == "wpb") {
    workload::WpbConfig config;
    config.requests = cli.config().get_size("requests", 100000);
    config.recency_probability = cli.config().get_double("recency", 0.5);
    config.stack_depth = static_cast<std::size_t>(cli.config().get_size("stack", 1000));
    config.seed = cli.config().get_size("seed", 42);
    trace = workload::generate_wpb_trace(config);
    std::cout << "generated WPB-style trace\n\n";
  } else {
    auto config = workload::PolygraphConfig::scaled(cli.config().get_double("scale", 0.01));
    config.seed = cli.config().get_size("seed", 42);
    trace = workload::generate_polygraph_trace(config);
    std::cout << "generated PolyMix-style trace\n\n";
  }

  describe(trace);

  const std::string save = cli.config().get_string("save", "");
  if (!save.empty()) {
    const bool ok = util::ends_with(save, ".txt") ? trace.save_text(save)
                                                  : trace.save_binary(save);
    if (!ok) {
      std::cerr << "cannot write " << save << '\n';
      return 1;
    }
    std::cout << "\nsaved to " << save << '\n';
  }
  return 0;
}
