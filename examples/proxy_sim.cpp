// proxy_sim — the all-in-one command-line simulator.
//
// Everything the library can do behind one binary: pick a scheme, a
// workload model (or a trace file), table sizes, faults, object churn,
// and get the summary, the per-phase breakdown, the per-proxy table and
// optionally the full moving-average series as CSV.
//
//   ./proxy_sim --scheme adc --model polymix --scale 0.02
//   ./proxy_sim --scheme carp --model wpb --requests 200000 --series
//   ./proxy_sim --scheme adc --trace /tmp/t.bin --single 2000 --caching 500
//   ./proxy_sim --scheme adc --fault-at 50000 --fault-proxy 1
//   ./proxy_sim --scheme adc --update-interval 500000   # staleness accounting
#include <iostream>

#include "driver/analysis.h"
#include "driver/experiment.h"
#include "driver/report.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "workload/polygraph.h"
#include "workload/trace.h"
#include "workload/wpb.h"

int main(int argc, char** argv) {
  using namespace adc;

  util::CliParser cli("All-in-one distributed proxy-cache simulator.");
  cli.option("scheme", "adc",
             "adc | carp | consistent | rendezvous | hierarchical | coordinator | soap")
      .option("model", "polymix", "workload when no --trace: polymix | wpb")
      .option("trace", "", "replay a saved trace file (.txt or binary)")
      .option("scale", "0.02", "polymix: scale vs the paper's 3.99M requests")
      .option("requests", "100000", "wpb: trace length")
      .option("proxies", "5", "number of cooperating proxies")
      .option("single", "0", "single-table entries (0 = scale with workload)")
      .option("multiple", "0", "multiple-table entries (0 = scale with workload)")
      .option("caching", "0", "caching-table entries (0 = scale with workload)")
      .option("max-forwards", "8", "ADC search cutoff")
      .option("seed", "1", "simulation seed")
      .option("concurrency", "1", "client requests kept in flight")
      .option("fault-at", "0", "flush a proxy after N completed requests (0 = off)")
      .option("fault-proxy", "0", "index of the proxy to flush")
      .option("update-interval", "0", "origin object-update interval (0 = immutable objects)")
      .option("series", "", "print the moving-average series as CSV", /*is_flag=*/true)
      .option("faithful", "", "use the paper's table data structures", /*is_flag=*/true);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const auto& options = cli.config();

  const auto scheme = driver::parse_scheme(options.get_string("scheme", "adc"));
  if (!scheme) {
    std::cerr << "unknown scheme '" << options.get_string("scheme", "") << "'\n";
    return 1;
  }

  // --- Workload -----------------------------------------------------------
  workload::Trace trace;
  const std::string trace_path = options.get_string("trace", "");
  if (!trace_path.empty()) {
    std::string load_error;
    const bool ok = util::ends_with(trace_path, ".txt")
                        ? workload::Trace::load_text(trace_path, &trace, &load_error)
                        : workload::Trace::load_binary(trace_path, &trace, &load_error);
    if (!ok) {
      std::cerr << "cannot load " << trace_path << ": " << load_error << '\n';
      return 1;
    }
  } else if (options.get_string("model", "polymix") == "wpb") {
    workload::WpbConfig wpb;
    wpb.requests = options.get_size("requests", 100000);
    wpb.seed = options.get_size("seed", 1);
    trace = workload::generate_wpb_trace(wpb);
  } else {
    auto polymix = workload::PolygraphConfig::scaled(options.get_double("scale", 0.02));
    trace = workload::generate_polygraph_trace(polymix);
  }
  if (trace.empty()) {
    std::cerr << "empty workload\n";
    return 1;
  }
  const auto trace_stats = trace.stats();

  // --- Deployment ----------------------------------------------------------
  driver::ExperimentConfig config;
  config.scheme = *scheme;
  config.proxies = static_cast<int>(options.get_int("proxies", 5));
  const auto default_table = std::max<std::size_t>(trace_stats.unique_objects / 10, 64);
  const auto table_or = [&](const char* key, std::size_t fallback) {
    const auto v = options.get_size(key, 0);
    return v != 0 ? static_cast<std::size_t>(v) : fallback;
  };
  config.adc.single_table_size = table_or("single", default_table);
  config.adc.multiple_table_size = table_or("multiple", default_table);
  config.adc.caching_table_size = table_or("caching", std::max<std::size_t>(default_table / 2, 32));
  config.adc.max_forwards = static_cast<int>(options.get_int("max-forwards", 8));
  if (options.get_bool("faithful", false)) {
    config.adc.table_impl = cache::TableImpl::kFaithful;
  }
  config.seed = options.get_size("seed", 1);
  config.concurrency = static_cast<int>(options.get_int("concurrency", 1));
  config.ma_window = std::max<std::size_t>(trace.size() / 100, 100);
  config.sample_every = config.ma_window;
  config.fault.at_completed = options.get_size("fault-at", 0);
  config.fault.proxy_index = static_cast<int>(options.get_int("fault-proxy", 0));
  config.object_update_interval =
      static_cast<SimTime>(options.get_size("update-interval", 0));

  // --- Run ------------------------------------------------------------------
  std::cout << "workload: " << util::with_thousands(trace_stats.requests) << " requests, "
            << util::with_thousands(trace_stats.unique_objects) << " unique, recurrence "
            << driver::fmt(trace_stats.recurrence_rate, 3) << "\n"
            << "tables: single=" << config.adc.single_table_size
            << " multiple=" << config.adc.multiple_table_size
            << " caching=" << config.adc.caching_table_size << "\n\n";

  const driver::ExperimentResult result = driver::run_experiment(config, trace);

  if (options.get_bool("series", false)) {
    driver::print_series_csv(std::cout, driver::scheme_name(*scheme), result.series);
    return 0;
  }

  driver::print_summary(std::cout, driver::scheme_name(*scheme), result);
  if (config.object_update_interval > 0) {
    std::cout << "stale_hits=" << result.summary.stale_hits
              << " stale_rate=" << driver::fmt(result.summary.stale_rate()) << '\n';
  }
  std::cout << '\n';

  const auto phases = driver::phase_breakdown(result, trace.phases(), trace.size());
  std::vector<std::vector<std::string>> phase_rows;
  phase_rows.push_back({"phase", "requests", "hit_rate_ma", "hops_ma", "latency_ma"});
  for (const auto& phase : phases) {
    if (phase.samples == 0) continue;
    phase_rows.push_back({phase.name, std::to_string(phase.end - phase.begin),
                          driver::fmt(phase.hit_rate, 3), driver::fmt(phase.hops, 2),
                          driver::fmt(phase.latency, 2)});
  }
  driver::print_table(std::cout, phase_rows);
  std::cout << '\n';

  std::vector<std::vector<std::string>> proxy_rows;
  proxy_rows.push_back({"proxy", "requests", "local_hits", "cached"});
  for (const auto& proxy : result.proxies) {
    proxy_rows.push_back({proxy.name, std::to_string(proxy.requests_received),
                          std::to_string(proxy.local_hits),
                          std::to_string(proxy.cached_objects)});
  }
  driver::print_table(std::cout, proxy_rows);

  const auto load = driver::load_balance(result.proxies);
  std::cout << "\nload: peak_share=" << driver::fmt(load.peak_share, 3)
            << " cv=" << driver::fmt(load.cv, 3) << '\n';
  return 0;
}
