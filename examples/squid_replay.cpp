// Replay a Squid access log through the proxy system — the bridge toward
// the paper's "real proxy system based on Squid" future work.
//
//   ./squid_replay /path/to/access.log [--scheme adc] [--limit 0]
//
// Without an argument the example fabricates a small demo log in-memory so
// it stays runnable out of the box.
#include <iostream>
#include <sstream>

#include "driver/experiment.h"
#include "driver/report.h"
#include "util/cli.h"
#include "util/rng.h"
#include "workload/squid_log.h"
#include "workload/url_space.h"

namespace {

using namespace adc;

/// Builds a plausible native-format demo log: Zipf-popular URLs, a few
/// POSTs and parse casualties mixed in.
std::string make_demo_log(std::size_t lines, std::uint64_t seed) {
  util::Rng rng(seed);
  workload::UrlSpace space(64);
  const util::ZipfSampler zipf(5000, 0.9);
  std::ostringstream out;
  double timestamp = 1'046'700'000.0;  // around the paper's publication
  for (std::size_t i = 0; i < lines; ++i) {
    timestamp += rng.uniform();
    const ObjectId object = zipf.sample(rng);
    const bool post = rng.chance(0.03);
    out << timestamp << ' ' << (10 + rng.below(400)) << " 10.0.0." << (1 + rng.below(250))
        << (post ? " TCP_MISS/200 " : " TCP_MISS/200 ") << (200 + rng.below(40000)) << ' '
        << (post ? "POST" : "GET") << ' ' << space.url_for(object)
        << " - DIRECT/origin text/html\n";
    if (rng.chance(0.01)) out << "corrupt line that should be skipped\n";
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Replay a Squid access log through a distributed proxy system.");
  cli.option("scheme", "adc", "adc | carp | consistent | rendezvous | hierarchical | coordinator")
      .option("limit", "0", "max requests to ingest (0 = all)")
      .option("proxies", "5", "number of cooperating proxies")
      .option("demo-lines", "80000", "size of the fabricated demo log when no file is given");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const auto scheme = driver::parse_scheme(cli.config().get_string("scheme", "adc"));
  if (!scheme) {
    std::cerr << "unknown scheme\n";
    return 1;
  }

  workload::UrlInterner interner;
  workload::SquidLoadOptions options;
  options.limit = cli.config().get_size("limit", 0);

  workload::SquidLoadResult loaded;
  if (!cli.positional().empty()) {
    auto from_file = workload::load_squid_log_file(cli.positional().front(), interner, options);
    if (!from_file) {
      std::cerr << "cannot read " << cli.positional().front() << '\n';
      return 1;
    }
    loaded = std::move(*from_file);
    std::cout << "log: " << cli.positional().front() << '\n';
  } else {
    const auto demo_lines =
        static_cast<std::size_t>(cli.config().get_size("demo-lines", 80000));
    std::istringstream demo(make_demo_log(demo_lines, 11));
    loaded = workload::load_squid_log(demo, interner, options);
    std::cout << "log: (fabricated demo, " << demo_lines << " lines)\n";
  }

  std::cout << "ingested " << loaded.parsed << " requests (" << loaded.skipped
            << " lines skipped), " << interner.size() << " distinct URLs, "
            << interner.collisions() << " digest collisions\n\n";
  if (loaded.trace.empty()) {
    std::cerr << "nothing to replay\n";
    return 1;
  }

  driver::ExperimentConfig config;
  config.scheme = *scheme;
  config.proxies = static_cast<int>(cli.config().get_int("proxies", 5));
  // Tables sized to the log's working set: cache ~10% of distinct URLs.
  config.adc.single_table_size = std::max<std::size_t>(interner.size() / 5, 64);
  config.adc.multiple_table_size = config.adc.single_table_size;
  config.adc.caching_table_size = std::max<std::size_t>(interner.size() / 10, 32);
  config.ma_window = 2000;
  config.sample_every = 0;

  const driver::ExperimentResult result = driver::run_experiment(config, loaded.trace);
  driver::print_summary(std::cout, driver::scheme_name(*scheme), result);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"proxy", "requests", "local_hits", "cached"});
  for (const auto& proxy : result.proxies) {
    rows.push_back({proxy.name, std::to_string(proxy.requests_received),
                    std::to_string(proxy.local_hits), std::to_string(proxy.cached_objects)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
