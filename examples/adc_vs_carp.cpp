// ADC vs CARP head-to-head on the same trace — the paper's central
// comparison (Figures 11/12) as a runnable example with adjustable scale.
//
//   ./adc_vs_carp [--scale 0.05] [--proxies 5] [--csv]
//
// With --csv the full moving-average series is printed (plot it to
// recreate Figure 11); otherwise a compact phase-by-phase table is shown.
#include <iostream>

#include "driver/experiment.h"
#include "driver/report.h"
#include "util/cli.h"
#include "workload/polygraph.h"

int main(int argc, char** argv) {
  using namespace adc;

  util::CliParser cli("ADC vs CARP hashing on a PolyMix-like trace.");
  cli.option("scale", "0.05", "workload scale relative to the paper's 3.99M requests")
      .option("proxies", "5", "number of cooperating proxies")
      .option("csv", "", "print the moving-average series as CSV", /*is_flag=*/true);
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const double scale = cli.config().get_double("scale", 0.05);
  const bool csv = cli.config().get_bool("csv", false);

  const workload::Trace trace =
      workload::generate_polygraph_trace(workload::PolygraphConfig::scaled(scale));

  driver::ExperimentConfig adc_config;
  adc_config.scheme = driver::Scheme::kAdc;
  adc_config.proxies = static_cast<int>(cli.config().get_int("proxies", 5));
  adc_config.adc.single_table_size = std::max<std::size_t>(
      static_cast<std::size_t>(20000 * scale), 64);
  adc_config.adc.multiple_table_size = adc_config.adc.single_table_size;
  adc_config.adc.caching_table_size = std::max<std::size_t>(
      static_cast<std::size_t>(10000 * scale), 32);
  adc_config.ma_window = std::max<std::size_t>(static_cast<std::size_t>(5000 * scale), 200);
  adc_config.sample_every = adc_config.ma_window;

  driver::ExperimentConfig carp_config = adc_config;
  carp_config.scheme = driver::Scheme::kCarp;

  const driver::ExperimentResult adc_result = driver::run_experiment(adc_config, trace);
  const driver::ExperimentResult carp_result = driver::run_experiment(carp_config, trace);

  if (csv) {
    driver::print_series_csv(std::cout, "adc", adc_result.series);
    driver::print_series_csv(std::cout, "carp", carp_result.series);
    return 0;
  }

  const auto& phases = trace.phases();
  const auto phase_of = [&phases](std::uint64_t request) {
    if (request <= phases.fill_end) return "fill";
    if (request <= phases.phase2_end) return "phase-I";
    return "phase-II";
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"requests", "phase", "adc_hit_ma", "carp_hit_ma", "adc_hops_ma",
                  "carp_hops_ma"});
  const std::size_t points = std::min(adc_result.series.size(), carp_result.series.size());
  const std::size_t stride = std::max<std::size_t>(points / 12, 1);
  for (std::size_t i = 0; i < points; i += stride) {
    const auto& a = adc_result.series[i];
    const auto& c = carp_result.series[i];
    rows.push_back({std::to_string(a.requests), phase_of(a.requests),
                    driver::fmt(a.hit_rate, 3), driver::fmt(c.hit_rate, 3),
                    driver::fmt(a.hops, 2), driver::fmt(c.hops, 2)});
  }
  driver::print_table(std::cout, rows);
  std::cout << '\n';
  driver::print_summary(std::cout, "adc ", adc_result);
  driver::print_summary(std::cout, "carp", carp_result);
  return 0;
}
