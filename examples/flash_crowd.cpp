// Flash crowd: a sudden hotspot — the scenario the paper's introduction
// motivates (hot published documents overwhelming a single location).
//
// The workload runs a steady Zipf mix, then a "flash" window where a
// handful of objects take over most of the request stream, then returns
// to the steady mix.  ADC replicates hot objects along backwarding paths
// (multiple copies, load spread), while CARP pins each object to one
// owner; the example prints per-phase hit rates and the load split across
// proxies during the flash.
//
//   ./flash_crowd [--requests 150000] [--flash-objects 8] [--seed 7]
#include <algorithm>
#include <iostream>

#include "driver/experiment.h"
#include "driver/report.h"
#include "util/cli.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace {

using namespace adc;

workload::Trace make_flash_trace(std::uint64_t requests, std::size_t flash_objects,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t universe = 20000;
  const util::ZipfSampler zipf(universe, 0.8);

  std::vector<ObjectId> stream;
  stream.reserve(requests);
  const std::uint64_t flash_begin = requests / 3;
  const std::uint64_t flash_end = 2 * requests / 3;
  for (std::uint64_t i = 0; i < requests; ++i) {
    const bool in_flash = i >= flash_begin && i < flash_end;
    if (in_flash && rng.chance(0.85)) {
      // The crowd: a tiny set of ids far outside the steady working set.
      stream.push_back(1'000'000 + rng.below(flash_objects));
    } else {
      stream.push_back(static_cast<ObjectId>(zipf.sample(rng)));
    }
  }
  // Treat the pre-flash third as "fill" so phase slicing lines up.
  return workload::Trace(std::move(stream), workload::TracePhases{flash_begin, flash_end});
}

double phase_hit_rate(const std::vector<sim::SeriesPoint>& series, std::uint64_t begin,
                      std::uint64_t end) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& point : series) {
    if (point.requests > begin && point.requests <= end) {
      sum += point.hit_rate;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Flash-crowd scenario: ADC vs CARP under a sudden hotspot.");
  cli.option("requests", "150000", "total requests in the scenario")
      .option("flash-objects", "8", "number of objects the crowd requests")
      .option("seed", "7", "workload and simulation seed");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const std::uint64_t requests = cli.config().get_size("requests", 150000);
  const auto flash_objects =
      static_cast<std::size_t>(cli.config().get_size("flash-objects", 8));
  const std::uint64_t seed = cli.config().get_size("seed", 7);

  const workload::Trace trace = make_flash_trace(requests, flash_objects, seed);

  driver::ExperimentConfig base;
  base.proxies = 5;
  base.seed = seed;
  base.adc.single_table_size = 2000;
  base.adc.multiple_table_size = 2000;
  base.adc.caching_table_size = 1000;
  base.ma_window = 1000;
  base.sample_every = 1000;

  driver::ExperimentConfig carp = base;
  carp.scheme = driver::Scheme::kCarp;

  const driver::ExperimentResult adc_result = driver::run_experiment(base, trace);
  const driver::ExperimentResult carp_result = driver::run_experiment(carp, trace);

  const auto& phases = trace.phases();
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"phase", "adc_hit_rate", "carp_hit_rate"});
  rows.push_back({"steady (before)",
                  driver::fmt(phase_hit_rate(adc_result.series, 0, phases.fill_end), 3),
                  driver::fmt(phase_hit_rate(carp_result.series, 0, phases.fill_end), 3)});
  rows.push_back({"flash crowd",
                  driver::fmt(phase_hit_rate(adc_result.series, phases.fill_end,
                                             phases.phase2_end), 3),
                  driver::fmt(phase_hit_rate(carp_result.series, phases.fill_end,
                                             phases.phase2_end), 3)});
  rows.push_back({"steady (after)",
                  driver::fmt(phase_hit_rate(adc_result.series, phases.phase2_end,
                                             trace.size()), 3),
                  driver::fmt(phase_hit_rate(carp_result.series, phases.phase2_end,
                                             trace.size()), 3)});
  driver::print_table(std::cout, rows);

  // Load split: how evenly the request burden landed across proxies.
  const auto load_split = [](const driver::ExperimentResult& result) {
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    for (const auto& proxy : result.proxies) {
      total += proxy.requests_received;
      peak = std::max(peak, proxy.requests_received);
    }
    return total == 0 ? 0.0
                      : static_cast<double>(peak) / static_cast<double>(total);
  };
  std::cout << "\npeak_proxy_load_share adc=" << driver::fmt(load_split(adc_result), 3)
            << " carp=" << driver::fmt(load_split(carp_result), 3)
            << "  (1/proxies = " << driver::fmt(1.0 / 5.0, 3) << " is perfectly even)\n\n";

  driver::print_summary(std::cout, "adc ", adc_result);
  driver::print_summary(std::cout, "carp", carp_result);
  return 0;
}
