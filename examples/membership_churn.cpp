// Membership churn: watch a self-organizing proxy system lose a member's
// state and heal — the "changes of the infrastructure" scenario the paper
// reserves for future work.
//
//   ./membership_churn [--scheme adc] [--requests 120000] [--victim 2]
//
// Prints the moving-average hit rate around the fault so the dip and the
// recovery slope are visible in the terminal.
#include <iostream>

#include "driver/experiment.h"
#include "driver/report.h"
#include "util/cli.h"
#include "workload/polygraph.h"

int main(int argc, char** argv) {
  using namespace adc;

  util::CliParser cli("Proxy cold-restart demo: dip and recovery of the hit rate.");
  cli.option("scheme", "adc", "adc | carp | consistent | rendezvous | hierarchical | soap")
      .option("requests", "120000", "approximate trace length")
      .option("victim", "2", "index of the proxy to flush")
      .option("proxies", "5", "number of cooperating proxies");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const auto scheme = driver::parse_scheme(cli.config().get_string("scheme", "adc"));
  if (!scheme) {
    std::cerr << "unknown scheme\n";
    return 1;
  }

  const auto requests = cli.config().get_size("requests", 120000);
  const double scale = static_cast<double>(requests) / 3'990'000.0;
  const workload::Trace trace =
      workload::generate_polygraph_trace(workload::PolygraphConfig::scaled(scale));

  driver::ExperimentConfig config;
  config.scheme = *scheme;
  config.proxies = static_cast<int>(cli.config().get_int("proxies", 5));
  config.adc.single_table_size = std::max<std::size_t>(static_cast<std::size_t>(20000 * scale), 64);
  config.adc.multiple_table_size = config.adc.single_table_size;
  config.adc.caching_table_size = std::max<std::size_t>(static_cast<std::size_t>(10000 * scale), 32);
  config.ma_window = std::max<std::size_t>(trace.size() / 100, 200);
  config.sample_every = config.ma_window;
  config.fault.at_completed = trace.size() * 3 / 5;
  config.fault.proxy_index = static_cast<int>(cli.config().get_int("victim", 2));

  const driver::ExperimentResult result = driver::run_experiment(config, trace);

  std::cout << "scheme " << driver::scheme_name(*scheme) << ", fault at request "
            << config.fault.at_completed << " (proxy[" << config.fault.proxy_index
            << "] flushed)\n\n";

  // ASCII strip chart of the moving-average hit rate around the fault.
  const std::uint64_t lo = config.fault.at_completed > trace.size() / 4
                               ? config.fault.at_completed - trace.size() / 4
                               : 0;
  for (const auto& point : result.series) {
    if (point.requests < lo) continue;
    const int bar = static_cast<int>(point.hit_rate * 60);
    std::cout << (point.requests == config.fault.at_completed ? "FAULT " : "      ");
    printf("%9llu |", static_cast<unsigned long long>(point.requests));
    for (int i = 0; i < bar; ++i) std::cout << '#';
    std::cout << ' ' << driver::fmt(point.hit_rate, 3) << '\n';
  }

  std::cout << '\n';
  driver::print_summary(std::cout, driver::scheme_name(*scheme), result);
  return 0;
}
