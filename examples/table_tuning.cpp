// Table-size tuning: sweep one ADC mapping table and watch hit rate and
// hops respond — the interactive version of the paper's Figures 13/14.
//
//   ./table_tuning --table caching --sizes 250,500,1000,2000 [--scale 0.02]
#include <iostream>

#include "driver/parallel.h"
#include "driver/report.h"
#include "driver/sweep.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "workload/polygraph.h"

int main(int argc, char** argv) {
  using namespace adc;

  util::CliParser cli("Sweep one ADC mapping table's size.");
  cli.option("table", "caching", "table to sweep: caching | multiple | single")
      .option("sizes", "250,500,1000,1500,2000,3000", "comma-separated entry counts")
      .option("scale", "0.02", "workload scale relative to the paper's 3.99M requests")
      .option("proxies", "5", "number of cooperating proxies")
      .option("workers", "0", "parallel sweep threads (0 = hardware concurrency, 1 = serial)");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const std::string table_name = cli.config().get_string("table", "caching");
  driver::SweptTable table = driver::SweptTable::kCaching;
  if (table_name == "multiple") {
    table = driver::SweptTable::kMultiple;
  } else if (table_name == "single") {
    table = driver::SweptTable::kSingle;
  } else if (table_name != "caching") {
    std::cerr << "unknown table '" << table_name << "' (caching|multiple|single)\n";
    return 1;
  }

  std::vector<std::size_t> sizes;
  const std::string sizes_arg = cli.config().get_string("sizes", "");
  for (const auto field : util::split(sizes_arg, ',')) {
    if (const auto v = util::parse_size(util::trim(field)); v && *v > 0) {
      sizes.push_back(static_cast<std::size_t>(*v));
    } else {
      std::cerr << "bad size '" << field << "'\n";
      return 1;
    }
  }

  const double scale = cli.config().get_double("scale", 0.02);
  const workload::Trace trace =
      workload::generate_polygraph_trace(workload::PolygraphConfig::scaled(scale));

  driver::ExperimentConfig base;
  base.scheme = driver::Scheme::kAdc;
  base.proxies = static_cast<int>(cli.config().get_int("proxies", 5));
  base.adc.single_table_size = std::max<std::size_t>(static_cast<std::size_t>(20000 * scale), 64);
  base.adc.multiple_table_size = base.adc.single_table_size;
  base.adc.caching_table_size = std::max<std::size_t>(static_cast<std::size_t>(10000 * scale), 32);
  base.sample_every = 0;

  const int workers =
      driver::resolve_workers(static_cast<int>(cli.config().get_int("workers", 0)));
  const auto points = driver::run_table_sweep(base, trace, {table}, sizes, workers);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"table", "size", "hit_rate", "avg_hops", "wall_s"});
  for (const auto& point : points) {
    rows.push_back({std::string(driver::swept_table_name(point.table)),
                    std::to_string(point.size), driver::fmt(point.hit_rate),
                    driver::fmt(point.avg_hops, 3), driver::fmt(point.wall_seconds, 3)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
