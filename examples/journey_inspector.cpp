// Journey inspector: watch individual requests walk the proxy system.
//
//   ./journey_inspector [--requests 40] [--proxies 4] [--object 7]
//
// Prints each journey as its actual message path — the random search, the
// loop terminations at the origin, the learned direct routes once the
// system converges, and the backwarding that teaches every proxy on the
// way back.  The clearest way to *see* the paper's Section III mechanics.
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "core/adc_proxy.h"
#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"
#include "util/cli.h"

namespace {

using namespace adc;

struct Leg {
  bool request;
  NodeId from;
  NodeId to;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Trace individual request journeys through an ADC deployment.");
  cli.option("requests", "40", "how many requests to trace")
      .option("proxies", "4", "number of cooperating proxies")
      .option("object", "7", "the (single) object id everybody asks for")
      .option("seed", "3", "simulation seed");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const int proxies = static_cast<int>(cli.config().get_int("proxies", 4));
  const auto count = cli.config().get_size("requests", 40);
  const ObjectId object = cli.config().get_size("object", 7);

  core::AdcConfig config;
  config.single_table_size = 32;
  config.multiple_table_size = 32;
  config.caching_table_size = 8;

  sim::Simulator sim(cli.config().get_size("seed", 3));
  std::vector<NodeId> ids;
  for (int i = 0; i < proxies; ++i) ids.push_back(i);
  const NodeId origin_id = proxies;
  const NodeId client_id = proxies + 1;
  std::vector<core::AdcProxy*> nodes;
  for (int i = 0; i < proxies; ++i) {
    auto node = std::make_unique<core::AdcProxy>(i, "P" + std::to_string(i), config, ids,
                                                 origin_id);
    nodes.push_back(node.get());
    sim.add_node(std::move(node));
  }
  sim.add_node(std::make_unique<proxy::OriginServer>(origin_id, "origin"));
  proxy::VectorStream stream(std::vector<ObjectId>(count, object));
  auto client_node = std::make_unique<proxy::Client>(client_id, "client", stream, ids);
  auto* client = client_node.get();
  sim.add_node(std::move(client_node));

  std::map<RequestId, std::vector<Leg>> journeys;
  sim.set_message_observer([&journeys](const sim::Message& msg, SimTime) {
    journeys[msg.request_id].push_back(
        Leg{msg.kind == sim::MessageKind::kRequest, msg.sender, msg.target});
  });

  client->start(sim);
  sim.run();

  const auto name = [&](NodeId id) -> std::string {
    if (id == client_id) return "client";
    if (id == origin_id) return "ORIGIN";
    return "P" + std::to_string(id);
  };

  std::cout << "every request asks for object " << object << "; " << proxies
            << " proxies; watch the system converge:\n\n";
  std::uint64_t index = 0;
  for (const auto& [id, legs] : journeys) {
    ++index;
    bool hit = false;
    std::string line;
    for (const auto& leg : legs) {
      if (line.empty()) line += name(leg.from);
      line += leg.request ? " -> " : " ~> ";  // ~> marks backwarding
      line += name(leg.to);
      if (!leg.request && leg.from != origin_id) hit = true;
    }
    const bool origin_resolved =
        std::any_of(legs.begin(), legs.end(),
                    [origin_id](const Leg& leg) { return leg.request && leg.to == origin_id; });
    std::cout << (origin_resolved ? "[miss] " : "[HIT]  ") << "#" << index << "  " << line
              << '\n';
    (void)hit;
  }

  std::cout << "\nfinal state:\n";
  for (const auto* node : nodes) {
    const auto location = node->tables().forward_location(object);
    std::cout << "  " << node->name() << ": cached=" << (node->is_locally_cached(object) ? "yes" : "no")
              << " location="
              << (location.has_value() ? name(*location) : std::string("(unknown)")) << '\n';
  }
  return 0;
}
