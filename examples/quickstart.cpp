// Quickstart: build a 5-proxy ADC deployment, replay a small synthetic
// trace, and print what the system learned.
//
//   ./quickstart [--proxies 5] [--requests 50000] [--seed 1]
//
// This is the smallest end-to-end use of the public API:
//   1. generate a workload            (adc::workload)
//   2. describe the deployment       (adc::driver::ExperimentConfig)
//   3. run it                        (adc::driver::run_experiment)
//   4. read the metrics              (adc::sim::MetricsSummary)
#include <iostream>

#include "driver/experiment.h"
#include "driver/report.h"
#include "util/cli.h"
#include "workload/polygraph.h"

int main(int argc, char** argv) {
  using namespace adc;

  util::CliParser cli("Quickstart: ADC on a small synthetic trace.");
  cli.option("proxies", "5", "number of cooperating proxies")
      .option("requests", "50000", "approximate trace length")
      .option("seed", "1", "simulation seed");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }

  const auto requests = cli.config().get_size("requests", 50000);
  const double scale = static_cast<double>(requests) / 3'990'000.0;

  // 1. Workload: a scaled-down PolyMix-like trace (fill phase, request
  //    phase, exact repeat phase).
  const workload::Trace trace =
      workload::generate_polygraph_trace(workload::PolygraphConfig::scaled(scale));
  const auto stats = trace.stats();
  std::cout << "trace: " << stats.requests << " requests, " << stats.unique_objects
            << " unique objects, recurrence " << driver::fmt(stats.recurrence_rate, 3)
            << "\n\n";

  // 2. Deployment: paper-style ADC with tables scaled to the workload.
  driver::ExperimentConfig config;
  config.scheme = driver::Scheme::kAdc;
  config.proxies = static_cast<int>(cli.config().get_int("proxies", 5));
  config.seed = cli.config().get_size("seed", 1);
  config.adc.single_table_size = std::max<std::size_t>(stats.unique_objects / 10, 64);
  config.adc.multiple_table_size = config.adc.single_table_size;
  config.adc.caching_table_size = std::max<std::size_t>(config.adc.single_table_size / 2, 32);
  config.ma_window = 1000;
  config.sample_every = 0;

  // 3. Run.
  const driver::ExperimentResult result = driver::run_experiment(config, trace);

  // 4. Report.
  driver::print_summary(std::cout, "adc", result);
  std::cout << '\n';
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"proxy", "requests", "local_hits", "cached", "table_entries"});
  for (const auto& proxy : result.proxies) {
    rows.push_back({proxy.name, std::to_string(proxy.requests_received),
                    std::to_string(proxy.local_hits), std::to_string(proxy.cached_objects),
                    std::to_string(proxy.table_entries)});
  }
  driver::print_table(std::cout, rows);

  std::cout << "\nadc internals: learned_forwards=" << result.adc_totals.forwards_learned
            << " random_forwards=" << result.adc_totals.forwards_random
            << " loops=" << result.adc_totals.loops_detected
            << " cache_admissions=" << result.adc_totals.cache_admissions << '\n';
  return 0;
}
