// FaultyNetwork: the deterministic fault decorator for a transport.
//
// Implements sim::FaultHook, so installing it on a Simulator decorates
// sim::Network's delivery semantics — the network still computes the link
// latency, this layer decides whether the transfer survives, multiplies,
// or arrives late.  The live daemon consults the same object directly for
// its injected chaos (drop/duplicate; wall-clock delays are left to the
// real network).
//
// Every stochastic decision draws from a private RNG seeded by the plan,
// never from the transport's, so:
//  * a zero-rate plan is bit-identical to running without the hook
//    (tests/fault/faulty_network_test.cpp), and
//  * a sweep over fault plans is reproducible at any --workers count —
//    each run owns its own FaultyNetwork.
#pragma once

#include "fault/fault_plan.h"
#include "sim/fault_hook.h"
#include "sim/metrics.h"
#include "util/rng.h"
#include "util/types.h"

namespace adc::fault {

class FaultyNetwork final : public sim::FaultHook {
 public:
  explicit FaultyNetwork(FaultPlan plan);

  sim::FaultDecision on_send(const sim::Message& msg, SimTime now) override;

  /// True while `node` sits inside one of its crash windows at `now`.
  bool node_down(NodeId node, SimTime now) const noexcept;

  /// True while the (a, b) link is inside a partition window at `now`.
  bool link_cut(NodeId a, NodeId b, SimTime now) const noexcept;

  const FaultPlan& plan() const noexcept { return plan_; }
  const sim::FaultCounters& counters() const noexcept { return counters_; }

 private:
  FaultPlan plan_;
  util::Rng rng_;
  sim::FaultCounters counters_;
};

}  // namespace adc::fault
