#include "fault/fault_plan.h"

#include <sstream>

namespace adc::fault {

bool FaultPlan::is_zero() const noexcept {
  return drop_prob <= 0.0 && dup_prob <= 0.0 && extra_delay_prob <= 0.0 &&
         reorder_prob <= 0.0 && partitions.empty() && crashes.empty();
}

std::string FaultPlan::describe() const {
  if (is_zero()) return "no faults";
  std::ostringstream out;
  if (drop_prob > 0.0) out << "drop=" << drop_prob << " ";
  if (dup_prob > 0.0) out << "dup=" << dup_prob << " ";
  if (extra_delay_prob > 0.0) {
    out << "delay=" << extra_delay_prob << "x~Exp(" << extra_delay_mean << ") ";
  }
  if (reorder_prob > 0.0) out << "reorder=" << reorder_prob << "/" << reorder_window << " ";
  if (!partitions.empty()) out << "partitions=" << partitions.size() << " ";
  if (!crashes.empty()) out << "crashes=" << crashes.size() << " ";
  out << "seed=" << seed;
  return out.str();
}

}  // namespace adc::fault
