#include "fault/peer_health.h"

#include <algorithm>

namespace adc::fault {

PeerHealth::PeerHealth() : PeerHealth(Config{}) {}

PeerHealth::PeerHealth(Config config) : config_(config), rng_(config.seed) {
  if (config_.base_backoff_us < 1) config_.base_backoff_us = 1;
  if (config_.max_backoff_us < config_.base_backoff_us) {
    config_.max_backoff_us = config_.base_backoff_us;
  }
  config_.jitter = std::clamp(config_.jitter, 0.0, 0.99);
}

std::int64_t PeerHealth::backoff_for(int streak) {
  // streak >= 1: base * 2^(streak-1), saturating at the ceiling.
  std::int64_t backoff = config_.base_backoff_us;
  for (int i = 1; i < streak && backoff < config_.max_backoff_us; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, config_.max_backoff_us);
  if (config_.jitter > 0.0) {
    // Uniform in [1-jitter, 1+jitter).
    const double factor = 1.0 + config_.jitter * (2.0 * rng_.uniform() - 1.0);
    backoff = std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                            static_cast<double>(backoff) * factor));
  }
  return backoff;
}

bool PeerHealth::can_attempt(NodeId peer, std::int64_t now_us) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.streak == 0) return true;
  return now_us >= it->second.next_try_us;
}

bool PeerHealth::record_failure(NodeId peer, std::int64_t now_us) {
  State& s = peers_[peer];
  const bool became_down = s.streak == 0;
  ++s.streak;
  s.next_try_us = now_us + backoff_for(s.streak);
  return became_down;
}

bool PeerHealth::record_success(NodeId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return false;
  const bool was_down = it->second.streak > 0;
  peers_.erase(it);
  return was_down;
}

bool PeerHealth::is_down(NodeId peer) const {
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second.streak > 0;
}

std::vector<NodeId> PeerHealth::down_peers() const {
  std::vector<NodeId> out;
  for (const auto& [peer, state] : peers_) {
    if (state.streak > 0) out.push_back(peer);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int PeerHealth::failure_streak(NodeId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.streak;
}

}  // namespace adc::fault
