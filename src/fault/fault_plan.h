// The declarative fault model consumed by fault::FaultyNetwork (simulated
// transport) and server::NodeDaemon (live transport).
//
// A FaultPlan is pure data: probabilities, delay distributions, link
// partition windows and node crash/restart schedules, plus the seed that
// makes every stochastic decision reproducible.  Identical plans produce
// identical fault sequences — the property that keeps chaos sweeps
// (bench/ext_churn) bit-identical at any --workers count.
//
// Time units are whatever the consuming transport's clock speaks:
// simulated ticks under the Simulator, microseconds since start in the
// live daemon.  Probabilities apply per message transfer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace adc::fault {

/// Drops every message between two nodes (both directions) inside the
/// window [from, until).
struct LinkPartition {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  SimTime from = 0;
  SimTime until = kSimTimeMax;
};

/// The node is unreachable inside [at, restart): every message to or from
/// it is dropped.  A restart of kSimTimeMax means the node never returns.
/// `flush_state` marks whether the crash also wipes the node's learned
/// state (the driver schedules the flush; message dropping happens here).
struct CrashWindow {
  NodeId node = kInvalidNode;
  SimTime at = 0;
  SimTime restart = kSimTimeMax;
  bool flush_state = true;
};

struct FaultPlan {
  /// Per-transfer probability that the message is lost.
  double drop_prob = 0.0;

  /// Per-transfer probability that an extra copy is delivered.
  double dup_prob = 0.0;

  /// Per-transfer probability of extra latency, exponentially distributed
  /// with mean `extra_delay_mean` (rounded to whole ticks, at least 1).
  double extra_delay_prob = 0.0;
  double extra_delay_mean = 0.0;

  /// Per-transfer probability of a uniform extra delay in
  /// [1, reorder_window] — enough to overtake later sends, which is how
  /// reordering manifests in an in-order event queue.
  double reorder_prob = 0.0;
  SimTime reorder_window = 0;

  std::vector<LinkPartition> partitions;
  std::vector<CrashWindow> crashes;

  /// Seed of the fault layer's private RNG.  Decisions never touch the
  /// transport's own RNG, so a zero-rate plan is invisible.
  std::uint64_t seed = 0x0fa17ULL;

  /// True when no fault can ever fire: all probabilities zero and no
  /// partition or crash windows.
  bool is_zero() const noexcept;

  /// Human-readable one-liner for banners and logs.
  std::string describe() const;
};

}  // namespace adc::fault
