#include "fault/faulty_network.h"

#include <cmath>

namespace adc::fault {

FaultyNetwork::FaultyNetwork(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

bool FaultyNetwork::node_down(NodeId node, SimTime now) const noexcept {
  for (const CrashWindow& c : plan_.crashes) {
    if (c.node == node && now >= c.at && now < c.restart) return true;
  }
  return false;
}

bool FaultyNetwork::link_cut(NodeId a, NodeId b, SimTime now) const noexcept {
  for (const LinkPartition& p : plan_.partitions) {
    const bool match = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (match && now >= p.from && now < p.until) return true;
  }
  return false;
}

sim::FaultDecision FaultyNetwork::on_send(const sim::Message& msg, SimTime now) {
  sim::FaultDecision fate;
  // A zero plan must not advance rng_ either: byte-identical to no hook.
  if (plan_.is_zero()) return fate;

  // Deterministic windows first — they draw no randomness, so a plan with
  // only crashes/partitions consumes zero RNG and stays comparable across
  // loss-rate sweeps that share a seed.
  if (node_down(msg.sender, now) || node_down(msg.target, now)) {
    ++counters_.drops_crash;
    fate.drop = true;
    return fate;
  }
  if (link_cut(msg.sender, msg.target, now)) {
    ++counters_.drops_partition;
    fate.drop = true;
    return fate;
  }

  if (plan_.drop_prob > 0.0 && rng_.chance(plan_.drop_prob)) {
    ++counters_.drops_random;
    fate.drop = true;
    return fate;
  }
  if (plan_.dup_prob > 0.0 && rng_.chance(plan_.dup_prob)) {
    ++counters_.duplicates;
    fate.duplicates = 1;
  }
  if (plan_.extra_delay_prob > 0.0 && rng_.chance(plan_.extra_delay_prob)) {
    ++counters_.delays;
    const double drawn = rng_.exponential(plan_.extra_delay_mean > 0.0 ? plan_.extra_delay_mean : 1.0);
    auto ticks = static_cast<SimTime>(std::llround(drawn));
    fate.extra_delay += ticks < 1 ? 1 : ticks;
  }
  if (plan_.reorder_prob > 0.0 && plan_.reorder_window > 0 &&
      rng_.chance(plan_.reorder_prob)) {
    ++counters_.delays;
    fate.extra_delay += rng_.range(1, plan_.reorder_window);
  }
  return fate;
}

}  // namespace adc::fault
