// Peer-health tracking with capped exponential backoff.
//
// Pure state machine, no sockets: the live daemon and the load generator
// feed it dial/write outcomes and ask whether a peer is worth another
// attempt yet.  Keeping it transport-free makes the backoff schedule unit
// testable (tests/fault/peer_health_test.cpp) and reusable from both ends
// of a connection.
//
// Backoff doubles per consecutive failure from `base_backoff_us` up to
// `max_backoff_us`, with +/- `jitter` relative randomization so a cluster
// of dialers does not thunder in lockstep.  Jitter draws from a private
// seeded RNG, keeping retry schedules reproducible in tests.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace adc::fault {

class PeerHealth {
 public:
  struct Config {
    std::int64_t base_backoff_us = 50'000;   // first retry delay
    std::int64_t max_backoff_us = 2'000'000; // backoff ceiling
    double jitter = 0.2;                     // relative, in [0, 1)
    std::uint64_t seed = 0xbacc0ffULL;
  };

  PeerHealth();
  explicit PeerHealth(Config config);

  /// True when the peer is healthy, unknown, or its backoff has elapsed.
  bool can_attempt(NodeId peer, std::int64_t now_us);

  /// Records a dial/write failure at `now_us`.  Returns true when this
  /// transition took the peer from up to down (first failure of a streak).
  bool record_failure(NodeId peer, std::int64_t now_us);

  /// Records a successful exchange.  Returns true when the peer had been
  /// down — i.e. this is a reconnect.
  bool record_success(NodeId peer);

  bool is_down(NodeId peer) const;
  std::vector<NodeId> down_peers() const;

  /// Consecutive failures in the current streak (0 when healthy).
  int failure_streak(NodeId peer) const;

  const Config& config() const noexcept { return config_; }

 private:
  struct State {
    int streak = 0;             // consecutive failures
    std::int64_t next_try_us = 0;  // earliest next attempt
  };

  std::int64_t backoff_for(int streak);

  Config config_;
  util::Rng rng_;
  std::unordered_map<NodeId, State> peers_;
};

}  // namespace adc::fault
