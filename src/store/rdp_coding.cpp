#include "store/rdp_coding.h"

#include <algorithm>
#include <cassert>

namespace adc::store {
namespace {

bool is_prime(int n) {
  if (n < 2) return false;
  for (int d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

int next_prime_at_least(int n) {
  while (!is_prime(n)) ++n;
  return n;
}

void xor_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace

RdpCode::RdpCode(int data_chunks)
    : k_(std::max(2, data_chunks)), p_(next_prime_at_least(k_ + 1)) {}

std::size_t RdpCode::padded_chunk_size(std::size_t raw_chunk_size) const noexcept {
  const std::size_t rows = static_cast<std::size_t>(p_ - 1);
  if (raw_chunk_size == 0) return rows;  // one zero block per row keeps sizes unambiguous
  return (raw_chunk_size + rows - 1) / rows * rows;
}

void RdpCode::encode(const std::vector<std::vector<std::uint8_t>>& data,
                     std::vector<std::uint8_t>* row, std::vector<std::uint8_t>* diag) const {
  assert(static_cast<int>(data.size()) == k_);
  const std::size_t chunk = data[0].size();
  const std::size_t rows = static_cast<std::size_t>(p_ - 1);
  assert(chunk % rows == 0);
  const std::size_t s = chunk / rows;  // bytes per block

  row->assign(chunk, 0);
  diag->assign(chunk, 0);

  // Row parity: row[r] = XOR of the data blocks in row r (virtual disks
  // k..p-2 are all-zero and contribute nothing).
  for (int c = 0; c < k_; ++c) {
    assert(data[c].size() == chunk);
    xor_into(row->data(), data[c].data(), chunk);
  }

  // Diagonal parity over disks 0..p-1 (data + row parity): the block of
  // disk c in row r lies on diagonal (c + r) mod p; diagonal p-1 is not
  // stored.
  for (int c = 0; c <= p_ - 1; ++c) {
    const std::uint8_t* col = nullptr;
    if (c < k_) {
      col = data[c].data();
    } else if (c == p_ - 1) {
      col = row->data();
    } else {
      continue;  // virtual zero disk
    }
    for (int r = 0; r < p_ - 1; ++r) {
      const int d = (c + r) % p_;
      if (d == p_ - 1) continue;  // the missing diagonal
      xor_into(diag->data() + static_cast<std::size_t>(d) * s, col + static_cast<std::size_t>(r) * s, s);
    }
  }
}

bool RdpCode::reconstruct(std::vector<std::vector<std::uint8_t>>* chunks) const {
  assert(chunks != nullptr && static_cast<int>(chunks->size()) == stripe_width());

  std::vector<int> erased;
  std::size_t chunk = 0;
  for (int i = 0; i < stripe_width(); ++i) {
    const auto& c = (*chunks)[i];
    if (c.empty()) {
      erased.push_back(i);
    } else if (chunk == 0) {
      chunk = c.size();
    } else if (c.size() != chunk) {
      return false;
    }
  }
  if (erased.size() > 2) return false;
  if (erased.empty()) return true;
  const std::size_t rows = static_cast<std::size_t>(p_ - 1);
  if (chunk == 0 || chunk % rows != 0) return false;
  const std::size_t s = chunk / rows;

  // Lay the stripe out as the virtual (p + 1)-disk array: disks 0..p-2 are
  // data (k real + shortened zeros), disk p-1 row parity, disk p diagonal
  // parity.  known[c][r] tracks which blocks hold real values.
  const int disks = p_ + 1;
  std::vector<std::vector<std::uint8_t>> block(
      static_cast<std::size_t>(disks) * rows, std::vector<std::uint8_t>(s, 0));
  std::vector<char> known(static_cast<std::size_t>(disks) * rows, 0);
  const auto at = [&](int c, std::size_t r) -> std::size_t {
    return static_cast<std::size_t>(c) * rows + r;
  };
  const auto disk_of = [&](int real_index) {
    if (real_index < k_) return real_index;
    return real_index == k_ ? p_ - 1 : p_;
  };

  for (int c = 0; c < disks; ++c) {
    const bool is_virtual_zero = c >= k_ && c < p_ - 1;
    int real = -1;
    if (c < k_) real = c;
    if (c == p_ - 1) real = k_;
    if (c == p_) real = k_ + 1;
    const bool have = is_virtual_zero || !(*chunks)[static_cast<std::size_t>(real)].empty();
    for (std::size_t r = 0; r < rows; ++r) {
      if (!have) continue;
      known[at(c, r)] = 1;
      if (!is_virtual_zero) {
        const auto& src = (*chunks)[static_cast<std::size_t>(real)];
        std::copy(src.begin() + static_cast<std::ptrdiff_t>(r * s),
                  src.begin() + static_cast<std::ptrdiff_t>((r + 1) * s),
                  block[at(c, r)].begin());
      }
    }
  }

  // If the diagonal-parity chunk is erased, the other erasure (if any) must
  // be row-recoverable first; the diagonal is then recomputed outright, so
  // drop it from the peeling unknowns.
  const bool diag_erased =
      std::find(erased.begin(), erased.end(), k_ + 1) != erased.end();

  // Equation peeling: repeatedly solve any row or diagonal equation with
  // exactly one unknown block.  For <= 2 erasures this is exactly the
  // published RDP chain (the p-prime step argument guarantees progress).
  bool progress = true;
  while (progress) {
    progress = false;
    // Row equations: XOR over disks 0..p-1 of block(c, r) == 0.
    for (std::size_t r = 0; r < rows; ++r) {
      int unknown = -1;
      int unknowns = 0;
      for (int c = 0; c <= p_ - 1; ++c) {
        if (!known[at(c, r)]) {
          ++unknowns;
          unknown = c;
        }
      }
      if (unknowns != 1) continue;
      auto& out = block[at(unknown, r)];
      std::fill(out.begin(), out.end(), 0);
      for (int c = 0; c <= p_ - 1; ++c) {
        if (c == unknown) continue;
        xor_into(out.data(), block[at(c, r)].data(), s);
      }
      known[at(unknown, r)] = 1;
      progress = true;
    }
    // Diagonal equations (only when the diagonal chunk is present): the
    // blocks of disks 0..p-1 on diagonal d XOR to diag block d.
    if (!diag_erased) {
      for (int d = 0; d < p_ - 1; ++d) {
        int unknown_c = -1;
        std::size_t unknown_r = 0;
        int unknowns = 0;
        for (int c = 0; c <= p_ - 1; ++c) {
          const int r = (d - c % p_ + p_) % p_;
          if (r > p_ - 2) continue;  // this disk has no block on diagonal d
          if (!known[at(c, static_cast<std::size_t>(r))]) {
            ++unknowns;
            unknown_c = c;
            unknown_r = static_cast<std::size_t>(r);
          }
        }
        if (unknowns != 1) continue;
        auto& out = block[at(unknown_c, unknown_r)];
        // Start from the diagonal parity block, XOR out every known member.
        std::copy(block[at(p_, static_cast<std::size_t>(d))].begin(),
                  block[at(p_, static_cast<std::size_t>(d))].end(), out.begin());
        for (int c = 0; c <= p_ - 1; ++c) {
          const int r = (d - c % p_ + p_) % p_;
          if (r > p_ - 2 || c == unknown_c) continue;
          xor_into(out.data(), block[at(c, static_cast<std::size_t>(r))].data(), s);
        }
        known[at(unknown_c, unknown_r)] = 1;
        progress = true;
      }
    }
  }

  // Every non-diagonal erasure must be fully peeled by now.
  for (const int real : erased) {
    if (real == k_ + 1) continue;
    const int c = disk_of(real);
    for (std::size_t r = 0; r < rows; ++r) {
      if (!known[at(c, r)]) return false;
    }
    auto& out = (*chunks)[static_cast<std::size_t>(real)];
    out.assign(chunk, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      std::copy(block[at(c, r)].begin(), block[at(c, r)].end(),
                out.begin() + static_cast<std::ptrdiff_t>(r * s));
    }
  }

  if (diag_erased) {
    // All of disks 0..p-1 are known; recompute the diagonal chunk.
    std::vector<std::uint8_t> diag(chunk, 0);
    for (int c = 0; c <= p_ - 1; ++c) {
      for (std::size_t r = 0; r < rows; ++r) {
        const int d = (c + static_cast<int>(r)) % p_;
        if (d == p_ - 1) continue;
        xor_into(diag.data() + static_cast<std::size_t>(d) * s, block[at(c, r)].data(), s);
      }
    }
    (*chunks)[static_cast<std::size_t>(k_ + 1)] = std::move(diag);
  }
  return true;
}

}  // namespace adc::store
