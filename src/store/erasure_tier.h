// Erasure-coded payload tier: stripe registration, chunk directory, and
// the degraded-read state machine.
//
// When a proxy fetches an object from the origin it *stripes* the payload:
// the RDP stripe (k data chunks + row/diagonal parity, see rdp_coding.h)
// is assigned to k + 2 peers chosen by rendezvous hashing over the startup
// membership, and each peer records "I hold chunk i of object o" in its
// chunk directory.  Chunk content is a pure function of (object, seed), so
// the directory stores presence and byte accounting, never bytes — any
// holder can rematerialize its chunk on demand (store::PayloadStore).
//
// After SWIM confirms a peer death, a request that would otherwise fall
// back to the origin instead starts a *degraded read*: chunk requests go
// to the surviving stripe peers, and once any k chunks are confirmed the
// object is reconstructible and the proxy answers the client directly,
// charging recovered bytes instead of origin bytes.  A shortfall (too few
// survivors, chunks evicted from directories) falls back to the origin.
//
// With proactive re-stripe repair enabled (ErasureConfig::restripe) the
// tier additionally *heals* after a death instead of running degraded
// forever: the first surviving peer of each affected stripe (the repair
// leader — deterministic, no coordination) offers the dead peer's chunk to
// a replacement owner chosen by rendezvous over the members outside the
// stripe, in byte-budgeted rounds driven by membership anti-entropy
// (src/store/restripe.h).  Once the replacement acks, the stripe is back
// at full k + 2 width and a *second* death no longer erases the two-loss
// safety margin.  A rejoin cancels repair work it moots and hands adopted
// chunks back to the original owner, so heal-then-rejoin converges to
// exactly one holder per chunk.  Repair off (the default) keeps the tier
// bit-identical to the repair-free build.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/message.h"
#include "sim/transport.h"
#include "store/payload.h"
#include "store/restripe.h"
#include "util/types.h"

namespace adc::store {

struct ErasureStats {
  std::uint64_t stripes_registered = 0;  // origin fetches striped by this node
  std::uint64_t chunks_stored = 0;       // kStripeStore records accepted
  std::uint64_t chunks_evicted = 0;      // directory-budget evictions
  std::uint64_t chunk_requests_sent = 0;
  std::uint64_t chunk_replies_served = 0;  // replies with the chunk present
  std::uint64_t chunk_replies_missing = 0;
  std::uint64_t chunk_bytes_sent = 0;  // bytes of chunks served to peers
  std::uint64_t degraded_started = 0;
  std::uint64_t degraded_recovered = 0;
  std::uint64_t degraded_failed = 0;   // shortfall -> origin fallback
  std::uint64_t recovered_bytes = 0;   // full object bytes answered degraded
  std::uint64_t chunk_requests_skipped = 0;  // survivors not asked because the
                                             // load probe preferred lighter peers

  // --- Proactive re-stripe repair (leaders and replacements) ------------
  std::uint64_t stripes_healed = 0;      // repair offers acked (leader side)
  std::uint64_t restripe_adopted = 0;    // offers accepted into the directory
  std::uint64_t restripe_handbacks = 0;  // rejoin hand-backs completed (foster
                                         // copy dropped after the owner acked)
};

class ErasureTier {
 public:
  /// `members` is the stripe universe (every proxy, sorted); stripes are
  /// deterministic in it, so all nodes must pass the same list.
  ErasureTier(NodeId self, PayloadStorePtr store, std::vector<NodeId> members);

  bool enabled() const noexcept { return enabled_; }
  int stripe_width() const noexcept { return store_->code().stripe_width(); }
  int data_chunks() const noexcept { return store_->code().k(); }
  const ErasureStats& stats() const noexcept { return stats_; }

  /// True once any member has been reported dead and not rejoined —
  /// the gate that keeps healthy runs free of recovery traffic.
  bool has_dead_peer() const noexcept { return !dead_.empty(); }

  /// The k+2 stripe peers of `object` in chunk-index order (rendezvous
  /// over the startup membership).  Empty when the membership is smaller
  /// than the stripe width.  Placement is *always* deterministic — every
  /// node must compute the same stripe without coordination — so link-load
  /// feedback only steers the recovery side (see set_load_probe), never
  /// where chunks live.
  std::vector<NodeId> stripe_peers(ObjectId object) const;

  /// Current owner per chunk index under the believed dead set: the
  /// original stripe peer while it is alive, else the replacement chosen
  /// by a secondary rendezvous over the alive members *outside* the
  /// stripe (greedy in index order, so no member is assigned two chunks
  /// of one object — the chunk directory is keyed by object).  An index
  /// with no eligible replacement maps to kInvalidNode.  Deterministic in
  /// (object, dead set): leaders, replacements and recovering readers all
  /// agree without coordination.
  std::vector<NodeId> effective_owners(ObjectId object) const;

  /// Egress-load oracle for degraded reads: returns the current transfer
  /// backlog (bytes queued at `peer`'s uplink; src/link supplies it in the
  /// sim).  With a probe installed, begin_recovery asks only the k - have
  /// lightest-loaded survivors plus one spare instead of every survivor,
  /// so recovery traffic lands on lightly loaded stripe peers.  With no
  /// probe (the default) recovery is bit-identical to the probe-free tier.
  using LoadProbe = std::function<std::uint64_t(NodeId peer)>;
  void set_load_probe(LoadProbe probe) { load_probe_ = std::move(probe); }
  bool has_load_probe() const noexcept { return static_cast<bool>(load_probe_); }

  /// Registers the stripe for a freshly origin-fetched object: one
  /// kStripeStore per remote peer, a local directory record when this node
  /// is itself a stripe member.  Deduplicated per registrar.  With repair
  /// enabled and peers believed dead, dead owners' chunks go to their
  /// effective replacements instead, so new stripes are born full-width.
  void stripe_object(sim::Transport& net, ObjectId object);

  /// Handles kStripeStore / kChunkRequest addressed to this node.
  void on_stripe_store(const sim::Message& msg);
  void on_chunk_request(sim::Transport& net, const sim::Message& msg);

  /// Starts a degraded read for the client request `msg` (which was about
  /// to be forwarded to the origin).  Returns false — and records nothing —
  /// when the surviving stripe cannot possibly yield k chunks; the caller
  /// then proceeds to the origin as before.
  bool begin_recovery(sim::Transport& net, const sim::Message& msg);

  enum class Outcome : std::uint8_t {
    kNone,       // reply did not match an in-flight recovery (stale)
    kPending,    // still waiting for chunks
    kRecovered,  // >= k chunks confirmed: answer the client degraded
    kFailed,     // shortfall: fall back to the origin
  };
  struct Resolution {
    Outcome outcome = Outcome::kNone;
    sim::Message request;            // the original client request
    std::uint64_t object_bytes = 0;  // full payload size on kRecovered
  };

  /// Feeds a kChunkReply; on kRecovered/kFailed the recovery record is
  /// retired and the original request returned to the caller.
  Resolution on_chunk_reply(const sim::Message& msg);

  /// Membership hooks (same events the proxies receive).  Recoveries
  /// in flight toward a peer that dies unconfirmed resolve via the
  /// client's request timeout, like any other lost message.  With repair
  /// enabled, a death makes this node scan its directory as prospective
  /// repair leader, and a rejoin cancels mooted work and queues hand-back
  /// offers for chunks adopted on the rejoiner's behalf.
  void handle_peer_dead(NodeId peer);
  void handle_peer_joined(NodeId peer);

  // --- Proactive re-stripe repair ---------------------------------------

  /// True when the config enables background repair (and the tier itself
  /// is enabled).
  bool restripe_enabled() const noexcept { return restripe_enabled_; }

  /// Repair work still queued or awaiting acks on this node — drives the
  /// membership layer's decision to keep anti-entropy rounds armed.
  bool restripe_pending() const noexcept { return repair_.pending(); }
  std::size_t restripe_queued() const noexcept { return repair_.queued(); }
  const RestripeStats& restripe_stats() const noexcept { return repair_.stats(); }

  /// One byte-budgeted repair round: sends a kRestripeOffer per popped
  /// work item.  Called from the membership layer's anti-entropy cadence.
  void restripe_round(sim::Transport& net);

  /// Handles kRestripeOffer / kRestripeAck addressed to this node.
  void on_restripe_offer(sim::Transport& net, const sim::Message& msg);
  void on_restripe_ack(const sim::Message& msg);

  /// Directory introspection for tests and result collection.
  bool holds_chunk(ObjectId object) const { return directory_.count(object) != 0; }
  std::uint64_t directory_bytes() const noexcept { return directory_bytes_; }
  std::size_t directory_entries() const noexcept { return directory_.size(); }

  /// Visits every directory entry as (object, chunk index, bytes) — the
  /// driver's post-run stripe census walks these across all proxies.
  void for_each_chunk(
      const std::function<void(ObjectId, int, std::uint64_t)>& fn) const;

 private:
  struct Recovery {
    sim::Message request;
    int have = 0;         // chunks confirmed (local + replied)
    int outstanding = 0;  // chunk requests not yet answered
  };

  bool record_chunk(ObjectId object, int index, std::uint64_t bytes);
  void drop_chunk(ObjectId object);

  /// Enqueues repair work for every dead-owned chunk index of `object`
  /// when this node is the stripe's repair leader (first alive member in
  /// chunk-index order).  Idempotent: re-enqueueing retargets in place.
  void enqueue_repair_for(ObjectId object);

  NodeId self_;
  PayloadStorePtr store_;
  std::vector<NodeId> members_;
  RestripePlanner repair_;
  bool enabled_;
  bool restripe_enabled_;
  LoadProbe load_probe_;

  std::unordered_set<NodeId> dead_;
  std::unordered_set<ObjectId> striped_;  // stripes this node registered

  // Chunk directory with LRU byte budget: list front = most recent.
  struct DirEntry {
    int index;
    std::uint64_t bytes;
    std::list<ObjectId>::iterator lru;
  };
  std::unordered_map<ObjectId, DirEntry> directory_;
  std::list<ObjectId> lru_;
  std::uint64_t directory_bytes_ = 0;

  std::unordered_map<RequestId, Recovery> recoveries_;
  ErasureStats stats_;
};

}  // namespace adc::store
