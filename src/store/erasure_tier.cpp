#include "store/erasure_tier.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace adc::store {
namespace {

/// Rendezvous score of (object, member): highest k+2 scores own the
/// stripe.  Seeded by the payload seed so every node computes the same
/// assignment without coordination.
std::uint64_t stripe_score(ObjectId object, NodeId member, std::uint64_t seed) {
  std::uint64_t state = seed ^ (object * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(member)) << 32);
  return util::splitmix64(state);
}

/// Secondary rendezvous for replacement owners: scores (object, chunk
/// index, member) so each lost index elects its own replacement, again
/// without coordination.  Independent of stripe_score — a member's rank
/// for adopting chunk i carries no information about its stripe rank.
std::uint64_t replacement_score(ObjectId object, int index, NodeId member, std::uint64_t seed) {
  std::uint64_t state = seed ^ (object * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(index + 1) * 0x517cc1b727220a95ULL) ^
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(member)) << 32);
  return util::splitmix64(state);
}

}  // namespace

ErasureTier::ErasureTier(NodeId self, PayloadStorePtr store, std::vector<NodeId> members)
    : self_(self),
      store_(std::move(store)),
      members_(std::move(members)),
      repair_(store_->config().erasure.repair_bytes_per_round,
              store_->config().erasure.repair_max_attempts) {
  std::sort(members_.begin(), members_.end());
  enabled_ = store_->config().erasure.enabled &&
             static_cast<int>(members_.size()) >= stripe_width();
  restripe_enabled_ = enabled_ && store_->config().erasure.restripe;
}

std::vector<NodeId> ErasureTier::stripe_peers(ObjectId object) const {
  if (!enabled_) return {};
  const std::size_t width = static_cast<std::size_t>(stripe_width());
  std::vector<std::pair<std::uint64_t, NodeId>> scored;
  scored.reserve(members_.size());
  for (const NodeId m : members_) {
    scored.emplace_back(stripe_score(object, m, store_->config().seed), m);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<NodeId> peers;
  peers.reserve(width);
  for (std::size_t i = 0; i < width; ++i) peers.push_back(scored[i].second);
  return peers;
}

std::vector<NodeId> ErasureTier::effective_owners(ObjectId object) const {
  std::vector<NodeId> owners = stripe_peers(object);
  if (owners.empty() || dead_.empty()) return owners;
  const std::unordered_set<NodeId> in_stripe(owners.begin(), owners.end());
  std::unordered_set<NodeId> taken;  // replacements already assigned (one chunk per node)
  for (std::size_t i = 0; i < owners.size(); ++i) {
    if (dead_.count(owners[i]) == 0) continue;
    NodeId best = kInvalidNode;
    std::uint64_t best_score = 0;
    for (const NodeId m : members_) {
      if (in_stripe.count(m) != 0 || dead_.count(m) != 0 || taken.count(m) != 0) continue;
      const std::uint64_t score =
          replacement_score(object, static_cast<int>(i), m, store_->config().seed);
      // members_ is sorted ascending, so the first holder of the max score
      // is also the smallest id — ties break deterministically for free.
      if (best == kInvalidNode || score > best_score) {
        best = m;
        best_score = score;
      }
    }
    owners[i] = best;
    if (best != kInvalidNode) taken.insert(best);
  }
  return owners;
}

void ErasureTier::stripe_object(sim::Transport& net, ObjectId object) {
  if (!enabled_ || striped_.count(object) != 0) return;
  const std::vector<NodeId> peers = stripe_peers(object);
  if (peers.empty()) return;
  striped_.insert(object);
  ++stats_.stripes_registered;
  // With repair on and deaths believed, dead owners' chunks go straight to
  // their replacements: stripes registered mid-outage are born full-width
  // instead of inheriting the hole.
  const std::vector<NodeId> owners =
      (restripe_enabled_ && !dead_.empty()) ? effective_owners(object) : peers;
  const std::uint64_t chunk = store_->chunk_size(object);
  for (std::size_t i = 0; i < owners.size(); ++i) {
    if (owners[i] == kInvalidNode) continue;
    if (owners[i] == self_) {
      record_chunk(object, static_cast<int>(i), chunk);
      continue;
    }
    sim::Message store_msg;
    store_msg.kind = sim::MessageKind::kStripeStore;
    store_msg.object = object;
    store_msg.sender = self_;
    store_msg.target = owners[i];
    store_msg.resolver = static_cast<NodeId>(i);  // chunk index
    store_msg.payload_bytes = chunk;
    net.send(store_msg);
  }
}

bool ErasureTier::record_chunk(ObjectId object, int index, std::uint64_t bytes) {
  auto it = directory_.find(object);
  if (it != directory_.end()) {
    // Re-registration (e.g. a new owner re-striped after churn): refresh.
    directory_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    directory_.erase(it);
  }
  const std::uint64_t budget = store_->config().erasure.directory_budget;
  if (budget > 0) {
    while (directory_bytes_ + bytes > budget && !lru_.empty()) {
      const ObjectId victim = lru_.back();
      lru_.pop_back();
      auto vit = directory_.find(victim);
      directory_bytes_ -= vit->second.bytes;
      directory_.erase(vit);
      ++stats_.chunks_evicted;
    }
    if (directory_bytes_ + bytes > budget) return false;  // bigger than the budget
  }
  lru_.push_front(object);
  directory_.emplace(object, DirEntry{index, bytes, lru_.begin()});
  directory_bytes_ += bytes;
  ++stats_.chunks_stored;
  return true;
}

void ErasureTier::drop_chunk(ObjectId object) {
  const auto it = directory_.find(object);
  if (it == directory_.end()) return;
  directory_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru);
  directory_.erase(it);
}

void ErasureTier::on_stripe_store(const sim::Message& msg) {
  if (!enabled_) return;
  record_chunk(msg.object, static_cast<int>(msg.resolver), msg.payload_bytes);
}

void ErasureTier::on_chunk_request(sim::Transport& net, const sim::Message& msg) {
  sim::Message reply;
  reply.kind = sim::MessageKind::kChunkReply;
  reply.request_id = msg.request_id;
  reply.object = msg.object;
  reply.sender = self_;
  reply.target = msg.sender;
  reply.client = msg.client;
  reply.hops = msg.hops;
  reply.resolver = msg.resolver;  // chunk index echoed back
  const auto it = enabled_ ? directory_.find(msg.object) : directory_.end();
  // The entry must cover the *requested* index: once repair re-homes
  // chunks, a node can hold a different chunk of the object than the one
  // the reader expects, and claiming it would corrupt the recovery count.
  // (Without repair the held index always matches the requested one.)
  if (it != directory_.end() && it->second.index == static_cast<int>(msg.resolver)) {
    // Touch the LRU: a chunk consulted by a recovery is worth keeping.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    reply.cached = true;
    reply.payload_bytes = it->second.bytes;
    ++stats_.chunk_replies_served;
    stats_.chunk_bytes_sent += it->second.bytes;
  } else {
    reply.cached = false;
    ++stats_.chunk_replies_missing;
  }
  net.send(reply);
}

bool ErasureTier::begin_recovery(sim::Transport& net, const sim::Message& msg) {
  if (!enabled_ || recoveries_.count(msg.request_id) != 0) return false;
  const std::vector<NodeId> peers = stripe_peers(msg.object);
  if (peers.empty()) return false;
  // With repair on, read from the healed layout: replacements answer for
  // the indices they adopted, so a stripe that lost two original members
  // but was re-homed in between still yields k chunks.
  const std::vector<NodeId> owners = restripe_enabled_ ? effective_owners(msg.object) : peers;

  Recovery rec;
  rec.request = msg;
  struct Candidate {
    std::size_t index;  // chunk index the peer holds
    NodeId peer;
    std::uint64_t load = 0;
  };
  std::vector<Candidate> ask;
  for (std::size_t i = 0; i < owners.size(); ++i) {
    if (owners[i] == kInvalidNode) continue;
    if (owners[i] == self_) {
      const auto it = directory_.find(msg.object);
      if (it != directory_.end() && it->second.index == static_cast<int>(i)) ++rec.have;
      continue;
    }
    if (dead_.count(owners[i]) != 0) continue;
    ask.push_back(Candidate{i, owners[i], 0});
  }
  const int k = store_->code().k();
  if (rec.have + static_cast<int>(ask.size()) < k) return false;

  // Placement is deterministic, recovery is free: with a load probe the
  // tier asks only the k - have lightest-loaded survivors plus one spare
  // (insurance against a directory eviction) instead of every survivor.
  // Without a probe it asks all survivors — the original behaviour,
  // bit for bit.
  if (load_probe_) {
    for (Candidate& c : ask) c.load = load_probe_(c.peer);
    std::stable_sort(ask.begin(), ask.end(), [](const Candidate& a, const Candidate& b) {
      return a.load != b.load ? a.load < b.load : a.peer < b.peer;
    });
    const auto want = static_cast<std::size_t>(k - rec.have) + 1;
    if (ask.size() > want) {
      stats_.chunk_requests_skipped += ask.size() - want;
      ask.resize(want);
    }
  }

  for (const Candidate& c : ask) {
    sim::Message req;
    req.kind = sim::MessageKind::kChunkRequest;
    req.request_id = msg.request_id;
    req.object = msg.object;
    req.sender = self_;
    req.target = c.peer;
    req.client = msg.client;
    req.hops = msg.hops;
    req.resolver = static_cast<NodeId>(c.index);  // chunk index held by that peer
    net.send(req);
    ++rec.outstanding;
    ++stats_.chunk_requests_sent;
  }
  ++stats_.degraded_started;
  recoveries_.emplace(msg.request_id, std::move(rec));
  return true;
}

ErasureTier::Resolution ErasureTier::on_chunk_reply(const sim::Message& msg) {
  const auto it = recoveries_.find(msg.request_id);
  if (it == recoveries_.end()) return {};
  Recovery& rec = it->second;
  --rec.outstanding;
  if (msg.cached) ++rec.have;

  const int k = store_->code().k();
  if (rec.have >= k) {
    Resolution out;
    out.outcome = Outcome::kRecovered;
    out.request = rec.request;
    out.object_bytes = store_->size_of(msg.object);
    ++stats_.degraded_recovered;
    stats_.recovered_bytes += out.object_bytes;
    recoveries_.erase(it);
    return out;
  }
  if (rec.have + rec.outstanding < k) {
    Resolution out;
    out.outcome = Outcome::kFailed;
    out.request = rec.request;
    ++stats_.degraded_failed;
    recoveries_.erase(it);
    return out;
  }
  Resolution out;
  out.outcome = Outcome::kPending;
  return out;
}

void ErasureTier::enqueue_repair_for(ObjectId object) {
  const std::vector<NodeId> peers = stripe_peers(object);
  if (peers.empty()) return;
  // The repair leader is the first *alive* member of the original stripe
  // in chunk-index order — every survivor computes the same leader from
  // its own believed dead set, so exactly one node drives each stripe's
  // repair (modulo transient disagreement, which idempotent offers absorb).
  NodeId leader = kInvalidNode;
  for (const NodeId p : peers) {
    if (dead_.count(p) == 0) {
      leader = p;
      break;
    }
  }
  if (leader != self_) return;
  const std::vector<NodeId> owners = effective_owners(object);
  const std::uint64_t chunk = store_->chunk_size(object);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (dead_.count(peers[i]) == 0) continue;  // original owner still alive
    if (owners[i] == kInvalidNode) continue;   // no eligible replacement
    RepairItem item;
    item.object = object;
    item.index = static_cast<int>(i);
    item.target = owners[i];
    item.dead_owner = peers[i];
    item.bytes = chunk;
    repair_.enqueue(item);
  }
}

void ErasureTier::restripe_round(sim::Transport& net) {
  if (!restripe_enabled_) return;
  repair_.next_round([&](const RepairItem& item) {
    sim::Message offer;
    offer.kind = sim::MessageKind::kRestripeOffer;
    offer.object = item.object;
    offer.sender = self_;
    offer.target = item.target;
    offer.resolver = static_cast<NodeId>(item.index);  // chunk index to adopt
    offer.payload_bytes = item.bytes;
    net.send(offer);
  });
}

void ErasureTier::on_restripe_offer(sim::Transport& net, const sim::Message& msg) {
  if (!enabled_) return;
  if (record_chunk(msg.object, static_cast<int>(msg.resolver), msg.payload_bytes)) {
    ++stats_.restripe_adopted;
  }
  // Ack even when the directory budget refused the chunk: re-offering the
  // same oversized chunk every round until abandonment helps nobody, and
  // the post-run stripe census reports reality either way.
  sim::Message ack;
  ack.kind = sim::MessageKind::kRestripeAck;
  ack.object = msg.object;
  ack.sender = self_;
  ack.target = msg.sender;
  ack.resolver = msg.resolver;  // chunk index echoed back
  net.send(ack);
}

void ErasureTier::on_restripe_ack(const sim::Message& msg) {
  if (!restripe_enabled_) return;
  RepairItem item;
  if (!repair_.acked(msg.object, static_cast<int>(msg.resolver), &item)) return;
  if (item.hand_back) {
    // The original owner holds its chunk again; drop the foster copy
    // (unless the slot was since reused for a different index).
    const auto it = directory_.find(msg.object);
    if (it != directory_.end() && it->second.index == item.index) drop_chunk(msg.object);
    ++stats_.restripe_handbacks;
  } else {
    ++stats_.stripes_healed;
  }
}

void ErasureTier::handle_peer_dead(NodeId peer) {
  dead_.insert(peer);
  if (!restripe_enabled_) return;
  // Prospective-leader scan over the local directory, in LRU order (a
  // std::list, so the scan — and therefore the repair queue — is
  // deterministic).  Every dead-owned index of every held object is
  // (re-)enqueued: a second death that reassigns replacements simply
  // retargets the queued item.
  for (const ObjectId object : lru_) enqueue_repair_for(object);
}

void ErasureTier::handle_peer_joined(NodeId peer) {
  dead_.erase(peer);
  if (!restripe_enabled_) return;
  // Repair work created by this peer's death is moot — it holds its
  // chunks again (its directory survived, only our belief changed).
  repair_.cancel_for_dead_owner(peer);
  // Hand adopted chunks back: any directory entry whose index belongs to
  // the rejoiner in the *original* stripe is a foster copy we took on its
  // behalf — offer it back and drop ours once the owner acks.
  for (const ObjectId object : lru_) {
    const auto it = directory_.find(object);
    const int idx = it->second.index;
    const std::vector<NodeId> peers = stripe_peers(object);
    if (idx < 0 || static_cast<std::size_t>(idx) >= peers.size()) continue;
    if (peers[static_cast<std::size_t>(idx)] != peer) continue;
    RepairItem item;
    item.object = object;
    item.index = idx;
    item.target = peer;
    item.bytes = it->second.bytes;
    item.hand_back = true;
    repair_.enqueue(item);
  }
}

void ErasureTier::for_each_chunk(
    const std::function<void(ObjectId, int, std::uint64_t)>& fn) const {
  for (const ObjectId object : lru_) {
    const auto it = directory_.find(object);
    fn(object, it->second.index, it->second.bytes);
  }
}

}  // namespace adc::store
