#include "store/erasure_tier.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace adc::store {
namespace {

/// Rendezvous score of (object, member): highest k+2 scores own the
/// stripe.  Seeded by the payload seed so every node computes the same
/// assignment without coordination.
std::uint64_t stripe_score(ObjectId object, NodeId member, std::uint64_t seed) {
  std::uint64_t state = seed ^ (object * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(member)) << 32);
  return util::splitmix64(state);
}

}  // namespace

ErasureTier::ErasureTier(NodeId self, PayloadStorePtr store, std::vector<NodeId> members)
    : self_(self), store_(std::move(store)), members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  enabled_ = store_->config().erasure.enabled &&
             static_cast<int>(members_.size()) >= stripe_width();
}

std::vector<NodeId> ErasureTier::stripe_peers(ObjectId object) const {
  if (!enabled_) return {};
  const std::size_t width = static_cast<std::size_t>(stripe_width());
  std::vector<std::pair<std::uint64_t, NodeId>> scored;
  scored.reserve(members_.size());
  for (const NodeId m : members_) {
    scored.emplace_back(stripe_score(object, m, store_->config().seed), m);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<NodeId> peers;
  peers.reserve(width);
  for (std::size_t i = 0; i < width; ++i) peers.push_back(scored[i].second);
  return peers;
}

void ErasureTier::stripe_object(sim::Transport& net, ObjectId object) {
  if (!enabled_ || striped_.count(object) != 0) return;
  const std::vector<NodeId> peers = stripe_peers(object);
  if (peers.empty()) return;
  striped_.insert(object);
  ++stats_.stripes_registered;
  const std::uint64_t chunk = store_->chunk_size(object);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i] == self_) {
      record_chunk(object, static_cast<int>(i), chunk);
      continue;
    }
    sim::Message store_msg;
    store_msg.kind = sim::MessageKind::kStripeStore;
    store_msg.object = object;
    store_msg.sender = self_;
    store_msg.target = peers[i];
    store_msg.resolver = static_cast<NodeId>(i);  // chunk index
    store_msg.payload_bytes = chunk;
    net.send(store_msg);
  }
}

void ErasureTier::record_chunk(ObjectId object, int index, std::uint64_t bytes) {
  auto it = directory_.find(object);
  if (it != directory_.end()) {
    // Re-registration (e.g. a new owner re-striped after churn): refresh.
    directory_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    directory_.erase(it);
  }
  const std::uint64_t budget = store_->config().erasure.directory_budget;
  if (budget > 0) {
    while (directory_bytes_ + bytes > budget && !lru_.empty()) {
      const ObjectId victim = lru_.back();
      lru_.pop_back();
      auto vit = directory_.find(victim);
      directory_bytes_ -= vit->second.bytes;
      directory_.erase(vit);
      ++stats_.chunks_evicted;
    }
    if (directory_bytes_ + bytes > budget) return;  // bigger than the budget
  }
  lru_.push_front(object);
  directory_.emplace(object, DirEntry{index, bytes, lru_.begin()});
  directory_bytes_ += bytes;
  ++stats_.chunks_stored;
}

void ErasureTier::on_stripe_store(const sim::Message& msg) {
  if (!enabled_) return;
  record_chunk(msg.object, static_cast<int>(msg.resolver), msg.payload_bytes);
}

void ErasureTier::on_chunk_request(sim::Transport& net, const sim::Message& msg) {
  sim::Message reply;
  reply.kind = sim::MessageKind::kChunkReply;
  reply.request_id = msg.request_id;
  reply.object = msg.object;
  reply.sender = self_;
  reply.target = msg.sender;
  reply.client = msg.client;
  reply.hops = msg.hops;
  reply.resolver = msg.resolver;  // chunk index echoed back
  const auto it = enabled_ ? directory_.find(msg.object) : directory_.end();
  if (it != directory_.end()) {
    // Touch the LRU: a chunk consulted by a recovery is worth keeping.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    reply.cached = true;
    reply.payload_bytes = it->second.bytes;
    ++stats_.chunk_replies_served;
    stats_.chunk_bytes_sent += it->second.bytes;
  } else {
    reply.cached = false;
    ++stats_.chunk_replies_missing;
  }
  net.send(reply);
}

bool ErasureTier::begin_recovery(sim::Transport& net, const sim::Message& msg) {
  if (!enabled_ || recoveries_.count(msg.request_id) != 0) return false;
  const std::vector<NodeId> peers = stripe_peers(msg.object);
  if (peers.empty()) return false;

  Recovery rec;
  rec.request = msg;
  struct Candidate {
    std::size_t index;  // chunk index the peer holds
    NodeId peer;
    std::uint64_t load = 0;
  };
  std::vector<Candidate> ask;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (peers[i] == self_) {
      if (holds_chunk(msg.object)) ++rec.have;
      continue;
    }
    if (dead_.count(peers[i]) != 0) continue;
    ask.push_back(Candidate{i, peers[i], 0});
  }
  const int k = store_->code().k();
  if (rec.have + static_cast<int>(ask.size()) < k) return false;

  // Placement is deterministic, recovery is free: with a load probe the
  // tier asks only the k - have lightest-loaded survivors plus one spare
  // (insurance against a directory eviction) instead of every survivor.
  // Without a probe it asks all survivors — the original behaviour,
  // bit for bit.
  if (load_probe_) {
    for (Candidate& c : ask) c.load = load_probe_(c.peer);
    std::stable_sort(ask.begin(), ask.end(), [](const Candidate& a, const Candidate& b) {
      return a.load != b.load ? a.load < b.load : a.peer < b.peer;
    });
    const auto want = static_cast<std::size_t>(k - rec.have) + 1;
    if (ask.size() > want) {
      stats_.chunk_requests_skipped += ask.size() - want;
      ask.resize(want);
    }
  }

  for (const Candidate& c : ask) {
    sim::Message req;
    req.kind = sim::MessageKind::kChunkRequest;
    req.request_id = msg.request_id;
    req.object = msg.object;
    req.sender = self_;
    req.target = c.peer;
    req.client = msg.client;
    req.hops = msg.hops;
    req.resolver = static_cast<NodeId>(c.index);  // chunk index held by that peer
    net.send(req);
    ++rec.outstanding;
    ++stats_.chunk_requests_sent;
  }
  ++stats_.degraded_started;
  recoveries_.emplace(msg.request_id, std::move(rec));
  return true;
}

ErasureTier::Resolution ErasureTier::on_chunk_reply(const sim::Message& msg) {
  const auto it = recoveries_.find(msg.request_id);
  if (it == recoveries_.end()) return {};
  Recovery& rec = it->second;
  --rec.outstanding;
  if (msg.cached) ++rec.have;

  const int k = store_->code().k();
  if (rec.have >= k) {
    Resolution out;
    out.outcome = Outcome::kRecovered;
    out.request = rec.request;
    out.object_bytes = store_->size_of(msg.object);
    ++stats_.degraded_recovered;
    stats_.recovered_bytes += out.object_bytes;
    recoveries_.erase(it);
    return out;
  }
  if (rec.have + rec.outstanding < k) {
    Resolution out;
    out.outcome = Outcome::kFailed;
    out.request = rec.request;
    ++stats_.degraded_failed;
    recoveries_.erase(it);
    return out;
  }
  Resolution out;
  out.outcome = Outcome::kPending;
  return out;
}

void ErasureTier::handle_peer_dead(NodeId peer) { dead_.insert(peer); }

void ErasureTier::handle_peer_joined(NodeId peer) { dead_.erase(peer); }

}  // namespace adc::store
