// Proactive re-stripe repair: the work queue behind the erasure tier's
// background healing.
//
// A confirmed death leaves every stripe the dead peer belonged to at
// width k + 1 — one more death (or a single directory eviction) and the
// object is no longer reconstructible.  The repair pass closes that
// window: for each affected stripe the first surviving peer in stripe
// order (the *repair leader*, deterministic without coordination) offers
// the lost chunk to a replacement owner chosen by rendezvous over the
// members outside the stripe, and the replacement records it, restoring
// the stripe to full k + 2 width.
//
// This file holds the transport-free half of that machinery: a FIFO of
// repair work items drained in byte-budgeted rounds, with per-item retry
// (an offer or its ack may be lost) and abandonment (an unreachable
// replacement must not keep the scheduler armed forever).  The
// ErasureTier owns a planner and turns popped items into kRestripeOffer
// messages; membership's anti-entropy rounds decide *when* a round runs,
// the planner decides *what* it sends — mirroring the RepairScheduler /
// agent split one layer up.
//
// Rejoin reconciliation rides the same queue: when a dead peer returns,
// survivors holding chunks adopted on its behalf offer them back
// (`hand_back` items) and drop their foster copy once the original owner
// acks, so a heal-then-rejoin ends with exactly one holder per chunk.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "util/types.h"

namespace adc::store {

struct RestripeStats {
  std::uint64_t items_enqueued = 0;
  std::uint64_t items_cancelled = 0;  // mooted by a rejoin before completing
  std::uint64_t items_abandoned = 0;  // retries exhausted
  std::uint64_t offers_sent = 0;
  std::uint64_t retries = 0;          // offers re-sent after an unacked round
  std::uint64_t rounds = 0;           // rounds that sent at least one offer
  std::uint64_t repair_bytes = 0;     // chunk bytes offered, budget-charged
  std::uint64_t round_bytes_max = 0;  // largest single round (budget audit)
};

/// One pending re-home: chunk `index` of `object` (sized `bytes`) should
/// live at `target`.  `dead_owner` is the peer whose death created the
/// item (kInvalidNode for rejoin hand-backs); `hand_back` items drop the
/// local foster copy when acked instead of counting a healed stripe.
struct RepairItem {
  ObjectId object = 0;
  int index = 0;
  NodeId target = kInvalidNode;
  NodeId dead_owner = kInvalidNode;
  std::uint64_t bytes = 0;
  bool hand_back = false;
  int attempts = 0;
};

/// FIFO repair queue with byte-budgeted rounds and bounded retry.  Items
/// are keyed by (object, index): re-enqueueing refreshes the target (a
/// later death may reassign the replacement) without duplicating work.
class RestripePlanner {
 public:
  RestripePlanner(std::uint64_t bytes_per_round, int max_attempts)
      : bytes_per_round_(bytes_per_round), max_attempts_(max_attempts < 1 ? 1 : max_attempts) {}

  /// Queues (or retargets) a work item.  Acked or unknown keys enqueue
  /// fresh; an item already queued for the same chunk is updated in place.
  void enqueue(const RepairItem& item);

  /// Drops queued items created by `dead_owner`'s death — its rejoin
  /// makes them moot (the original owner holds the chunk again).
  void cancel_for_dead_owner(NodeId dead_owner);

  /// One round: pops items in FIFO order while the byte budget lasts
  /// (at least one item always goes out, so a chunk larger than the
  /// budget cannot wedge the queue) and hands each to `offer`.  Items
  /// stay queued awaiting their ack — re-offered next round, abandoned
  /// after max_attempts.  Returns the bytes offered this round.
  std::uint64_t next_round(const std::function<void(const RepairItem&)>& offer);

  /// Retires the item for (object, index); returns true and copies it to
  /// `*out` (when non-null) if one was in flight.
  bool acked(ObjectId object, int index, RepairItem* out = nullptr);

  bool pending() const noexcept { return !queue_.empty(); }
  std::size_t queued() const noexcept { return queue_.size(); }
  const RestripeStats& stats() const noexcept { return stats_; }

 private:
  static std::uint64_t key(ObjectId object, int index) noexcept {
    return object * 131ULL + static_cast<std::uint64_t>(index);
  }

  std::uint64_t bytes_per_round_;
  int max_attempts_;
  std::list<RepairItem> queue_;  // FIFO, un-acked work; offered items cycle to the back
  std::unordered_map<std::uint64_t, std::list<RepairItem>::iterator> by_key_;
  RestripeStats stats_;
};

}  // namespace adc::store
