#include "store/restripe.h"

namespace adc::store {

void RestripePlanner::enqueue(const RepairItem& item) {
  const std::uint64_t k = key(item.object, item.index);
  const auto it = by_key_.find(k);
  if (it != by_key_.end()) {
    // Already queued: refresh the target (a later death may have moved
    // the replacement) but keep the queue position and attempt count.
    it->second->target = item.target;
    it->second->dead_owner = item.dead_owner;
    it->second->hand_back = item.hand_back;
    return;
  }
  queue_.push_back(item);
  by_key_.emplace(k, std::prev(queue_.end()));
  ++stats_.items_enqueued;
}

void RestripePlanner::cancel_for_dead_owner(NodeId dead_owner) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->dead_owner == dead_owner) {
      by_key_.erase(key(it->object, it->index));
      it = queue_.erase(it);
      ++stats_.items_cancelled;
    } else {
      ++it;
    }
  }
}

std::uint64_t RestripePlanner::next_round(const std::function<void(const RepairItem&)>& offer) {
  std::uint64_t sent_bytes = 0;
  std::size_t sent = 0;
  // Walk at most the items present when the round started: offered items
  // cycle to the back and must not be re-visited within one round.
  std::size_t budget_items = queue_.size();
  while (budget_items-- > 0 && !queue_.empty()) {
    auto it = queue_.begin();
    if (bytes_per_round_ > 0 && sent > 0 && sent_bytes + it->bytes > bytes_per_round_) break;
    if (it->attempts >= max_attempts_) {
      by_key_.erase(key(it->object, it->index));
      queue_.erase(it);
      ++stats_.items_abandoned;
      ++budget_items;  // abandoning costs no budget; keep scanning
      continue;
    }
    if (it->attempts > 0) ++stats_.retries;
    ++it->attempts;
    sent_bytes += it->bytes;
    ++sent;
    ++stats_.offers_sent;
    stats_.repair_bytes += it->bytes;
    offer(*it);
    queue_.splice(queue_.end(), queue_, it);  // await the ack at the back
  }
  if (sent > 0) {
    ++stats_.rounds;
    if (sent_bytes > stats_.round_bytes_max) stats_.round_bytes_max = sent_bytes;
  }
  return sent_bytes;
}

bool RestripePlanner::acked(ObjectId object, int index, RepairItem* out) {
  const auto it = by_key_.find(key(object, index));
  if (it == by_key_.end()) return false;
  if (out != nullptr) *out = *it->second;
  queue_.erase(it->second);
  by_key_.erase(it);
  return true;
}

}  // namespace adc::store
