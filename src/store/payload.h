// Deterministic synthetic object payloads.
//
// The paper simulates URL handling only — messages carry object ids and the
// scheme comparison is in requests.  This module adds the byte dimension:
// every ObjectId gets a *size* drawn from a Polygraph-style heavy-tailed
// distribution (lognormal body, Pareto tail) and a *content pattern*, both
// pure functions of (object, seed) via SplitMix64 streams.  No shared RNG
// state is consumed, so enabling or disabling the store cannot perturb any
// other stochastic choice — runs with the store disabled stay bit-identical
// to builds that never had it.
//
// Bodies are never materialized in the simulator; the live daemon fills a
// bounded sample of the pattern into each frame and the receiver re-derives
// the expected bytes from its own (identical) seed and verifies them, plus
// a checksum over the transmitted sample.  Chunks of the erasure tier
// (src/store/rdp_coding.h) are slices of the same pattern, so any node can
// regenerate, serve, or verify any chunk without ever having stored it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "store/rdp_coding.h"
#include "util/types.h"

namespace adc::store {

/// Erasure-tier knobs (consumed by store::ErasureTier).
struct ErasureConfig {
  bool enabled = false;

  /// Data chunks per stripe (RDP's k); the stripe spans k + 2 peers (k data
  /// chunks plus row and diagonal parity).  Clamped to >= 2: a one-chunk
  /// stripe would let a proxy answer a degraded read from its own chunk,
  /// which is just replication.
  int data_chunks = 3;

  /// Byte budget for the per-proxy chunk directory; oldest chunks are
  /// forgotten beyond it.  0 = unlimited.
  std::uint64_t directory_budget = 0;

  /// Proactive re-stripe repair (src/store/restripe.h): after a confirmed
  /// death, surviving stripe leaders re-home the lost chunk onto the
  /// rendezvous-chosen replacement during anti-entropy rounds, restoring
  /// every affected stripe to full k + 2 width.  Off (the default) the
  /// tier behaves exactly like the repair-free build.
  bool restripe = false;

  /// Chunk bytes a repair leader may offer per anti-entropy round
  /// (0 = unlimited).  Bounds background repair traffic so it never
  /// starves foreground transfers; one oversized chunk still goes out
  /// alone rather than wedging the queue.
  std::uint64_t repair_bytes_per_round = 256 * 1024;

  /// Offers retried this many times (one per round) before the work item
  /// is abandoned — an unreachable replacement must not keep the repair
  /// scheduler armed forever.
  int repair_max_attempts = 5;
};

/// Payload universe parameters.  `seed` must be identical cluster-wide —
/// sizes, patterns and checksums are derived from it, and a mismatched node
/// would flag every received body as corrupt.
struct PayloadConfig {
  bool enabled = false;

  std::uint64_t seed = 97;

  /// Size clamp in bytes.
  std::uint64_t min_bytes = 128;
  std::uint64_t max_bytes = 256 * 1024;

  /// Lognormal body: exp(N(log_mean, log_sigma)) — Polygraph's "most
  /// objects are small" component (median ~4.9 KB with the defaults).
  double log_mean = 8.5;
  double log_sigma = 1.2;

  /// Pareto tail mix: with probability tail_prob the size is drawn from a
  /// Pareto(tail_alpha) starting at the lognormal's ~84th percentile, which
  /// produces the heavy tail that makes byte hit rate diverge from request
  /// hit rate.
  double tail_prob = 0.07;
  double tail_alpha = 1.3;

  /// Per-proxy cache byte budget.  0 keeps the count-only capacity from the
  /// paper's configuration; > 0 additionally bounds total cached bytes
  /// (size-aware policies evict until both constraints hold).
  std::uint64_t byte_budget = 0;

  ErasureConfig erasure;
};

/// Maximum body bytes serialized per frame (a sample of the pattern; the
/// remainder is regenerable).  Kept small so the wire frame stays bounded.
inline constexpr std::size_t kMaxBodySample = 256;

/// Derives sizes, patterns, chunks and checksums for the payload universe.
/// Pure per (object, seed); memoizes sizes.  NOT thread-safe — each
/// Simulator run and each daemon owns its own instance.
class PayloadStore {
 public:
  explicit PayloadStore(const PayloadConfig& config);

  const PayloadConfig& config() const noexcept { return config_; }
  const RdpCode& code() const noexcept { return code_; }

  /// Heavy-tailed deterministic size, clamped to [min_bytes, max_bytes].
  std::uint64_t size_of(ObjectId object) const;

  /// Stripe chunk size: ceil(size / k).  Every chunk (data and parity) is
  /// accounted at this size.
  std::uint64_t chunk_size(ObjectId object) const;

  /// Fills `out` with the first min(size_of(object), max_len) pattern
  /// bytes; returns the number written.
  std::size_t fill_body(ObjectId object, std::uint8_t* out, std::size_t max_len) const;

  /// Fills `out` with up to max_len bytes of stripe chunk `index` (data
  /// chunks 0..k-1 are pattern slices; k and k+1 are RDP row/diagonal
  /// parity computed over the real slices).  Returns bytes written.
  std::size_t fill_chunk(ObjectId object, int index, std::uint8_t* out,
                         std::size_t max_len) const;

  /// Checksum over a transmitted body sample: FNV-1a of the bytes mixed
  /// with the total payload size and the object id, so truncation, bit
  /// flips and id confusion all surface as mismatches.
  std::uint64_t checksum(ObjectId object, std::uint64_t payload_bytes,
                         const std::uint8_t* body, std::size_t body_len) const;

  /// Verifies a received body sample against the locally regenerated
  /// pattern and the sender's checksum.
  bool verify_body(ObjectId object, std::uint64_t payload_bytes, const std::uint8_t* body,
                   std::size_t body_len, std::uint64_t claimed_checksum) const;

  /// Same for a stripe chunk sample.
  bool verify_chunk(ObjectId object, int index, std::uint64_t payload_bytes,
                    const std::uint8_t* body, std::size_t body_len,
                    std::uint64_t claimed_checksum) const;

  /// Rebuilds chunk `lost_index` by RDP equation peeling over the other
  /// k + 1 chunks (the re-stripe repair path: the leader reconstructs the
  /// dead peer's chunk instead of re-deriving it, so the erasure math is
  /// exercised on every live repair and verifiable against fill_chunk).
  /// Writes up to max_len bytes of the reconstructed chunk; returns bytes
  /// written, or 0 when the index is out of range or peeling fails.
  std::size_t reconstruct_chunk(ObjectId object, int lost_index, std::uint8_t* out,
                                std::size_t max_len) const;

 private:
  std::uint64_t compute_size(ObjectId object) const;

  PayloadConfig config_;
  RdpCode code_;
  mutable std::unordered_map<ObjectId, std::uint64_t> size_memo_;
};

using PayloadStorePtr = std::shared_ptr<const PayloadStore>;

/// Shared per-run context handed to every agent via enable_store(): the
/// store itself plus the proxy membership the erasure stripes span.
struct StoreContext {
  PayloadStorePtr store;
  std::vector<NodeId> proxies;  // sorted stripe membership at startup
};

}  // namespace adc::store
