// Row-Diagonal Parity erasure coding (Corbett et al., FAST'04).
//
// RDP protects p + 1 "disks" (here: stripe chunks) against any double
// erasure using XOR only: disks 0..p-2 hold data, disk p-1 holds row
// parity, disk p holds diagonal parity, where p is prime.  Each disk is
// split into p-1 blocks; row r of the array satisfies
//
//   XOR_{c=0..p-1} block(c, r) = 0                       (row equations)
//
// and diagonal d in 0..p-2 satisfies
//
//   XOR over { block(c, r) : (c + r) mod p == d, c <= p-1 } = diag[d]
//
// with diagonal p-1 intentionally unstored (the "missing diagonal" that
// makes the reconstruction chain terminate).  We support k <= p-1 real
// data chunks by shortening: disks k..p-2 are virtual all-zero columns.
//
// Reconstruction is implemented as equation peeling — repeatedly solve any
// row/diagonal equation with exactly one unknown block — which recovers
// every <= 2-erasure combination the published chained algorithm does and
// is easy to audit; tests exercise all erasure pairs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adc::store {

class RdpCode {
 public:
  /// `data_chunks` = k (clamped to >= 2); p becomes the smallest prime
  /// >= k + 1.
  explicit RdpCode(int data_chunks);

  int k() const noexcept { return k_; }
  int p() const noexcept { return p_; }

  /// Total real chunks in a stripe: k data + row parity + diagonal parity.
  int stripe_width() const noexcept { return k_ + 2; }

  /// Chunks must be sized in multiples of (p - 1) blocks; this rounds a raw
  /// chunk length up to the next encodable size (callers zero-pad).
  std::size_t padded_chunk_size(std::size_t raw_chunk_size) const noexcept;

  /// Computes row and diagonal parity over `data` (exactly k chunks, all of
  /// the same padded size).  `row` and `diag` are resized to match.
  void encode(const std::vector<std::vector<std::uint8_t>>& data,
              std::vector<std::uint8_t>* row, std::vector<std::uint8_t>* diag) const;

  /// Rebuilds erased chunks in place.  `chunks` holds stripe_width()
  /// entries — indices 0..k-1 data, k row parity, k+1 diagonal parity — and
  /// an empty vector marks an erasure.  Returns false when more than two
  /// chunks are erased (or sizes disagree); on success every entry is
  /// filled.
  bool reconstruct(std::vector<std::vector<std::uint8_t>>* chunks) const;

 private:
  int k_;
  int p_;
};

}  // namespace adc::store
