#include "store/payload.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/rng.h"

namespace adc::store {
namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr double kTwoPi = 6.283185307179586476925286766559;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* bytes, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix(std::uint64_t value) {
  std::uint64_t state = value;
  return util::splitmix64(state);
}

/// Writes `n` pattern bytes starting at pattern offset `from` for the
/// SplitMix64 stream keyed by `key`.  Byte j of the stream is byte (j % 8)
/// of the (j / 8)-th draw, so any aligned or unaligned slice is
/// regenerable without materializing the prefix.
void fill_pattern(std::uint64_t key, std::uint64_t from, std::uint8_t* out, std::size_t n) {
  std::uint64_t pos = from;
  std::size_t written = 0;
  while (written < n) {
    std::uint64_t state = key + (pos / 8) * kGolden;
    const std::uint64_t word = util::splitmix64(state);
    const std::size_t offset = static_cast<std::size_t>(pos % 8);
    const std::size_t take = std::min<std::size_t>(8 - offset, n - written);
    for (std::size_t b = 0; b < take; ++b) {
      out[written + b] = static_cast<std::uint8_t>(word >> (8 * (offset + b)));
    }
    written += take;
    pos += take;
  }
}

}  // namespace

PayloadStore::PayloadStore(const PayloadConfig& config)
    : config_(config), code_(config.erasure.data_chunks) {
  config_.erasure.data_chunks = code_.k();  // reflect the >= 2 clamp
  if (config_.min_bytes == 0) config_.min_bytes = 1;
  if (config_.max_bytes < config_.min_bytes) config_.max_bytes = config_.min_bytes;
}

std::uint64_t PayloadStore::compute_size(ObjectId object) const {
  // Three independent draws from a stream keyed by (object, seed); no
  // shared RNG is touched, so the store never perturbs protocol choices.
  std::uint64_t state = config_.seed ^ (object * kGolden);
  const std::uint64_t u_tail = util::splitmix64(state);
  const std::uint64_t u_a = util::splitmix64(state);
  const std::uint64_t u_b = util::splitmix64(state);
  const double inv = 1.0 / 18446744073709551616.0;  // 2^-64
  const double ua = (static_cast<double>(u_a) + 0.5) * inv;  // (0, 1)
  const double ub = (static_cast<double>(u_b) + 0.5) * inv;

  double size;
  if (static_cast<double>(u_tail) * inv < config_.tail_prob) {
    // Pareto tail anchored at the lognormal's ~84th percentile.
    const double x_m = std::exp(config_.log_mean + config_.log_sigma);
    size = x_m * std::pow(1.0 - ua, -1.0 / config_.tail_alpha);
  } else {
    // Lognormal body via Box-Muller.
    const double z = std::sqrt(-2.0 * std::log(ua)) * std::cos(kTwoPi * ub);
    size = std::exp(config_.log_mean + config_.log_sigma * z);
  }
  const double clamped = std::min(static_cast<double>(config_.max_bytes),
                                  std::max(static_cast<double>(config_.min_bytes), size));
  return static_cast<std::uint64_t>(clamped);
}

std::uint64_t PayloadStore::size_of(ObjectId object) const {
  const auto it = size_memo_.find(object);
  if (it != size_memo_.end()) return it->second;
  const std::uint64_t size = compute_size(object);
  size_memo_.emplace(object, size);
  return size;
}

std::uint64_t PayloadStore::chunk_size(ObjectId object) const {
  const std::uint64_t k = static_cast<std::uint64_t>(code_.k());
  return (size_of(object) + k - 1) / k;
}

std::size_t PayloadStore::fill_body(ObjectId object, std::uint8_t* out,
                                    std::size_t max_len) const {
  const std::uint64_t size = size_of(object);
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(size, static_cast<std::uint64_t>(max_len)));
  fill_pattern(config_.seed ^ mix(object), 0, out, n);
  return n;
}

std::size_t PayloadStore::fill_chunk(ObjectId object, int index, std::uint8_t* out,
                                     std::size_t max_len) const {
  const std::uint64_t size = size_of(object);
  const std::uint64_t chunk = chunk_size(object);
  const std::uint64_t key = config_.seed ^ mix(object);
  const int k = code_.k();
  if (index < 0 || index >= code_.stripe_width() || chunk == 0) return 0;

  if (index < k) {
    // Data chunk: a slice of the pattern, zero-padded past the object end.
    const std::uint64_t from = static_cast<std::uint64_t>(index) * chunk;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk, static_cast<std::uint64_t>(max_len)));
    const std::uint64_t real =
        from >= size ? 0 : std::min<std::uint64_t>(size - from, want);
    fill_pattern(key, from, out, static_cast<std::size_t>(real));
    std::memset(out + real, 0, want - static_cast<std::size_t>(real));
    return want;
  }

  // Parity chunk: regenerate all data slices (padded to an encodable
  // length) and run the real RDP encode — the live path serves genuine
  // parity bytes, not a placeholder.
  const std::size_t padded = code_.padded_chunk_size(static_cast<std::size_t>(chunk));
  std::vector<std::vector<std::uint8_t>> data(
      static_cast<std::size_t>(k), std::vector<std::uint8_t>(padded, 0));
  for (int c = 0; c < k; ++c) {
    const std::uint64_t from = static_cast<std::uint64_t>(c) * chunk;
    const std::uint64_t real = from >= size ? 0 : std::min<std::uint64_t>(size - from, chunk);
    fill_pattern(key, from, data[static_cast<std::size_t>(c)].data(),
                 static_cast<std::size_t>(real));
  }
  std::vector<std::uint8_t> row;
  std::vector<std::uint8_t> diag;
  code_.encode(data, &row, &diag);
  const auto& parity = index == k ? row : diag;
  const std::size_t n = std::min(parity.size(), max_len);
  std::copy(parity.begin(), parity.begin() + static_cast<std::ptrdiff_t>(n), out);
  return n;
}

std::size_t PayloadStore::reconstruct_chunk(ObjectId object, int lost_index, std::uint8_t* out,
                                            std::size_t max_len) const {
  const int width = code_.stripe_width();
  const std::uint64_t chunk = chunk_size(object);
  if (lost_index < 0 || lost_index >= width || chunk == 0) return 0;
  const std::size_t padded = code_.padded_chunk_size(static_cast<std::size_t>(chunk));
  std::vector<std::vector<std::uint8_t>> chunks(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    if (i == lost_index) continue;  // the erasure being repaired
    auto& c = chunks[static_cast<std::size_t>(i)];
    c.assign(padded, 0);  // data chunks stay zero-padded past the object end
    fill_chunk(object, i, c.data(), c.size());
  }
  if (!code_.reconstruct(&chunks)) return 0;
  const auto& rebuilt = chunks[static_cast<std::size_t>(lost_index)];
  // Chunks are accounted (and sampled on the wire) at chunk_size bytes;
  // the padding past it is representation, not payload.
  const std::size_t n = std::min(
      max_len, std::min(rebuilt.size(), static_cast<std::size_t>(chunk)));
  std::copy(rebuilt.begin(), rebuilt.begin() + static_cast<std::ptrdiff_t>(n), out);
  return n;
}

std::uint64_t PayloadStore::checksum(ObjectId object, std::uint64_t payload_bytes,
                                     const std::uint8_t* body, std::size_t body_len) const {
  const std::uint64_t h = fnv1a(kFnvOffset, body, body_len);
  return h ^ mix(object ^ payload_bytes * kGolden ^ config_.seed);
}

bool PayloadStore::verify_body(ObjectId object, std::uint64_t payload_bytes,
                               const std::uint8_t* body, std::size_t body_len,
                               std::uint64_t claimed_checksum) const {
  if (payload_bytes != size_of(object)) return false;
  std::uint8_t expected[kMaxBodySample];
  const std::size_t want = fill_body(object, expected, std::min(body_len, kMaxBodySample));
  if (want != body_len) return false;
  if (std::memcmp(expected, body, body_len) != 0) return false;
  return checksum(object, payload_bytes, body, body_len) == claimed_checksum;
}

bool PayloadStore::verify_chunk(ObjectId object, int index, std::uint64_t payload_bytes,
                                const std::uint8_t* body, std::size_t body_len,
                                std::uint64_t claimed_checksum) const {
  if (payload_bytes != chunk_size(object)) return false;
  std::uint8_t expected[kMaxBodySample];
  const std::size_t want =
      fill_chunk(object, index, expected, std::min(body_len, kMaxBodySample));
  if (want < body_len) return false;
  if (std::memcmp(expected, body, body_len) != 0) return false;
  return checksum(object, payload_bytes, body, body_len) == claimed_checksum;
}

}  // namespace adc::store
