// URL universe and interning.
//
// The simulation's hot path works on dense ObjectIds.  UrlSpace renders a
// deterministic, Polygraph-flavoured URL for any object index (for trace
// files and log-replay examples), and UrlInterner maps arbitrary URL
// strings to dense ids — deduplicating via an MD5 digest so memory does not
// scale with URL length, the exact mitigation the paper proposes for its
// URL-dominated memory footprint (Section V.3.3).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace adc::workload {

/// Deterministic synthetic URL scheme mimicking Polygraph's server/object
/// naming: objects spread over a fixed set of origin servers.
class UrlSpace {
 public:
  explicit UrlSpace(std::size_t server_count = 256) : server_count_(server_count) {}

  std::size_t server_count() const noexcept { return server_count_; }

  /// URL of object `index` (stable for all time).
  std::string url_for(ObjectId index) const;

  /// Server ("domain") hosting the object.
  std::size_t server_of(ObjectId index) const noexcept { return index % server_count_; }

 private:
  std::size_t server_count_;
};

/// Interns URL strings into dense ids 1..N (0 is reserved/invalid).
/// Distinct URLs with colliding 64-bit digests are still assigned distinct
/// ids (full-string confirmation on digest collision).
class UrlInterner {
 public:
  /// Returns the id for the URL, assigning the next dense id when new.
  ObjectId intern(std::string_view url);

  /// Id for the URL if already interned; 0 otherwise.
  ObjectId find(std::string_view url) const noexcept;

  /// URL for a previously assigned id; empty when out of range.
  const std::string& url_of(ObjectId id) const noexcept;

  std::size_t size() const noexcept { return urls_.size(); }

  /// Digest collisions detected so far (distinct URLs, same 64-bit MD5
  /// prefix) — expected to be 0 in any realistic workload.
  std::uint64_t collisions() const noexcept { return collisions_; }

 private:
  // digest64 -> list of candidate ids (almost always exactly one).
  std::unordered_map<std::uint64_t, std::vector<ObjectId>> by_digest_;
  std::vector<std::string> urls_;  // urls_[id - 1]
  std::uint64_t collisions_ = 0;
  std::string empty_;
};

}  // namespace adc::workload
