// Hostile and extreme workload generators (ROADMAP: adversarial suite).
//
// The Polygraph generator produces well-behaved traffic; real proxy
// workloads are heavy-tailed and shift locality abruptly (Dolgikh & Sukhov;
// Jain, DEC-TR-592).  This module produces the three hostile scenarios the
// scheme comparison is weakest against:
//
//   * Hash flood — an attacker mines URL keys that all hash onto one
//     CARP/ring/HRW owner and floods them, concentrating the cluster's
//     load on a single member.  Keys are mined against the *real* owner
//     maps in src/hash (the same arrays the proxies route with), so the
//     collision property is verified, not approximated.
//   * Flash crowd — a cold URL ramps from zero to a configurable share of
//     all traffic (~30%) within a configurable window, then sustains.
//   * Diurnal swing — traffic rotates between regional hot sets following
//     a raised-cosine day cycle, so the active working set migrates
//     instead of staying fixed.
//
// Every generator is driven by a seeded Rng: a config produces exactly one
// trace, so sim and live replays of a scenario are bit-comparable.  For
// planet-scale runs, scale the *request counts* in these configs (and
// PolygraphConfig::scaled(factor) with factor > 1 for the base trace) —
// bench/ext_adversarial and adc_loadgen expose this as --scale N.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/types.h"
#include "workload/trace.h"

namespace adc::workload {

/// Owner-allocation scheme a hash flood is mined against.  Mining builds
/// the same member arrays driver::run_experiment and the adcd daemon build
/// (members named "proxy[i]" with NodeId i), so a mined key's owner in the
/// deployment is exactly the mined victim.
enum class FloodScheme : std::uint8_t {
  kCarp,        // hash::CarpArray (the paper's hashing baseline)
  kRing,        // hash::ConsistentHashRing
  kRendezvous,  // hash::RendezvousHash
};

std::string_view flood_scheme_name(FloodScheme scheme) noexcept;
std::optional<FloodScheme> parse_flood_scheme(std::string_view name) noexcept;

/// First object id of the mined-key candidate range.  Kept far above any
/// id Polygraph/WPB/the benign streams assign, so flood keys never alias a
/// benign object.
inline constexpr ObjectId kFloodKeyBase = ObjectId{1} << 41;

/// First object id of flash-crowd objects (disjoint from both the benign
/// range and the flood range).
inline constexpr ObjectId kCrowdObjectBase = ObjectId{1} << 40;

struct HashFloodConfig {
  FloodScheme scheme = FloodScheme::kCarp;

  /// Deployment size the keys are mined against (paper default: 5).
  int proxies = 5;

  /// Member index the flood concentrates on.
  int victim = 0;

  /// Distinct colliding objects to mine.  More keys defeat per-object
  /// caching: with enough distinct keys the victim's cache cannot absorb
  /// the flood.
  std::uint64_t flood_keys = 512;

  std::uint64_t requests = 200'000;

  /// Fraction of requests drawn uniformly from the mined flood set; the
  /// rest is benign Zipf background traffic.
  double flood_fraction = 0.8;

  /// Benign background: Zipf(alpha) popularity over object ids
  /// [1, benign_universe].
  std::uint64_t benign_universe = 30'000;
  double benign_zipf_alpha = 1.1;

  std::uint64_t seed = 7;
};

/// Mines `config.flood_keys` object ids whose owner under the configured
/// scheme is member `config.victim`.  Deterministic in the config (keys
/// are scanned upward from kFloodKeyBase), independent of `seed`.
std::vector<ObjectId> mine_colliding_keys(const HashFloodConfig& config);

/// Owner index of `object` under the mining deployment — the cross-check
/// tests and benches use to verify placement against src/hash directly.
int flood_owner_of(FloodScheme scheme, int proxies, ObjectId object);

/// Flood trace: benign Zipf background with `flood_fraction` of requests
/// aimed uniformly at the mined colliding set.  Phases: {0, size} (one
/// request phase, like WPB).
Trace generate_hash_flood_trace(const HashFloodConfig& config);

struct FlashCrowdConfig {
  std::uint64_t requests = 200'000;

  /// Where the crowd starts and how fast it ramps, as fractions of the
  /// trace: the crowd object is stone cold before `ramp_begin`, its share
  /// of traffic ramps linearly from 0 to `peak_fraction` over
  /// `ramp_window`, then sustains at the peak to the end of the trace.
  double ramp_begin = 0.4;
  double ramp_window = 0.1;

  /// Peak share of all traffic on the crowd object(s) (the ROADMAP's
  /// "cold URL jumping to 30% of traffic").
  double peak_fraction = 0.3;

  /// Crowd URLs sharing the ramp (1 = the classic single-URL crowd).
  std::uint64_t crowd_objects = 1;

  /// Benign background stream (same shape as the flood generator's).
  std::uint64_t benign_universe = 30'000;
  double benign_zipf_alpha = 1.1;

  /// Chance a benign request introduces a brand-new object instead of
  /// re-requesting from the hot set (the one-timer stream).
  double benign_new_fraction = 0.1;

  std::uint64_t seed = 11;
};

/// Flash-crowd trace; phases {0, size}.
Trace generate_flash_crowd_trace(const FlashCrowdConfig& config);

struct DiurnalConfig {
  std::uint64_t requests = 200'000;

  /// Rotating regional hot sets ("timezones"); each owns a disjoint
  /// object-id band of `population_size` ids.
  std::uint64_t populations = 2;
  std::uint64_t population_size = 10'000;

  /// Full day cycles across the trace.
  double cycles = 2.0;

  /// Zipf exponent of each population's internal popularity.
  double zipf_alpha = 1.1;

  /// Off-peak floor of a population's traffic share before normalization:
  /// 0 makes populations go fully silent at their trough, larger values
  /// keep a base load everywhere.
  double floor_weight = 0.05;

  std::uint64_t seed = 13;
};

/// Diurnal-swing trace: request i samples a population with weight
/// floor + (1 - floor) * cos^2 of its phase-shifted day position, then a
/// Zipf rank within it.  Phases {0, size}.
Trace generate_diurnal_trace(const DiurnalConfig& config);

/// Per-population request counts of a trace window [begin, end) under a
/// DiurnalConfig's band layout (index = population; trailing slot counts
/// out-of-band ids).  For tests and load-swing analysis.
std::vector<std::uint64_t> diurnal_population_counts(const DiurnalConfig& config,
                                                     const Trace& trace, std::uint64_t begin,
                                                     std::uint64_t end);

}  // namespace adc::workload
