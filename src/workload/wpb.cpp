#include "workload/wpb.h"

#include <cassert>
#include <deque>

namespace adc::workload {

Trace generate_wpb_trace(const WpbConfig& config) {
  assert(config.stack_depth > 0);
  util::Rng rng(config.seed);
  const util::ZipfSampler position(config.stack_depth, config.stack_theta);

  std::vector<ObjectId> requests;
  requests.reserve(config.requests);

  // LRU stack of recently referenced objects; front = most recent.
  std::deque<ObjectId> stack;
  ObjectId next_object = 1;

  for (std::uint64_t i = 0; i < config.requests; ++i) {
    ObjectId object = 0;
    if (!stack.empty() && rng.chance(config.recency_probability)) {
      // Re-reference: stack position drawn with 1/i^theta decay, clamped
      // to the currently filled depth.
      std::size_t pos = position.sample(rng);
      if (pos > stack.size()) pos = stack.size();
      object = stack[pos - 1];
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(pos - 1));
    } else {
      object = next_object++;
    }
    requests.push_back(object);
    stack.push_front(object);
    if (stack.size() > config.stack_depth) stack.pop_back();
  }

  Trace trace(std::move(requests), TracePhases{0, config.requests});
  return trace;
}

}  // namespace adc::workload
