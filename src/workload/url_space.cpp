#include "workload/url_space.h"

#include "hash/md5.h"

namespace adc::workload {

std::string UrlSpace::url_for(ObjectId index) const {
  // Polygraph-style naming: http://wNNN.polymix.test/wss/objNNN.html
  std::string url = "http://w";
  url += std::to_string(server_of(index));
  url += ".polymix.test/wss/obj";
  url += std::to_string(index);
  url += ".html";
  return url;
}

ObjectId UrlInterner::intern(std::string_view url) {
  const std::uint64_t digest = hash::Md5::digest64(url);
  auto& candidates = by_digest_[digest];
  for (ObjectId id : candidates) {
    if (urls_[static_cast<std::size_t>(id - 1)] == url) return id;
  }
  if (!candidates.empty()) ++collisions_;
  urls_.emplace_back(url);
  const auto id = static_cast<ObjectId>(urls_.size());
  candidates.push_back(id);
  return id;
}

ObjectId UrlInterner::find(std::string_view url) const noexcept {
  const auto it = by_digest_.find(hash::Md5::digest64(url));
  if (it == by_digest_.end()) return 0;
  for (ObjectId id : it->second) {
    if (urls_[static_cast<std::size_t>(id - 1)] == url) return id;
  }
  return 0;
}

const std::string& UrlInterner::url_of(ObjectId id) const noexcept {
  if (id == 0 || id > urls_.size()) return empty_;
  return urls_[static_cast<std::size_t>(id - 1)];
}

}  // namespace adc::workload
