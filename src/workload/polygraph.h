// Synthetic PolyMix-style workload generator.
//
// Substitutes the Web Polygraph benchmark the paper used (Section V.1.6).
// The generated trace has the macro-structure the paper's evaluation
// depends on:
//   * Phase 1 (fill):    ~1.0M requests, almost no repetition — a cold
//                        stream of new objects;
//   * Phase 2 (request): ~1.5M requests mixing fresh objects with
//                        Zipf-distributed re-requests of a hot set
//                        (web popularity is Zipf-like, Breslau et al.);
//   * Phase 3 (repeat):  an exact replay of phase 2's request sequence
//                        ("offers requests and repeats itself in Phase 3").
// All sampling is driven by a seeded Rng, so a config generates exactly one
// trace.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "workload/trace.h"

namespace adc::workload {

struct PolygraphConfig {
  std::uint64_t fill_requests = 1'000'000;
  std::uint64_t phase2_requests = 1'500'000;
  /// Phase 3 replays the first `phase3_requests` of phase 2 (clamped).
  std::uint64_t phase3_requests = 1'490'000;

  /// Number of distinct objects eligible for popularity-driven
  /// re-requests.  Calibrated against the paper's deployment (5 proxies,
  /// 10k caching tables = 50k aggregate slots): large enough that a 5k
  /// caching table leaves hot mass uncovered while 10k+ saturates —
  /// reproducing Figure 13's caching-table dominance and ~0.7 plateau.
  std::uint64_t hot_set_size = 30'000;

  /// Zipf exponent of the hot-set popularity.  Calibrated (see
  /// EXPERIMENTS.md) so the steady-state hit rates of ADC and CARP land in
  /// the paper's regime — ~0.7 plateau with ADC ahead by a minimal margin;
  /// web traces proper are flatter (Breslau et al.: 0.64-0.83), which
  /// favours the hashing baseline.
  double zipf_alpha = 1.1;

  /// Probability that a fill-phase request repeats an earlier object
  /// (Polygraph's fill phase has a small recurrence ratio).
  double fill_recurrence = 0.02;

  /// Probability that a phase-2 request introduces a brand-new object
  /// rather than re-requesting a hot one (the "one-timer" stream that
  /// pollutes admit-all LRU caches).
  double phase2_new_fraction = 0.25;

  std::uint64_t seed = 42;

  /// The paper-scale configuration (~3.99M requests).
  static PolygraphConfig paper_scale() { return PolygraphConfig{}; }

  /// Uniformly scaled-down variant: request counts and hot-set size scale
  /// by `factor` (e.g. 0.1 for the default bench scale).
  static PolygraphConfig scaled(double factor);
};

/// Generates the three-phase trace described by `config`.
Trace generate_polygraph_trace(const PolygraphConfig& config);

}  // namespace adc::workload
