#include "workload/adversarial.h"

#include <cassert>
#include <cmath>
#include <string>

#include "hash/carp.h"
#include "hash/consistent_hash.h"
#include "hash/rendezvous.h"
#include "util/string_util.h"

namespace adc::workload {
namespace {

std::string member_name(int index) { return "proxy[" + std::to_string(index) + "]"; }

/// Owner lookup closure over the scheme's real allocation structure.
/// Members are named/numbered exactly the way driver::run_experiment and
/// server::NodeDaemon build them, so mined placements transfer verbatim.
class OwnerOracle {
 public:
  OwnerOracle(FloodScheme scheme, int proxies) : scheme_(scheme) {
    assert(proxies >= 1);
    switch (scheme_) {
      case FloodScheme::kCarp: {
        std::vector<hash::CarpArray::Member> members;
        for (int i = 0; i < proxies; ++i) {
          members.push_back({member_name(i), static_cast<NodeId>(i), 1.0});
        }
        carp_ = hash::CarpArray(std::move(members));
        break;
      }
      case FloodScheme::kRing: {
        for (int i = 0; i < proxies; ++i) {
          ring_.add_member(static_cast<NodeId>(i), member_name(i));
        }
        break;
      }
      case FloodScheme::kRendezvous: {
        for (int i = 0; i < proxies; ++i) {
          hrw_.add_member(static_cast<NodeId>(i), member_name(i));
        }
        break;
      }
    }
  }

  int owner(ObjectId object) const {
    switch (scheme_) {
      case FloodScheme::kCarp:
        return static_cast<int>(carp_.owner(object));
      case FloodScheme::kRing:
        return static_cast<int>(ring_.owner(object));
      case FloodScheme::kRendezvous:
        return static_cast<int>(hrw_.owner(object));
    }
    return 0;
  }

 private:
  FloodScheme scheme_;
  hash::CarpArray carp_;
  hash::ConsistentHashRing ring_;
  hash::RendezvousHash hrw_;
};

/// Benign background sampler shared by the flood and flash-crowd traces:
/// Zipf(alpha) popularity over ids [1, universe].
class BenignStream {
 public:
  BenignStream(std::uint64_t universe, double alpha)
      : universe_(universe < 1 ? 1 : universe), zipf_(static_cast<std::size_t>(universe_), alpha) {}

  ObjectId sample(util::Rng& rng) const {
    return static_cast<ObjectId>(zipf_.sample(rng));  // rank r -> object r
  }

 private:
  std::uint64_t universe_;
  util::ZipfSampler zipf_;
};

}  // namespace

std::string_view flood_scheme_name(FloodScheme scheme) noexcept {
  switch (scheme) {
    case FloodScheme::kCarp:
      return "carp";
    case FloodScheme::kRing:
      return "ring";
    case FloodScheme::kRendezvous:
      return "rendezvous";
  }
  return "carp";
}

std::optional<FloodScheme> parse_flood_scheme(std::string_view name) noexcept {
  const std::string lowered = util::to_lower(name);
  if (lowered == "carp") return FloodScheme::kCarp;
  if (lowered == "ring" || lowered == "consistent") return FloodScheme::kRing;
  if (lowered == "rendezvous" || lowered == "hrw") return FloodScheme::kRendezvous;
  return std::nullopt;
}

int flood_owner_of(FloodScheme scheme, int proxies, ObjectId object) {
  return OwnerOracle(scheme, proxies).owner(object);
}

std::vector<ObjectId> mine_colliding_keys(const HashFloodConfig& config) {
  assert(config.victim >= 0 && config.victim < config.proxies);
  const OwnerOracle oracle(config.scheme, config.proxies);
  std::vector<ObjectId> keys;
  keys.reserve(static_cast<std::size_t>(config.flood_keys));
  // Linear scan: with n members ~1/n of candidates land on the victim, so
  // mining k keys inspects ~n*k ids — microseconds at any realistic size.
  for (ObjectId candidate = kFloodKeyBase; keys.size() < config.flood_keys; ++candidate) {
    if (oracle.owner(candidate) == config.victim) keys.push_back(candidate);
  }
  return keys;
}

Trace generate_hash_flood_trace(const HashFloodConfig& config) {
  const std::vector<ObjectId> flood = mine_colliding_keys(config);
  const BenignStream benign(config.benign_universe, config.benign_zipf_alpha);
  util::Rng rng(config.seed);

  std::vector<ObjectId> requests;
  requests.reserve(static_cast<std::size_t>(config.requests));
  for (std::uint64_t i = 0; i < config.requests; ++i) {
    if (rng.chance(config.flood_fraction)) {
      requests.push_back(flood[rng.index(flood.size())]);
    } else {
      requests.push_back(benign.sample(rng));
    }
  }
  const std::uint64_t size = requests.size();
  return Trace(std::move(requests), TracePhases{0, size});
}

Trace generate_flash_crowd_trace(const FlashCrowdConfig& config) {
  assert(config.crowd_objects >= 1);
  const BenignStream benign(config.benign_universe, config.benign_zipf_alpha);
  util::Rng rng(config.seed);

  const double n = static_cast<double>(config.requests);
  const double ramp_begin = config.ramp_begin * n;
  const double ramp_end = ramp_begin + config.ramp_window * n;
  ObjectId next_new = static_cast<ObjectId>(config.benign_universe) + 1;

  std::vector<ObjectId> requests;
  requests.reserve(static_cast<std::size_t>(config.requests));
  for (std::uint64_t i = 0; i < config.requests; ++i) {
    const double at = static_cast<double>(i);
    double crowd_share = 0.0;
    if (at >= ramp_end) {
      crowd_share = config.peak_fraction;
    } else if (at >= ramp_begin && ramp_end > ramp_begin) {
      crowd_share = config.peak_fraction * (at - ramp_begin) / (ramp_end - ramp_begin);
    }
    if (rng.chance(crowd_share)) {
      requests.push_back(kCrowdObjectBase + rng.below(config.crowd_objects));
    } else if (rng.chance(config.benign_new_fraction)) {
      requests.push_back(next_new++);
    } else {
      requests.push_back(benign.sample(rng));
    }
  }
  const std::uint64_t size = requests.size();
  return Trace(std::move(requests), TracePhases{0, size});
}

namespace {

/// Raised-cosine day weight of population `r` at trace position `frac`
/// (in [0,1]): peaks once per cycle, phase-shifted so populations take
/// turns; cos^2 keeps the swing smooth and strictly positive floors keep
/// off-peak members warm.
double diurnal_weight(const DiurnalConfig& config, std::uint64_t r, double frac) {
  constexpr double kPi = 3.14159265358979323846;
  const double phase = kPi * (config.cycles * frac -
                              static_cast<double>(r) / static_cast<double>(config.populations));
  const double c = std::cos(phase);
  return config.floor_weight + (1.0 - config.floor_weight) * c * c;
}

}  // namespace

Trace generate_diurnal_trace(const DiurnalConfig& config) {
  assert(config.populations >= 1);
  assert(config.population_size >= 1);
  const util::ZipfSampler zipf(static_cast<std::size_t>(config.population_size),
                               config.zipf_alpha);
  util::Rng rng(config.seed);

  std::vector<double> weights(static_cast<std::size_t>(config.populations));
  std::vector<ObjectId> requests;
  requests.reserve(static_cast<std::size_t>(config.requests));
  for (std::uint64_t i = 0; i < config.requests; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(config.requests);
    double total = 0.0;
    for (std::uint64_t r = 0; r < config.populations; ++r) {
      weights[static_cast<std::size_t>(r)] = diurnal_weight(config, r, frac);
      total += weights[static_cast<std::size_t>(r)];
    }
    double pick = rng.uniform() * total;
    std::uint64_t population = config.populations - 1;
    for (std::uint64_t r = 0; r < config.populations; ++r) {
      pick -= weights[static_cast<std::size_t>(r)];
      if (pick < 0.0) {
        population = r;
        break;
      }
    }
    const auto rank = static_cast<ObjectId>(zipf.sample(rng));  // [1, population_size]
    requests.push_back(population * config.population_size + rank);
  }
  const std::uint64_t size = requests.size();
  return Trace(std::move(requests), TracePhases{0, size});
}

std::vector<std::uint64_t> diurnal_population_counts(const DiurnalConfig& config,
                                                     const Trace& trace, std::uint64_t begin,
                                                     std::uint64_t end) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(config.populations) + 1, 0);
  if (end > trace.size()) end = trace.size();
  for (std::uint64_t i = begin; i < end; ++i) {
    const ObjectId object = trace[i];
    // Band r covers (r*size, (r+1)*size]; ids outside every band land in
    // the trailing slot.
    const std::uint64_t band = object == 0 ? config.populations : (object - 1) / config.population_size;
    if (band < config.populations) {
      ++counts[static_cast<std::size_t>(band)];
    } else {
      ++counts.back();
    }
  }
  return counts;
}

}  // namespace adc::workload
