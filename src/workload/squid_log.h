// Squid native access.log ingestion.
//
// The paper's future work points at building the system on Squid; this
// parser lets the reproduction replay real proxy logs instead of synthetic
// traces.  Supports the classic squid native format:
//   time elapsed remotehost code/status bytes method URL rfc931
//   peerstatus/peerhost type
// Lines that do not parse are counted and skipped, never fatal.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "workload/trace.h"
#include "workload/url_space.h"

namespace adc::workload {

struct SquidLogEntry {
  double timestamp = 0.0;     // unix seconds (fractional)
  std::int64_t elapsed_ms = 0;
  std::string client;
  std::string result_code;    // e.g. TCP_MISS/200
  std::int64_t bytes = 0;
  std::string method;         // GET, POST, ...
  std::string url;
};

/// Parses one native-format line; nullopt when malformed.
std::optional<SquidLogEntry> parse_squid_line(std::string_view line);

struct SquidLoadOptions {
  /// Only replay these methods (empty = all).  The paper's system handles
  /// cacheable fetches, so the default keeps GETs only.
  bool gets_only = true;
  /// Maximum number of requests to ingest (0 = unlimited).
  std::uint64_t limit = 0;
};

struct SquidLoadResult {
  Trace trace;                 // phases: everything in one request phase
  std::uint64_t parsed = 0;    // lines converted into requests
  std::uint64_t skipped = 0;   // malformed or filtered lines
};

/// Reads a log from a stream, interning URLs via `interner`.
SquidLoadResult load_squid_log(std::istream& in, UrlInterner& interner,
                               const SquidLoadOptions& options = {});

/// Convenience: reads from a file path; nullopt when the file is
/// unreadable.
std::optional<SquidLoadResult> load_squid_log_file(const std::string& path,
                                                   UrlInterner& interner,
                                                   const SquidLoadOptions& options = {});

}  // namespace adc::workload
