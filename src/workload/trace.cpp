#include "workload/trace.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_set>

#include "hash/crc32.h"
#include "util/string_util.h"

namespace adc::workload {
namespace {

constexpr char kMagic[8] = {'A', 'D', 'C', 'T', 'R', 'C', '0', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

TraceStats Trace::stats() const {
  TraceStats out;
  out.requests = size();
  std::unordered_set<ObjectId> seen;
  seen.reserve(requests_.size());
  std::uint64_t recurrences = 0;
  for (ObjectId object : requests_) {
    if (!seen.insert(object).second) ++recurrences;
  }
  out.unique_objects = seen.size();
  out.recurrence_rate =
      out.requests == 0 ? 0.0 : static_cast<double>(recurrences) / static_cast<double>(out.requests);
  return out;
}

Trace Trace::slice(std::uint64_t begin, std::uint64_t end) const {
  begin = std::min<std::uint64_t>(begin, size());
  end = std::min<std::uint64_t>(std::max(begin, end), size());
  std::vector<ObjectId> sub(requests_.begin() + static_cast<std::ptrdiff_t>(begin),
                            requests_.begin() + static_cast<std::ptrdiff_t>(end));
  TracePhases phases;
  const auto clip = [&](std::uint64_t p) -> std::uint64_t {
    if (p <= begin) return 0;
    if (p >= end) return end - begin;
    return p - begin;
  };
  phases.fill_end = clip(phases_.fill_end);
  phases.phase2_end = clip(phases_.phase2_end);
  return Trace(std::move(sub), phases);
}

bool Trace::save_text(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "# adc-trace v1\n";
  out << "# requests " << size() << '\n';
  out << "# fill_end " << phases_.fill_end << '\n';
  out << "# phase2_end " << phases_.phase2_end << '\n';
  for (ObjectId object : requests_) out << object << '\n';
  return static_cast<bool>(out);
}

bool Trace::load_text(const std::string& path, Trace* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  Trace trace;
  TracePhases phases;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '#') {
      const auto fields = util::split_whitespace(trimmed.substr(1));
      if (fields.size() == 2 && fields[0] == "fill_end") {
        if (const auto v = util::parse_uint(fields[1])) phases.fill_end = *v;
      } else if (fields.size() == 2 && fields[0] == "phase2_end") {
        if (const auto v = util::parse_uint(fields[1])) phases.phase2_end = *v;
      }
      continue;
    }
    const auto id = util::parse_uint(trimmed);
    if (!id) {
      if (error) *error = "line " + std::to_string(line_no) + ": bad object id";
      return false;
    }
    trace.append(*id);
  }
  trace.set_phases(phases);
  *out = std::move(trace);
  return true;
}

bool Trace::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, phases_.fill_end);
  write_pod(out, phases_.phase2_end);
  const std::uint64_t count = size();
  write_pod(out, count);
  const auto* payload = reinterpret_cast<const char*>(requests_.data());
  const std::size_t payload_bytes = requests_.size() * sizeof(ObjectId);
  out.write(payload, static_cast<std::streamsize>(payload_bytes));
  const std::uint32_t crc = hash::crc32(payload, payload_bytes);
  write_pod(out, crc);
  return static_cast<bool>(out);
}

bool Trace::load_binary(const std::string& path, Trace* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    if (error) *error = "bad magic (not an adc binary trace)";
    return false;
  }
  TracePhases phases;
  std::uint64_t count = 0;
  if (!read_pod(in, &phases.fill_end) || !read_pod(in, &phases.phase2_end) ||
      !read_pod(in, &count)) {
    if (error) *error = "truncated header";
    return false;
  }
  std::vector<ObjectId> requests(count);
  const std::size_t payload_bytes = requests.size() * sizeof(ObjectId);
  in.read(reinterpret_cast<char*>(requests.data()), static_cast<std::streamsize>(payload_bytes));
  if (!in) {
    if (error) *error = "truncated payload";
    return false;
  }
  std::uint32_t stored_crc = 0;
  if (!read_pod(in, &stored_crc)) {
    if (error) *error = "missing checksum";
    return false;
  }
  const std::uint32_t crc = hash::crc32(requests.data(), payload_bytes);
  if (crc != stored_crc) {
    if (error) *error = "checksum mismatch (corrupt trace)";
    return false;
  }
  *out = Trace(std::move(requests), phases);
  return true;
}

}  // namespace adc::workload
