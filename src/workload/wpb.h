// Wisconsin Proxy Benchmark (WPB)-style workload generator.
//
// The paper names "an evaluation based on the Wisconsin Proxy Benchmark
// [1]" as future work; this generator provides it.  WPB's request stream
// differs from Polygraph's in the *kind* of locality: instead of a global
// Zipf popularity over a fixed hot set, WPB models *temporal* locality —
// a request re-references a recently requested object with a probability
// that decays with its depth in an LRU stack (Almeida & Cao 1998).  Cache
// schemes that track recency (LRU baselines) and frequency (ADC's
// averages) respond differently to the two models, which is exactly what
// the workload-comparison bench probes.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "workload/trace.h"

namespace adc::workload {

struct WpbConfig {
  std::uint64_t requests = 500'000;

  /// Probability that a request re-references an object from the recency
  /// stack instead of introducing a new one (WPB's default temporal
  /// locality is around 50%).
  double recency_probability = 0.5;

  /// Depth of the LRU stack eligible for re-reference.
  std::size_t stack_depth = 1000;

  /// Exponent of the stack-position distribution: position i (1 = most
  /// recent) is drawn with probability proportional to 1 / i^theta.
  double stack_theta = 1.0;

  std::uint64_t seed = 97;
};

/// Generates a WPB-style trace.  The whole stream is one request phase
/// (no fill prefix, no repeat tail): phases = {0, size}.
Trace generate_wpb_trace(const WpbConfig& config);

}  // namespace adc::workload
