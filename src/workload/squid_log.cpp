#include "workload/squid_log.h"

#include <fstream>
#include <istream>

#include "util/string_util.h"

namespace adc::workload {

std::optional<SquidLogEntry> parse_squid_line(std::string_view line) {
  const auto fields = util::split_whitespace(line);
  // Native format has 10 fields; tolerate trailing extras (some Squids
  // append hierarchy data) but require the first 7.
  if (fields.size() < 7) return std::nullopt;

  SquidLogEntry entry;
  const auto timestamp = util::parse_double(fields[0]);
  const auto elapsed = util::parse_int(fields[1]);
  const auto bytes = util::parse_int(fields[4]);
  if (!timestamp || !elapsed || !bytes) return std::nullopt;

  entry.timestamp = *timestamp;
  entry.elapsed_ms = *elapsed;
  entry.client = std::string(fields[2]);
  entry.result_code = std::string(fields[3]);
  entry.bytes = *bytes;
  entry.method = std::string(fields[5]);
  entry.url = std::string(fields[6]);
  if (entry.url.empty() || entry.url == "-") return std::nullopt;
  return entry;
}

SquidLoadResult load_squid_log(std::istream& in, UrlInterner& interner,
                               const SquidLoadOptions& options) {
  SquidLoadResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (util::trim(line).empty()) continue;
    const auto entry = parse_squid_line(line);
    if (!entry || (options.gets_only && entry->method != "GET")) {
      ++result.skipped;
      continue;
    }
    result.trace.append(interner.intern(entry->url));
    ++result.parsed;
    if (options.limit != 0 && result.parsed >= options.limit) break;
  }
  // A replayed log is all "request phase": no fill prefix, no repeat tail.
  result.trace.set_phases(TracePhases{0, result.trace.size()});
  return result;
}

std::optional<SquidLoadResult> load_squid_log_file(const std::string& path,
                                                   UrlInterner& interner,
                                                   const SquidLoadOptions& options) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return load_squid_log(in, interner, options);
}

}  // namespace adc::workload
