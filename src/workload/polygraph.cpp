#include "workload/polygraph.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace adc::workload {

PolygraphConfig PolygraphConfig::scaled(double factor) {
  assert(factor > 0.0);
  PolygraphConfig config;
  const auto scale = [factor](std::uint64_t v) {
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(
                                          static_cast<double>(v) * factor)));
  };
  config.fill_requests = scale(config.fill_requests);
  config.phase2_requests = scale(config.phase2_requests);
  config.phase3_requests = scale(config.phase3_requests);
  config.hot_set_size = scale(config.hot_set_size);
  return config;
}

Trace generate_polygraph_trace(const PolygraphConfig& config) {
  util::Rng rng(config.seed);

  std::vector<ObjectId> requests;
  requests.reserve(config.fill_requests + config.phase2_requests + config.phase3_requests);

  ObjectId next_object = 1;  // dense ids, 0 reserved
  const auto introduce = [&next_object]() { return next_object++; };

  // --- Phase 1: fill -----------------------------------------------------
  for (std::uint64_t i = 0; i < config.fill_requests; ++i) {
    if (next_object > 1 && rng.chance(config.fill_recurrence)) {
      // Rare repetition: uniform over everything seen so far.
      requests.push_back(1 + static_cast<ObjectId>(rng.below(next_object - 1)));
    } else {
      requests.push_back(introduce());
    }
  }
  const std::uint64_t fill_end = requests.size();

  // --- Hot set: Zipf popularity over a subset of known objects -----------
  // Ranks map to objects through a random permutation so popularity is not
  // correlated with introduction order.
  const std::uint64_t universe_after_fill = next_object - 1;
  const std::uint64_t hot_count = std::max<std::uint64_t>(
      1, std::min(config.hot_set_size, std::max<std::uint64_t>(universe_after_fill, 1)));
  std::vector<ObjectId> hot_objects;
  hot_objects.reserve(hot_count);
  if (universe_after_fill >= hot_count) {
    // Sample without replacement via partial shuffle of [1, universe].
    std::vector<ObjectId> pool(universe_after_fill);
    for (std::uint64_t i = 0; i < universe_after_fill; ++i) pool[i] = i + 1;
    rng.shuffle(pool);
    hot_objects.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(hot_count));
  } else {
    for (std::uint64_t i = 0; i < hot_count; ++i) hot_objects.push_back(introduce());
  }
  const util::ZipfSampler zipf(hot_objects.size(), config.zipf_alpha);

  // --- Phase 2: request phase I -------------------------------------------
  for (std::uint64_t i = 0; i < config.phase2_requests; ++i) {
    if (rng.chance(config.phase2_new_fraction)) {
      requests.push_back(introduce());
    } else {
      const std::size_t rank = zipf.sample(rng);
      requests.push_back(hot_objects[rank - 1]);
    }
  }
  const std::uint64_t phase2_end = requests.size();

  // --- Phase 3: exact replay of phase 2 -----------------------------------
  const std::uint64_t replay =
      std::min<std::uint64_t>(config.phase3_requests, phase2_end - fill_end);
  for (std::uint64_t i = 0; i < replay; ++i) {
    requests.push_back(requests[static_cast<std::size_t>(fill_end + i)]);
  }

  return Trace(std::move(requests), TracePhases{fill_end, phase2_end});
}

}  // namespace adc::workload
