// Request traces: the in-memory representation plus text and binary file
// formats (binary carries a CRC-32 so truncated/corrupt files are caught).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.h"

namespace adc::workload {

/// Phase boundaries, as request counts into the trace (paper Section
/// V.1.6): [0, fill_end) is the fill phase, [fill_end, phase2_end) the
/// first request phase, [phase2_end, size) the repeat phase.
struct TracePhases {
  std::uint64_t fill_end = 0;
  std::uint64_t phase2_end = 0;
};

struct TraceStats {
  std::uint64_t requests = 0;
  std::uint64_t unique_objects = 0;
  double recurrence_rate = 0.0;  // fraction of requests to already-seen objects
};

class Trace {
 public:
  Trace() = default;
  Trace(std::vector<ObjectId> requests, TracePhases phases)
      : requests_(std::move(requests)), phases_(phases) {}

  const std::vector<ObjectId>& requests() const noexcept { return requests_; }
  std::vector<ObjectId>& requests() noexcept { return requests_; }
  std::uint64_t size() const noexcept { return requests_.size(); }
  bool empty() const noexcept { return requests_.empty(); }

  const TracePhases& phases() const noexcept { return phases_; }
  void set_phases(TracePhases phases) noexcept { phases_ = phases; }

  ObjectId operator[](std::uint64_t i) const noexcept {
    return requests_[static_cast<std::size_t>(i)];
  }

  void append(ObjectId object) { requests_.push_back(object); }

  /// Single pass over the trace computing summary statistics.
  TraceStats stats() const;

  /// Subset view [begin, end) as a new trace (phases are clipped).
  Trace slice(std::uint64_t begin, std::uint64_t end) const;

  // --- File formats ------------------------------------------------------

  /// Text: '#'-prefixed header lines (phases), then one object id per
  /// line.  Human-inspectable; used in examples.
  bool save_text(const std::string& path) const;
  static bool load_text(const std::string& path, Trace* out, std::string* error = nullptr);

  /// Binary: magic, version, phases, count, raw little-endian ids,
  /// trailing CRC-32 of the payload.
  bool save_binary(const std::string& path) const;
  static bool load_binary(const std::string& path, Trace* out, std::string* error = nullptr);

 private:
  std::vector<ObjectId> requests_;
  TracePhases phases_;
};

}  // namespace adc::workload
