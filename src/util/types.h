// Common strong types shared by every ADC module.
//
// The simulation never manipulates real URLs on the hot path: the workload
// layer interns every URL into a dense 64-bit ObjectId once, and everything
// downstream (tables, messages, caches) works on ids.  This mirrors the
// paper's own observation (Section V.3.3) that storing raw request URLs
// dominated its memory footprint and that digests (MD5) should be used
// instead.
#pragma once

#include <cstdint>
#include <limits>

namespace adc {

/// Identifier of a cacheable object (an interned URL).
using ObjectId = std::uint64_t;

/// Identifier of a node in the simulated system (client, proxy, origin).
using NodeId = std::int32_t;

/// Globally unique request identifier: "usually based on the client's IP
/// address and an internal request counter" (paper Section III.1).  We pack
/// the issuing node into the top 16 bits and a per-node counter below.
using RequestId = std::uint64_t;

/// Discrete simulated time.  The paper's proxies use a *local* logical clock
/// that ticks once per received request; the simulator additionally keeps a
/// global event time for message delivery ordering.
using SimTime = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Sentinel meaning "this proxy itself" in a mapping-table location column
/// (the paper's THIS marker).  Stored per-proxy as the proxy's own NodeId,
/// so no dedicated constant is needed at the table layer; this alias exists
/// for readability at call sites that build expectation tables in tests.
inline constexpr NodeId kLocationUnset = -2;

constexpr RequestId make_request_id(NodeId issuer, std::uint64_t counter) noexcept {
  return (static_cast<RequestId>(static_cast<std::uint32_t>(issuer)) << 48) |
         (counter & ((RequestId{1} << 48) - 1));
}

constexpr NodeId request_id_issuer(RequestId id) noexcept {
  return static_cast<NodeId>(id >> 48);
}

constexpr std::uint64_t request_id_counter(RequestId id) noexcept {
  return id & ((RequestId{1} << 48) - 1);
}

}  // namespace adc
