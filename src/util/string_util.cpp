#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace adc::util {
namespace {

bool is_space(char c) noexcept { return std::isspace(static_cast<unsigned char>(c)) != 0; }

}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty() || s.front() == '-') return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is unreliable across stdlibs; strtod on a
  // bounded copy keeps behaviour portable.
  std::string copy(s);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (errno != 0 || end != copy.c_str() + copy.size()) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view s) noexcept {
  const std::string lowered = to_lower(trim(s));
  if (lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on") return true;
  if (lowered == "0" || lowered == "false" || lowered == "no" || lowered == "off") return false;
  return std::nullopt;
}

std::optional<std::uint64_t> parse_size(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::uint64_t multiplier = 1;
  const char last = static_cast<char>(std::tolower(static_cast<unsigned char>(s.back())));
  if (last == 'k') {
    multiplier = 1000;
  } else if (last == 'm') {
    multiplier = 1000 * 1000;
  } else if (last == 'g') {
    multiplier = 1000ULL * 1000 * 1000;
  }
  if (multiplier != 1) s.remove_suffix(1);
  const auto base = parse_uint(s);
  if (!base) return std::nullopt;
  return *base * multiplier;
}

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

}  // namespace adc::util
