#include "util/cli.h"

#include <sstream>

#include "util/string_util.h"

namespace adc::util {

CliParser::CliParser(std::string_view program_description)
    : description_(program_description) {}

CliParser& CliParser::option(std::string_view key, std::string_view default_value,
                             std::string_view help, bool is_flag) {
  options_.push_back(Option{std::string(key), std::string(default_value), std::string(help), is_flag});
  config_.set(key, default_value);
  return *this;
}

CliParser& CliParser::multi_option(std::string_view key, std::string_view help) {
  options_.push_back(Option{std::string(key), std::string(), std::string(help), false, true});
  multi_values_[std::string(key)];  // reserve the slot so values() can return it
  return *this;
}

const std::vector<std::string>& CliParser::values(std::string_view key) const noexcept {
  static const std::vector<std::string> kEmpty;
  const auto it = multi_values_.find(key);
  return it == multi_values_.end() ? kEmpty : it->second;
}

bool CliParser::given(std::string_view key) const noexcept {
  for (const auto& seen : given_) {
    if (seen == key) return true;
  }
  return false;
}

const CliParser::Option* CliParser::find(std::string_view key) const noexcept {
  for (const auto& opt : options_) {
    if (opt.key == key) return &opt;
  }
  return nullptr;
}

bool CliParser::parse(int argc, const char* const* argv, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string_view key = arg;
    std::string_view value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const Option* opt = find(key);
    if (opt == nullptr) {
      if (error) *error = "unknown option --" + std::string(key);
      return false;
    }
    if (!given(opt->key)) given_.push_back(opt->key);
    if (opt->is_flag) {
      if (has_value) {
        config_.set(key, value);
      } else {
        config_.set(key, "true");
      }
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        if (error) *error = "option --" + std::string(key) + " expects a value";
        return false;
      }
      value = argv[++i];
    }
    if (opt->repeatable) {
      multi_values_[opt->key].emplace_back(value);
    } else {
      config_.set(key, value);
    }
  }
  return true;
}

std::string CliParser::help_text() const {
  std::ostringstream out;
  out << description_ << "\n\nOptions:\n";
  for (const auto& opt : options_) {
    out << "  --" << opt.key;
    if (!opt.is_flag) out << " <value>";
    out << "\n      " << opt.help;
    if (opt.repeatable) out << " (repeatable)";
    if (!opt.default_value.empty()) out << " (default: " << opt.default_value << ")";
    out << '\n';
  }
  out << "  --help\n      Show this message.\n";
  return out.str();
}

}  // namespace adc::util
