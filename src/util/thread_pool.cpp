#include "util/thread_pool.h"

#include <algorithm>

namespace adc::util {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(workers, 1);
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

std::size_t ThreadPool::hardware_workers() noexcept {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<std::size_t>(reported);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and fully drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace adc::util
