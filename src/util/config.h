// Key/value configuration store with typed accessors.
//
// Experiments are described by flat `key = value` files (comments with '#'
// or ';'), optionally overridden from the command line.  The store keeps
// insertion order for reproducible dumps and records which keys were read,
// so drivers can flag unused (usually misspelled) settings.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace adc::util {

class Config {
 public:
  Config() = default;

  /// Parses `key = value` lines.  Returns false and fills `error` on the
  /// first malformed line (missing '=', empty key).
  bool parse(std::string_view text, std::string* error = nullptr);

  /// Loads and parses a file; false if unreadable or malformed.
  bool load_file(const std::string& path, std::string* error = nullptr);

  void set(std::string_view key, std::string_view value);
  bool contains(std::string_view key) const noexcept;

  /// Typed getters.  A present-but-unparsable value returns the fallback
  /// (and is reported by `bad_values()` for diagnostics).
  std::string get_string(std::string_view key, std::string_view fallback) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  std::uint64_t get_size(std::string_view key, std::uint64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  /// Keys present in the store but never read through a getter.
  std::vector<std::string> unused_keys() const;

  /// Keys whose values failed to parse as the requested type.
  const std::vector<std::string>& bad_values() const noexcept { return bad_values_; }

  /// Stable "key = value" dump in insertion order.
  std::string dump() const;

 private:
  std::optional<std::string_view> raw(std::string_view key) const noexcept;

  std::vector<std::pair<std::string, std::string>> entries_;  // insertion order
  std::map<std::string, std::size_t, std::less<>> index_;
  mutable std::set<std::string, std::less<>> used_;
  mutable std::vector<std::string> bad_values_;
};

}  // namespace adc::util
