// Fixed-size thread pool for embarrassingly parallel experiment fan-out.
//
// Plain C++17 threading, no external dependencies: a mutex-guarded FIFO
// task queue drained by a fixed set of worker threads.  Results (and
// exceptions) travel back through std::future, so a task throwing on a
// worker behaves exactly like the callable throwing inline at .get().
// The destructor drains every queued task before joining, so no submitted
// work is silently dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace adc::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Tasks queued but not yet picked up by a worker (snapshot).
  std::size_t pending() const;

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to report 0 when the count is unknowable).
  static std::size_t hardware_workers() noexcept;

  /// Enqueues `fn` and returns a future for its result.  An exception
  /// thrown by `fn` is captured and rethrown by future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only; std::function requires copyable targets,
    // so the task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

}  // namespace adc::util
