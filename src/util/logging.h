// Minimal leveled logger.
//
// Each simulation is deterministic and single-threaded, but the parallel
// experiment engine runs many simulations at once, so the logger is the
// one piece of cross-run shared state: a global (atomic) level and a
// mutex-serialized stderr sink, with cheap early-out macros that avoid
// formatting when the level is disabled.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace adc::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the canonical lower-case name of a level ("trace", "info", ...).
std::string_view log_level_name(LogLevel level) noexcept;

/// Parses a level name (case-insensitive); returns kInfo on unknown input.
LogLevel parse_log_level(std::string_view name) noexcept;

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// True when `level` would currently be emitted.
bool log_enabled(LogLevel level) noexcept;

/// Emits one formatted line: "[LEVEL] message\n".  Thread-safe: lines from
/// concurrent experiment runs are serialized, never interleaved.
void log_line(LogLevel level, std::string_view message);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace adc::util

#define ADC_LOG(level)                                  \
  if (!::adc::util::log_enabled(level)) {               \
  } else                                                \
    ::adc::util::detail::LogMessage(level).stream()

#define ADC_LOG_TRACE ADC_LOG(::adc::util::LogLevel::kTrace)
#define ADC_LOG_DEBUG ADC_LOG(::adc::util::LogLevel::kDebug)
#define ADC_LOG_INFO ADC_LOG(::adc::util::LogLevel::kInfo)
#define ADC_LOG_WARN ADC_LOG(::adc::util::LogLevel::kWarn)
#define ADC_LOG_ERROR ADC_LOG(::adc::util::LogLevel::kError)
