// Declarative command-line parser for examples and bench binaries.
//
// Supports `--flag value`, `--flag=value`, boolean flags (`--verbose`),
// repeated positional arguments, and auto-generated `--help` text.  Parsed
// values land in an adc::util::Config so downstream code has one settings
// source regardless of whether a value came from a file or the CLI.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/config.h"

namespace adc::util {

class CliParser {
 public:
  explicit CliParser(std::string_view program_description);

  /// Registers an option.  `key` doubles as the config key and the flag
  /// name (`--key`).  `is_flag` options take no value and store "true".
  CliParser& option(std::string_view key, std::string_view default_value,
                    std::string_view help, bool is_flag = false);

  /// Registers a repeatable option: every `--key value` occurrence is
  /// appended to values(key), in argv order (cluster binaries pass one
  /// `--peer id=host:port` per member).  Repeatable options always take a
  /// value and are not mirrored into config().
  CliParser& multi_option(std::string_view key, std::string_view help);

  /// Collected values of a repeatable option (empty when never given).
  const std::vector<std::string>& values(std::string_view key) const noexcept;

  /// Parses argv.  Unknown flags or missing values produce false plus a
  /// diagnostic in `error`.  `--help` sets help_requested() and returns
  /// true without error.
  bool parse(int argc, const char* const* argv, std::string* error = nullptr);

  bool help_requested() const noexcept { return help_requested_; }

  /// True when the user explicitly passed `--key` (in any form) on the
  /// command line, as opposed to the option resting on its default.  Lets
  /// binaries reject contradictory flag combinations without treating a
  /// default value as an expressed intent.
  bool given(std::string_view key) const noexcept;

  /// Usage text listing every registered option with its default.
  std::string help_text() const;

  /// Settings after parse(): defaults overlaid with given flags.
  const Config& config() const noexcept { return config_; }

  /// Non-flag arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  struct Option {
    std::string key;
    std::string default_value;
    std::string help;
    bool is_flag = false;
    bool repeatable = false;
  };

  const Option* find(std::string_view key) const noexcept;

  std::string description_;
  std::vector<Option> options_;
  Config config_;
  std::map<std::string, std::vector<std::string>, std::less<>> multi_values_;
  std::vector<std::string> given_;  // keys the command line actually set
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace adc::util
