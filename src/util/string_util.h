// Small string helpers used by config parsing, trace I/O and reporting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adc::util {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Splits on a delimiter; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string_view> split(std::string_view s, char delim);

/// Splits on arbitrary runs of ASCII whitespace; no empty fields.
std::vector<std::string_view> split_whitespace(std::string_view s);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Strict integer / floating-point parsing: the whole trimmed token must be
/// consumed, otherwise nullopt.
std::optional<std::int64_t> parse_int(std::string_view s) noexcept;
std::optional<std::uint64_t> parse_uint(std::string_view s) noexcept;
std::optional<double> parse_double(std::string_view s) noexcept;
std::optional<bool> parse_bool(std::string_view s) noexcept;

/// Parses a size with optional k/m/g suffix (powers of 1000): "20k" -> 20000.
std::optional<std::uint64_t> parse_size(std::string_view s) noexcept;

/// "1234567" -> "1,234,567" (for human-readable reports).
std::string with_thousands(std::uint64_t value);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace adc::util
