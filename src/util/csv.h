// CSV emission for bench/experiment output.
//
// Every figure-reproduction bench prints the series the paper plots as CSV
// rows (and optionally writes them to a file) so they can be re-plotted
// directly.  Quoting follows RFC 4180: fields containing comma, quote or
// newline are quoted, quotes doubled.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace adc::util {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(const std::vector<std::string>& columns);

  CsvWriter& field(std::string_view value);
  CsvWriter& field(std::int64_t value);
  CsvWriter& field(std::uint64_t value);
  CsvWriter& field(double value, int precision = 6);
  /// int overload avoids int->uint64/int64 ambiguity at call sites.
  CsvWriter& field(int value) { return field(static_cast<std::int64_t>(value)); }

  /// Terminates the current row.
  void end_row();

  std::size_t rows_written() const noexcept { return rows_; }

  static std::string escape(std::string_view value);

 private:
  std::ostream* out_;
  bool row_open_ = false;
  std::size_t rows_ = 0;
};

}  // namespace adc::util
