#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>

namespace adc::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes sink writes so lines from parallel experiment workers never
// interleave mid-line.
std::mutex g_sink_mutex;

}  // namespace

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

LogLevel parse_log_level(std::string_view name) noexcept {
  std::string lowered;
  lowered.reserve(name.size());
  for (char c : name) lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lowered == "trace") return LogLevel::kTrace;
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

void log_line(LogLevel level, std::string_view message) {
  if (!log_enabled(level)) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << '[' << log_level_name(level) << "] " << message << '\n';
}

}  // namespace adc::util
