#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace adc::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span may wrap to 0 when [lo,hi] covers the whole int64 range.
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : n_(n), alpha_(alpha) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), alpha);
    cdf_[k - 1] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding in the final bucket
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  // First index whose cdf >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  if (rank == 0 || rank > n_) return 0.0;
  const double prev = rank == 1 ? 0.0 : cdf_[rank - 2];
  return cdf_[rank - 1] - prev;
}

}  // namespace adc::util
