#include "util/config.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace adc::util {

bool Config::parse(std::string_view text, std::string* error) {
  std::size_t line_no = 0;
  for (std::string_view line : split(text, '\n')) {
    ++line_no;
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error) *error = "line " + std::to_string(line_no) + ": expected key = value";
      return false;
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      if (error) *error = "line " + std::to_string(line_no) + ": empty key";
      return false;
    }
    set(key, value);
  }
  return true;
}

bool Config::load_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), error);
}

void Config::set(std::string_view key, std::string_view value) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    entries_[it->second].second = std::string(value);
    return;
  }
  entries_.emplace_back(std::string(key), std::string(value));
  index_.emplace(std::string(key), entries_.size() - 1);
}

bool Config::contains(std::string_view key) const noexcept {
  return index_.find(key) != index_.end();
}

std::optional<std::string_view> Config::raw(std::string_view key) const noexcept {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  used_.insert(std::string(key));
  return std::string_view(entries_[it->second].second);
}

std::string Config::get_string(std::string_view key, std::string_view fallback) const {
  const auto value = raw(key);
  return std::string(value.value_or(fallback));
}

std::int64_t Config::get_int(std::string_view key, std::int64_t fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  const auto parsed = parse_int(*value);
  if (!parsed) {
    bad_values_.emplace_back(key);
    return fallback;
  }
  return *parsed;
}

std::uint64_t Config::get_size(std::string_view key, std::uint64_t fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  const auto parsed = parse_size(*value);
  if (!parsed) {
    bad_values_.emplace_back(key);
    return fallback;
  }
  return *parsed;
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  const auto parsed = parse_double(*value);
  if (!parsed) {
    bad_values_.emplace_back(key);
    return fallback;
  }
  return *parsed;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto value = raw(key);
  if (!value) return fallback;
  const auto parsed = parse_bool(*value);
  if (!parsed) {
    bad_values_.emplace_back(key);
    return fallback;
  }
  return *parsed;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : entries_) {
    if (used_.find(key) == used_.end()) out.push_back(key);
  }
  return out;
}

std::string Config::dump() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace adc::util
