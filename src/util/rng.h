// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the reproduction (random forwarding targets,
// workload sampling, latency jitter) flows through Rng so that a fixed seed
// yields a bit-identical simulation — a property the test suite asserts.
// The engine is xoshiro256**, seeded via SplitMix64, both implemented here
// so results do not depend on standard-library distribution internals.
#pragma once

#include <cstdint>
#include <vector>

namespace adc::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with explicit, portable sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Raw 64 random bits (also satisfies UniformRandomBitGenerator).
  std::uint64_t next() noexcept;
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Uniform integer in [0, bound); bound must be > 0.  Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Uniformly selects an index into a non-empty container-sized range.
  std::size_t index(std::size_t size) noexcept { return static_cast<std::size_t>(below(size)); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

/// Samples Zipf(alpha) ranks in [1, n] by inverting the generalized harmonic
/// CDF with binary search over precomputed partial sums.  Exact (no
/// rejection approximation), O(log n) per sample, deterministic.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  std::size_t n() const noexcept { return n_; }
  double alpha() const noexcept { return alpha_; }

  /// Rank in [1, n]; rank 1 is the most popular.
  std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of a rank (for tests).
  double pmf(std::size_t rank) const noexcept;

 private:
  std::size_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k+1)
};

}  // namespace adc::util
