#include "util/csv.h"

#include <iomanip>
#include <sstream>

namespace adc::util {

std::string CsvWriter::escape(std::string_view value) {
  const bool needs_quotes =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(value);
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (char c : value) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  for (const auto& column : columns) field(column);
  end_row();
}

CsvWriter& CsvWriter::field(std::string_view value) {
  if (row_open_) *out_ << ',';
  *out_ << escape(value);
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t value) {
  if (row_open_) *out_ << ',';
  *out_ << value;
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t value) {
  if (row_open_) *out_ << ',';
  *out_ << value;
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(double value, int precision) {
  if (row_open_) *out_ << ',';
  std::ostringstream tmp;
  tmp << std::fixed << std::setprecision(precision) << value;
  *out_ << tmp.str();
  row_open_ = true;
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_open_ = false;
  ++rows_;
}

}  // namespace adc::util
