// poll()-based single-threaded event loop.
//
// The daemon and the load generator are reactors: every fd (listener,
// peer connection, client connection) registers a handler, and run()
// dispatches readiness until stop() is called.  stop() is the only
// thread-safe entry point — it writes one byte into a self-pipe the loop
// watches, so a signal handler thread or the test harness can end a loop
// blocked in poll() without races.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>

namespace adc::net {

class EventLoop {
 public:
  /// Called with the fd's readiness; POLLERR/POLLHUP are reported as
  /// readable so handlers observe the failure via read_some().
  using IoHandler = std::function<void(int fd, bool readable, bool writable)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for read-readiness.  Replaces any prior handler.
  void watch(int fd, IoHandler handler);

  /// Deregisters `fd`.  Safe to call from inside a handler (including the
  /// handler of `fd` itself); the fd is not dispatched again this round.
  void unwatch(int fd);

  /// Enables or disables POLLOUT interest for a watched fd.
  void request_write(int fd, bool enabled);

  /// One poll round.  Returns the number of handlers dispatched, or -1 on
  /// poll() failure.  `timeout_ms` < 0 blocks indefinitely.
  int poll_once(int timeout_ms);

  /// Dispatches until stop().
  void run();

  /// Thread-safe: wakes a blocked poll() and makes run() return.
  void stop();

  bool stopped() const noexcept { return stop_.load(std::memory_order_acquire); }

 private:
  struct Watch {
    IoHandler handler;
    bool want_write = false;
  };

  std::map<int, Watch> watches_;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
};

}  // namespace adc::net
