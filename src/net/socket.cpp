#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

namespace adc::net {
namespace {

bool parse_u16(std::string_view text, std::uint16_t* out) {
  unsigned value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value > 65535) return false;
  *out = static_cast<std::uint16_t>(value);
  return true;
}

bool fill_addr(const Endpoint& at, sockaddr_in* addr, std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(at.port);
  if (inet_pton(AF_INET, at.host.c_str(), &addr->sin_addr) != 1) {
    if (error) *error = "invalid IPv4 address: " + at.host;
    return false;
  }
  return true;
}

int fail_close(int fd, std::string* error, const char* what) {
  if (error) *error = std::string(what) + ": " + std::strerror(errno);
  if (fd >= 0) ::close(fd);
  return -1;
}

// Small writes dominate the protocol; Nagle would serialize the closed
// loop on RTT-scale delays, so it is off on every connection.
void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

bool parse_peer_spec(std::string_view spec, NodeId* id, Endpoint* endpoint, std::string* error) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string_view::npos) {
    if (error) *error = "peer spec missing '=' (want id=host:port): " + std::string(spec);
    return false;
  }
  const std::string_view id_part = spec.substr(0, eq);
  std::int32_t parsed_id = 0;
  const auto [ptr, ec] =
      std::from_chars(id_part.data(), id_part.data() + id_part.size(), parsed_id);
  if (ec != std::errc{} || ptr != id_part.data() + id_part.size() || parsed_id < 0) {
    if (error) *error = "peer spec has a bad node id: " + std::string(spec);
    return false;
  }
  const std::string_view addr = spec.substr(eq + 1);
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string_view::npos || colon == 0) {
    if (error) *error = "peer spec missing host:port: " + std::string(spec);
    return false;
  }
  std::uint16_t port = 0;
  if (!parse_u16(addr.substr(colon + 1), &port) || port == 0) {
    if (error) *error = "peer spec has a bad port: " + std::string(spec);
    return false;
  }
  *id = parsed_id;
  endpoint->host = std::string(addr.substr(0, colon));
  endpoint->port = port;
  return true;
}

int listen_tcp(const Endpoint& at, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail_close(-1, error, "socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  if (!fill_addr(at, &addr, error)) return fail_close(fd, nullptr, "");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail_close(fd, error, "bind");
  }
  if (::listen(fd, 64) != 0) return fail_close(fd, error, "listen");
  if (!set_nonblocking(fd)) return fail_close(fd, error, "set_nonblocking");
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

int accept_tcp(int listener) {
  const int fd = ::accept(listener, nullptr, nullptr);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

int connect_tcp(const Endpoint& to, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail_close(-1, error, "socket");
  sockaddr_in addr{};
  if (!fill_addr(to, &addr, error)) return fail_close(fd, nullptr, "");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail_close(fd, error, "connect");
  }
  if (!set_nonblocking(fd)) return fail_close(fd, error, "set_nonblocking");
  set_nodelay(fd);
  return fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

Conn::~Conn() { close_fd(fd_); }

Conn::Io Conn::read_some() {
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      in_.insert(in_.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return Io::kOk;
      continue;
    }
    if (n == 0) return Io::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Io::kOk;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return Io::kReset;
    return Io::kError;
  }
}

DecodeResult Conn::next_frame(Frame* out, std::string* error) {
  std::size_t consumed = 0;
  const DecodeResult result =
      decode_frame(in_.data() + in_cursor_, in_.size() - in_cursor_, &consumed, out, error);
  if (result == DecodeResult::kFrame) {
    in_cursor_ += consumed;
    // Reclaim the consumed prefix once it dominates the buffer.
    if (in_cursor_ > 64 * 1024 && in_cursor_ * 2 > in_.size()) {
      in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(in_cursor_));
      in_cursor_ = 0;
    }
  }
  return result;
}

void Conn::queue(const std::uint8_t* data, std::size_t size) {
  out_.insert(out_.end(), data, data + size);
}

Conn::Io Conn::flush() {
  while (out_cursor_ < out_.size()) {
    const ssize_t n =
        ::send(fd_, out_.data() + out_cursor_, out_.size() - out_cursor_, MSG_NOSIGNAL);
    if (n > 0) {
      out_cursor_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return Io::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Io::kOk;
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) return Io::kReset;
    return Io::kError;
  }
  out_.clear();
  out_cursor_ = 0;
  return Io::kOk;
}

}  // namespace adc::net
