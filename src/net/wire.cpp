#include "net/wire.h"

namespace adc::net {
namespace {

constexpr std::uint8_t kFlagCached = 0x01;
constexpr std::uint8_t kFlagProxyHit = 0x02;
constexpr std::uint8_t kFlagDegraded = 0x04;

// Fixed message payload size excluding body and path entries:
// type(1) + wire_version(1) + request_id(8) + object(8) + sender/target/
// client/forward_count/hops/resolver(6 × 4) + flags(1) + version(8) +
// claim(8) + issued_at(8) + payload_bytes(8) + payload_checksum(8) +
// body_len(2) + path_len(2).
constexpr std::size_t kMessageFixedBytes = 1 + 1 + 8 + 8 + 6 * 4 + 1 + 8 + 8 + 8 + 8 + 8 + 2 + 2;

// type(1) + wire_version(1) + node_kind(1) + node_id(4).
constexpr std::size_t kHelloBytes = 7;

void put_u8(std::vector<std::uint8_t>* out, std::uint8_t v) { out->push_back(v); }

void put_u16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_i32(std::vector<std::uint8_t>* out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>* out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

// Readers over a bounds-checked-by-caller cursor.
std::uint8_t get_u8(const std::uint8_t* p) { return p[0]; }

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::int32_t get_i32(const std::uint8_t* p) { return static_cast<std::int32_t>(get_u32(p)); }

std::int64_t get_i64(const std::uint8_t* p) { return static_cast<std::int64_t>(get_u64(p)); }

DecodeResult fail(std::string* error, const char* reason) {
  if (error) *error = reason;
  return DecodeResult::kCorrupt;
}

}  // namespace

FrameType frame_type_for(sim::MessageKind kind) noexcept {
  switch (kind) {
    case sim::MessageKind::kRequest:
      return FrameType::kRequest;
    case sim::MessageKind::kReply:
      return FrameType::kReply;
    case sim::MessageKind::kSwimPing:
      return FrameType::kSwimPing;
    case sim::MessageKind::kSwimAck:
      return FrameType::kSwimAck;
    case sim::MessageKind::kSwimPingReq:
      return FrameType::kSwimPingReq;
    case sim::MessageKind::kSwimSuspect:
      return FrameType::kSwimSuspect;
    case sim::MessageKind::kSwimAlive:
      return FrameType::kSwimAlive;
    case sim::MessageKind::kSwimDead:
      return FrameType::kSwimDead;
    case sim::MessageKind::kRepairOffer:
      return FrameType::kRepairOffer;
    case sim::MessageKind::kRepairReply:
      return FrameType::kRepairReply;
    case sim::MessageKind::kStripeStore:
      return FrameType::kStripeStore;
    case sim::MessageKind::kChunkRequest:
      return FrameType::kChunkRequest;
    case sim::MessageKind::kChunkReply:
      return FrameType::kChunkReply;
    case sim::MessageKind::kRestripeOffer:
      return FrameType::kRestripeOffer;
    case sim::MessageKind::kRestripeAck:
      return FrameType::kRestripeAck;
  }
  return FrameType::kRequest;
}

sim::MessageKind kind_for(FrameType type) noexcept {
  switch (type) {
    case FrameType::kRequest:
    case FrameType::kHello:
      return sim::MessageKind::kRequest;
    case FrameType::kReply:
      return sim::MessageKind::kReply;
    case FrameType::kSwimPing:
      return sim::MessageKind::kSwimPing;
    case FrameType::kSwimAck:
      return sim::MessageKind::kSwimAck;
    case FrameType::kSwimPingReq:
      return sim::MessageKind::kSwimPingReq;
    case FrameType::kSwimSuspect:
      return sim::MessageKind::kSwimSuspect;
    case FrameType::kSwimAlive:
      return sim::MessageKind::kSwimAlive;
    case FrameType::kSwimDead:
      return sim::MessageKind::kSwimDead;
    case FrameType::kRepairOffer:
      return sim::MessageKind::kRepairOffer;
    case FrameType::kRepairReply:
      return sim::MessageKind::kRepairReply;
    case FrameType::kStripeStore:
      return sim::MessageKind::kStripeStore;
    case FrameType::kChunkRequest:
      return sim::MessageKind::kChunkRequest;
    case FrameType::kChunkReply:
      return sim::MessageKind::kChunkReply;
    case FrameType::kRestripeOffer:
      return sim::MessageKind::kRestripeOffer;
    case FrameType::kRestripeAck:
      return sim::MessageKind::kRestripeAck;
  }
  return sim::MessageKind::kRequest;
}

void encode_message(const WireMessage& wire, std::vector<std::uint8_t>* out) {
  const std::size_t keep = wire.path.size() > kMaxPath ? kMaxPath : wire.path.size();
  const std::size_t skip = wire.path.size() - keep;
  const std::size_t body_len =
      wire.body.size() > kMaxBodyBytes ? kMaxBodyBytes : wire.body.size();
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(kMessageFixedBytes + body_len + 4 * keep);
  out->reserve(out->size() + kLengthPrefixBytes + payload_len);
  put_u32(out, payload_len);
  put_u8(out, static_cast<std::uint8_t>(frame_type_for(wire.msg.kind)));
  put_u8(out, kWireVersion);
  put_u64(out, wire.msg.request_id);
  put_u64(out, wire.msg.object);
  put_i32(out, wire.msg.sender);
  put_i32(out, wire.msg.target);
  put_i32(out, wire.msg.client);
  put_i32(out, wire.msg.forward_count);
  put_i32(out, wire.msg.hops);
  put_i32(out, wire.msg.resolver);
  std::uint8_t flags = 0;
  if (wire.msg.cached) flags |= kFlagCached;
  if (wire.msg.proxy_hit) flags |= kFlagProxyHit;
  if (wire.msg.degraded) flags |= kFlagDegraded;
  put_u8(out, flags);
  put_u64(out, wire.msg.version);
  put_u64(out, wire.msg.claim);
  put_i64(out, wire.msg.issued_at);
  put_u64(out, wire.msg.payload_bytes);
  put_u64(out, wire.checksum);
  put_u16(out, static_cast<std::uint16_t>(body_len));
  put_u16(out, static_cast<std::uint16_t>(keep));
  out->insert(out->end(), wire.body.begin(),
              wire.body.begin() + static_cast<std::ptrdiff_t>(body_len));
  for (std::size_t i = skip; i < wire.path.size(); ++i) put_i32(out, wire.path[i]);
}

void encode_hello(const Hello& hello, std::vector<std::uint8_t>* out) {
  put_u32(out, kHelloBytes);
  put_u8(out, static_cast<std::uint8_t>(FrameType::kHello));
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(hello.kind));
  put_i32(out, hello.node_id);
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t size, std::size_t* consumed,
                          Frame* out, std::string* error) {
  *consumed = 0;
  if (size < kLengthPrefixBytes) return DecodeResult::kNeedMore;
  const std::uint32_t payload_len = get_u32(data);
  if (payload_len < 1) return fail(error, "frame with empty payload");
  if (payload_len > kMaxFramePayload) return fail(error, "frame exceeds kMaxFramePayload");
  if (size < kLengthPrefixBytes + payload_len) return DecodeResult::kNeedMore;

  const std::uint8_t* p = data + kLengthPrefixBytes;
  const std::uint8_t type = get_u8(p);
  switch (type) {
    case static_cast<std::uint8_t>(FrameType::kHello): {
      if (payload_len != kHelloBytes) return fail(error, "HELLO payload size mismatch");
      if (get_u8(p + 1) != kWireVersion) return fail(error, "unsupported wire version");
      const std::uint8_t kind = get_u8(p + 2);
      if (kind > static_cast<std::uint8_t>(sim::NodeKind::kOrigin)) {
        return fail(error, "HELLO with unknown node kind");
      }
      *out = Frame{};
      out->type = FrameType::kHello;
      out->hello.kind = static_cast<sim::NodeKind>(kind);
      out->hello.node_id = get_i32(p + 3);
      break;
    }
    case static_cast<std::uint8_t>(FrameType::kRequest):
    case static_cast<std::uint8_t>(FrameType::kReply):
    case static_cast<std::uint8_t>(FrameType::kSwimPing):
    case static_cast<std::uint8_t>(FrameType::kSwimAck):
    case static_cast<std::uint8_t>(FrameType::kSwimPingReq):
    case static_cast<std::uint8_t>(FrameType::kSwimSuspect):
    case static_cast<std::uint8_t>(FrameType::kSwimAlive):
    case static_cast<std::uint8_t>(FrameType::kSwimDead):
    case static_cast<std::uint8_t>(FrameType::kRepairOffer):
    case static_cast<std::uint8_t>(FrameType::kRepairReply):
    case static_cast<std::uint8_t>(FrameType::kStripeStore):
    case static_cast<std::uint8_t>(FrameType::kChunkRequest):
    case static_cast<std::uint8_t>(FrameType::kChunkReply):
    case static_cast<std::uint8_t>(FrameType::kRestripeOffer):
    case static_cast<std::uint8_t>(FrameType::kRestripeAck): {
      if (payload_len < kMessageFixedBytes) return fail(error, "message payload too short");
      if (get_u8(p + 1) != kWireVersion) return fail(error, "unsupported wire version");
      const std::uint16_t body_len = get_u16(p + kMessageFixedBytes - 4);
      const std::uint16_t path_len = get_u16(p + kMessageFixedBytes - 2);
      if (body_len > kMaxBodyBytes) return fail(error, "body_len exceeds kMaxBodyBytes");
      if (path_len > kMaxPath) return fail(error, "path_len exceeds kMaxPath");
      if (payload_len != kMessageFixedBytes + body_len + 4u * path_len) {
        return fail(error, "payload size does not match body_len/path_len");
      }
      *out = Frame{};
      out->type = static_cast<FrameType>(type);
      sim::Message& msg = out->message.msg;
      msg.kind = kind_for(out->type);
      msg.request_id = get_u64(p + 2);
      msg.object = get_u64(p + 10);
      msg.sender = get_i32(p + 18);
      msg.target = get_i32(p + 22);
      msg.client = get_i32(p + 26);
      msg.forward_count = get_i32(p + 30);
      msg.hops = get_i32(p + 34);
      msg.resolver = get_i32(p + 38);
      const std::uint8_t flags = get_u8(p + 42);
      if ((flags & ~(kFlagCached | kFlagProxyHit | kFlagDegraded)) != 0) {
        return fail(error, "unknown flag bits set");
      }
      msg.cached = (flags & kFlagCached) != 0;
      msg.proxy_hit = (flags & kFlagProxyHit) != 0;
      msg.degraded = (flags & kFlagDegraded) != 0;
      msg.version = get_u64(p + 43);
      msg.claim = get_u64(p + 51);
      msg.issued_at = get_i64(p + 59);
      msg.payload_bytes = get_u64(p + 67);
      out->message.checksum = get_u64(p + 75);
      const std::uint8_t* body = p + kMessageFixedBytes;
      out->message.body.assign(body, body + body_len);
      out->message.path.resize(path_len);
      const std::uint8_t* entries = body + body_len;
      for (std::uint16_t i = 0; i < path_len; ++i) {
        out->message.path[i] = get_i32(entries + 4u * i);
      }
      break;
    }
    default:
      return fail(error, "unknown frame type");
  }
  *consumed = kLengthPrefixBytes + payload_len;
  return DecodeResult::kFrame;
}

}  // namespace adc::net
