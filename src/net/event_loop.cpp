#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

#include "net/socket.h"

namespace adc::net {

EventLoop::EventLoop() {
  if (::pipe(wake_pipe_) == 0) {
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
  }
}

EventLoop::~EventLoop() {
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

void EventLoop::watch(int fd, IoHandler handler) {
  watches_[fd] = Watch{std::move(handler), false};
}

void EventLoop::unwatch(int fd) { watches_.erase(fd); }

void EventLoop::request_write(int fd, bool enabled) {
  const auto it = watches_.find(fd);
  if (it != watches_.end()) it->second.want_write = enabled;
}

int EventLoop::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(watches_.size() + 1);
  fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
  for (const auto& [fd, watch] : watches_) {
    short events = POLLIN;
    if (watch.want_write) events |= POLLOUT;
    fds.push_back(pollfd{fd, events, 0});
  }

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) return errno == EINTR ? 0 : -1;
  if (ready == 0) return 0;

  if ((fds[0].revents & POLLIN) != 0) {
    std::uint8_t drain[64];
    while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
    }
  }

  int dispatched = 0;
  for (std::size_t i = 1; i < fds.size(); ++i) {
    const pollfd& pfd = fds[i];
    if (pfd.revents == 0) continue;
    // A handler may unwatch fds (its own or others'); re-check membership
    // so closed connections are never dispatched on stale readiness.
    const auto it = watches_.find(pfd.fd);
    if (it == watches_.end()) continue;
    const bool readable = (pfd.revents & (POLLIN | POLLERR | POLLHUP)) != 0;
    const bool writable = (pfd.revents & POLLOUT) != 0;
    // Copy the handler: the handler may unwatch its own fd, destroying the
    // map entry (and the std::function) mid-call.
    const IoHandler handler = it->second.handler;
    handler(pfd.fd, readable, writable);
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::run() {
  while (!stopped()) {
    if (poll_once(-1) < 0) break;
  }
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint8_t byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

}  // namespace adc::net
