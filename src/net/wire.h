// Length-prefixed binary wire protocol for the live cluster runtime.
//
// The protocol serializes exactly the message shapes the simulator moves
// (sim::Message: REQUEST/REPLY with request id, URL id, hop counters and
// the resolver annotation) so a TCP deployment and a simulation are two
// transports for one protocol.  On top of the simulator's fields a frame
// carries the request's *journey path* — the stack of node ids the message
// has visited, which over the event queue is implicit in the per-proxy
// backwarding records but on a wire is worth making explicit (debugging a
// live random walk, asserting backwarding symmetry).
//
// Frame layout, protocol version 2 (all integers little-endian):
//
//   u32  payload_len                  (bytes after this prefix)
//   u8   type                         1=REQUEST 2=REPLY 3=HELLO
//                                     4..9=SWIM control (ping, ack,
//                                     ping-req, suspect, alive, dead)
//                                     10..11=anti-entropy (offer, reply)
//                                     12..14=erasure tier (stripe-store,
//                                     chunk-request, chunk-reply)
//                                     15..16=re-stripe repair (offer, ack)
//   u8   wire_version                 must equal kWireVersion
//
// Version 2 added the payload-byte fields (payload_bytes, checksum, body
// sample) and the version byte itself; v1 frames had the request_id where
// the version byte now sits and are rejected deterministically — a mixed
// v1/v2 cluster fails fast at the first frame instead of mis-decoding.
//
// Message payload after `wire_version` (same shape for every non-HELLO
// type — SWIM, repair and erasure frames reuse the request/reply fields
// exactly the way sim::Message documents):
//
//   u64  request_id
//   u64  object
//   i32  sender
//   i32  target
//   i32  client
//   i32  forward_count
//   i32  hops
//   i32  resolver
//   u8   flags                        bit0=cached bit1=proxy_hit
//                                     bit2=degraded
//   u64  version
//   u64  claim                        resolver-claim version (0 = unset)
//   i64  issued_at
//   u64  payload_bytes                object/chunk size being described
//   u64  payload_checksum             over the body sample (store-defined)
//   u16  body_len                     (<= kMaxBodyBytes)
//   u16  path_len                     (<= kMaxPath)
//   u8  × body_len                    synthetic body sample
//   i32 × path_len                    visited node ids, oldest first
//
// HELLO payload after `type` (sent once per connection by the initiating
// side so the receiver can route by node id):
//
//   u8   wire_version                 must equal kWireVersion
//   u8   node_kind                    0=client 1=proxy 2=origin
//   i32  node_id
//
// Decoding is strict: unknown types, version mismatches, unknown flag
// bits, oversized lengths, body_len/path_len/payload mismatches and
// truncated-beyond-the-prefix frames are kCorrupt, never guessed at.  A
// prefix of a valid frame is kNeedMore.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.h"
#include "sim/node.h"
#include "util/types.h"

namespace adc::net {

/// Protocol version stamped into (and required of) every frame.  Bumped
/// to 2 when the payload-byte fields were added.
inline constexpr std::uint8_t kWireVersion = 2;

/// Longest journey path a frame may carry; appending stops beyond it.
inline constexpr std::size_t kMaxPath = 1024;

/// Longest synthetic body sample a frame may carry.  Matches
/// store::kMaxBodySample (static_assert'd where both headers meet).
inline constexpr std::size_t kMaxBodyBytes = 256;

/// Upper bound on `payload_len` (a max-path, max-body message needs
/// 4439 bytes).
inline constexpr std::size_t kMaxFramePayload = 8192;

inline constexpr std::size_t kLengthPrefixBytes = 4;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kReply = 2,
  kHello = 3,
  // HELLO sits between the protocol kinds and the control kinds, so the
  // MessageKind <-> FrameType relation is not a fixed offset; always go
  // through frame_type_for()/kind_for().
  kSwimPing = 4,
  kSwimAck = 5,
  kSwimPingReq = 6,
  kSwimSuspect = 7,
  kSwimAlive = 8,
  kSwimDead = 9,
  kRepairOffer = 10,
  kRepairReply = 11,
  kStripeStore = 12,
  kChunkRequest = 13,
  kChunkReply = 14,
  kRestripeOffer = 15,
  kRestripeAck = 16,
};

/// Frame type carrying a given message kind (every kind is encodable).
FrameType frame_type_for(sim::MessageKind kind) noexcept;

/// Message kind for a non-HELLO frame type; kRequest for kHello (callers
/// branch on kHello before asking).
sim::MessageKind kind_for(FrameType type) noexcept;

/// Connection handshake: who is on the other end of this socket.
struct Hello {
  NodeId node_id = kInvalidNode;
  sim::NodeKind kind = sim::NodeKind::kClient;
};

/// A protocol message plus its journey path and (when the payload store is
/// enabled) the serialized body sample.  `msg.payload_bytes` describes the
/// full synthetic payload; `body` carries its first min(payload_bytes,
/// kMaxBodyBytes) pattern bytes and `checksum` covers them — the daemon
/// fills both on encode and verifies them on delivery.  Both stay empty/0
/// with the store disabled.
struct WireMessage {
  sim::Message msg;
  std::vector<NodeId> path;
  std::vector<std::uint8_t> body;
  std::uint64_t checksum = 0;
};

/// One decoded frame; `message` is valid for kRequest/kReply, `hello` for
/// kHello.
struct Frame {
  FrameType type = FrameType::kRequest;
  WireMessage message;
  Hello hello;
};

/// Appends a complete frame (prefix included) to `out`.  The frame type is
/// derived from `wire.msg.kind`; paths longer than kMaxPath are truncated
/// to the most recent kMaxPath entries.
void encode_message(const WireMessage& wire, std::vector<std::uint8_t>* out);
void encode_hello(const Hello& hello, std::vector<std::uint8_t>* out);

enum class DecodeResult {
  kFrame,     // *out holds a frame, *consumed bytes were used
  kNeedMore,  // the buffer holds a prefix of a valid frame
  kCorrupt,   // the buffer can never become a valid frame
};

/// Attempts to decode one frame from the front of [data, data + size).
/// On kFrame, `*consumed` is the total encoded size (prefix + payload).
DecodeResult decode_frame(const std::uint8_t* data, std::size_t size, std::size_t* consumed,
                          Frame* out, std::string* error = nullptr);

}  // namespace adc::net
