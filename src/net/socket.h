// Thin portable layer over POSIX TCP sockets.
//
// Everything the cluster runtime needs and nothing more: non-blocking
// listeners/connections, an `id=host:port` peer-spec parser shared by the
// daemon and the load generator, and `Conn`, a buffered framed connection
// that turns a non-blocking byte stream into wire-protocol frames.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"
#include "util/types.h"

namespace adc::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "id=host:port" (e.g. "3=127.0.0.1:7003") as given to a
/// repeatable --peer flag.  Returns false with a diagnostic in `error` on
/// malformed specs; ids must be non-negative, ports 1..65535.
bool parse_peer_spec(std::string_view spec, NodeId* id, Endpoint* endpoint, std::string* error);

/// Creates a non-blocking listening socket bound to `at` (port 0 picks an
/// ephemeral port; read it back with local_port).  Returns -1 with a
/// diagnostic in `error` on failure.
int listen_tcp(const Endpoint& at, std::string* error);

/// Port a bound socket actually listens on (0 on error).
std::uint16_t local_port(int fd);

/// Accepts one pending connection as a non-blocking fd, or -1 when none
/// is pending (or on error).
int accept_tcp(int listener);

/// Connects to `to` (blocking connect, then the fd is switched to
/// non-blocking).  Returns -1 with a diagnostic in `error` on failure.
int connect_tcp(const Endpoint& to, std::string* error);

bool set_nonblocking(int fd);
void close_fd(int fd);

/// A buffered connection over a non-blocking fd.  Reads accumulate in an
/// input buffer that next_frame() decodes incrementally; writes queue in
/// an output buffer drained by flush() as the socket accepts bytes.
class Conn {
 public:
  /// Takes ownership of `fd` (closed by the destructor).
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const noexcept { return fd_; }

  enum class Io {
    kOk,      // progressed (possibly zero bytes on EAGAIN)
    kClosed,  // orderly shutdown by the peer
    kReset,   // peer closed hard (ECONNRESET/EPIPE); the connection is dead
    kError,   // socket error; the connection is dead
  };

  /// Drains whatever the socket has into the input buffer.
  Io read_some();

  /// Decodes the next complete frame from the input buffer.  kNeedMore
  /// means "call read_some and retry"; kCorrupt means the stream is
  /// unusable and the connection should be dropped.
  DecodeResult next_frame(Frame* out, std::string* error = nullptr);

  /// Queues bytes (a pre-encoded frame) for writing.
  void queue(const std::uint8_t* data, std::size_t size);
  void queue(const std::vector<std::uint8_t>& bytes) { queue(bytes.data(), bytes.size()); }

  /// Writes as much queued output as the socket accepts.
  Io flush();

  /// True while queued output remains; drives POLLOUT interest.
  bool wants_write() const noexcept { return out_cursor_ < out_.size(); }

 private:
  int fd_;
  std::vector<std::uint8_t> in_;
  std::size_t in_cursor_ = 0;
  std::vector<std::uint8_t> out_;
  std::size_t out_cursor_ = 0;
};

}  // namespace adc::net
