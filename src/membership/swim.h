// SWIM-style failure detection over sim::Transport.
//
// One detector instance per member runs the classic probe cycle (Das,
// Gupta & Motivala, "SWIM: Scalable Weakly-consistent Infection-style
// Process Group Membership Protocol"):
//
//   ping ── ack?ꟷ no ──> ping-req via k relays ── ack? ── no ──> suspect
//   suspect ── refutation (kSwimAlive, higher incarnation)? ── no ──> dead
//
// scaled down to this system's cluster sizes: suspicion and death are
// broadcast to every member instead of piggybacked gossip, which for the
// paper's 5-10 proxies costs less than the bookkeeping it replaces.
//
// Determinism: all timing comes from Transport::now() fed through tick();
// all randomness (probe order, relay choice) draws from a *private* seeded
// RNG, never the transport's — exactly like fault::FaultPlan — so enabling
// the detector cannot perturb protocol-level random choices, and a
// zero-churn simulation stays bit-identical to a detector-free one.
//
// Rejoin: dead members keep receiving slow probes (every
// `dead_probe_interval`), so after a partition heals the two sides
// re-learn each other through direct evidence.  Direct evidence (a message
// from the member itself) always rejoins regardless of incarnation —
// restarted daemons come back at incarnation 0 and must not be ignored.
//
// The membership *epoch* counts confirmed transitions (deaths + joins);
// consumers recompute owner maps / prune tables when it advances.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/message.h"
#include "sim/transport.h"
#include "util/rng.h"
#include "util/types.h"

namespace adc::membership {

enum class PeerState : std::uint8_t {
  kAlive,
  kSuspect,
  kDead,
};

std::string_view peer_state_name(PeerState state) noexcept;

struct SwimConfig {
  bool enabled = false;

  /// Gap between direct probes (one member probed per slot, round-robin
  /// over a privately shuffled order).  Units are the transport's clock:
  /// sim ticks under the Simulator, microseconds live.
  SimTime ping_interval = 200;

  /// Direct-probe wait before escalating to indirect ping-reqs.
  SimTime ack_timeout = 100;

  /// Indirect wait before raising a suspicion.
  SimTime indirect_timeout = 100;

  /// Suspicion age at which the member is declared dead.
  SimTime suspect_timeout = 600;

  /// Slow-probe gap toward members already declared dead (rejoin path).
  SimTime dead_probe_interval = 1600;

  /// Relays asked to probe indirectly when a direct probe times out.
  int ping_req_fanout = 2;

  /// Private RNG seed (never the transport's stream).
  std::uint64_t seed = 0x5317a11fULL;
};

struct SwimStats {
  std::uint64_t pings_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t ping_reqs_sent = 0;
  std::uint64_t relayed_probes = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t refutations = 0;
  std::uint64_t deaths = 0;
  std::uint64_t joins = 0;
};

class SwimDetector {
 public:
  using MemberCallback = std::function<void(NodeId)>;

  /// `peers` is the fixed candidate membership, excluding `self` (it is
  /// filtered out defensively).  Members start alive at incarnation 0.
  SwimDetector(NodeId self, std::vector<NodeId> peers, SwimConfig config);

  /// Fired on a confirmed death / rejoin (after the epoch advanced).
  void set_on_death(MemberCallback cb) { on_death_ = std::move(cb); }
  void set_on_join(MemberCallback cb) { on_join_ = std::move(cb); }

  /// Fired on *any* detector transition (suspicion raised or cleared,
  /// death, join, refutation) — the repair scheduler arms on this.
  void set_on_transition(std::function<void()> cb) { on_transition_ = std::move(cb); }

  /// Drives probes and timeouts; call at a cadence finer than the
  /// configured timeouts.  Safe to call with a non-advancing clock.
  void tick(sim::Transport& net, SimTime now);

  /// Handles one SWIM message (caller routes on sim::is_swim_kind).
  void on_message(sim::Transport& net, const sim::Message& msg);

  /// Direct out-of-band evidence from the I/O layer (PeerHealth signals):
  /// a successful exchange proves liveness; a dial/write failure is
  /// stronger than a missing ack and raises a suspicion immediately.
  void observe_alive(NodeId peer);
  void observe_failure(sim::Transport& net, NodeId peer, SimTime now);

  PeerState state(NodeId peer) const noexcept;
  std::uint64_t incarnation(NodeId peer) const noexcept;
  std::uint64_t self_incarnation() const noexcept { return self_incarnation_; }

  /// Confirmed membership transitions so far (deaths + joins).
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Sorted ids of members currently not dead (suspects included —
  /// suspicion is a hypothesis, not a verdict).
  std::vector<NodeId> alive_peers() const;

  const SwimStats& stats() const noexcept { return stats_; }
  const SwimConfig& config() const noexcept { return config_; }

  /// One line per peer: "3:alive/0" style, for stats dumps.
  std::string describe_peers() const;

 private:
  struct Peer {
    PeerState state = PeerState::kAlive;
    std::uint64_t incarnation = 0;
    SimTime suspect_since = 0;
    SimTime next_dead_probe = 0;
  };

  enum class ProbeStage : std::uint8_t { kDirect, kIndirect };
  struct Probe {
    RequestId seq = 0;
    ProbeStage stage = ProbeStage::kDirect;
    SimTime sent_at = 0;
  };

  Peer* peer(NodeId id) noexcept;
  const Peer* peer(NodeId id) const noexcept;

  void send_ping(sim::Transport& net, NodeId target, NodeId on_behalf_of);
  void start_probe(sim::Transport& net, NodeId target, SimTime now);
  void escalate_probe(sim::Transport& net, NodeId target, Probe& probe, SimTime now);
  void suspect(sim::Transport& net, NodeId target, SimTime now);
  void declare_dead(NodeId target);
  void mark_alive(NodeId peer, std::uint64_t incarnation, bool direct);
  void broadcast(sim::Transport& net, sim::MessageKind kind, NodeId subject,
                 std::uint64_t incarnation);
  void refute(sim::Transport& net, std::uint64_t offending_incarnation);
  NodeId next_probe_target();
  void transition();

  NodeId self_;
  SwimConfig config_;
  util::Rng rng_;  // private stream, like FaultyNetwork's

  std::map<NodeId, Peer> members_;  // ordered => deterministic iteration
  std::vector<NodeId> probe_order_;
  std::size_t probe_cursor_ = 0;
  std::map<NodeId, Probe> probes_;  // outstanding, one per target

  SimTime next_probe_at_ = 0;
  RequestId next_seq_ = 1;
  std::uint64_t self_incarnation_ = 0;
  std::uint64_t epoch_ = 0;

  MemberCallback on_death_;
  MemberCallback on_join_;
  std::function<void()> on_transition_;
  SwimStats stats_;
};

}  // namespace adc::membership
