#include "membership/swim.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/logging.h"

namespace adc::membership {

using sim::Message;
using sim::MessageKind;
using sim::Transport;

std::string_view peer_state_name(PeerState state) noexcept {
  switch (state) {
    case PeerState::kAlive:
      return "alive";
    case PeerState::kSuspect:
      return "suspect";
    case PeerState::kDead:
      return "dead";
  }
  return "alive";
}

SwimDetector::SwimDetector(NodeId self, std::vector<NodeId> peers, SwimConfig config)
    : self_(self), config_(config), rng_(config.seed) {
  for (const NodeId peer : peers) {
    if (peer == self_ || peer == kInvalidNode) continue;
    members_.emplace(peer, Peer{});
  }
  for (const auto& [id, peer] : members_) probe_order_.push_back(id);
  rng_.shuffle(probe_order_);
}

SwimDetector::Peer* SwimDetector::peer(NodeId id) noexcept {
  const auto it = members_.find(id);
  return it == members_.end() ? nullptr : &it->second;
}

const SwimDetector::Peer* SwimDetector::peer(NodeId id) const noexcept {
  const auto it = members_.find(id);
  return it == members_.end() ? nullptr : &it->second;
}

PeerState SwimDetector::state(NodeId id) const noexcept {
  const Peer* p = peer(id);
  return p != nullptr ? p->state : PeerState::kAlive;
}

std::uint64_t SwimDetector::incarnation(NodeId id) const noexcept {
  const Peer* p = peer(id);
  return p != nullptr ? p->incarnation : 0;
}

std::vector<NodeId> SwimDetector::alive_peers() const {
  std::vector<NodeId> out;
  for (const auto& [id, p] : members_) {
    if (p.state != PeerState::kDead) out.push_back(id);
  }
  return out;  // members_ is ordered, so this is sorted
}

std::string SwimDetector::describe_peers() const {
  std::string out;
  for (const auto& [id, p] : members_) {
    if (!out.empty()) out += " ";
    out += std::to_string(id) + ":" + std::string(peer_state_name(p.state)) + "/" +
           std::to_string(p.incarnation);
  }
  return out;
}

void SwimDetector::transition() {
  if (on_transition_) on_transition_();
}

void SwimDetector::send_ping(Transport& net, NodeId target, NodeId on_behalf_of) {
  Message ping;
  ping.kind = MessageKind::kSwimPing;
  ping.request_id = next_seq_++;
  ping.sender = self_;
  ping.target = target;
  ping.resolver = target;  // the subject being probed
  ping.version = self_incarnation_;
  ping.client = on_behalf_of;
  ++stats_.pings_sent;
  net.send(std::move(ping));
}

void SwimDetector::start_probe(Transport& net, NodeId target, SimTime now) {
  probes_[target] = Probe{next_seq_, ProbeStage::kDirect, now};
  send_ping(net, target, kInvalidNode);
}

NodeId SwimDetector::next_probe_target() {
  // Round-robin over a privately shuffled order (SWIM's randomized but
  // fair probe schedule); reshuffle on each wrap.
  for (std::size_t scanned = 0; scanned < probe_order_.size(); ++scanned) {
    if (probe_cursor_ >= probe_order_.size()) {
      probe_cursor_ = 0;
      rng_.shuffle(probe_order_);
    }
    const NodeId candidate = probe_order_[probe_cursor_++];
    const Peer* p = peer(candidate);
    if (p == nullptr || p->state == PeerState::kDead) continue;
    if (probes_.count(candidate) != 0) continue;  // probe already outstanding
    return candidate;
  }
  return kInvalidNode;
}

void SwimDetector::escalate_probe(Transport& net, NodeId target, Probe& probe, SimTime now) {
  std::vector<NodeId> relays;
  for (const auto& [id, p] : members_) {
    if (id != target && p.state != PeerState::kDead) relays.push_back(id);
  }
  rng_.shuffle(relays);
  if (relays.size() > static_cast<std::size_t>(config_.ping_req_fanout)) {
    relays.resize(static_cast<std::size_t>(config_.ping_req_fanout));
  }
  probe.stage = ProbeStage::kIndirect;
  probe.sent_at = now;
  if (relays.empty()) return;  // nobody to ask: the indirect timeout decides
  for (const NodeId relay : relays) {
    Message req;
    req.kind = MessageKind::kSwimPingReq;
    req.request_id = next_seq_++;
    req.sender = self_;
    req.target = relay;
    req.resolver = target;  // probe this member for me
    req.version = self_incarnation_;
    ++stats_.ping_reqs_sent;
    net.send(std::move(req));
  }
}

void SwimDetector::suspect(Transport& net, NodeId target, SimTime now) {
  Peer* p = peer(target);
  if (p == nullptr || p->state != PeerState::kAlive) return;
  p->state = PeerState::kSuspect;
  p->suspect_since = now;
  ++stats_.suspicions;
  ADC_LOG_INFO << "swim[" << self_ << "]: suspecting peer " << target;
  // Broadcast so every member starts the same countdown and the subject
  // itself gets the chance to refute with a higher incarnation.
  broadcast(net, MessageKind::kSwimSuspect, target, p->incarnation);
  transition();
}

void SwimDetector::declare_dead(NodeId target) {
  Peer* p = peer(target);
  if (p == nullptr || p->state == PeerState::kDead) return;
  p->state = PeerState::kDead;
  probes_.erase(target);
  ++epoch_;
  ++stats_.deaths;
  ADC_LOG_WARN << "swim[" << self_ << "]: peer " << target << " declared dead (epoch "
               << epoch_ << ")";
  transition();
  if (on_death_) on_death_(target);
}

void SwimDetector::mark_alive(NodeId id, std::uint64_t incarnation, bool direct) {
  Peer* p = peer(id);
  if (p == nullptr) return;
  if (p->state == PeerState::kDead) {
    // Rejoin requires direct evidence — a message from the member itself —
    // and overrides incarnation comparison: a restarted daemon comes back
    // at incarnation 0.
    if (!direct) return;
    p->state = PeerState::kAlive;
    p->incarnation = incarnation;
    p->suspect_since = 0;
    ++epoch_;
    ++stats_.joins;
    ADC_LOG_INFO << "swim[" << self_ << "]: peer " << id << " rejoined (epoch " << epoch_
                 << ")";
    transition();
    if (on_join_) on_join_(id);
    return;
  }
  if (incarnation > p->incarnation) p->incarnation = incarnation;
  if (p->state == PeerState::kSuspect) {
    // Liveness evidence clears suspicion (we converge faster than classic
    // SWIM's strictly-higher-incarnation rule; fine at this cluster size).
    p->state = PeerState::kAlive;
    transition();
  }
}

void SwimDetector::broadcast(Transport& net, MessageKind kind, NodeId subject,
                             std::uint64_t incarnation) {
  for (const auto& [id, p] : members_) {
    if (p.state == PeerState::kDead && id != subject) continue;
    Message msg;
    msg.kind = kind;
    msg.request_id = next_seq_++;
    msg.sender = self_;
    msg.target = id;
    msg.resolver = subject;
    msg.version = incarnation;
    net.send(std::move(msg));
  }
}

void SwimDetector::refute(Transport& net, std::uint64_t offending_incarnation) {
  self_incarnation_ = std::max(self_incarnation_, offending_incarnation) + 1;
  ++stats_.refutations;
  ADC_LOG_INFO << "swim[" << self_ << "]: refuting suspicion, incarnation now "
               << self_incarnation_;
  broadcast(net, MessageKind::kSwimAlive, self_, self_incarnation_);
  transition();
}

void SwimDetector::observe_alive(NodeId id) { mark_alive(id, 0, /*direct=*/true); }

void SwimDetector::observe_failure(Transport& net, NodeId id, SimTime now) {
  // A dial/write failure is direct negative evidence — skip the probe wait
  // and raise the suspicion immediately (the subject can still refute).
  suspect(net, id, now);
}

void SwimDetector::on_message(Transport& net, const Message& msg) {
  switch (msg.kind) {
    case MessageKind::kSwimPing: {
      // The prober proves itself alive at its own incarnation.
      mark_alive(msg.sender, msg.version, /*direct=*/true);
      Message ack;
      ack.kind = MessageKind::kSwimAck;
      ack.request_id = msg.request_id;
      ack.sender = self_;
      ack.target = msg.sender;
      ack.resolver = self_;  // subject of the ack: this member
      ack.version = self_incarnation_;
      ack.client = msg.client;  // original prober of a relayed ping
      ++stats_.acks_sent;
      net.send(std::move(ack));
      break;
    }
    case MessageKind::kSwimAck: {
      // Direct evidence about the sender; indirect about the subject when
      // the ack was relayed on our behalf.
      mark_alive(msg.sender, msg.sender == msg.resolver ? msg.version : 0, /*direct=*/true);
      if (msg.resolver != msg.sender) {
        mark_alive(msg.resolver, msg.version, /*direct=*/false);
      }
      probes_.erase(msg.resolver);
      if (msg.client != kInvalidNode && msg.client != self_) {
        // We relayed the ping; forward the proof to the original prober.
        Message fwd = msg;
        fwd.sender = self_;
        fwd.target = msg.client;
        fwd.client = kInvalidNode;
        net.send(std::move(fwd));
      }
      break;
    }
    case MessageKind::kSwimPingReq: {
      mark_alive(msg.sender, msg.version, /*direct=*/true);
      ++stats_.relayed_probes;
      send_ping(net, msg.resolver, /*on_behalf_of=*/msg.sender);
      break;
    }
    case MessageKind::kSwimSuspect: {
      if (msg.resolver == self_) {
        refute(net, msg.version);
        break;
      }
      mark_alive(msg.sender, 0, /*direct=*/true);
      Peer* p = peer(msg.resolver);
      if (p != nullptr && p->state == PeerState::kAlive && msg.version >= p->incarnation) {
        p->state = PeerState::kSuspect;
        p->suspect_since = net.now();
        ++stats_.suspicions;
        transition();
      }
      break;
    }
    case MessageKind::kSwimAlive: {
      // Only the subject itself broadcasts kSwimAlive, so sender evidence
      // and subject evidence coincide.
      mark_alive(msg.resolver, msg.version, /*direct=*/msg.sender == msg.resolver);
      break;
    }
    case MessageKind::kSwimDead: {
      if (msg.resolver == self_) {
        refute(net, msg.version);
        break;
      }
      mark_alive(msg.sender, 0, /*direct=*/true);
      declare_dead(msg.resolver);  // no re-broadcast: the origin already did
      break;
    }
    default:
      assert(false && "non-SWIM message routed to SwimDetector");
      break;
  }
}

void SwimDetector::tick(Transport& net, SimTime now) {
  // 1. Outstanding-probe timeouts.
  std::vector<NodeId> escalate;
  std::vector<NodeId> timed_out;
  for (const auto& [target, probe] : probes_) {
    if (probe.stage == ProbeStage::kDirect && now - probe.sent_at >= config_.ack_timeout) {
      escalate.push_back(target);
    } else if (probe.stage == ProbeStage::kIndirect &&
               now - probe.sent_at >= config_.indirect_timeout) {
      timed_out.push_back(target);
    }
  }
  for (const NodeId target : escalate) {
    const auto it = probes_.find(target);
    if (it != probes_.end()) escalate_probe(net, target, it->second, now);
  }
  for (const NodeId target : timed_out) {
    probes_.erase(target);
    suspect(net, target, now);
  }

  // 2. Suspicion expiry.
  std::vector<NodeId> expired;
  for (const auto& [id, p] : members_) {
    if (p.state == PeerState::kSuspect && now - p.suspect_since >= config_.suspect_timeout) {
      expired.push_back(id);
    }
  }
  for (const NodeId id : expired) {
    broadcast(net, MessageKind::kSwimDead, id, members_.at(id).incarnation);
    declare_dead(id);
    members_.at(id).next_dead_probe = now + config_.dead_probe_interval;
  }

  // 3. The periodic direct probe.
  if (now >= next_probe_at_) {
    const NodeId target = next_probe_target();
    if (target != kInvalidNode) start_probe(net, target, now);
    next_probe_at_ = now + config_.ping_interval;
  }

  // 4. Slow probes toward dead members: the rejoin path after a partition
  // heals or a daemon restarts.  Acks are not tracked — any direct message
  // from a dead member rejoins it.
  for (auto& [id, p] : members_) {
    if (p.state != PeerState::kDead) continue;
    if (now >= p.next_dead_probe) {
      send_ping(net, id, kInvalidNode);
      p.next_dead_probe = now + config_.dead_probe_interval;
    }
  }
}

}  // namespace adc::membership
