#include "membership/member_agent.h"

#include <cassert>

namespace adc::membership {

namespace {

SwimConfig derive_swim_config(SwimConfig swim, NodeId self) {
  // Same per-node derivation the daemon uses for its I/O rng: distinct
  // private streams per member, all reproducible from one base seed.
  swim.seed = swim.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(self) + 1;
  return swim;
}

}  // namespace

MemberAgent::MemberAgent(std::unique_ptr<sim::Node> inner, std::vector<NodeId> peers,
                         MembershipConfig config)
    : sim::Node(inner->id(), inner->kind(), inner->name()),
      inner_(std::move(inner)),
      config_(config),
      detector_(id(), std::move(peers), derive_swim_config(config.swim, inner_->id())),
      repair_(config.repair) {
  detector_.set_on_death([this](NodeId peer) {
    if (hooks_.peer_dead) hooks_.peer_dead(peer);
  });
  detector_.set_on_join([this](NodeId peer) {
    if (hooks_.peer_joined) hooks_.peer_joined(peer);
  });
  // Transitions can happen inside on_message, where no tick clock reading
  // is in scope; latch and arm the repair budget at the next tick.
  detector_.set_on_transition([this] { transition_pending_ = true; });
}

void MemberAgent::on_message(sim::Transport& net, const sim::Message& msg) {
  if (sim::is_swim_kind(msg.kind)) {
    detector_.on_message(net, msg);
    return;
  }
  inner_->on_message(net, msg);
}

void MemberAgent::tick(sim::Transport& net, SimTime now) {
  detector_.tick(net, now);
  if (transition_pending_) {
    repair_.note_transition(now);
    transition_pending_ = false;
  }
  if (repair_.next_round(now)) {
    if (hooks_.send_repair) {
      for (const NodeId peer : detector_.alive_peers()) {
        hooks_.send_repair(net, peer, config_.repair.batch);
      }
    }
    if (hooks_.send_restripe) hooks_.send_restripe(net);
  }
  // Re-stripe work outlives the fixed per-transition round budget (a big
  // directory takes many byte-budgeted rounds to re-home), so keep the
  // scheduler armed while any repair item is queued.  Termination is
  // guaranteed: every item either acks or abandons after its retries.
  if (!repair_.armed() && hooks_.restripe_pending && hooks_.restripe_pending()) {
    repair_.note_transition(now);
  }
}

}  // namespace adc::membership
