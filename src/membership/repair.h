// Transition-gated anti-entropy scheduling.
//
// Resolver tables only diverge when membership churns (a partition, a
// crash, a rejoin) — steady state keeps them consistent through the
// request/backwarding path itself.  So repair rounds are not a free-running
// background process: the scheduler arms for a fixed number of rounds each
// time the failure detector reports a transition, then goes quiet again.
// A zero-churn run therefore sends *zero* repair traffic, which is what
// keeps detector-enabled simulations bit-identical to detector-free ones.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace adc::membership {

struct RepairConfig {
  /// Gap between successive repair rounds while armed (transport clock
  /// units: sim ticks under the Simulator, microseconds live).
  SimTime interval = 400;

  /// Rounds fired per detector transition.  Each membership change
  /// (death, join, suspicion, refutation) re-arms the full budget, so a
  /// partition heal — which surfaces as a burst of rejoin transitions —
  /// buys enough rounds to reconverge even when single offers collide.
  std::uint32_t rounds_per_transition = 3;

  /// Max resolver opinions offered to each peer per round.
  std::size_t batch = 64;
};

/// Decides *when* a repair round fires; the owner decides what a round
/// does (offer opinions to every currently-alive peer).
class RepairScheduler {
 public:
  explicit RepairScheduler(RepairConfig config) : config_(config) {}

  /// Arms (or re-arms) the round budget.  Call on any detector transition.
  void note_transition(SimTime now) {
    rounds_remaining_ = config_.rounds_per_transition;
    if (next_round_at_ < now + config_.interval) next_round_at_ = now + config_.interval;
  }

  /// True exactly when a round should fire now; consumes one round.
  bool next_round(SimTime now) {
    if (rounds_remaining_ == 0 || now < next_round_at_) return false;
    --rounds_remaining_;
    next_round_at_ = now + config_.interval;
    ++rounds_fired_;
    return true;
  }

  bool armed() const noexcept { return rounds_remaining_ > 0; }
  std::uint64_t rounds_fired() const noexcept { return rounds_fired_; }
  const RepairConfig& config() const noexcept { return config_; }

 private:
  RepairConfig config_;
  std::uint32_t rounds_remaining_ = 0;
  SimTime next_round_at_ = 0;
  std::uint64_t rounds_fired_ = 0;
};

}  // namespace adc::membership
