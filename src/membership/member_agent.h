// MemberAgent: wraps any sim::Node with a SwimDetector and a
// RepairScheduler so membership runs *next to* the protocol agent, not
// inside it.  The wrapped agent stays byte-for-byte the code that runs
// without membership; the wrapper routes SWIM control traffic to the
// detector and everything else (requests, replies, repair opinions) to the
// inner node, and a periodic tick() — driven by the simulator's event
// queue or the daemon's poll loop — advances probes, timeouts, and repair
// rounds.
//
// Reactions to membership changes are injected as hooks, because they are
// scheme-specific: ADC prunes mapping tables and shrinks its forwarding
// membership; consistent-hashing schemes rebuild their owner map.  The
// wrapper itself knows nothing about either.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "membership/repair.h"
#include "membership/swim.h"
#include "sim/node.h"
#include "sim/transport.h"
#include "util/types.h"

namespace adc::membership {

struct MembershipConfig {
  SwimConfig swim;
  RepairConfig repair;

  /// Cadence at which the host drives MemberAgent::tick (transport clock
  /// units).  Must be finer than the SWIM timeouts.
  SimTime tick_every = 50;
};

class MemberAgent final : public sim::Node {
 public:
  struct Hooks {
    /// Confirmed death / rejoin of a peer (after the epoch advanced).
    std::function<void(NodeId)> peer_dead;
    std::function<void(NodeId)> peer_joined;

    /// Fire one anti-entropy batch toward `peer` (wired to
    /// core::AdcProxy::send_anti_entropy for the ADC scheme, absent for
    /// schemes with no resolver tables).
    std::function<void(sim::Transport&, NodeId, std::size_t)> send_repair;

    /// Fire one proactive re-stripe repair round (wired to
    /// store::ErasureTier::restripe_round; absent when the erasure tier or
    /// its repair is off).  Rides the same transition-gated cadence as
    /// send_repair, and `restripe_pending` keeps the scheduler re-armed
    /// while repair work remains queued — bounded, because queued items
    /// abandon after their retry budget.
    std::function<void(sim::Transport&)> send_restripe;
    std::function<bool()> restripe_pending;
  };

  /// `peers` is the candidate membership this node watches (its own id is
  /// filtered out).  Seeds are derived per node from config.swim.seed so
  /// each member's private probe order differs but stays reproducible.
  MemberAgent(std::unique_ptr<sim::Node> inner, std::vector<NodeId> peers,
              MembershipConfig config);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  void on_message(sim::Transport& net, const sim::Message& msg) override;

  /// Advances the detector and, when armed, fires a repair round offering
  /// opinions to every currently-alive peer.
  void tick(sim::Transport& net, SimTime now);

  sim::Node& inner() noexcept { return *inner_; }
  const sim::Node& inner() const noexcept { return *inner_; }
  SwimDetector& detector() noexcept { return detector_; }
  const SwimDetector& detector() const noexcept { return detector_; }
  const RepairScheduler& repair() const noexcept { return repair_; }
  const MembershipConfig& config() const noexcept { return config_; }

 private:
  std::unique_ptr<sim::Node> inner_;
  MembershipConfig config_;
  SwimDetector detector_;
  RepairScheduler repair_;
  Hooks hooks_;
  bool transition_pending_ = false;
};

}  // namespace adc::membership
