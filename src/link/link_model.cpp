#include "link/link_model.h"

#include <algorithm>

namespace adc::link {

void LinkModel::set_pair_rate(NodeId from, NodeId to, std::uint64_t bytes_per_sec) {
  pair_rates_[{from, to}] = bytes_per_sec;
}

std::uint64_t LinkModel::egress_rate(NodeId node) const noexcept {
  if (node == origin_) return config_.origin_egress_bytes_per_sec;
  return config_.node_egress_bytes_per_sec;
}

std::uint64_t LinkModel::pair_rate(NodeId from, NodeId to) const noexcept {
  const auto it = pair_rates_.find({from, to});
  if (it != pair_rates_.end()) return it->second;
  return config_.pair_bytes_per_sec;
}

std::uint64_t LinkModel::transfer_rate(NodeId from, NodeId to) const noexcept {
  const std::uint64_t pair = pair_rate(from, to);
  const std::uint64_t egress = egress_rate(from);
  if (pair == 0) return egress;
  if (egress == 0) return pair;
  return std::min(pair, egress);
}

std::uint64_t LinkModel::transfer_bytes(const sim::Message& msg) const noexcept {
  return std::max<std::uint64_t>({msg.payload_bytes, config_.control_bytes, 1});
}

SimTime LinkModel::serialization_ticks(std::uint64_t bytes,
                                       std::uint64_t bytes_per_sec) const noexcept {
  if (bytes_per_sec == 0 || bytes == 0) return 0;
  // 128-bit intermediate: bytes * ticks_per_second overflows 64 bits for
  // multi-gigabyte transfers at fine tick resolutions.
  const unsigned __int128 num =
      static_cast<unsigned __int128>(bytes) * config_.ticks_per_second + bytes_per_sec - 1;
  return static_cast<SimTime>(num / bytes_per_sec);
}

}  // namespace adc::link
