// Link capacities for the simulated network.
//
// The discrete-event simulator charges a fixed per-hop latency regardless
// of payload size, so a 256KB degraded-read reconstruction costs the same
// as a 128B control ping.  LinkConfig/LinkModel add the missing dimension:
// every peer pair gets a capacity in bytes/sec, every node an egress
// capacity shared by all of its links, and the origin its own egress knob
// (the one the EXT-BW sweep turns).  The model only answers rate/size
// questions — queueing and fairness live in TransferScheduler.
//
// Time scale: sim latencies are small integers (1/2/10 ticks), and
// `ticks_per_second` fixes what a tick means in wall terms.  The default
// of 1000 reads one tick as one millisecond, so a 256KB object through a
// 1MB/s link costs ~256 ticks of serialization — dwarfing the 10-tick
// origin propagation exactly the way a constrained WAN link would.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "sim/message.h"
#include "util/types.h"

namespace adc::link {

struct LinkConfig {
  /// Master switch: disabled means no TransferScheduler is installed and
  /// the simulator is bit-identical to one without a link layer.
  bool enabled = false;

  /// Sim-ticks per second of modeled wall time; converts bytes/sec
  /// capacities into serialization ticks.
  std::uint64_t ticks_per_second = 1000;

  /// Capacity of any single peer-pair link, bytes/sec (0 = unlimited).
  std::uint64_t pair_bytes_per_sec = 0;

  /// Egress capacity shared by every link of a non-origin node
  /// (0 = unlimited).
  std::uint64_t node_egress_bytes_per_sec = 0;

  /// Egress capacity of the origin server (0 = unlimited).  Capping this
  /// is what makes byte hit rate dominate request hit rate: every miss
  /// competes for the same constrained pipe.
  std::uint64_t origin_egress_bytes_per_sec = 0;

  /// Accounted wire size of a message that carries no payload (requests,
  /// SWIM, anti-entropy, chunk lookups) — the frame itself is not free.
  std::uint64_t control_bytes = 128;

  /// Deficit-round-robin quantum and pacing burst: a transfer occupies
  /// its egress for at most this many bytes before destinations sharing
  /// the egress get a turn, so a 256KB object cannot lock out a ping.
  std::uint64_t pacing_bytes = 64 * 1024;
};

class LinkModel {
 public:
  LinkModel() = default;
  LinkModel(LinkConfig config, NodeId origin) : config_(config), origin_(origin) {}

  const LinkConfig& config() const noexcept { return config_; }
  bool enabled() const noexcept { return config_.enabled; }
  NodeId origin() const noexcept { return origin_; }

  /// Directional per-pair capacity override; wins over pair_bytes_per_sec.
  void set_pair_rate(NodeId from, NodeId to, std::uint64_t bytes_per_sec);

  /// Egress capacity of `node`'s uplink (0 = unlimited).
  std::uint64_t egress_rate(NodeId node) const noexcept;

  /// Capacity of the (from -> to) pair link (0 = unlimited).
  std::uint64_t pair_rate(NodeId from, NodeId to) const noexcept;

  /// Bottleneck rate for one transfer: the tighter of the pair link and
  /// the sender's egress (0 = unlimited end to end).
  std::uint64_t transfer_rate(NodeId from, NodeId to) const noexcept;

  /// Accounted wire size of a message: its payload, else a control frame.
  /// Never 0, so every modeled transfer costs at least one tick.
  std::uint64_t transfer_bytes(const sim::Message& msg) const noexcept;

  /// Serialization delay of `bytes` at `bytes_per_sec`, in sim ticks,
  /// rounded up (>= 1 for bytes > 0); 0 when the rate is unlimited.
  SimTime serialization_ticks(std::uint64_t bytes, std::uint64_t bytes_per_sec) const noexcept;

 private:
  LinkConfig config_;
  NodeId origin_ = kInvalidNode;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> pair_rates_;
};

}  // namespace adc::link
