#include "link/transfer_scheduler.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace adc::link {

TransferScheduler::TransferScheduler(sim::Simulator& sim, LinkModel model)
    : sim_(sim), model_(std::move(model)), wait_(1 << 16) {}

bool TransferScheduler::on_send(const sim::Message& msg, sim::NodeKind /*from*/,
                                sim::NodeKind /*to*/, SimTime now, SimTime base_delay,
                                Deliver deliver) {
  const std::uint64_t rate = model_.transfer_rate(msg.sender, msg.target);
  if (rate == 0) {
    ++stats_.passthrough;
    return false;  // unlimited end to end: plain delivery, bit-identical
  }

  const std::uint64_t bytes = model_.transfer_bytes(msg);
  ++stats_.transfers;
  stats_.bytes += bytes;

  Egress& e = egress_[msg.sender];
  auto& q = e.queues[msg.target];
  if (q.empty()) e.ring.push_back(msg.target);

  Transfer t;
  t.deliver = std::move(deliver);
  t.remaining = bytes;
  t.rate = rate;
  t.enqueued = now;
  t.base_delay = base_delay;
  q.push_back(std::move(t));

  e.backlog += bytes;
  stats_.max_backlog_bytes = std::max(stats_.max_backlog_bytes, e.backlog);

  kick(msg.sender);
  return true;
}

void TransferScheduler::kick(NodeId node) {
  Egress& e = egress_[node];
  if (e.busy) return;

  // Drop drained destinations off the ring front.
  while (!e.ring.empty()) {
    const NodeId dest = e.ring.front();
    const auto qit = e.queues.find(dest);
    if (qit != e.queues.end() && !qit->second.empty()) break;
    e.ring.pop_front();
    e.deficit.erase(dest);
    if (qit != e.queues.end()) e.queues.erase(qit);
  }
  if (e.ring.empty()) return;

  const NodeId dest = e.ring.front();
  Transfer& t = e.queues[dest].front();

  // One quantum of credit per ring visit; the burst spends accumulated
  // credit, so destinations short-changed by a sub-quantum burst catch up
  // on their next turn (classic DRR byte fairness).
  std::uint64_t& deficit = e.deficit[dest];
  deficit += model_.config().pacing_bytes;
  const std::uint64_t burst = std::min(t.remaining, deficit);
  deficit -= burst;

  if (!t.started) {
    t.started = true;
    const SimTime waited = sim_.now() - t.enqueued;
    wait_.add(static_cast<double>(waited));
    stats_.total_wait += waited;
    stats_.max_wait = std::max(stats_.max_wait, waited);
    if (waited > 0) ++stats_.queued;
  }

  ++stats_.bursts;
  e.busy = true;
  const SimTime tx = model_.serialization_ticks(burst, t.rate);
  sim_.schedule_after(tx, [this, node, dest, burst]() { on_burst_done(node, dest, burst); });
}

void TransferScheduler::on_burst_done(NodeId node, NodeId dest, std::uint64_t burst) {
  Egress& e = egress_[node];
  e.busy = false;

  // The serving destination sits at the ring front for the whole burst:
  // kick() never rotates while the egress is busy, and arrivals only
  // append to the back.
  assert(!e.ring.empty() && e.ring.front() == dest);
  auto& q = e.queues[dest];
  assert(!q.empty());
  Transfer& t = q.front();
  assert(burst <= t.remaining && burst <= e.backlog);

  t.remaining -= burst;
  e.backlog -= burst;

  // End of this destination's turn either way: rotate so destinations
  // sharing the egress interleave at pacing granularity.
  e.ring.pop_front();
  if (t.remaining == 0) {
    // Fully serialized; the last byte still propagates for the latency
    // the plain simulator would charge.
    t.deliver(sim_.now() + t.base_delay);
    q.pop_front();
    if (q.empty()) {
      e.queues.erase(dest);
      e.deficit.erase(dest);
    } else {
      e.ring.push_back(dest);
    }
  } else {
    e.ring.push_back(dest);
  }

  kick(node);
}

std::uint64_t TransferScheduler::backlog_bytes(NodeId node) const noexcept {
  const auto it = egress_.find(node);
  return it == egress_.end() ? 0 : it->second.backlog;
}

std::size_t TransferScheduler::queue_depth(NodeId node) const noexcept {
  const auto it = egress_.find(node);
  if (it == egress_.end()) return 0;
  std::size_t depth = 0;
  for (const auto& [dest, q] : it->second.queues) depth += q.size();
  return depth;
}

}  // namespace adc::link
