// Transfer scheduling over finite-capacity links.
//
// Implements the sim::LinkHook seam: every message sent over a link with a
// finite bottleneck rate becomes a queued *transfer* at the sender's
// egress.  Delivery time is then
//
//     queueing delay  (waiting for earlier transfers to serialize)
//   + serialization   (ceil(bytes * ticks_per_second / rate) ticks)
//   + base delay      (the propagation latency the plain simulator charges)
//
// Fairness between destinations sharing an egress is deficit round-robin:
// each destination keeps a FIFO of transfers and a deficit counter; a ring
// visit grants one quantum (LinkConfig::pacing_bytes) of credit and serves
// one burst of at most the accumulated credit, then rotates.  Large
// objects are therefore *paced* — a 256KB reconstruction is served as
// quantum-sized bursts interleaved with whatever else shares the egress —
// while byte fairness is preserved across visits by the carried deficit.
//
// Everything runs on the simulator's event queue (the scheduler owns
// per-burst service events), so runs remain single-threaded and
// bit-reproducible.  Transfers over unlimited links are declined back to
// the simulator: a config with no finite rates is bit-identical to no
// hook at all.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>

#include "link/link_model.h"
#include "sim/link_hook.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "util/types.h"

namespace adc::link {

struct TransferStats {
  std::uint64_t transfers = 0;          // sends over finite-rate links
  std::uint64_t passthrough = 0;        // sends declined (unlimited links)
  std::uint64_t queued = 0;             // transfers that waited to start
  std::uint64_t bursts = 0;             // pacing bursts served
  std::uint64_t bytes = 0;              // bytes through modeled links
  std::uint64_t max_backlog_bytes = 0;  // worst single-egress backlog seen
  SimTime total_wait = 0;               // summed queue waits
  SimTime max_wait = 0;                 // worst single queue wait
};

class TransferScheduler final : public sim::LinkHook {
 public:
  /// `sim` must outlive the scheduler; the scheduler must be installed via
  /// Simulator::set_link_hook before traffic starts.
  TransferScheduler(sim::Simulator& sim, LinkModel model);

  bool on_send(const sim::Message& msg, sim::NodeKind from, sim::NodeKind to, SimTime now,
               SimTime base_delay, Deliver deliver) override;

  /// Bytes queued or in flight at `node`'s egress right now — the load
  /// signal the erasure tier uses to prefer lightly loaded stripe peers.
  std::uint64_t backlog_bytes(NodeId node) const noexcept;

  /// Transfers waiting at `node`'s egress (the in-service one included).
  std::size_t queue_depth(NodeId node) const noexcept;

  const TransferStats& stats() const noexcept { return stats_; }

  /// Queue-wait distribution (ticks from enqueue to first burst).
  const sim::PercentileTracker& wait_tracker() const noexcept { return wait_; }

  const LinkModel& model() const noexcept { return model_; }

 private:
  struct Transfer {
    Deliver deliver;
    std::uint64_t remaining = 0;
    std::uint64_t rate = 0;  // bottleneck bytes/sec for this transfer
    SimTime enqueued = 0;
    SimTime base_delay = 0;
    bool started = false;
  };

  struct Egress {
    bool busy = false;           // a burst is serializing right now
    std::uint64_t backlog = 0;   // bytes accepted but not yet transmitted
    std::list<NodeId> ring;      // DRR ring of destinations with backlog
    std::unordered_map<NodeId, std::deque<Transfer>> queues;
    std::unordered_map<NodeId, std::uint64_t> deficit;
  };

  /// Starts the next burst at `node`'s egress if it is idle and backlogged.
  void kick(NodeId node);
  void on_burst_done(NodeId node, NodeId dest, std::uint64_t burst);

  sim::Simulator& sim_;
  LinkModel model_;
  std::unordered_map<NodeId, Egress> egress_;
  TransferStats stats_;
  sim::PercentileTracker wait_;
};

}  // namespace adc::link
