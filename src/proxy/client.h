// The request driver: replays a request stream against the proxy system.
//
// One Client node stands in for the paper's Polygraph robot population.
// It keeps `concurrency` requests outstanding (closed loop): each reply
// triggers the next injection, so the request order every proxy observes
// is fully determined by the trace and the seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "sim/node.h"
#include "sim/simulator.h"
#include "sim/version.h"
#include "util/types.h"

namespace adc::proxy {

/// Source of object ids to request, in order.  Exhaustion ends the run.
class RequestStream {
 public:
  virtual ~RequestStream() = default;
  virtual std::optional<ObjectId> next() = 0;
};

/// Replays a fixed in-memory sequence (tests and small examples).
class VectorStream final : public RequestStream {
 public:
  explicit VectorStream(std::vector<ObjectId> objects) : objects_(std::move(objects)) {}

  std::optional<ObjectId> next() override {
    if (cursor_ >= objects_.size()) return std::nullopt;
    return objects_[cursor_++];
  }

 private:
  std::vector<ObjectId> objects_;
  std::size_t cursor_ = 0;
};

/// How the client picks the entry proxy for each request.
enum class EntryPolicy {
  kRandom,      // uniform over all proxies (paper's distributed clients)
  kRoundRobin,  // deterministic rotation
};

class Client final : public sim::Node {
 public:
  /// `stream` must outlive the client.  `concurrency` >= 1 requests are
  /// kept in flight.
  Client(NodeId id, std::string name, RequestStream& stream,
         std::vector<NodeId> proxies, EntryPolicy policy = EntryPolicy::kRandom,
         int concurrency = 1);

  /// Schedules the initial injections; call once before Simulator::run().
  void start(sim::Simulator& sim);

  /// Registers a callback fired when exactly `completed` requests have
  /// finished — drivers use this to inject faults or membership changes at
  /// a trace-relative point.  Multiple callbacks per milestone compose.
  void at_completed(std::uint64_t completed, std::function<void()> callback);

  /// Enables staleness accounting: hits whose reply version lags the
  /// oracle's current version are counted as stale.
  void set_version_oracle(sim::VersionOraclePtr oracle) { oracle_ = std::move(oracle); }

  /// Per-request deadline in simulated ticks (0 disables, the default).
  /// When a request's deadline fires before its reply, the request counts
  /// as failed (metrics.on_request_failed) and its slot reinjects, so a
  /// lossy network cannot stall the closed loop.  A reply arriving after
  /// its deadline is ignored.  Must be set before start(); with the
  /// timeout off no extra events are scheduled, keeping fault-free runs
  /// bit-identical to pre-timeout behavior.
  void set_request_timeout(SimTime timeout) { request_timeout_ = timeout; }

  /// The client is the simulation-side load driver (the TCP runtime's
  /// adc_loadgen replaces it), so unlike the proxy agents it needs the full
  /// Simulator — scheduling and metrics — captured in start().
  void on_message(sim::Transport& net, const sim::Message& msg) override;

  std::uint64_t issued() const noexcept { return issued_; }
  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t failed() const noexcept { return failed_; }
  std::uint64_t duplicate_replies() const noexcept { return duplicate_replies_; }
  bool drained() const noexcept { return drained_ && issued_ == completed_ + failed_; }

 private:
  void inject_next(sim::Simulator& sim);
  NodeId pick_entry(sim::Simulator& sim);

  sim::Simulator* sim_ = nullptr;  // set by start()
  RequestStream& stream_;
  std::vector<NodeId> proxies_;
  EntryPolicy policy_;
  int concurrency_;
  std::size_t round_robin_cursor_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t duplicate_replies_ = 0;
  SimTime request_timeout_ = 0;  // 0 = off
  /// Requests in flight; only consulted when faults can lose or duplicate
  /// replies (every reply matches an outstanding id in a fault-free run).
  std::unordered_set<RequestId> outstanding_;
  bool drained_ = false;
  std::map<std::uint64_t, std::vector<std::function<void()>>> milestones_;
  sim::VersionOraclePtr oracle_;
};

}  // namespace adc::proxy
