// The origin server: resolves every request that reaches it (the paper
// assumes no message loss and guaranteed resolution at the origin).
#pragma once

#include <cstdint>
#include <utility>

#include "sim/node.h"
#include "sim/transport.h"
#include "sim/version.h"

namespace adc::proxy {

class OriginServer final : public sim::Node {
 public:
  /// `oracle` (optional) stamps every reply with the object's current
  /// version for staleness accounting.
  OriginServer(NodeId id, std::string name, sim::VersionOraclePtr oracle = nullptr)
      : Node(id, sim::NodeKind::kOrigin, std::move(name)), oracle_(std::move(oracle)) {}

  void on_message(sim::Transport& net, const sim::Message& msg) override;

  std::uint64_t requests_served() const noexcept { return requests_served_; }

 private:
  sim::VersionOraclePtr oracle_;
  std::uint64_t requests_served_ = 0;
};

}  // namespace adc::proxy
