// The origin server: resolves every request that reaches it (the paper
// assumes no message loss and guaranteed resolution at the origin).
#pragma once

#include <cstdint>
#include <utility>

#include "sim/node.h"
#include "sim/transport.h"
#include "sim/version.h"
#include "store/payload.h"

namespace adc::proxy {

class OriginServer final : public sim::Node {
 public:
  /// `oracle` (optional) stamps every reply with the object's current
  /// version for staleness accounting.
  OriginServer(NodeId id, std::string name, sim::VersionOraclePtr oracle = nullptr)
      : Node(id, sim::NodeKind::kOrigin, std::move(name)), oracle_(std::move(oracle)) {}

  void on_message(sim::Transport& net, const sim::Message& msg) override;

  /// Payload store: every reply gets stamped with the object's synthetic
  /// size so byte accounting starts at the authoritative source.  Null
  /// (the default) keeps payload_bytes at 0 — the store-disabled mode.
  void set_sizer(store::PayloadStorePtr sizer) { sizer_ = std::move(sizer); }

  std::uint64_t requests_served() const noexcept { return requests_served_; }
  std::uint64_t bytes_served() const noexcept { return bytes_served_; }

 private:
  sim::VersionOraclePtr oracle_;
  store::PayloadStorePtr sizer_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t bytes_served_ = 0;
};

}  // namespace adc::proxy
