// Hashing-based distributed caching baselines (paper Section V.1.1).
//
// One proxy class covers CARP, consistent hashing and rendezvous hashing:
// the allocation scheme is abstracted behind OwnerMap.  Protocol, following
// the paper's description of its CARP baseline:
//   1. the entry proxy checks its local cache;
//   2. on miss it forwards to the hash owner;
//   3. the owner checks its cache; on miss it fetches from the origin and
//      caches under LRU (policy configurable);
//   4. the reply goes *directly to the client, bypassing the first proxy*.
// An optional entry-caching mode routes the reply through the entry proxy
// (which then caches too) for the baseline ablation.
//
// With the payload store enabled the proxy additionally (a) accounts every
// hit/fetch in bytes, (b) evicts under a byte budget with size-aware
// policies, and (c) hosts an erasure tier: owners stripe fetched objects
// across peers, and once SWIM confirms a member dead, a miss on an object
// whose chunks survive is answered by a degraded read (reconstruction from
// k surviving chunks) instead of an origin refetch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/policies.h"
#include "hash/carp.h"
#include "hash/consistent_hash.h"
#include "hash/rendezvous.h"
#include "sim/node.h"
#include "sim/transport.h"
#include "store/erasure_tier.h"
#include "store/payload.h"
#include "util/types.h"

namespace adc::proxy {

/// Global object-to-proxy allocation function shared by all members.
class OwnerMap {
 public:
  virtual ~OwnerMap() = default;
  virtual NodeId owner(ObjectId object) const = 0;
};

class CarpOwnerMap final : public OwnerMap {
 public:
  explicit CarpOwnerMap(hash::CarpArray array) : array_(std::move(array)) {}
  NodeId owner(ObjectId object) const override { return array_.owner(object); }
  const hash::CarpArray& array() const noexcept { return array_; }

 private:
  hash::CarpArray array_;
};

class RingOwnerMap final : public OwnerMap {
 public:
  explicit RingOwnerMap(hash::ConsistentHashRing ring) : ring_(std::move(ring)) {}
  NodeId owner(ObjectId object) const override { return ring_.owner(object); }

 private:
  hash::ConsistentHashRing ring_;
};

class RendezvousOwnerMap final : public OwnerMap {
 public:
  explicit RendezvousOwnerMap(hash::RendezvousHash hrw) : hrw_(std::move(hrw)) {}
  NodeId owner(ObjectId object) const override { return hrw_.owner(object); }

 private:
  hash::RendezvousHash hrw_;
};

struct HashingProxyStats {
  std::uint64_t requests_received = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t forwards_to_owner = 0;
  std::uint64_t forwards_to_origin = 0;
  std::uint64_t owned_objects_served = 0;
  std::uint64_t degraded_replies = 0;  // origin replies relayed for requests that
                                       // were rerouted around a dead owner
  std::uint64_t membership_epoch = 0;  // confirmed membership transitions applied
  std::uint64_t owner_rebuilds = 0;    // owner maps recomputed (== epoch today)
  double last_reshuffle_fraction = 0.0;  // share of sampled objects whose owner
                                         // moved in the latest rebuild
  double max_reshuffle_fraction = 0.0;   // worst rebuild observed this run

  // Byte accounting (0 while the payload store is disabled).
  std::uint64_t payload_bytes_served = 0;   // bytes of hits + degraded reads
  std::uint64_t payload_bytes_fetched = 0;  // bytes fetched from the origin
  std::uint64_t degraded_reads_served = 0;  // misses answered by reconstruction
};

class HashingProxy final : public sim::Node {
 public:
  /// Rebuilds an OwnerMap from a membership (ids of the live proxies).
  /// Captures whatever naming / load-factor context the scheme needs.
  using OwnerMapFactory =
      std::function<std::shared_ptr<const OwnerMap>(const std::vector<NodeId>&)>;

  /// Objects sampled when measuring how much of the key space a rebuild
  /// reshuffled (ids 0..kReshuffleSample-1 stand in for the URL space).
  static constexpr ObjectId kReshuffleSample = 4096;

  /// `owners` is shared by every member proxy.  `cache_capacity` matches
  /// the ADC caching-table size for a fair hit-rate comparison.
  HashingProxy(NodeId id, std::string name, std::shared_ptr<const OwnerMap> owners,
               NodeId origin, std::size_t cache_capacity,
               cache::Policy policy = cache::Policy::kLru, bool entry_caching = false);

  void on_message(sim::Transport& net, const sim::Message& msg) override;

  const HashingProxyStats& stats() const noexcept { return stats_; }
  const cache::CacheSet& cache() const noexcept { return *cache_; }
  std::size_t pending() const noexcept { return pending_.size(); }

  /// Attaches the payload store: replaces the cache with a byte-budgeted,
  /// size-aware variant of the same policy and (when the store's erasure
  /// config asks for it) hosts an ErasureTier over the deployment's
  /// proxies.  Must run before traffic starts.
  void enable_store(const store::StoreContext& ctx);

  const store::ErasureTier* erasure() const noexcept { return erasure_.get(); }

  /// Mutable tier access for the hosts that drive background repair
  /// rounds (membership hooks, the live daemon).  Null while no tier.
  store::ErasureTier* erasure_tier() noexcept { return erasure_.get(); }

  /// Wires a link-load oracle into the hosted erasure tier (no-op while no
  /// tier exists).  Must run after enable_store.
  void set_erasure_load_probe(store::ErasureTier::LoadProbe probe) {
    if (erasure_ != nullptr) erasure_->set_load_probe(std::move(probe));
  }

  /// Fault injection: drops every cached object (cold restart; in-flight
  /// fetch routes survive).  Stripe-chunk *presence* survives a flush —
  /// chunk bytes are regenerable from the deterministic store, so the
  /// directory is the only state and a restarted daemon re-announces it.
  void flush() {
    cache_->clear();
    versions_.clear();
  }

  /// Enables live membership: `members` is the full current membership
  /// (this proxy included) and `factory` recomputes the owner map from an
  /// updated membership.  Without a factory the startup owner map is fixed
  /// for the whole run (the pre-membership behaviour).
  void set_owner_map_factory(OwnerMapFactory factory, std::vector<NodeId> members);

  /// Confirmed membership change: removes/reinstates the peer and rebuilds
  /// the owner map, measuring the fraction of sampled objects whose owner
  /// moved.  Returns that fraction (0 when nothing changed or no factory
  /// is installed).  The local cache is kept — entries the proxy no longer
  /// owns simply age out, mirroring what a real CARP member does.
  double handle_peer_dead(NodeId peer);
  double handle_peer_joined(NodeId peer);

 private:
  /// Recomputes owners_ from members_ and updates the reshuffle stats.
  double rebuild_owners();
  void receive_request(sim::Transport& net, const sim::Message& msg);
  void receive_reply(sim::Transport& net, const sim::Message& msg);
  void handle_chunk_reply(sim::Transport& net, const sim::Message& msg);
  void send_reply_toward_client(sim::Transport& net, sim::Message reply, NodeId entry);
  /// Admits `object` (size-aware caches may refuse or multi-evict) and
  /// keeps versions_ consistent with the cache contents.
  void admit(ObjectId object, std::uint64_t version);

  std::shared_ptr<const OwnerMap> owners_;
  OwnerMapFactory factory_;
  std::vector<NodeId> members_;  // sorted; only maintained once a factory is set
  NodeId origin_;
  std::size_t cache_capacity_;
  cache::Policy policy_;
  std::unique_ptr<cache::CacheSet> cache_;
  bool entry_caching_;

  store::PayloadStorePtr store_;
  std::unique_ptr<store::ErasureTier> erasure_;

  /// Owner-side state for in-flight origin fetches: where the reply must
  /// be routed once the origin answers.
  struct Route {
    NodeId client = kInvalidNode;
    NodeId entry = kInvalidNode;  // kInvalidNode when we were the entry
  };
  std::unordered_map<RequestId, Route> pending_;

  /// Data versions of cached objects (staleness accounting).
  std::unordered_map<ObjectId, std::uint64_t> versions_;

  std::uint64_t size_of(ObjectId object) const {
    return store_ == nullptr ? 0 : store_->size_of(object);
  }

  HashingProxyStats stats_;
};

}  // namespace adc::proxy
