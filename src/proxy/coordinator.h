// Central-coordinator load balancer — the paper's first-generation system
// (Section II.1, reference [26]) kept as a baseline.
//
// The coordinator fronts all proxies: every client request passes through
// it, it dispatches to the proxy with the best learned performance score
// (epsilon-greedy), observes the response time of the reply on its way
// back, and reinforces the score.  Content placement is not considered —
// exactly the limitation that motivated SOAP and ADC.  Backend proxies are
// plain CacheNodes with upstream = origin.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/node.h"
#include "sim/transport.h"
#include "util/types.h"

namespace adc::proxy {

struct CoordinatorConfig {
  /// Probability of exploring a uniformly random proxy instead of the
  /// current best.
  double epsilon = 0.05;
  /// Reinforcement step size for the score update.
  double learning_rate = 0.1;
};

struct CoordinatorStats {
  std::uint64_t dispatched = 0;
  std::uint64_t explored = 0;
  std::uint64_t replies_relayed = 0;
};

class Coordinator final : public sim::Node {
 public:
  Coordinator(NodeId id, std::string name, std::vector<NodeId> proxies,
              CoordinatorConfig config = {});

  void on_message(sim::Transport& net, const sim::Message& msg) override;

  const CoordinatorStats& stats() const noexcept { return stats_; }

  /// Learned performance score of a backend (higher is better).
  double score(NodeId proxy) const noexcept;

  std::size_t pending() const noexcept { return pending_.size(); }

 private:
  NodeId pick_proxy(sim::Transport& net);
  void reinforce(NodeId proxy, SimTime response_time);

  std::vector<NodeId> proxies_;
  CoordinatorConfig config_;
  std::unordered_map<NodeId, double> scores_;

  struct Dispatch {
    NodeId client = kInvalidNode;
    NodeId proxy = kInvalidNode;
    SimTime sent_at = 0;
  };
  std::unordered_map<RequestId, Dispatch> pending_;

  CoordinatorStats stats_;
};

}  // namespace adc::proxy
