#include "proxy/origin_server.h"

#include <cassert>

namespace adc::proxy {

void OriginServer::on_message(sim::Transport& net, const sim::Message& msg) {
  assert(msg.kind == sim::MessageKind::kRequest && "origin only receives requests");
  ++requests_served_;

  sim::Message reply = msg;
  reply.kind = sim::MessageKind::kReply;
  reply.sender = id();
  reply.target = msg.sender;
  // Resolver stays NULL (kInvalidNode): the first proxy on the backwarding
  // path claims responsibility (paper Figure 7).  Origin resolutions are
  // misses by definition.
  reply.resolver = kInvalidNode;
  reply.cached = false;
  reply.proxy_hit = false;
  reply.version = oracle_ != nullptr ? oracle_->version_at(msg.object, net.now()) : 0;
  if (sizer_ != nullptr) {
    reply.payload_bytes = sizer_->size_of(msg.object);
    bytes_served_ += reply.payload_bytes;
  }
  net.send(std::move(reply));
}

}  // namespace adc::proxy
