#include "proxy/coordinator.h"

#include <cassert>
#include <utility>

namespace adc::proxy {

using sim::Message;
using sim::MessageKind;
using sim::Transport;

Coordinator::Coordinator(NodeId id, std::string name, std::vector<NodeId> proxies,
                         CoordinatorConfig config)
    : Node(id, sim::NodeKind::kProxy, std::move(name)),
      proxies_(std::move(proxies)),
      config_(config) {
  assert(!proxies_.empty());
  for (NodeId proxy : proxies_) scores_.emplace(proxy, 0.5);
}

double Coordinator::score(NodeId proxy) const noexcept {
  const auto it = scores_.find(proxy);
  return it == scores_.end() ? 0.0 : it->second;
}

NodeId Coordinator::pick_proxy(Transport& net) {
  if (net.rng().chance(config_.epsilon)) {
    ++stats_.explored;
    return proxies_[net.rng().index(proxies_.size())];
  }
  NodeId best = proxies_.front();
  double best_score = -1.0;
  for (NodeId proxy : proxies_) {
    const double s = scores_[proxy];
    if (s > best_score) {
      best_score = s;
      best = proxy;
    }
  }
  return best;
}

void Coordinator::reinforce(NodeId proxy, SimTime response_time) {
  // Reward shrinks with response time; 1/(1+rt) maps [0,inf) to (0,1].
  const double reward = 1.0 / (1.0 + static_cast<double>(response_time));
  double& s = scores_[proxy];
  s = (1.0 - config_.learning_rate) * s + config_.learning_rate * reward;
}

void Coordinator::on_message(Transport& net, const Message& msg) {
  if (msg.kind == MessageKind::kRequest) {
    const NodeId proxy = pick_proxy(net);
    ++stats_.dispatched;
    pending_.emplace(msg.request_id, Dispatch{msg.client, proxy, net.now()});
    Message forward = msg;
    forward.sender = id();
    forward.target = proxy;
    forward.forward_count = msg.forward_count + 1;
    net.send(std::move(forward));
    return;
  }

  const auto it = pending_.find(msg.request_id);
  assert(it != pending_.end());
  const Dispatch dispatch = it->second;
  pending_.erase(it);
  reinforce(dispatch.proxy, net.now() - dispatch.sent_at);

  ++stats_.replies_relayed;
  Message reply = msg;
  reply.sender = id();
  reply.target = dispatch.client;
  net.send(std::move(reply));
}

}  // namespace adc::proxy
