#include "proxy/client.h"

#include <cassert>
#include <utility>

namespace adc::proxy {

Client::Client(NodeId id, std::string name, RequestStream& stream,
               std::vector<NodeId> proxies, EntryPolicy policy, int concurrency)
    : Node(id, sim::NodeKind::kClient, std::move(name)),
      stream_(stream),
      proxies_(std::move(proxies)),
      policy_(policy),
      concurrency_(concurrency) {
  assert(!proxies_.empty());
  assert(concurrency_ >= 1);
}

void Client::start(sim::Simulator& sim) {
  sim_ = &sim;
  for (int i = 0; i < concurrency_; ++i) {
    // Stagger initial injections by one tick each so their delivery order
    // is well-defined.
    sim.schedule_after(i + 1, [this, &sim]() { inject_next(sim); });
  }
}

NodeId Client::pick_entry(sim::Simulator& sim) {
  if (policy_ == EntryPolicy::kRoundRobin) {
    const NodeId entry = proxies_[round_robin_cursor_];
    round_robin_cursor_ = (round_robin_cursor_ + 1) % proxies_.size();
    return entry;
  }
  return proxies_[sim.rng().index(proxies_.size())];
}

void Client::inject_next(sim::Simulator& sim) {
  const auto object = stream_.next();
  if (!object.has_value()) {
    drained_ = true;
    return;
  }

  sim::Message request;
  request.kind = sim::MessageKind::kRequest;
  request.request_id = make_request_id(id(), issued_);
  request.object = *object;
  request.sender = id();
  request.target = pick_entry(sim);
  request.client = id();
  request.forward_count = 0;
  request.hops = 0;
  request.issued_at = sim.now();
  const RequestId request_id = request.request_id;
  ++issued_;
  outstanding_.insert(request_id);
  sim.send(std::move(request));

  if (request_timeout_ > 0) {
    sim.schedule_after(request_timeout_, [this, &sim, request_id]() {
      if (outstanding_.erase(request_id) == 0) return;  // reply beat the deadline
      ++failed_;
      sim.metrics().on_request_failed();
      inject_next(sim);  // keep the closed loop running
    });
  }
}

void Client::at_completed(std::uint64_t completed, std::function<void()> callback) {
  assert(completed > completed_ && "milestone already passed");
  milestones_[completed].push_back(std::move(callback));
}

void Client::on_message(sim::Transport&, const sim::Message& msg) {
  assert(msg.kind == sim::MessageKind::kReply);
  assert(msg.client == id());
  assert(sim_ != nullptr && "Client::start() must run before replies arrive");
  sim::Simulator& sim = *sim_;
  if (outstanding_.erase(msg.request_id) == 0) {
    // A duplicated reply, or one that lost the race against its deadline:
    // the request already resolved, so this copy must not count.
    ++duplicate_replies_;
    return;
  }
  ++completed_;
  const bool stale = msg.proxy_hit && oracle_ != nullptr &&
                     msg.version < oracle_->version_at(msg.object, sim.now());
  sim.metrics().on_request_completed(msg.proxy_hit, msg.hops, sim.now() - msg.issued_at,
                                     stale, msg.payload_bytes, msg.degraded);
  if (const auto it = milestones_.find(completed_); it != milestones_.end()) {
    for (const auto& callback : it->second) callback();
    milestones_.erase(it);
  }
  inject_next(sim);
}

}  // namespace adc::proxy
