#include "proxy/soap_proxy.h"

#include <cassert>
#include <utility>

namespace adc::proxy {

using sim::Message;
using sim::MessageKind;
using sim::Transport;

SoapProxy::SoapProxy(NodeId id, std::string name,
                     std::shared_ptr<const CategoryMap> categories,
                     std::vector<NodeId> proxies, NodeId origin,
                     std::size_t cache_capacity, SoapConfig config)
    : Node(id, sim::NodeKind::kProxy, std::move(name)),
      categories_(std::move(categories)),
      proxies_(std::move(proxies)),
      origin_(origin),
      cache_(cache::make_cache(cache_capacity, cache::Policy::kLru)),
      config_(config) {
  assert(categories_ != nullptr);
  assert(!proxies_.empty());
  scores_.assign(categories_->categories() * proxies_.size(), 0.5);
}

double SoapProxy::score(std::size_t category, NodeId peer) const noexcept {
  for (std::size_t i = 0; i < proxies_.size(); ++i) {
    if (proxies_[i] == peer) return scores_[category * proxies_.size() + i];
  }
  return 0.0;
}

NodeId SoapProxy::pick_location(Transport& net, std::size_t category) {
  if (net.rng().chance(config_.epsilon)) {
    ++stats_.forwards_explored;
    return proxies_[net.rng().index(proxies_.size())];
  }
  ++stats_.forwards_learned;
  std::size_t best = 0;
  double best_score = -1.0;
  for (std::size_t i = 0; i < proxies_.size(); ++i) {
    const double s = scores_[category * proxies_.size() + i];
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return proxies_[best];
}

void SoapProxy::reinforce(std::size_t category, NodeId peer, SimTime response_time) {
  const double reward = 1.0 / (1.0 + static_cast<double>(response_time));
  for (std::size_t i = 0; i < proxies_.size(); ++i) {
    if (proxies_[i] != peer) continue;
    double& s = scores_[category * proxies_.size() + i];
    s = (1.0 - config_.learning_rate) * s + config_.learning_rate * reward;
    return;
  }
}

void SoapProxy::on_message(Transport& net, const Message& msg) {
  if (msg.kind == MessageKind::kRequest) {
    receive_request(net, msg);
  } else {
    receive_reply(net, msg);
  }
}

void SoapProxy::receive_request(Transport& net, const Message& msg) {
  ++stats_.requests_received;
  const bool from_client = msg.sender == msg.client;

  if (cache_->lookup(msg.object)) {
    ++stats_.local_hits;
    Message reply = msg;
    reply.kind = MessageKind::kReply;
    reply.sender = id();
    // A forwarded request returns via the entry proxy so it can observe
    // the response time and reinforce its category mapping.
    reply.target = msg.sender;
    reply.resolver = id();
    reply.cached = true;
    reply.proxy_hit = true;
    const auto version = versions_.find(msg.object);
    reply.version = version == versions_.end() ? 0 : version->second;
    net.send(std::move(reply));
    return;
  }

  if (from_client) {
    const std::size_t category = categories_->category_of(msg.object);
    const NodeId location = pick_location(net, category);
    pending_.emplace(msg.request_id,
                     PendingFetch{msg.client, location, category, net.now()});
    Message forward = msg;
    forward.sender = id();
    forward.forward_count = msg.forward_count + 1;
    if (location == id()) {
      // The table says THIS: we are the category's home; resolve upstream.
      ++stats_.forwards_to_origin;
      forward.target = origin_;
    } else {
      forward.target = location;
    }
    net.send(std::move(forward));
    return;
  }

  // Forwarded to us as the category home but we miss: fetch from the
  // origin and remember to answer the entry proxy (one-level forwarding,
  // no further peer hops).
  ++stats_.forwards_to_origin;
  pending_.emplace(msg.request_id, PendingFetch{msg.sender, kInvalidNode,
                                                categories_->category_of(msg.object),
                                                net.now()});
  Message forward = msg;
  forward.sender = id();
  forward.target = origin_;
  net.send(std::move(forward));
}

void SoapProxy::receive_reply(Transport& net, const Message& msg) {
  const auto it = pending_.find(msg.request_id);
  assert(it != pending_.end() && "reply without pending record");
  const PendingFetch fetch = it->second;
  pending_.erase(it);

  Message reply = msg;
  reply.sender = id();
  reply.target = fetch.requester;

  if (fetch.forwarded_to == kInvalidNode) {
    // Our own origin fetch (as the category home): cache admit-all and
    // answer whoever asked (entry proxy or client).
    remember_version(msg.object, msg.version, cache_->insert(msg.object));
    if (reply.resolver == kInvalidNode) reply.resolver = id();
    net.send(std::move(reply));
    return;
  }

  // A reply to a request we routed (possibly to ourselves via the origin):
  // learn from the response time, then relay to the client.
  reinforce(fetch.category, fetch.forwarded_to, net.now() - fetch.sent_at);
  if (fetch.forwarded_to == id()) {
    // Self-route resolved at the origin: we are the category home.
    remember_version(msg.object, msg.version, cache_->insert(msg.object));
    if (reply.resolver == kInvalidNode) reply.resolver = id();
  }
  net.send(std::move(reply));
}

}  // namespace adc::proxy
