// SOAP — Self-Organized Adaptive Proxies (paper Section II.2, reference
// [10]): the authors' predecessor to ADC, kept as a baseline.
//
// Each proxy maps URL *categories* (domains) — not individual objects —
// onto proxy locations, learning from response-time feedback with an
// epsilon-greedy reinforcement rule.  Objects are cached admit-all under
// LRU at whichever proxy resolves them.  The paper's retrospective: the
// scheme needs many requests per category to converge and handles
// single-category hotspots poorly — the lessons that led to ADC's
// per-object tables and selective caching.  The baseline bench shows both
// effects.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/policies.h"
#include "sim/node.h"
#include "sim/transport.h"
#include "util/types.h"

namespace adc::proxy {

/// Maps an object to its URL category (domain).  Shared by all proxies;
/// the workload layer supplies the real mapping.
class CategoryMap {
 public:
  explicit CategoryMap(std::size_t categories) : categories_(categories) {}

  std::size_t categories() const noexcept { return categories_; }
  std::size_t category_of(ObjectId object) const noexcept {
    return static_cast<std::size_t>(object % categories_);
  }

 private:
  std::size_t categories_;
};

struct SoapConfig {
  /// Exploration probability for the per-category location choice.
  double epsilon = 0.05;
  /// Reinforcement step size.
  double learning_rate = 0.2;
};

struct SoapProxyStats {
  std::uint64_t requests_received = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t forwards_learned = 0;
  std::uint64_t forwards_explored = 0;
  std::uint64_t forwards_to_origin = 0;
};

class SoapProxy final : public sim::Node {
 public:
  SoapProxy(NodeId id, std::string name, std::shared_ptr<const CategoryMap> categories,
            std::vector<NodeId> proxies, NodeId origin, std::size_t cache_capacity,
            SoapConfig config = {});

  void on_message(sim::Transport& net, const sim::Message& msg) override;

  const SoapProxyStats& stats() const noexcept { return stats_; }
  const cache::CacheSet& cache() const noexcept { return *cache_; }
  std::size_t pending() const noexcept { return pending_.size(); }

  /// Learned score for routing a category to a peer (tests/diagnostics).
  double score(std::size_t category, NodeId peer) const noexcept;

  /// Fault injection: drops the cache and resets every learned score (cold
  /// restart; in-flight fetch routes survive).
  void flush() {
    cache_->clear();
    versions_.clear();
    scores_.assign(scores_.size(), 0.5);
  }

 private:
  void receive_request(sim::Transport& net, const sim::Message& msg);
  void receive_reply(sim::Transport& net, const sim::Message& msg);
  NodeId pick_location(sim::Transport& net, std::size_t category);
  void reinforce(std::size_t category, NodeId peer, SimTime response_time);

  std::shared_ptr<const CategoryMap> categories_;
  std::vector<NodeId> proxies_;
  NodeId origin_;
  std::unique_ptr<cache::CacheSet> cache_;
  SoapConfig config_;

  /// scores_[category * proxies + index]: learned quality of sending that
  /// category to that peer.
  std::vector<double> scores_;

  struct PendingFetch {
    NodeId requester = kInvalidNode;
    NodeId forwarded_to = kInvalidNode;
    std::size_t category = 0;
    SimTime sent_at = 0;
  };
  std::unordered_map<RequestId, PendingFetch> pending_;

  /// Data versions of cached objects (staleness accounting).
  std::unordered_map<ObjectId, std::uint64_t> versions_;

  void remember_version(ObjectId object, std::uint64_t version,
                        const std::optional<ObjectId>& evicted) {
    if (evicted.has_value()) versions_.erase(*evicted);
    versions_[object] = version;
  }

  SoapProxyStats stats_;
};

}  // namespace adc::proxy
