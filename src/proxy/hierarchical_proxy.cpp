#include "proxy/hierarchical_proxy.h"

#include <cassert>
#include <utility>

namespace adc::proxy {

using sim::Message;
using sim::MessageKind;
using sim::Transport;

CacheNode::CacheNode(NodeId id, std::string name, NodeId upstream,
                     std::size_t cache_capacity, cache::Policy policy)
    : Node(id, sim::NodeKind::kProxy, std::move(name)),
      upstream_(upstream),
      cache_capacity_(cache_capacity),
      policy_(policy),
      cache_(cache::make_cache(cache_capacity, policy)) {}

void CacheNode::enable_store(const store::StoreContext& ctx) {
  assert(ctx.store != nullptr);
  store_ = ctx.store;
  store::PayloadStorePtr sizer = store_;
  cache_ = cache::make_sized_cache(
      cache_capacity_, policy_, store_->config().byte_budget,
      [sizer](ObjectId object) { return sizer->size_of(object); });
}

void CacheNode::on_message(Transport& net, const Message& msg) {
  if (msg.kind == MessageKind::kRequest) {
    ++stats_.requests_received;
    if (cache_->lookup(msg.object)) {
      ++stats_.local_hits;
      Message reply = msg;
      reply.kind = MessageKind::kReply;
      reply.sender = id();
      reply.target = msg.sender;
      reply.resolver = id();
      reply.cached = true;
      reply.proxy_hit = true;
      const auto version = versions_.find(msg.object);
      reply.version = version == versions_.end() ? 0 : version->second;
      reply.payload_bytes = store_ == nullptr ? 0 : store_->size_of(msg.object);
      stats_.payload_bytes_served += reply.payload_bytes;
      net.send(std::move(reply));
      return;
    }
    ++stats_.forwards_upstream;
    pending_[msg.request_id].push_back(msg.sender);
    Message forward = msg;
    forward.sender = id();
    forward.target = upstream_;
    forward.forward_count = msg.forward_count + 1;
    net.send(std::move(forward));
    return;
  }

  // Reply from upstream: admit-all caching, then relay to the requester.
  const auto it = pending_.find(msg.request_id);
  assert(it != pending_.end() && !it->second.empty());
  const NodeId requester = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) pending_.erase(it);

  stats_.payload_bytes_fetched += msg.payload_bytes;
  for (const ObjectId evicted : cache_->insert_evicting(msg.object)) {
    versions_.erase(evicted);
  }
  if (cache_->contains(msg.object)) versions_[msg.object] = msg.version;
  Message reply = msg;
  reply.sender = id();
  reply.target = requester;
  if (reply.resolver == kInvalidNode) reply.resolver = id();
  net.send(std::move(reply));
}

}  // namespace adc::proxy
