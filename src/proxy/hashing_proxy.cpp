#include "proxy/hashing_proxy.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace adc::proxy {

using sim::Message;
using sim::MessageKind;
using sim::Transport;

HashingProxy::HashingProxy(NodeId id, std::string name,
                           std::shared_ptr<const OwnerMap> owners, NodeId origin,
                           std::size_t cache_capacity, cache::Policy policy,
                           bool entry_caching)
    : Node(id, sim::NodeKind::kProxy, std::move(name)),
      owners_(std::move(owners)),
      origin_(origin),
      cache_capacity_(cache_capacity),
      policy_(policy),
      cache_(cache::make_cache(cache_capacity, policy)),
      entry_caching_(entry_caching) {
  assert(owners_ != nullptr);
}

void HashingProxy::enable_store(const store::StoreContext& ctx) {
  assert(ctx.store != nullptr);
  store_ = ctx.store;
  store::PayloadStorePtr sizer = store_;
  cache_ = cache::make_sized_cache(
      cache_capacity_, policy_, store_->config().byte_budget,
      [sizer](ObjectId object) { return sizer->size_of(object); });
  if (store_->config().erasure.enabled) {
    erasure_ = std::make_unique<store::ErasureTier>(id(), store_, ctx.proxies);
  }
}

void HashingProxy::on_message(Transport& net, const Message& msg) {
  if (sim::is_store_kind(msg.kind)) {
    if (erasure_ == nullptr) return;  // store traffic with no tier: drop
    switch (msg.kind) {
      case MessageKind::kStripeStore:
        erasure_->on_stripe_store(msg);
        break;
      case MessageKind::kChunkRequest:
        erasure_->on_chunk_request(net, msg);
        break;
      case MessageKind::kChunkReply:
        handle_chunk_reply(net, msg);
        break;
      case MessageKind::kRestripeOffer:
        erasure_->on_restripe_offer(net, msg);
        break;
      case MessageKind::kRestripeAck:
        erasure_->on_restripe_ack(msg);
        break;
      default:
        break;
    }
    return;
  }
  if (msg.kind == MessageKind::kRequest) {
    receive_request(net, msg);
  } else {
    receive_reply(net, msg);
  }
}

void HashingProxy::set_owner_map_factory(OwnerMapFactory factory,
                                         std::vector<NodeId> members) {
  factory_ = std::move(factory);
  members_ = std::move(members);
  std::sort(members_.begin(), members_.end());
}

double HashingProxy::handle_peer_dead(NodeId peer) {
  if (erasure_ != nullptr) erasure_->handle_peer_dead(peer);
  if (!factory_ || peer == id()) return 0.0;
  const auto it = std::find(members_.begin(), members_.end(), peer);
  if (it == members_.end()) return 0.0;
  members_.erase(it);
  if (members_.empty()) members_.push_back(id());
  return rebuild_owners();
}

double HashingProxy::handle_peer_joined(NodeId peer) {
  if (erasure_ != nullptr) erasure_->handle_peer_joined(peer);
  if (!factory_) return 0.0;
  const auto pos = std::lower_bound(members_.begin(), members_.end(), peer);
  if (pos != members_.end() && *pos == peer) return 0.0;
  members_.insert(pos, peer);
  return rebuild_owners();
}

double HashingProxy::rebuild_owners() {
  std::shared_ptr<const OwnerMap> fresh = factory_(members_);
  assert(fresh != nullptr);
  ObjectId moved = 0;
  for (ObjectId object = 0; object < kReshuffleSample; ++object) {
    if (owners_->owner(object) != fresh->owner(object)) ++moved;
  }
  owners_ = std::move(fresh);
  ++stats_.membership_epoch;
  ++stats_.owner_rebuilds;
  stats_.last_reshuffle_fraction =
      static_cast<double>(moved) / static_cast<double>(kReshuffleSample);
  stats_.max_reshuffle_fraction =
      std::max(stats_.max_reshuffle_fraction, stats_.last_reshuffle_fraction);
  return stats_.last_reshuffle_fraction;
}

void HashingProxy::send_reply_toward_client(Transport& net, Message reply, NodeId entry) {
  reply.kind = MessageKind::kReply;
  reply.sender = id();
  // Entry-caching mode routes the reply through the entry proxy so it can
  // cache too; the paper's CARP baseline bypasses it.
  reply.target = (entry_caching_ && entry != kInvalidNode) ? entry : reply.client;
  net.send(std::move(reply));
}

void HashingProxy::admit(ObjectId object, std::uint64_t version) {
  for (const ObjectId evicted : cache_->insert_evicting(object)) versions_.erase(evicted);
  // A size-aware cache may refuse admission outright (object larger than
  // the byte budget); only remember versions for objects actually held.
  if (cache_->contains(object)) versions_[object] = version;
}

void HashingProxy::receive_request(Transport& net, const Message& msg) {
  ++stats_.requests_received;
  const ObjectId object = msg.object;
  const bool from_client = msg.sender == msg.client;

  if (cache_->lookup(object)) {
    ++stats_.local_hits;
    if (!from_client) ++stats_.owned_objects_served;
    Message reply = msg;
    reply.resolver = id();
    reply.cached = true;
    reply.proxy_hit = true;
    const auto version = versions_.find(object);
    reply.version = version == versions_.end() ? 0 : version->second;
    reply.payload_bytes = size_of(object);
    stats_.payload_bytes_served += reply.payload_bytes;
    // A hit at the owner is returned directly to the client (bypassing the
    // entry proxy) unless entry caching is on; a hit at the entry proxy
    // goes straight back anyway.
    send_reply_toward_client(net, std::move(reply), from_client ? kInvalidNode : msg.sender);
    return;
  }

  const NodeId owner = owners_->owner(object);
  if (from_client && owner != id()) {
    // Entry proxy miss: hand the request to the hash owner.
    ++stats_.forwards_to_owner;
    Message forward = msg;
    forward.sender = id();
    forward.target = owner;
    forward.forward_count = msg.forward_count + 1;
    net.send(std::move(forward));
    return;
  }

  // We are the owner (or the entry proxy owns the object): resolve at the
  // origin and remember where the reply must go.
  pending_.emplace(msg.request_id,
                   Route{msg.client, from_client ? kInvalidNode : msg.sender});

  // Degraded-read window: once SWIM confirmed a member dead, prefer
  // reconstructing the object from surviving stripe chunks over refetching
  // it from the origin.  The route stays pending; handle_chunk_reply either
  // answers it or falls back to the origin.
  if (erasure_ != nullptr && erasure_->has_dead_peer() &&
      erasure_->begin_recovery(net, msg)) {
    return;
  }

  ++stats_.forwards_to_origin;
  Message forward = msg;
  forward.sender = id();
  forward.target = origin_;
  net.send(std::move(forward));
}

void HashingProxy::handle_chunk_reply(Transport& net, const Message& msg) {
  const store::ErasureTier::Resolution res = erasure_->on_chunk_reply(msg);
  switch (res.outcome) {
    case store::ErasureTier::Outcome::kNone:
    case store::ErasureTier::Outcome::kPending:
      return;
    case store::ErasureTier::Outcome::kRecovered: {
      const auto it = pending_.find(res.request.request_id);
      if (it == pending_.end()) return;  // route gone (e.g. flushed): drop
      const Route route = it->second;
      pending_.erase(it);
      ++stats_.degraded_reads_served;
      Message reply = res.request;
      reply.resolver = id();
      reply.cached = true;
      reply.proxy_hit = true;
      reply.degraded = true;
      reply.hops = msg.hops;
      reply.payload_bytes = res.object_bytes;
      const auto version = versions_.find(reply.object);
      reply.version = version == versions_.end() ? 0 : version->second;
      stats_.payload_bytes_served += reply.payload_bytes;
      // The reconstructed object is as good as a fetched one: admit it so
      // subsequent requests hit locally instead of re-reconstructing.
      admit(reply.object, reply.version);
      send_reply_toward_client(net, std::move(reply), route.entry);
      return;
    }
    case store::ErasureTier::Outcome::kFailed: {
      // Not enough surviving chunks: fall back to the origin.  The pending
      // route is still in place, so the origin reply routes normally.
      ++stats_.forwards_to_origin;
      Message forward = res.request;
      forward.sender = id();
      forward.target = origin_;
      net.send(std::move(forward));
      return;
    }
  }
}

void HashingProxy::receive_reply(Transport& net, const Message& msg) {
  const auto it = pending_.find(msg.request_id);
  if (it != pending_.end()) {
    // Origin answered our fetch: cache as owner, then route.
    const Route route = it->second;
    pending_.erase(it);
    stats_.payload_bytes_fetched += msg.payload_bytes;
    admit(msg.object, msg.version);
    if (erasure_ != nullptr) erasure_->stripe_object(net, msg.object);
    Message reply = msg;
    reply.resolver = id();
    reply.cached = true;
    send_reply_toward_client(net, std::move(reply), route.entry);
    return;
  }

  // No pending route.  In entry-caching mode this is a relayed reply
  // passing through the entry proxy: cache it.  Otherwise it is a degraded
  // origin reply — the transport rerouted a forward around a dead owner,
  // so the origin answered a fetch we never initiated.  Relay it to the
  // client without caching: this proxy does not own the object, and
  // caching it would shadow the hash allocation once the owner returns.
  if (entry_caching_) {
    admit(msg.object, msg.version);
  } else {
    ++stats_.degraded_replies;
  }
  Message reply = msg;
  reply.sender = id();
  reply.target = msg.client;
  net.send(std::move(reply));
}

}  // namespace adc::proxy
