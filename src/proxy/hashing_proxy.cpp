#include "proxy/hashing_proxy.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace adc::proxy {

using sim::Message;
using sim::MessageKind;
using sim::Transport;

HashingProxy::HashingProxy(NodeId id, std::string name,
                           std::shared_ptr<const OwnerMap> owners, NodeId origin,
                           std::size_t cache_capacity, cache::Policy policy,
                           bool entry_caching)
    : Node(id, sim::NodeKind::kProxy, std::move(name)),
      owners_(std::move(owners)),
      origin_(origin),
      cache_(cache::make_cache(cache_capacity, policy)),
      entry_caching_(entry_caching) {
  assert(owners_ != nullptr);
}

void HashingProxy::on_message(Transport& net, const Message& msg) {
  if (msg.kind == MessageKind::kRequest) {
    receive_request(net, msg);
  } else {
    receive_reply(net, msg);
  }
}

void HashingProxy::set_owner_map_factory(OwnerMapFactory factory,
                                         std::vector<NodeId> members) {
  factory_ = std::move(factory);
  members_ = std::move(members);
  std::sort(members_.begin(), members_.end());
}

double HashingProxy::handle_peer_dead(NodeId peer) {
  if (!factory_ || peer == id()) return 0.0;
  const auto it = std::find(members_.begin(), members_.end(), peer);
  if (it == members_.end()) return 0.0;
  members_.erase(it);
  if (members_.empty()) members_.push_back(id());
  return rebuild_owners();
}

double HashingProxy::handle_peer_joined(NodeId peer) {
  if (!factory_) return 0.0;
  const auto pos = std::lower_bound(members_.begin(), members_.end(), peer);
  if (pos != members_.end() && *pos == peer) return 0.0;
  members_.insert(pos, peer);
  return rebuild_owners();
}

double HashingProxy::rebuild_owners() {
  std::shared_ptr<const OwnerMap> fresh = factory_(members_);
  assert(fresh != nullptr);
  ObjectId moved = 0;
  for (ObjectId object = 0; object < kReshuffleSample; ++object) {
    if (owners_->owner(object) != fresh->owner(object)) ++moved;
  }
  owners_ = std::move(fresh);
  ++stats_.membership_epoch;
  ++stats_.owner_rebuilds;
  stats_.last_reshuffle_fraction =
      static_cast<double>(moved) / static_cast<double>(kReshuffleSample);
  stats_.max_reshuffle_fraction =
      std::max(stats_.max_reshuffle_fraction, stats_.last_reshuffle_fraction);
  return stats_.last_reshuffle_fraction;
}

void HashingProxy::send_reply_toward_client(Transport& net, Message reply, NodeId entry) {
  reply.kind = MessageKind::kReply;
  reply.sender = id();
  // Entry-caching mode routes the reply through the entry proxy so it can
  // cache too; the paper's CARP baseline bypasses it.
  reply.target = (entry_caching_ && entry != kInvalidNode) ? entry : reply.client;
  net.send(std::move(reply));
}

void HashingProxy::receive_request(Transport& net, const Message& msg) {
  ++stats_.requests_received;
  const ObjectId object = msg.object;
  const bool from_client = msg.sender == msg.client;

  if (cache_->lookup(object)) {
    ++stats_.local_hits;
    if (!from_client) ++stats_.owned_objects_served;
    Message reply = msg;
    reply.resolver = id();
    reply.cached = true;
    reply.proxy_hit = true;
    const auto version = versions_.find(object);
    reply.version = version == versions_.end() ? 0 : version->second;
    // A hit at the owner is returned directly to the client (bypassing the
    // entry proxy) unless entry caching is on; a hit at the entry proxy
    // goes straight back anyway.
    send_reply_toward_client(net, std::move(reply), from_client ? kInvalidNode : msg.sender);
    return;
  }

  const NodeId owner = owners_->owner(object);
  if (from_client && owner != id()) {
    // Entry proxy miss: hand the request to the hash owner.
    ++stats_.forwards_to_owner;
    Message forward = msg;
    forward.sender = id();
    forward.target = owner;
    forward.forward_count = msg.forward_count + 1;
    net.send(std::move(forward));
    return;
  }

  // We are the owner (or the entry proxy owns the object): resolve at the
  // origin and remember where the reply must go.
  ++stats_.forwards_to_origin;
  pending_.emplace(msg.request_id,
                   Route{msg.client, from_client ? kInvalidNode : msg.sender});
  Message forward = msg;
  forward.sender = id();
  forward.target = origin_;
  net.send(std::move(forward));
}

void HashingProxy::receive_reply(Transport& net, const Message& msg) {
  const auto it = pending_.find(msg.request_id);
  if (it != pending_.end()) {
    // Origin answered our fetch: cache as owner, then route.
    const Route route = it->second;
    pending_.erase(it);
    remember_version(msg.object, msg.version, cache_->insert(msg.object));
    Message reply = msg;
    reply.resolver = id();
    reply.cached = true;
    send_reply_toward_client(net, std::move(reply), route.entry);
    return;
  }

  // No pending route.  In entry-caching mode this is a relayed reply
  // passing through the entry proxy: cache it.  Otherwise it is a degraded
  // origin reply — the transport rerouted a forward around a dead owner,
  // so the origin answered a fetch we never initiated.  Relay it to the
  // client without caching: this proxy does not own the object, and
  // caching it would shadow the hash allocation once the owner returns.
  if (entry_caching_) {
    remember_version(msg.object, msg.version, cache_->insert(msg.object));
  } else {
    ++stats_.degraded_replies;
  }
  Message reply = msg;
  reply.sender = id();
  reply.target = msg.client;
  net.send(std::move(reply));
}

}  // namespace adc::proxy
