// Hierarchical caching node (paper Section I / the hierarchical family the
// paper positions ADC against).
//
// A CacheNode caches every object that passes through it (admit-all, LRU by
// default) and forwards misses to a fixed upstream node — its parent in a
// cache hierarchy, or the origin server at the top.  Chaining CacheNodes
// builds arbitrary-depth hierarchies; the driver uses one root over leaf
// proxies for the classic 2-level setup.  The coordinator baseline reuses
// this class for its backend proxies (upstream = origin).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/policies.h"
#include "sim/node.h"
#include "sim/transport.h"
#include "store/payload.h"
#include "util/types.h"

namespace adc::proxy {

struct CacheNodeStats {
  std::uint64_t requests_received = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t forwards_upstream = 0;
  // Byte accounting (0 while the payload store is disabled).
  std::uint64_t payload_bytes_served = 0;   // bytes of local hits
  std::uint64_t payload_bytes_fetched = 0;  // bytes fetched from upstream
};

class CacheNode final : public sim::Node {
 public:
  CacheNode(NodeId id, std::string name, NodeId upstream, std::size_t cache_capacity,
            cache::Policy policy = cache::Policy::kLru);

  void on_message(sim::Transport& net, const sim::Message& msg) override;

  const CacheNodeStats& stats() const noexcept { return stats_; }
  const cache::CacheSet& cache() const noexcept { return *cache_; }
  std::size_t pending() const noexcept { return pending_.size(); }

  /// Attaches the payload store: byte-budgeted, size-aware cache of the
  /// same policy plus per-hit byte accounting.  Hierarchies carry no
  /// erasure tier — degraded reads are a flat-membership construct.
  void enable_store(const store::StoreContext& ctx);

  /// Fault injection: drops every cached object (cold restart; in-flight
  /// fetch routes survive).
  void flush() {
    cache_->clear();
    versions_.clear();
  }

 private:
  NodeId upstream_;
  std::size_t cache_capacity_;
  cache::Policy policy_;
  std::unique_ptr<cache::CacheSet> cache_;
  store::PayloadStorePtr store_;

  /// Requesters awaiting a reply, per request id (a stack for the corner
  /// case of the same id traversing twice, which cannot happen in a tree
  /// but keeps the invariant local).
  std::unordered_map<RequestId, std::vector<NodeId>> pending_;

  /// Data versions of cached objects (staleness accounting).
  std::unordered_map<ObjectId, std::uint64_t> versions_;

  CacheNodeStats stats_;
};

}  // namespace adc::proxy
