#include "cache/single_table.h"

#include <cassert>

namespace adc::cache {

SingleTable::SingleTable(std::size_t capacity, TableImpl impl)
    : capacity_(capacity), impl_(impl) {
  assert(capacity > 0);
  if (impl_ == TableImpl::kIndexed) index_.reserve(capacity);
}

SingleTable::List::iterator SingleTable::locate(ObjectId object) {
  if (impl_ == TableImpl::kIndexed) {
    const auto it = index_.find(object);
    return it == index_.end() ? entries_.end() : it->second;
  }
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->object == object) return it;
  }
  return entries_.end();
}

SingleTable::List::const_iterator SingleTable::locate(ObjectId object) const {
  if (impl_ == TableImpl::kIndexed) {
    const auto it = index_.find(object);
    return it == index_.end() ? entries_.cend() : List::const_iterator(it->second);
  }
  for (auto it = entries_.cbegin(); it != entries_.cend(); ++it) {
    if (it->object == object) return it;
  }
  return entries_.cend();
}

bool SingleTable::contains(ObjectId object) const noexcept {
  return locate(object) != entries_.cend();
}

const TableEntry* SingleTable::find(ObjectId object) const noexcept {
  const auto it = locate(object);
  return it == entries_.cend() ? nullptr : &*it;
}

TableEntry* SingleTable::find_mutable(ObjectId object) noexcept {
  const auto it = locate(object);
  return it == entries_.end() ? nullptr : &*it;
}

std::optional<TableEntry> SingleTable::remove(ObjectId object) {
  const auto it = locate(object);
  if (it == entries_.end()) return std::nullopt;
  TableEntry out = *it;
  if (impl_ == TableImpl::kIndexed) index_.erase(object);
  entries_.erase(it);
  return out;
}

std::optional<TableEntry> SingleTable::insert_on_top(TableEntry entry) {
  assert(locate(entry.object) == entries_.end() && "duplicate object in single-table");
  std::optional<TableEntry> evicted;
  if (full()) evicted = remove_last();
  entries_.push_front(entry);
  if (impl_ == TableImpl::kIndexed) index_.emplace(entry.object, entries_.begin());
  return evicted;
}

std::optional<TableEntry> SingleTable::remove_last() {
  if (entries_.empty()) return std::nullopt;
  TableEntry out = entries_.back();
  if (impl_ == TableImpl::kIndexed) index_.erase(out.object);
  entries_.pop_back();
  return out;
}

const TableEntry* SingleTable::top() const noexcept {
  return entries_.empty() ? nullptr : &entries_.front();
}

const TableEntry* SingleTable::bottom() const noexcept {
  return entries_.empty() ? nullptr : &entries_.back();
}

void SingleTable::clear() {
  entries_.clear();
  index_.clear();
}

std::vector<TableEntry> SingleTable::snapshot() const {
  return std::vector<TableEntry>(entries_.begin(), entries_.end());
}

}  // namespace adc::cache
