// The ADC ordered tables (multiple-table and caching table, paper Sections
// III.3.2-III.3.3): capacity-bounded tables kept in ascending order of the
// aged average request time.
//
// Ordering uses the time-invariant skew (average - last) — see
// table_entry.h — with insertion order breaking ties, so the "worst" entry
// (largest aged value) is always the physical last row, matching the
// paper's "new objects have to outperform at least the worst case in the
// last row".
//
// Two implementations, selectable via TableImpl:
//  * kFaithful — a sorted contiguous array: ordered insert/remove via
//    binary search plus element shifting, object lookup via linear scan.
//    This is the structure whose cost the paper measures in Figure 15.
//  * kIndexed — a balanced tree ordered by skew plus a hash index from
//    object id to tree node: all operations O(log n) or O(1).
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "cache/single_table.h"  // TableImpl
#include "cache/table_entry.h"
#include "util/types.h"

namespace adc::cache {

class OrderedTable {
 public:
  explicit OrderedTable(std::size_t capacity) : capacity_(capacity) {}
  virtual ~OrderedTable() = default;

  OrderedTable(const OrderedTable&) = delete;
  OrderedTable& operator=(const OrderedTable&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return size() >= capacity_; }
  bool empty() const noexcept { return size() == 0; }

  virtual std::size_t size() const noexcept = 0;
  virtual bool contains(ObjectId object) const noexcept = 0;

  /// Read-only view; nullptr when absent.
  virtual const TableEntry* find(ObjectId object) const noexcept = 0;

  /// Mutable view for in-place edits of fields that are not ordering keys
  /// (location, claim, version — the order depends on skew alone).
  virtual TableEntry* find_mutable(ObjectId object) noexcept = 0;

  /// Removes and returns an entry by object id (the paper's RemoveEntry).
  virtual std::optional<TableEntry> remove(ObjectId object) = 0;

  /// Ordered insert (the paper's InsertOrdered).  Requires !full() —
  /// eviction decisions belong to Update_Entry, not the table.
  virtual void insert(TableEntry entry) = 0;

  /// Removes and returns the worst (largest aged value) entry — the
  /// paper's RemoveLastEntry.
  virtual std::optional<TableEntry> remove_worst() = 0;

  /// The worst entry, or nullptr when empty.
  virtual const TableEntry* worst() const noexcept = 0;

  /// The best (hottest) entry, or nullptr when empty.
  virtual const TableEntry* best() const noexcept = 0;

  virtual void clear() = 0;

  /// Visits entries best-to-worst (tests / diagnostics).
  virtual void for_each(const std::function<void(const TableEntry&)>& fn) const = 0;

  /// Aged value of the worst entry at `now`; +infinity while the table has
  /// spare capacity, so anything qualifies until the table fills (the paper
  /// applies the outperform rule "once the table is filled").
  double worst_aged(SimTime now) const noexcept {
    if (!full()) return std::numeric_limits<double>::infinity();
    return worst()->aged(now);
  }

  /// Convenience for tests.
  std::vector<TableEntry> snapshot() const {
    std::vector<TableEntry> out;
    out.reserve(size());
    for_each([&out](const TableEntry& e) { out.push_back(e); });
    return out;
  }

 private:
  std::size_t capacity_;
};

/// Factory: builds the requested implementation.
std::unique_ptr<OrderedTable> make_ordered_table(std::size_t capacity, TableImpl impl);

}  // namespace adc::cache
