// The mapping-table row shared by the single-, multiple- and caching
// tables (paper Figures 1-3): object id, assigned location, last-access
// time, average inter-request time and hit count.
//
// Aging (paper Figure 4):  T_age = (T_average + (T_now - T_last)) / 2.
// Because every entry ages at the same rate, the order of two entries under
// T_age is the order of the time-invariant skew  T_average - T_last; the
// ordered tables key on that skew, which makes the paper's claim that "an
// established table order remains the same during the aging process" hold
// by construction.
#pragma once

#include <cstdint>

#include "util/types.h"

namespace adc::cache {

struct TableEntry {
  ObjectId object = 0;

  /// The proxy believed responsible for the object.  A proxy stores its own
  /// NodeId here to express the paper's THIS marker.
  NodeId location = kInvalidNode;

  /// Local time of the most recent request for this object (column LAST).
  SimTime last = 0;

  /// Moving average of the gap between consecutive requests (column AVG);
  /// 0 until the object has been requested twice.
  SimTime average = 0;

  /// Total observed requests (column HITS).  Kept for reporting only — the
  /// paper deliberately excludes it from the average computation.
  std::uint64_t hits = 1;

  /// Version of the object data this entry's cached copy carries (only
  /// meaningful for caching-table entries; see sim/version.h).  0 when
  /// versioning is disabled.
  std::uint64_t version = 0;

  /// Resolver-claim version this location was learned at (monotone per
  /// object; see sim::Message::claim).  Update_Entry rejects updates whose
  /// claim is older than this.  Not an ordering key — the tables order on
  /// skew only — so it may be rewritten in place.  0 = unversioned.
  std::uint64_t claim = 0;

  /// Paper Figure 9 (Calc_Average): on the second request the raw gap
  /// becomes the average; afterwards a two-point moving average.  Always
  /// refreshes the last-access stamp and increments HITS.
  void calc_average(SimTime now) noexcept {
    if (hits == 1) {
      average = now - last;
    } else {
      average = (average + (now - last)) / 2;
    }
    ++hits;
    last = now;
  }

  /// Current aged value (paper Figure 4).  Lower is better (hotter).
  double aged(SimTime now) const noexcept {
    return (static_cast<double>(average) + static_cast<double>(now - last)) / 2.0;
  }

  /// Time-invariant ordering key: entries with smaller skew have smaller
  /// aged value at every instant.
  SimTime skew() const noexcept { return average - last; }
};

/// Creates the paper's "part 4" fresh entry: AVG 0, HITS 1, LAST = now.
inline TableEntry make_entry(ObjectId object, NodeId location, SimTime now) noexcept {
  TableEntry e;
  e.object = object;
  e.location = location;
  e.last = now;
  e.average = 0;
  e.hits = 1;
  return e;
}

}  // namespace adc::cache
