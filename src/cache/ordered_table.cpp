#include "cache/ordered_table.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

namespace adc::cache {
namespace {

/// Faithful variant: sorted vector (ascending skew; ties by insertion
/// order, new equal keys placed after existing ones), linear object lookup.
class VectorOrderedTable final : public OrderedTable {
 public:
  explicit VectorOrderedTable(std::size_t capacity) : OrderedTable(capacity) {
    entries_.reserve(capacity);
  }

  std::size_t size() const noexcept override { return entries_.size(); }

  bool contains(ObjectId object) const noexcept override {
    return locate(object) != entries_.size();
  }

  const TableEntry* find(ObjectId object) const noexcept override {
    const std::size_t i = locate(object);
    return i == entries_.size() ? nullptr : &entries_[i];
  }

  TableEntry* find_mutable(ObjectId object) noexcept override {
    const std::size_t i = locate(object);
    return i == entries_.size() ? nullptr : &entries_[i];
  }

  std::optional<TableEntry> remove(ObjectId object) override {
    const std::size_t i = locate(object);
    if (i == entries_.size()) return std::nullopt;
    TableEntry out = entries_[i];
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    return out;
  }

  void insert(TableEntry entry) override {
    assert(!full());
    // Binary search for the first position with a strictly larger skew;
    // equal keys keep insertion order (new entry goes after).
    const auto pos = std::upper_bound(
        entries_.begin(), entries_.end(), entry.skew(),
        [](SimTime skew, const TableEntry& e) { return skew < e.skew(); });
    entries_.insert(pos, entry);
  }

  std::optional<TableEntry> remove_worst() override {
    if (entries_.empty()) return std::nullopt;
    TableEntry out = entries_.back();
    entries_.pop_back();
    return out;
  }

  const TableEntry* worst() const noexcept override {
    return entries_.empty() ? nullptr : &entries_.back();
  }

  const TableEntry* best() const noexcept override {
    return entries_.empty() ? nullptr : &entries_.front();
  }

  void clear() override { entries_.clear(); }

  void for_each(const std::function<void(const TableEntry&)>& fn) const override {
    for (const TableEntry& e : entries_) fn(e);
  }

 private:
  std::size_t locate(ObjectId object) const noexcept {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].object == object) return i;
    }
    return entries_.size();
  }

  std::vector<TableEntry> entries_;  // ascending skew
};

/// Indexed variant: multimap ordered by skew + hash index by object id.
class IndexedOrderedTable final : public OrderedTable {
 public:
  explicit IndexedOrderedTable(std::size_t capacity) : OrderedTable(capacity) {
    index_.reserve(capacity);
  }

  std::size_t size() const noexcept override { return tree_.size(); }

  bool contains(ObjectId object) const noexcept override {
    return index_.find(object) != index_.end();
  }

  const TableEntry* find(ObjectId object) const noexcept override {
    const auto it = index_.find(object);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  TableEntry* find_mutable(ObjectId object) noexcept override {
    const auto it = index_.find(object);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  std::optional<TableEntry> remove(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return std::nullopt;
    TableEntry out = it->second->second;
    tree_.erase(it->second);
    index_.erase(it);
    return out;
  }

  void insert(TableEntry entry) override {
    assert(!full());
    assert(!contains(entry.object));
    // multimap::insert places equal keys after existing ones — the same
    // tie-break as the faithful variant.
    const auto node = tree_.emplace(entry.skew(), entry);
    index_.emplace(entry.object, node);
  }

  std::optional<TableEntry> remove_worst() override {
    if (tree_.empty()) return std::nullopt;
    const auto node = std::prev(tree_.end());
    TableEntry out = node->second;
    index_.erase(out.object);
    tree_.erase(node);
    return out;
  }

  const TableEntry* worst() const noexcept override {
    return tree_.empty() ? nullptr : &std::prev(tree_.end())->second;
  }

  const TableEntry* best() const noexcept override {
    return tree_.empty() ? nullptr : &tree_.begin()->second;
  }

  void clear() override {
    tree_.clear();
    index_.clear();
  }

  void for_each(const std::function<void(const TableEntry&)>& fn) const override {
    for (const auto& [skew, entry] : tree_) fn(entry);
  }

 private:
  using Tree = std::multimap<SimTime, TableEntry>;
  Tree tree_;
  std::unordered_map<ObjectId, Tree::iterator> index_;
};

}  // namespace

std::unique_ptr<OrderedTable> make_ordered_table(std::size_t capacity, TableImpl impl) {
  assert(capacity > 0);
  if (impl == TableImpl::kFaithful) return std::make_unique<VectorOrderedTable>(capacity);
  return std::make_unique<IndexedOrderedTable>(capacity);
}

}  // namespace adc::cache
