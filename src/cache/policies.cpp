#include "cache/policies.h"

#include <cassert>
#include <optional>

#include "util/string_util.h"

namespace adc::cache {
namespace {

/// LRU and FIFO share the list+index layout; FIFO simply ignores touches.
class ListCache final : public CacheSet {
 public:
  ListCache(std::size_t capacity, bool bump_on_touch)
      : CacheSet(capacity), bump_on_touch_(bump_on_touch) {
    index_.reserve(capacity);
  }

  std::size_t size() const noexcept override { return order_.size(); }

  bool contains(ObjectId object) const noexcept override {
    return index_.find(object) != index_.end();
  }

  void touch(ObjectId object) override {
    if (!bump_on_touch_) return;
    const auto it = index_.find(object);
    if (it == index_.end()) return;
    order_.splice(order_.begin(), order_, it->second);
  }

  std::optional<ObjectId> insert(ObjectId object) override {
    const auto it = index_.find(object);
    if (it != index_.end()) {
      touch(object);
      return std::nullopt;
    }
    std::optional<ObjectId> evicted;
    if (full() && capacity() > 0) {
      evicted = order_.back();
      index_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(object);
    index_.emplace(object, order_.begin());
    return evicted;
  }

  bool erase(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() override {
    order_.clear();
    index_.clear();
  }

  std::vector<ObjectId> eviction_order() const override {
    return std::vector<ObjectId>(order_.rbegin(), order_.rend());
  }

 private:
  bool bump_on_touch_;
  std::list<ObjectId> order_;  // front = most recently used/inserted
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> index_;
};

/// LFU with FIFO tie-breaking among equal frequencies (classic frequency
/// list structure; O(log n) via ordered key (freq, seq)).
class LfuCache final : public CacheSet {
 public:
  explicit LfuCache(std::size_t capacity) : CacheSet(capacity) { index_.reserve(capacity); }

  std::size_t size() const noexcept override { return index_.size(); }

  bool contains(ObjectId object) const noexcept override {
    return index_.find(object) != index_.end();
  }

  void touch(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return;
    Meta meta = it->second;
    tree_.erase({meta.freq, meta.seq});
    ++meta.freq;
    meta.seq = next_seq_++;
    tree_.emplace(Key{meta.freq, meta.seq}, object);
    it->second = meta;
  }

  std::optional<ObjectId> insert(ObjectId object) override {
    if (contains(object)) {
      touch(object);
      return std::nullopt;
    }
    std::optional<ObjectId> evicted;
    if (full() && capacity() > 0) {
      const auto victim = tree_.begin();
      evicted = victim->second;
      index_.erase(victim->second);
      tree_.erase(victim);
    }
    const Meta meta{1, next_seq_++};
    tree_.emplace(Key{meta.freq, meta.seq}, object);
    index_.emplace(object, meta);
    return evicted;
  }

  bool erase(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return false;
    tree_.erase({it->second.freq, it->second.seq});
    index_.erase(it);
    return true;
  }

  void clear() override {
    tree_.clear();
    index_.clear();
  }

  std::vector<ObjectId> eviction_order() const override {
    std::vector<ObjectId> out;
    out.reserve(tree_.size());
    for (const auto& [key, object] : tree_) out.push_back(object);
    return out;
  }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (freq, insertion seq)
  struct Meta {
    std::uint64_t freq;
    std::uint64_t seq;
  };

  std::map<Key, ObjectId> tree_;
  std::unordered_map<ObjectId, Meta> index_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace

Policy parse_policy(std::string_view name) noexcept {
  const std::string lowered = util::to_lower(name);
  if (lowered == "fifo") return Policy::kFifo;
  if (lowered == "lfu") return Policy::kLfu;
  return Policy::kLru;
}

std::string_view policy_name(Policy policy) noexcept {
  switch (policy) {
    case Policy::kLru:
      return "lru";
    case Policy::kFifo:
      return "fifo";
    case Policy::kLfu:
      return "lfu";
  }
  return "lru";
}

std::unique_ptr<CacheSet> make_cache(std::size_t capacity, Policy policy) {
  assert(capacity > 0);
  switch (policy) {
    case Policy::kLru:
      return std::make_unique<ListCache>(capacity, /*bump_on_touch=*/true);
    case Policy::kFifo:
      return std::make_unique<ListCache>(capacity, /*bump_on_touch=*/false);
    case Policy::kLfu:
      return std::make_unique<LfuCache>(capacity);
  }
  return std::make_unique<ListCache>(capacity, true);
}

}  // namespace adc::cache
