#include "cache/policies.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <optional>

#include "util/string_util.h"

namespace adc::cache {
namespace {

/// LRU and FIFO share the list+index layout; FIFO simply ignores touches.
class ListCache final : public CacheSet {
 public:
  ListCache(std::size_t capacity, bool bump_on_touch)
      : CacheSet(capacity), bump_on_touch_(bump_on_touch) {
    index_.reserve(capacity);
  }

  std::size_t size() const noexcept override { return order_.size(); }

  bool contains(ObjectId object) const noexcept override {
    return index_.find(object) != index_.end();
  }

  void touch(ObjectId object) override {
    if (!bump_on_touch_) return;
    const auto it = index_.find(object);
    if (it == index_.end()) return;
    order_.splice(order_.begin(), order_, it->second);
  }

  std::optional<ObjectId> insert(ObjectId object) override {
    const auto it = index_.find(object);
    if (it != index_.end()) {
      touch(object);
      return std::nullopt;
    }
    std::optional<ObjectId> evicted;
    if (full() && capacity() > 0) {
      evicted = order_.back();
      index_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(object);
    index_.emplace(object, order_.begin());
    return evicted;
  }

  bool erase(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() override {
    order_.clear();
    index_.clear();
  }

  std::vector<ObjectId> eviction_order() const override {
    return std::vector<ObjectId>(order_.rbegin(), order_.rend());
  }

 private:
  bool bump_on_touch_;
  std::list<ObjectId> order_;  // front = most recently used/inserted
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> index_;
};

/// LFU with FIFO tie-breaking among equal frequencies (classic frequency
/// list structure; O(log n) via ordered key (freq, seq)).
class LfuCache final : public CacheSet {
 public:
  explicit LfuCache(std::size_t capacity) : CacheSet(capacity) { index_.reserve(capacity); }

  std::size_t size() const noexcept override { return index_.size(); }

  bool contains(ObjectId object) const noexcept override {
    return index_.find(object) != index_.end();
  }

  void touch(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return;
    Meta meta = it->second;
    tree_.erase({meta.freq, meta.seq});
    ++meta.freq;
    meta.seq = next_seq_++;
    tree_.emplace(Key{meta.freq, meta.seq}, object);
    it->second = meta;
  }

  std::optional<ObjectId> insert(ObjectId object) override {
    if (contains(object)) {
      touch(object);
      return std::nullopt;
    }
    std::optional<ObjectId> evicted;
    if (full() && capacity() > 0) {
      const auto victim = tree_.begin();
      evicted = victim->second;
      index_.erase(victim->second);
      tree_.erase(victim);
    }
    const Meta meta{1, next_seq_++};
    tree_.emplace(Key{meta.freq, meta.seq}, object);
    index_.emplace(object, meta);
    return evicted;
  }

  bool erase(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return false;
    tree_.erase({it->second.freq, it->second.seq});
    index_.erase(it);
    return true;
  }

  void clear() override {
    tree_.clear();
    index_.clear();
  }

  std::vector<ObjectId> eviction_order() const override {
    std::vector<ObjectId> out;
    out.reserve(tree_.size());
    for (const auto& [key, object] : tree_) out.push_back(object);
    return out;
  }

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // (freq, insertion seq)
  struct Meta {
    std::uint64_t freq;
    std::uint64_t seq;
  };

  std::map<Key, ObjectId> tree_;
  std::unordered_map<ObjectId, Meta> index_;
  std::uint64_t next_seq_ = 0;
};

/// LRU / FIFO / size-aware-LRU with byte accounting.  Keeps the ListCache
/// recency structure but multi-evicts until both the count capacity and
/// the byte budget hold; the size-aware variant picks the *largest* object
/// among the coldest kVictimScan entries instead of the strict LRU tail.
class SizedListCache final : public CacheSet {
 public:
  SizedListCache(std::size_t capacity, bool bump_on_touch, bool size_aware_victim,
                 std::uint64_t byte_budget, SizeFn size_fn)
      : CacheSet(capacity),
        bump_on_touch_(bump_on_touch),
        size_aware_victim_(size_aware_victim),
        budget_(byte_budget),
        size_fn_(std::move(size_fn)) {
    index_.reserve(capacity);
  }

  std::size_t size() const noexcept override { return order_.size(); }
  std::uint64_t bytes() const noexcept override { return bytes_; }
  std::uint64_t byte_budget() const noexcept override { return budget_; }

  bool contains(ObjectId object) const noexcept override {
    return index_.find(object) != index_.end();
  }

  void touch(ObjectId object) override {
    if (!bump_on_touch_) return;
    const auto it = index_.find(object);
    if (it == index_.end()) return;
    order_.splice(order_.begin(), order_, it->second.where);
  }

  std::optional<ObjectId> insert(ObjectId object) override {
    const std::vector<ObjectId> evicted = insert_evicting(object);
    if (evicted.empty()) return std::nullopt;
    return evicted.front();
  }

  std::vector<ObjectId> insert_evicting(ObjectId object) override {
    if (contains(object)) {
      touch(object);
      return {};
    }
    const std::uint64_t sz = size_fn_ ? size_fn_(object) : 1;
    if (budget_ > 0 && sz > budget_) return {};  // can never fit
    std::vector<ObjectId> evicted;
    while (!order_.empty() &&
           ((capacity() > 0 && size() >= capacity()) || (budget_ > 0 && bytes_ + sz > budget_))) {
      evicted.push_back(evict_one());
    }
    order_.push_front(object);
    index_.emplace(object, Entry{order_.begin(), sz});
    bytes_ += sz;
    return evicted;
  }

  bool erase(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return false;
    bytes_ -= it->second.size;
    order_.erase(it->second.where);
    index_.erase(it);
    return true;
  }

  void clear() override {
    order_.clear();
    index_.clear();
    bytes_ = 0;
  }

  std::vector<ObjectId> set_byte_budget(std::uint64_t budget) override {
    budget_ = budget;
    std::vector<ObjectId> evicted;
    while (budget_ > 0 && bytes_ > budget_ && !order_.empty()) {
      evicted.push_back(evict_one());
    }
    return evicted;
  }

  std::vector<ObjectId> eviction_order() const override {
    if (!size_aware_victim_) {
      return std::vector<ObjectId>(order_.rbegin(), order_.rend());
    }
    // Replay the windowed victim scan over a scratch copy so the snapshot
    // predicts exactly what successive evict_one() calls would pick.
    std::vector<ObjectId> out;
    out.reserve(order_.size());
    std::list<ObjectId> rest(order_.begin(), order_.end());
    while (!rest.empty()) {
      auto victim = std::prev(rest.end());
      auto it = victim;
      for (std::size_t scanned = 1; scanned < kVictimScan && it != rest.begin(); ++scanned) {
        --it;
        if (index_.at(*it).size > index_.at(*victim).size) victim = it;
      }
      out.push_back(*victim);
      rest.erase(victim);
    }
    return out;
  }

 private:
  /// Size-aware victim scan depth: bounds the cost of each eviction while
  /// still letting large cold objects jump the strict LRU queue.
  static constexpr std::size_t kVictimScan = 8;

  ObjectId evict_one() {
    auto victim = std::prev(order_.end());
    if (size_aware_victim_) {
      auto it = victim;
      for (std::size_t scanned = 1; scanned < kVictimScan && it != order_.begin(); ++scanned) {
        --it;
        // Strictly greater: on ties the colder (closer-to-tail) entry wins.
        if (index_.at(*it).size > index_.at(*victim).size) victim = it;
      }
    }
    const ObjectId object = *victim;
    bytes_ -= index_.at(object).size;
    index_.erase(object);
    order_.erase(victim);
    return object;
  }

  struct Entry {
    std::list<ObjectId>::iterator where;
    std::uint64_t size;
  };

  bool bump_on_touch_;
  bool size_aware_victim_;
  std::uint64_t budget_;
  SizeFn size_fn_;
  std::uint64_t bytes_ = 0;
  std::list<ObjectId> order_;  // front = most recently used/inserted
  std::unordered_map<ObjectId, Entry> index_;
};

/// GDSF and byte-budgeted LFU share the ordered-tree layout; they differ
/// only in the priority function (GDSF: L + freq / size with L inflation;
/// LFU: plain frequency).  Ties break on insertion sequence, so eviction
/// order is fully deterministic.
class SizedTreeCache final : public CacheSet {
 public:
  SizedTreeCache(std::size_t capacity, bool gdsf, std::uint64_t byte_budget, SizeFn size_fn)
      : CacheSet(capacity), gdsf_(gdsf), budget_(byte_budget), size_fn_(std::move(size_fn)) {
    index_.reserve(capacity);
  }

  std::size_t size() const noexcept override { return index_.size(); }
  std::uint64_t bytes() const noexcept override { return bytes_; }
  std::uint64_t byte_budget() const noexcept override { return budget_; }

  bool contains(ObjectId object) const noexcept override {
    return index_.find(object) != index_.end();
  }

  void touch(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return;
    Meta meta = it->second;
    tree_.erase({meta.priority, meta.seq});
    ++meta.freq;
    meta.seq = next_seq_++;
    meta.priority = priority_of(meta.freq, meta.size);
    tree_.emplace(Key{meta.priority, meta.seq}, object);
    it->second = meta;
  }

  std::optional<ObjectId> insert(ObjectId object) override {
    const std::vector<ObjectId> evicted = insert_evicting(object);
    if (evicted.empty()) return std::nullopt;
    return evicted.front();
  }

  std::vector<ObjectId> insert_evicting(ObjectId object) override {
    if (contains(object)) {
      touch(object);
      return {};
    }
    const std::uint64_t sz = size_fn_ ? size_fn_(object) : 1;
    if (budget_ > 0 && sz > budget_) return {};
    std::vector<ObjectId> evicted;
    while (!tree_.empty() &&
           ((capacity() > 0 && size() >= capacity()) || (budget_ > 0 && bytes_ + sz > budget_))) {
      evicted.push_back(evict_one());
    }
    Meta meta;
    meta.freq = 1;
    meta.seq = next_seq_++;
    meta.size = sz;
    meta.priority = priority_of(meta.freq, meta.size);
    tree_.emplace(Key{meta.priority, meta.seq}, object);
    index_.emplace(object, meta);
    bytes_ += sz;
    return evicted;
  }

  bool erase(ObjectId object) override {
    const auto it = index_.find(object);
    if (it == index_.end()) return false;
    bytes_ -= it->second.size;
    tree_.erase({it->second.priority, it->second.seq});
    index_.erase(it);
    return true;
  }

  void clear() override {
    tree_.clear();
    index_.clear();
    bytes_ = 0;
    // L_ deliberately survives clear(): GDSF's clock only moves forward.
  }

  std::vector<ObjectId> set_byte_budget(std::uint64_t budget) override {
    budget_ = budget;
    std::vector<ObjectId> evicted;
    while (budget_ > 0 && bytes_ > budget_ && !tree_.empty()) {
      evicted.push_back(evict_one());
    }
    return evicted;
  }

  std::vector<ObjectId> eviction_order() const override {
    std::vector<ObjectId> out;
    out.reserve(tree_.size());
    for (const auto& [key, object] : tree_) out.push_back(object);
    return out;
  }

 private:
  using Key = std::pair<double, std::uint64_t>;  // (priority, insertion seq)
  struct Meta {
    double priority = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t freq = 0;
    std::uint64_t size = 1;
  };

  double priority_of(std::uint64_t freq, std::uint64_t size) const {
    if (!gdsf_) return static_cast<double>(freq);
    // GDSF with unit cost: H = L + freq * cost / size.
    return inflation_ + static_cast<double>(freq) / static_cast<double>(size == 0 ? 1 : size);
  }

  ObjectId evict_one() {
    const auto victim = tree_.begin();
    const ObjectId object = victim->second;
    if (gdsf_) inflation_ = std::max(inflation_, victim->first.first);
    bytes_ -= index_.at(object).size;
    index_.erase(object);
    tree_.erase(victim);
    return object;
  }

  bool gdsf_;
  std::uint64_t budget_;
  SizeFn size_fn_;
  std::uint64_t bytes_ = 0;
  double inflation_ = 0.0;  // GDSF's L
  std::map<Key, ObjectId> tree_;
  std::unordered_map<ObjectId, Meta> index_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace

Policy parse_policy(std::string_view name) noexcept {
  const std::string lowered = util::to_lower(name);
  if (lowered == "fifo") return Policy::kFifo;
  if (lowered == "lfu") return Policy::kLfu;
  if (lowered == "gdsf") return Policy::kGdsf;
  if (lowered == "size-lru" || lowered == "sizelru" || lowered == "size_lru") {
    return Policy::kSizeLru;
  }
  return Policy::kLru;
}

std::string_view policy_name(Policy policy) noexcept {
  switch (policy) {
    case Policy::kLru:
      return "lru";
    case Policy::kFifo:
      return "fifo";
    case Policy::kLfu:
      return "lfu";
    case Policy::kGdsf:
      return "gdsf";
    case Policy::kSizeLru:
      return "size-lru";
  }
  return "lru";
}

std::unique_ptr<CacheSet> make_cache(std::size_t capacity, Policy policy) {
  assert(capacity > 0);
  switch (policy) {
    case Policy::kLru:
      return std::make_unique<ListCache>(capacity, /*bump_on_touch=*/true);
    case Policy::kFifo:
      return std::make_unique<ListCache>(capacity, /*bump_on_touch=*/false);
    case Policy::kLfu:
      return std::make_unique<LfuCache>(capacity);
    case Policy::kGdsf:
    case Policy::kSizeLru:
      return make_sized_cache(capacity, policy, /*byte_budget=*/0, /*size_fn=*/nullptr);
  }
  return std::make_unique<ListCache>(capacity, true);
}

std::unique_ptr<CacheSet> make_sized_cache(std::size_t capacity, Policy policy,
                                           std::uint64_t byte_budget, SizeFn size_fn) {
  assert(capacity > 0);
  switch (policy) {
    case Policy::kLru:
      return std::make_unique<SizedListCache>(capacity, /*bump_on_touch=*/true,
                                              /*size_aware_victim=*/false, byte_budget,
                                              std::move(size_fn));
    case Policy::kFifo:
      return std::make_unique<SizedListCache>(capacity, /*bump_on_touch=*/false,
                                              /*size_aware_victim=*/false, byte_budget,
                                              std::move(size_fn));
    case Policy::kSizeLru:
      return std::make_unique<SizedListCache>(capacity, /*bump_on_touch=*/true,
                                              /*size_aware_victim=*/true, byte_budget,
                                              std::move(size_fn));
    case Policy::kLfu:
      return std::make_unique<SizedTreeCache>(capacity, /*gdsf=*/false, byte_budget,
                                              std::move(size_fn));
    case Policy::kGdsf:
      return std::make_unique<SizedTreeCache>(capacity, /*gdsf=*/true, byte_budget,
                                              std::move(size_fn));
  }
  return std::make_unique<SizedListCache>(capacity, true, false, byte_budget, std::move(size_fn));
}

}  // namespace adc::cache
