// The ADC single-table: a capacity-bounded LRU list of mapping entries
// (paper Section III.3.1).
//
// New or re-inserted entries go on top; the bottom entry drops out when
// the table overflows.  The paper implemented the lookup as an element-wise
// scan of a linked list and identifies that scan as a dominant cost of
// large tables (Section V.3.3); `TableImpl::kFaithful` reproduces it, while
// `TableImpl::kIndexed` adds a hash index for O(1) lookups — the ablation
// bench quantifies the difference.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/table_entry.h"
#include "util/types.h"

namespace adc::cache {

/// Internal data-structure strategy for the mapping tables.
enum class TableImpl {
  kFaithful,  // the paper's structures: linear scans / position shifting
  kIndexed,   // hash-indexed production variant
};

class SingleTable {
 public:
  explicit SingleTable(std::size_t capacity, TableImpl impl = TableImpl::kIndexed);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  bool full() const noexcept { return entries_.size() >= capacity_; }
  TableImpl impl() const noexcept { return impl_; }

  bool contains(ObjectId object) const noexcept;

  /// Read-only view of an entry; nullptr when absent.  Does not touch
  /// recency (the ADC algorithm only reorders through remove + insert).
  const TableEntry* find(ObjectId object) const noexcept;

  /// Mutable view for in-place edits of fields that are not ordering keys
  /// (location, claim, version).  Recency is untouched.
  TableEntry* find_mutable(ObjectId object) noexcept;

  /// Removes and returns the entry (the paper's RemoveEntry).
  std::optional<TableEntry> remove(ObjectId object);

  /// Inserts on top (most recent); if the table is full the bottom entry
  /// drops out and is returned (paper: "the last element ... drops out").
  std::optional<TableEntry> insert_on_top(TableEntry entry);

  /// Removes and returns the bottom (least recent) entry.
  std::optional<TableEntry> remove_last();

  const TableEntry* top() const noexcept;
  const TableEntry* bottom() const noexcept;

  void clear();

  /// Entries from most to least recent (tests / diagnostics).
  std::vector<TableEntry> snapshot() const;

 private:
  using List = std::list<TableEntry>;

  List::iterator locate(ObjectId object);
  List::const_iterator locate(ObjectId object) const;

  std::size_t capacity_;
  TableImpl impl_;
  List entries_;  // front = most recent
  std::unordered_map<ObjectId, List::iterator> index_;  // kIndexed only
};

}  // namespace adc::cache
