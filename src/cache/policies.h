// Classic cache replacement policies for the baseline proxies.
//
// The paper's hashing baseline caches with LRU; FIFO and LFU are provided
// so the baseline-comparison ablation can show how sensitive the hashing
// results are to the replacement policy.  These caches store object ids
// only (the simulation never materializes payloads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace adc::cache {

enum class Policy {
  kLru,
  kFifo,
  kLfu,
};

/// Parses "lru" / "fifo" / "lfu" (case-insensitive); defaults to LRU.
Policy parse_policy(std::string_view name) noexcept;
std::string_view policy_name(Policy policy) noexcept;

/// A bounded set of cached object ids under some replacement policy.
class CacheSet {
 public:
  explicit CacheSet(std::size_t capacity) : capacity_(capacity) {}
  virtual ~CacheSet() = default;

  CacheSet(const CacheSet&) = delete;
  CacheSet& operator=(const CacheSet&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  virtual std::size_t size() const noexcept = 0;
  bool full() const noexcept { return size() >= capacity_; }

  virtual bool contains(ObjectId object) const noexcept = 0;

  /// Records a cache hit (LRU recency bump / LFU frequency bump).
  virtual void touch(ObjectId object) = 0;

  /// Inserts an object, evicting per policy when full.  Returns the evicted
  /// object id, if any.  Inserting a present object behaves like touch().
  virtual std::optional<ObjectId> insert(ObjectId object) = 0;

  /// Removes a specific object; true if it was present.
  virtual bool erase(ObjectId object) = 0;

  virtual void clear() = 0;

  /// Eviction-order snapshot, victim first (tests).
  virtual std::vector<ObjectId> eviction_order() const = 0;

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  /// Combined lookup + bookkeeping: true and touch on hit.
  bool lookup(ObjectId object) {
    if (contains(object)) {
      ++hits;
      touch(object);
      return true;
    }
    ++misses;
    return false;
  }

 private:
  std::size_t capacity_;
};

std::unique_ptr<CacheSet> make_cache(std::size_t capacity, Policy policy);

}  // namespace adc::cache
