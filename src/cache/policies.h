// Classic cache replacement policies for the baseline proxies.
//
// The paper's hashing baseline caches with LRU; FIFO and LFU are provided
// so the baseline-comparison ablation can show how sensitive the hashing
// results are to the replacement policy.  The caches store object ids only
// (the simulation never materializes payloads); when the payload store is
// enabled (src/store) a size function and per-proxy byte budget turn them
// into size-aware caches, and GDSF / size-aware LRU become available as
// additional policies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace adc::cache {

enum class Policy {
  kLru,
  kFifo,
  kLfu,
  /// GreedyDual-Size-Frequency: priority H = L + freq / size, evict the
  /// minimum-H object and inflate L to its priority (Cherkasova '98).
  /// Degenerates to LFU-with-aging under unit sizes.
  kGdsf,
  /// LRU ordering with a size-aware victim: among the coldest tail of the
  /// LRU list, evict the largest object first, repeating until the byte
  /// budget fits — big cold objects go before small ones.
  kSizeLru,
};

/// Parses "lru" / "fifo" / "lfu" / "gdsf" / "size-lru" (case-insensitive);
/// defaults to LRU.
Policy parse_policy(std::string_view name) noexcept;
std::string_view policy_name(Policy policy) noexcept;

/// Maps an object to its payload size in bytes (pure and stable for the
/// lifetime of the cache).
using SizeFn = std::function<std::uint64_t(ObjectId)>;

/// A bounded set of cached object ids under some replacement policy.
class CacheSet {
 public:
  explicit CacheSet(std::size_t capacity) : capacity_(capacity) {}
  virtual ~CacheSet() = default;

  CacheSet(const CacheSet&) = delete;
  CacheSet& operator=(const CacheSet&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  virtual std::size_t size() const noexcept = 0;
  bool full() const noexcept { return size() >= capacity_; }

  virtual bool contains(ObjectId object) const noexcept = 0;

  /// Records a cache hit (LRU recency bump / LFU frequency bump).
  virtual void touch(ObjectId object) = 0;

  /// Inserts an object, evicting per policy when full.  Returns the evicted
  /// object id, if any.  Inserting a present object behaves like touch().
  virtual std::optional<ObjectId> insert(ObjectId object) = 0;

  /// Like insert(), but returns *every* object evicted to admit this one.
  /// Count-capacity caches evict at most one; byte-budgeted caches may
  /// evict several to make room for a large object (and may admit nothing
  /// when the object alone exceeds the budget — check contains()).
  /// Callers maintaining per-object side state must use this form.
  virtual std::vector<ObjectId> insert_evicting(ObjectId object) {
    const std::optional<ObjectId> evicted = insert(object);
    if (evicted) return {*evicted};
    return {};
  }

  /// Removes a specific object; true if it was present.
  virtual bool erase(ObjectId object) = 0;

  virtual void clear() = 0;

  /// Eviction-order snapshot, victim first (tests).
  virtual std::vector<ObjectId> eviction_order() const = 0;

  // --- Byte accounting (size-aware caches; no-ops otherwise) -------------

  /// Total bytes of the cached objects (0 for count-only caches).
  virtual std::uint64_t bytes() const noexcept { return 0; }

  /// The byte budget (0 = unbounded bytes).
  virtual std::uint64_t byte_budget() const noexcept { return 0; }

  /// Re-budgets the cache, evicting per policy until the new budget fits;
  /// returns the objects evicted by the transition (victim first).
  virtual std::vector<ObjectId> set_byte_budget(std::uint64_t /*budget*/) { return {}; }

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  /// Combined lookup + bookkeeping: true and touch on hit.
  bool lookup(ObjectId object) {
    if (contains(object)) {
      ++hits;
      touch(object);
      return true;
    }
    ++misses;
    return false;
  }

 private:
  std::size_t capacity_;
};

/// Count-capacity cache; kGdsf / kSizeLru fall back to unit sizes here
/// (equivalent to LFU-with-aging and LRU respectively).
std::unique_ptr<CacheSet> make_cache(std::size_t capacity, Policy policy);

/// Size-aware cache: enforces the count capacity *and*, when byte_budget
/// > 0, the byte budget (multi-evicting per policy until both hold).
/// Objects larger than the byte budget are never admitted.  `size_fn`
/// must be valid for the cache's lifetime.
std::unique_ptr<CacheSet> make_sized_cache(std::size_t capacity, Policy policy,
                                           std::uint64_t byte_budget, SizeFn size_fn);

}  // namespace adc::cache
