// Object versioning for cache-consistency measurement.
//
// The paper's system (like most of the 2000s distributed-caching work it
// cites, e.g. Gwertzman & Seltzer on web cache consistency) treats objects
// as immutable.  Real objects change; replicated copies then serve *stale*
// data until refreshed.  The VersionOracle models origin-side updates
// deterministically: each object has a jittered update interval and its
// authoritative version at time t is t / interval.  The origin stamps
// replies, proxies remember the version they stored, and the client counts
// a hit as stale when the served version lags the oracle — no extra
// protocol, pure measurement.
#pragma once

#include <cstdint>
#include <memory>

#include "hash/fnv.h"
#include "util/types.h"

namespace adc::sim {

class VersionOracle {
 public:
  /// `mean_update_interval` in simulated time units; 0 disables updates
  /// (every object stays at version 0 forever).  Per-object intervals are
  /// jittered to [0.5, 1.5) of the mean so updates do not synchronize.
  explicit VersionOracle(SimTime mean_update_interval, std::uint64_t seed = 0x5ea1)
      : mean_interval_(mean_update_interval), seed_(seed) {}

  SimTime mean_interval() const noexcept { return mean_interval_; }
  bool enabled() const noexcept { return mean_interval_ > 0; }

  /// The object's own update interval (deterministic).
  SimTime interval_of(ObjectId object) const noexcept {
    if (!enabled()) return 0;
    const std::uint64_t mixed = hash::fnv1a64_u64(object ^ seed_);
    // Jitter factor in [0.5, 1.5): mean/2 + mean * (mixed fraction).
    const auto jitter = static_cast<SimTime>(
        (static_cast<double>(mixed >> 11) * 0x1.0p-53) * static_cast<double>(mean_interval_));
    return mean_interval_ / 2 + jitter + 1;
  }

  /// Authoritative version of the object at simulated time `now`;
  /// monotone non-decreasing in `now`.
  std::uint64_t version_at(ObjectId object, SimTime now) const noexcept {
    if (!enabled() || now <= 0) return 0;
    return static_cast<std::uint64_t>(now / interval_of(object));
  }

 private:
  SimTime mean_interval_;
  std::uint64_t seed_;
};

using VersionOraclePtr = std::shared_ptr<const VersionOracle>;

}  // namespace adc::sim
