// Latency model for the simulated network.
//
// Link classes mirror the paper's hop taxonomy (client-proxy, proxy-proxy,
// proxy-server).  Latencies only order events — hit/hop results do not
// depend on their absolute values — but distinct values make backwarding
// timelines realistic and let the latency metric distinguish a local hit
// from an origin round trip.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/node.h"
#include "util/types.h"

namespace adc::sim {

struct LatencyModel {
  SimTime client_proxy = 1;
  SimTime proxy_proxy = 2;
  SimTime proxy_origin = 10;
  /// Self-addressed messages (a proxy random-forwarding to itself) still
  /// take one queueing step so event ordering stays strictly causal.
  SimTime self = 1;
};

class Network {
 public:
  explicit Network(LatencyModel model = {}) : model_(model) {}

  const LatencyModel& model() const noexcept { return model_; }

  /// One-way delay between two node kinds.
  SimTime latency(NodeKind from, NodeKind to, bool self_message) const noexcept;

  /// Heterogeneous hardware: extra processing delay added to every message
  /// *delivered to* the given node (a slow Pentium among fast ones — the
  /// scenario the paper's coordinator predecessor was built to absorb).
  void set_node_delay(NodeId node, SimTime extra);
  SimTime node_delay(NodeId node) const noexcept;

  std::uint64_t messages_sent() const noexcept { return messages_sent_; }
  void count_message() noexcept { ++messages_sent_; }

 private:
  LatencyModel model_;
  std::unordered_map<NodeId, SimTime> node_delays_;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace adc::sim
