// Latency model for the simulated network.
//
// Link classes mirror the paper's hop taxonomy (client-proxy, proxy-proxy,
// proxy-server).  Latencies only order events — hit/hop results do not
// depend on their absolute values — but distinct values make backwarding
// timelines realistic and let the latency metric distinguish a local hit
// from an origin round trip.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "sim/message.h"
#include "sim/node.h"
#include "util/types.h"

namespace adc::sim {

/// Traffic classes for per-link-class accounting.  Requests and replies
/// are the paper's data path; control covers the membership layer (SWIM
/// probes/gossip and anti-entropy repair); store covers the erasure tier
/// (stripe registration and chunk traffic).  Keeping the classes separate
/// is what lets EXPERIMENTS tables show control-plane overhead next to
/// payload traffic instead of one opaque message total.
enum class LinkClass : std::uint8_t { kRequest = 0, kReply = 1, kControl = 2, kStore = 3 };
inline constexpr std::size_t kLinkClassCount = 4;

constexpr LinkClass link_class(MessageKind kind) noexcept {
  if (kind == MessageKind::kRequest) return LinkClass::kRequest;
  if (kind == MessageKind::kReply) return LinkClass::kReply;
  if (is_store_kind(kind)) return LinkClass::kStore;
  return LinkClass::kControl;
}

struct LatencyModel {
  SimTime client_proxy = 1;
  SimTime proxy_proxy = 2;
  SimTime proxy_origin = 10;
  /// Self-addressed messages (a proxy random-forwarding to itself) still
  /// take one queueing step so event ordering stays strictly causal.
  SimTime self = 1;
};

class Network {
 public:
  explicit Network(LatencyModel model = {}) : model_(model) {}

  const LatencyModel& model() const noexcept { return model_; }

  /// One-way delay between two node kinds.
  SimTime latency(NodeKind from, NodeKind to, bool self_message) const noexcept;

  /// Heterogeneous hardware: extra processing delay added to every message
  /// *delivered to* the given node (a slow Pentium among fast ones — the
  /// scenario the paper's coordinator predecessor was built to absorb).
  void set_node_delay(NodeId node, SimTime extra);
  SimTime node_delay(NodeId node) const noexcept;

  std::uint64_t messages_sent() const noexcept { return messages_sent_; }

  /// Charges one transfer.  `bytes` is the payload the message carries
  /// (sim::Message::payload_bytes; 0 for control traffic and while the
  /// payload store is disabled).  The no-argument form keeps legacy call
  /// sites counting into the request class.
  void count_message(MessageKind kind = MessageKind::kRequest, std::uint64_t bytes = 0) noexcept {
    ++messages_sent_;
    const auto c = static_cast<std::size_t>(link_class(kind));
    ++class_messages_[c];
    class_bytes_[c] += bytes;
  }

  std::uint64_t class_messages(LinkClass c) const noexcept {
    return class_messages_[static_cast<std::size_t>(c)];
  }
  std::uint64_t class_bytes(LinkClass c) const noexcept {
    return class_bytes_[static_cast<std::size_t>(c)];
  }

 private:
  LatencyModel model_;
  std::unordered_map<NodeId, SimTime> node_delays_;
  std::uint64_t messages_sent_ = 0;
  std::array<std::uint64_t, kLinkClassCount> class_messages_{};
  std::array<std::uint64_t, kLinkClassCount> class_bytes_{};
};

}  // namespace adc::sim
