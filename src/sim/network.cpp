#include "sim/network.h"

namespace adc::sim {

void Network::set_node_delay(NodeId node, SimTime extra) {
  if (extra <= 0) {
    node_delays_.erase(node);
    return;
  }
  node_delays_[node] = extra;
}

SimTime Network::node_delay(NodeId node) const noexcept {
  const auto it = node_delays_.find(node);
  return it == node_delays_.end() ? 0 : it->second;
}

SimTime Network::latency(NodeKind from, NodeKind to, bool self_message) const noexcept {
  if (self_message) return model_.self;
  if (from == NodeKind::kOrigin || to == NodeKind::kOrigin) return model_.proxy_origin;
  if (from == NodeKind::kClient || to == NodeKind::kClient) return model_.client_proxy;
  return model_.proxy_proxy;
}

}  // namespace adc::sim
