// Deterministic discrete-event queue.
//
// Events at equal simulated times are delivered in scheduling order (a
// monotone sequence number breaks ties), so a fixed seed reproduces the
// exact same simulation — the property all replay tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.h"

namespace adc::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (must be >= the time of the
  /// most recently popped event).
  void schedule(SimTime at, Action action);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the next event; kSimTimeMax when empty.
  SimTime next_time() const noexcept;

  /// Pops and runs the earliest event; returns its time.  Requires
  /// !empty().
  SimTime run_next();

  /// Pops the earliest event without running it (callers that need to
  /// advance a clock before executing, e.g. the Simulator).  Requires
  /// !empty().
  struct Popped {
    SimTime time;
    Action action;
  };
  Popped pop_next();

  /// Total events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  SimTime last_popped_ = 0;
};

}  // namespace adc::sim
