// Simulated node interface.
#pragma once

#include <string>

#include "sim/message.h"
#include "util/types.h"

namespace adc::sim {

class Transport;

enum class NodeKind : std::uint8_t {
  kClient,
  kProxy,
  kOrigin,
};

/// A participant in the system.  Nodes communicate exclusively through
/// Transport::send(); direct calls between nodes are not allowed, keeping
/// hop accounting and delivery ordering in one place.  The same node runs
/// unchanged under the discrete-event Simulator or a live TCP daemon.
class Node {
 public:
  Node(NodeId id, NodeKind kind, std::string name)
      : id_(id), kind_(kind), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const noexcept { return id_; }
  NodeKind kind() const noexcept { return kind_; }
  const std::string& name() const noexcept { return name_; }

  /// Delivery callback; `msg` is the node's to own.
  virtual void on_message(Transport& net, const Message& msg) = 0;

 private:
  NodeId id_;
  NodeKind kind_;
  std::string name_;
};

}  // namespace adc::sim
