#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace adc::sim {

std::string FaultCounters::text() const {
  std::string out;
  out += "drops_random=" + std::to_string(drops_random);
  out += " drops_partition=" + std::to_string(drops_partition);
  out += " drops_crash=" + std::to_string(drops_crash);
  out += " duplicates=" + std::to_string(duplicates);
  out += " delays=" + std::to_string(delays);
  out += " retries=" + std::to_string(retries);
  out += " reconnects=" + std::to_string(reconnects);
  out += " degraded_fetches=" + std::to_string(degraded_fetches);
  out += " timeouts=" + std::to_string(timeouts);
  out += " entries_invalidated=" + std::to_string(entries_invalidated);
  return out;
}

double MetricsSummary::fairness_ratio(const std::vector<std::uint64_t>& counts) noexcept {
  if (counts.empty()) return 0.0;
  std::uint64_t lo = counts.front();
  std::uint64_t hi = counts.front();
  for (const std::uint64_t c : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  if (hi == 0) return 1.0;  // nobody served anything: trivially balanced
  return static_cast<double>(hi) / static_cast<double>(std::max<std::uint64_t>(lo, 1));
}

double MetricsSummary::max_share(const std::vector<std::uint64_t>& counts) noexcept {
  std::uint64_t total = 0;
  std::uint64_t hi = 0;
  for (const std::uint64_t c : counts) {
    total += c;
    hi = std::max(hi, c);
  }
  return total == 0 ? 0.0 : static_cast<double>(hi) / static_cast<double>(total);
}

PercentileTracker::PercentileTracker(std::size_t max_samples)
    : cap_(max_samples < 2 ? 2 : max_samples) {
  // An odd cap would drift the even-index decimation; keep it even.
  cap_ &= ~std::size_t{1};
}

void PercentileTracker::add(double value) {
  ++added_;
  if (phase_ != 0) {
    phase_ = (phase_ + 1) % stride_;
    return;
  }
  phase_ = (phase_ + 1) % stride_;
  if (samples_.size() == cap_) {
    // Keep every other stored sample and halve the future sampling rate:
    // deterministic, no RNG, bounded memory.  (If a percentile() call
    // already sorted the store, this thins the order statistics uniformly
    // instead of the arrival sequence — either is an unbiased subsample.)
    std::size_t kept = 0;
    for (std::size_t i = 0; i < samples_.size(); i += 2) samples_[kept++] = samples_[i];
    samples_.resize(kept);
    stride_ *= 2;
    phase_ = 1 % stride_;
  }
  samples_.push_back(value);
  sorted_ = false;
}

double PercentileTracker::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto n = static_cast<double>(samples_.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;  // q == 0 means "the minimum value"
  if (rank > samples_.size()) rank = samples_.size();
  return samples_[rank - 1];
}

void PercentileTracker::clear() {
  samples_.clear();
  stride_ = 1;
  phase_ = 0;
  added_ = 0;
  sorted_ = true;
}

void IntHistogram::add(int value) noexcept {
  if (value < 0) value = 0;
  ++total_;
  sum_ += static_cast<std::uint64_t>(value);
  if (value > max_seen_) max_seen_ = value;
  const auto index = static_cast<std::size_t>(value);
  if (index < counts_.size() - 1) {
    ++counts_[index];
  } else {
    ++counts_.back();
  }
}

std::uint64_t IntHistogram::count_of(int value) const noexcept {
  if (value < 0 || static_cast<std::size_t>(value) >= counts_.size() - 1) return 0;
  return counts_[static_cast<std::size_t>(value)];
}

int IntHistogram::percentile(double q) const noexcept {
  if (total_ == 0) return -1;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto threshold = static_cast<std::uint64_t>(q * static_cast<double>(total_) + 0.999999);
  if (threshold == 0) threshold = 1;  // q == 0 means "the minimum value"
  std::uint64_t cumulative = 0;
  for (std::size_t v = 0; v < counts_.size() - 1; ++v) {
    cumulative += counts_[v];
    if (cumulative >= threshold) return static_cast<int>(v);
  }
  return static_cast<int>(counts_.size() - 1);  // overflow bucket
}

double IntHistogram::mean() const noexcept {
  return total_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(total_);
}

void MovingAverage::add(double value) noexcept {
  values_.push_back(value);
  sum_ += value;
  if (values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double MovingAverage::value() const noexcept {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

MetricsCollector::MetricsCollector(std::size_t ma_window, std::uint64_t sample_every)
    : hit_ma_(ma_window), hops_ma_(ma_window), latency_ma_(ma_window),
      sample_every_(sample_every) {}

void MetricsCollector::on_request_completed(bool proxy_hit, int hops, SimTime latency,
                                             bool stale, std::uint64_t bytes, bool degraded) {
  ++summary_.completed;
  if (proxy_hit) {
    ++summary_.hits;
    if (stale) ++summary_.stale_hits;
  }
  summary_.total_hops += static_cast<std::uint64_t>(hops);
  summary_.total_latency += latency;
  summary_.bytes_completed += bytes;
  if (proxy_hit) summary_.bytes_hit += bytes;
  if (degraded) {
    ++summary_.degraded_reads;
    summary_.bytes_recovered += bytes;
  }

  hit_ma_.add(proxy_hit ? 1.0 : 0.0);
  hops_ma_.add(static_cast<double>(hops));
  latency_ma_.add(static_cast<double>(latency));
  hops_hist_.add(hops);
  latency_pt_.add(static_cast<double>(latency));

  if (sample_every_ != 0 && summary_.completed % sample_every_ == 0) {
    series_.push_back(SeriesPoint{summary_.completed, hit_ma_.value(), hops_ma_.value(),
                                  latency_ma_.value()});
  }
}

void MetricsCollector::reset() {
  const std::size_t window = hit_ma_.window();
  summary_ = MetricsSummary{};
  hit_ma_ = MovingAverage(window);
  hops_ma_ = MovingAverage(window);
  latency_ma_ = MovingAverage(window);
  hops_hist_ = IntHistogram();
  latency_pt_.clear();
  series_.clear();
}

}  // namespace adc::sim
