#include "sim/simulator.h"

#include <cassert>
#include <utility>

#include "util/logging.h"

namespace adc::sim {

Simulator::Simulator(std::uint64_t seed, LatencyModel latency)
    : rng_(seed), network_(latency) {}

NodeId Simulator::add_node(std::unique_ptr<Node> node) {
  assert(node != nullptr);
  const auto id = static_cast<NodeId>(nodes_.size());
  assert(node->id() == id && "node must be constructed with its assigned id");
  nodes_.push_back(std::move(node));
  return id;
}

void Simulator::send(Message msg) {
  assert(msg.sender >= 0 && static_cast<std::size_t>(msg.sender) < nodes_.size());
  assert(msg.target >= 0 && static_cast<std::size_t>(msg.target) < nodes_.size());

  msg.hops += 1;
  network_.count_message(msg.kind, msg.payload_bytes);
  if (observer_) observer_(msg, now_);

  FaultDecision fate;
  if (fault_ != nullptr) fate = fault_->on_send(msg, now_);
  if (fate.drop) return;

  const bool self_message = msg.sender == msg.target;
  const SimTime delay = network_.latency(node(msg.sender).kind(), node(msg.target).kind(),
                                         self_message) +
                        network_.node_delay(msg.target) + fate.extra_delay;
  const NodeId target = msg.target;
  ADC_LOG_TRACE << "send t=" << now_ << " " << node(msg.sender).name() << " -> "
                << node(target).name() << " req=" << msg.request_id
                << " kind=" << (msg.kind == MessageKind::kRequest ? "REQ" : "RPL")
                << " hops=" << msg.hops;
  // Duplicates land one tick apart so delivery order stays well-defined.
  // A fault-injected copy is a retransmission artifact, not a second
  // payload transfer, so copies bypass the link model and ride on the
  // plain latency.
  for (int copy = 1; copy <= fate.duplicates; ++copy) {
    queue_.schedule(now_ + delay + copy, [this, msg, target]() {
      ++messages_delivered_;
      nodes_[static_cast<std::size_t>(target)]->on_message(*this, msg);
    });
  }
  if (link_ != nullptr && !self_message) {
    LinkHook::Deliver deliver = [this, msg, target](SimTime at) {
      queue_.schedule(at, [this, msg, target]() {
        ++messages_delivered_;
        nodes_[static_cast<std::size_t>(target)]->on_message(*this, msg);
      });
    };
    if (link_->on_send(msg, node(msg.sender).kind(), node(target).kind(), now_, delay,
                       std::move(deliver))) {
      return;
    }
  }
  queue_.schedule(now_ + delay, [this, msg = std::move(msg), target]() {
    ++messages_delivered_;
    nodes_[static_cast<std::size_t>(target)]->on_message(*this, msg);
  });
}

void Simulator::schedule(SimTime at, std::function<void()> action) {
  assert(at >= now_);
  queue_.schedule(at, std::move(action));
}

void Simulator::schedule_after(SimTime delay, std::function<void()> action) {
  schedule(now_ + delay, std::move(action));
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    // Advance the clock before executing so actions observe the correct
    // current time when they send follow-up messages.
    auto popped = queue_.pop_next();
    now_ = popped.time;
    popped.action();
    ++executed;
  }
  return executed;
}

}  // namespace adc::sim
