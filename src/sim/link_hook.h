// The simulator's bandwidth seam.
//
// Simulator::send() consults an optional LinkHook after fault handling and
// before scheduling delivery, so a link layer (src/link) can model finite
// link capacity — serialization delay, queueing behind in-flight transfers,
// fairness between destinations sharing an egress — without the simulator
// knowing a single bandwidth model.  Mirrors the FaultHook seam: the hook
// lives outside adc_sim's implementation so the dependency arrow points one
// way (sim defines the seam, link implements it).
//
// Unlike FaultHook, which returns a verdict the simulator applies, a
// LinkHook can take *ownership of delivery timing*: queueing delay depends
// on transfers that have not finished yet, so it cannot be computed eagerly
// at send time.  A hook that owns a transfer schedules its own service
// events (it holds the Simulator) and calls the provided deliver callback
// when the last byte has been serialized.  A hook that declines every
// transfer — or no hook at all — leaves delivery bit-identical to the
// plain simulator.
#pragma once

#include <functional>

#include "sim/message.h"
#include "sim/node.h"
#include "util/types.h"

namespace adc::sim {

class LinkHook {
 public:
  virtual ~LinkHook() = default;

  /// Schedules the transfer's delivery at absolute sim-time `at`.  Provided
  /// by the simulator; copyable and storable, must be invoked exactly once
  /// per owned transfer, with `at` no earlier than the send time.
  using Deliver = std::function<void(SimTime at)>;

  /// Called once per transfer (self-addressed messages excepted — there is
  /// no wire under those).  `base_delay` is everything the plain simulator
  /// would charge: propagation latency + receiver node delay + any fault
  /// stretch.  Return false to decline — the simulator delivers at
  /// now + base_delay exactly as if no hook were installed.  Return true to
  /// own the transfer; the hook must then call `deliver` exactly once, at a
  /// time >= now + base_delay.
  virtual bool on_send(const Message& msg, NodeKind from, NodeKind to, SimTime now,
                       SimTime base_delay, Deliver deliver) = 0;
};

}  // namespace adc::sim
