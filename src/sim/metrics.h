// Request-level metric collection.
//
// Reproduces the paper's measurement methodology: hit rate and hops as
// moving averages over a trailing request window (Figure 11 uses 5000
// requests), plus whole-run totals for the sweep figures (13-15).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/types.h"

namespace adc::sim {

/// Shared fault-and-resilience counter vocabulary.  The simulator's fault
/// layer (fault::FaultyNetwork) fills the injection side; the live runtime
/// (server::NodeDaemon, the load generator) fills the resilience side.
/// Both report through the same struct so a chaos sweep and a SIGUSR1
/// stats dump speak the same language.
struct FaultCounters {
  // Injection (what the fault plan did to traffic).
  std::uint64_t drops_random = 0;     // lost to the loss probability
  std::uint64_t drops_partition = 0;  // lost to a link partition window
  std::uint64_t drops_crash = 0;      // lost to a node crash window
  std::uint64_t duplicates = 0;       // extra copies delivered
  std::uint64_t delays = 0;           // transfers given extra latency

  // Resilience (how the runtime routed around failures).
  std::uint64_t retries = 0;              // dial attempts after a failure
  std::uint64_t reconnects = 0;           // a down peer came back
  std::uint64_t degraded_fetches = 0;     // request rerouted to the origin
  std::uint64_t timeouts = 0;             // per-request deadlines fired
  std::uint64_t entries_invalidated = 0;  // table entries aged out for dead peers

  std::uint64_t total_drops() const noexcept {
    return drops_random + drops_partition + drops_crash;
  }

  /// One-line `key=value` rendering for stats dumps and bench tables.
  std::string text() const;
};

/// Histogram over small non-negative integers (hop counts): exact counts
/// up to `max_value`, an overflow bucket beyond.
class IntHistogram {
 public:
  explicit IntHistogram(int max_value = 64) : counts_(static_cast<std::size_t>(max_value) + 2) {}

  void add(int value) noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t count_of(int value) const noexcept;
  std::uint64_t overflow() const noexcept { return counts_.back(); }

  /// Smallest value v with P(X <= v) >= q; -1 on an empty histogram.
  /// Overflowed samples count as the largest tracked value + 1.
  int percentile(double q) const noexcept;
  int max_seen() const noexcept { return max_seen_; }
  double mean() const noexcept;

 private:
  std::vector<std::uint64_t> counts_;  // [0..max_value] + overflow
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  int max_seen_ = -1;
};

/// Deterministic percentile estimator over double-valued samples (request
/// latencies).  Samples are stored and the percentile is read off a sorted
/// copy, so the result is independent of accumulation order — unlike a
/// running double sum, whose rounding depends on the order values arrive.
/// The simulator's MetricsCollector and the live runtime's adc_loadgen
/// share this class so both report percentiles with identical semantics.
///
/// Memory is bounded: when `max_samples` is reached the stored set is
/// decimated to every other sample and the sampling stride doubles — a
/// deterministic (RNG-free) reservoir, so a given input sequence always
/// produces the same estimate.
class PercentileTracker {
 public:
  explicit PercentileTracker(std::size_t max_samples = 1 << 20);

  void add(double value);

  /// Nearest-rank percentile (smallest stored value v with CDF(v) >= q),
  /// matching IntHistogram::percentile; q clamped to [0, 1].  Returns 0
  /// when no samples were added.
  double percentile(double q) const;

  /// Total samples offered (including ones the stride skipped).
  std::uint64_t count() const noexcept { return added_; }
  std::size_t stored() const noexcept { return samples_.size(); }
  std::size_t stride() const noexcept { return stride_; }

  void clear();

 private:
  std::size_t cap_;
  std::size_t stride_ = 1;   // record every stride_-th sample once cap_ was hit
  std::size_t phase_ = 0;    // position within the current stride
  std::uint64_t added_ = 0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-window moving average over doubles.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window) : window_(window) {}

  void add(double value) noexcept;
  double value() const noexcept;
  std::size_t count() const noexcept { return values_.size(); }
  std::size_t window() const noexcept { return window_; }

 private:
  std::size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

/// One sampled point of the Figure-11/12 time series.
struct SeriesPoint {
  std::uint64_t requests = 0;   // x axis: total completed requests
  double hit_rate = 0.0;        // moving-average hit rate
  double hops = 0.0;            // moving-average hops
  double latency = 0.0;         // moving-average simulated latency
};

/// Per-link-class traffic totals, filled by the experiment driver from
/// sim::Network's class counters at run end.  Messages count transfers;
/// bytes count the payload each transfer carried (0 while the payload
/// store is disabled — requests and control traffic carry none), so the
/// control-plane overhead of SWIM, anti-entropy and chunk lookups is
/// separable from payload traffic in EXPERIMENTS tables.
struct TrafficTotals {
  std::uint64_t request_messages = 0;
  std::uint64_t reply_messages = 0;
  std::uint64_t control_messages = 0;  // SWIM probes/gossip + anti-entropy
  std::uint64_t store_messages = 0;    // stripe registration + chunk traffic
  std::uint64_t request_bytes = 0;
  std::uint64_t reply_bytes = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t store_bytes = 0;

  std::uint64_t total_messages() const noexcept {
    return request_messages + reply_messages + control_messages + store_messages;
  }
  std::uint64_t total_bytes() const noexcept {
    return request_bytes + reply_bytes + control_bytes + store_bytes;
  }
  /// Fraction of all transfers that were control-plane (SWIM/anti-entropy
  /// plus erasure-tier bookkeeping) rather than the request/reply path.
  double overhead_message_share() const noexcept {
    const std::uint64_t total = total_messages();
    return total == 0 ? 0.0
                      : static_cast<double>(control_messages + store_messages) /
                            static_cast<double>(total);
  }
};

struct MetricsSummary {
  std::uint64_t completed = 0;
  std::uint64_t hits = 0;
  /// Per-owner load accounting, indexed by proxy position in the
  /// deployment: requests each proxy received (entry deliveries and
  /// forwards both count — it is the proxy's processing load) and the
  /// local hits it served.  Filled by the experiment driver from the
  /// per-proxy counters once a run ends; empty when a collector is used
  /// without a deployment (unit tests, partial windows).
  std::vector<std::uint64_t> owner_requests;
  std::vector<std::uint64_t> owner_hits;
  /// Whole-run latency tail from the deterministic PercentileTracker
  /// (stamped by the driver at run end; 0 until then).  The adversarial
  /// suite reports these alongside the means: a hash flood can leave the
  /// mean flat while the tail explodes.
  double latency_p99 = 0.0;
  double latency_p999 = 0.0;
  /// Requests that never completed: the per-request timeout expired (only
  /// nonzero under fault injection).  Failed requests are excluded from
  /// every other aggregate — hit_rate() stays hits/completed.
  std::uint64_t failed = 0;
  /// Hits that served data older than the origin's current version
  /// (always 0 when versioning is disabled).
  std::uint64_t stale_hits = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t total_forwards = 0;
  SimTime total_latency = 0;

  // --- Byte accounting (all 0 while the payload store is disabled) -------
  /// Payload bytes of every completed request.
  std::uint64_t bytes_completed = 0;
  /// Bytes of completions a proxy resolved (cache hits + degraded reads);
  /// the remainder was fetched from the origin.
  std::uint64_t bytes_hit = 0;
  /// Bytes answered by erasure-tier degraded reads (subset of bytes_hit).
  std::uint64_t bytes_recovered = 0;
  /// Completions flagged degraded.
  std::uint64_t degraded_reads = 0;
  /// Per-owner served payload bytes (parallel to owner_requests).
  std::vector<std::uint64_t> owner_bytes;

  /// Per-link-class message/byte totals (driver-filled; all zero when a
  /// collector is used without a deployment).
  TrafficTotals traffic;

  double hit_rate() const noexcept {
    return completed == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(completed);
  }
  double avg_hops() const noexcept {
    return completed == 0 ? 0.0
                          : static_cast<double>(total_hops) / static_cast<double>(completed);
  }
  double avg_latency() const noexcept {
    return completed == 0 ? 0.0
                          : static_cast<double>(total_latency) / static_cast<double>(completed);
  }
  /// Fraction of hits that were stale.
  double stale_rate() const noexcept {
    return hits == 0 ? 0.0 : static_cast<double>(stale_hits) / static_cast<double>(hits);
  }
  /// Fraction of all resolved requests (completed or timed out) that were
  /// lost — the chaos sweeps' availability metric.
  double failure_rate() const noexcept {
    const std::uint64_t resolved = completed + failed;
    return resolved == 0 ? 0.0 : static_cast<double>(failed) / static_cast<double>(resolved);
  }

  /// Fraction of completed *bytes* served by proxies rather than the
  /// origin — the economics metric the request hit rate hides under
  /// heavy-tailed sizes.
  double byte_hit_rate() const noexcept {
    return bytes_completed == 0
               ? 0.0
               : static_cast<double>(bytes_hit) / static_cast<double>(bytes_completed);
  }
  /// Bytes that had to come from the origin server.
  std::uint64_t origin_bytes() const noexcept { return bytes_completed - bytes_hit; }

  /// Max/min fairness ratio over a per-owner counter vector: 1.0 is a
  /// perfectly balanced cluster, larger means more skew.  An owner with a
  /// zero counter is graded as if it had 1 (so a flood that starves peers
  /// entirely reports `max`, not infinity); an empty vector returns 0.
  static double fairness_ratio(const std::vector<std::uint64_t>& counts) noexcept;

  /// Largest single-owner share of the summed counter, in [0, 1] — the
  /// flood-concentration metric (1/n when balanced over n owners).
  static double max_share(const std::vector<std::uint64_t>& counts) noexcept;

  double request_fairness() const noexcept { return fairness_ratio(owner_requests); }
  double hit_fairness() const noexcept { return fairness_ratio(owner_hits); }
};

class MetricsCollector {
 public:
  /// `ma_window`: trailing window of the moving averages (paper: 5000).
  /// `sample_every`: a series point is recorded each time this many
  /// requests complete (0 disables series collection).
  explicit MetricsCollector(std::size_t ma_window = 5000,
                            std::uint64_t sample_every = 5000);

  /// Called by the client when a reply arrives.  `stale` marks a hit that
  /// served outdated data (ignored for misses).  `bytes` is the payload
  /// size the reply carried (0 while the store is disabled) and `degraded`
  /// marks an erasure-tier reconstruction.
  void on_request_completed(bool proxy_hit, int hops, SimTime latency, bool stale = false,
                            std::uint64_t bytes = 0, bool degraded = false);

  /// Called when a request's deadline expired with no reply (fault runs
  /// only).  Counts into summary().failed and nothing else.
  void on_request_failed() noexcept { ++summary_.failed; }

  const MetricsSummary& summary() const noexcept { return summary_; }
  const std::vector<SeriesPoint>& series() const noexcept { return series_; }

  double moving_hit_rate() const noexcept { return hit_ma_.value(); }
  double moving_hops() const noexcept { return hops_ma_.value(); }

  /// Whole-run distribution of per-request hop counts.
  const IntHistogram& hop_histogram() const noexcept { return hops_hist_; }

  /// Whole-run per-request latency distribution (deterministic; shared
  /// semantics with the live runtime's load generator).
  const PercentileTracker& latency_tracker() const noexcept { return latency_pt_; }

  /// Resets counters (summary + series + windows), e.g. to exclude a warmup
  /// phase from the reported totals.
  void reset();

 private:
  MetricsSummary summary_;
  MovingAverage hit_ma_;
  MovingAverage hops_ma_;
  MovingAverage latency_ma_;
  IntHistogram hops_hist_;
  PercentileTracker latency_pt_;
  std::uint64_t sample_every_;
  std::vector<SeriesPoint> series_;
};

}  // namespace adc::sim
