// The simulator's fault seam.
//
// Simulator::send() consults an optional FaultHook after hop accounting
// and before scheduling delivery, so a fault layer (src/fault) can drop,
// duplicate, or delay any transfer without the simulator knowing a single
// fault model.  The hook lives outside adc_sim to keep the dependency
// arrow pointing one way: sim defines the seam, fault implements it.
#pragma once

#include "sim/message.h"
#include "util/types.h"

namespace adc::sim {

/// What happens to one transfer.  The default decision is a faithful
/// delivery — a hook that always returns it is indistinguishable from no
/// hook at all (tests/fault/faulty_network_test.cpp pins this down).
struct FaultDecision {
  bool drop = false;       // the message vanishes in transit
  int duplicates = 0;      // extra copies delivered after the original
  SimTime extra_delay = 0; // added to the link latency
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called once per send, after the hop counter is charged (a lost
  /// message still travelled).  Must be deterministic given the hook's
  /// own seed; it must not touch the simulator's RNG.
  virtual FaultDecision on_send(const Message& msg, SimTime now) = 0;
};

}  // namespace adc::sim
