// The seam between protocol logic and the medium that carries it.
//
// The paper validated its simulator by checking that a single-host run
// "returns the same results as a run spread over a distributed set of
// machines".  This interface is what makes that claim testable in-repo:
// proxy agents (core::AdcProxy, the baselines) speak only to a Transport,
// and both the discrete-event Simulator and the TCP node daemon
// (server::NodeDaemon) implement it.  The same unmodified agent code runs
// in-process against the event queue or live against real sockets.
#pragma once

#include "sim/message.h"
#include "util/rng.h"
#include "util/types.h"

namespace adc::sim {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Transfers a message.  `msg.sender` must name the sending node and
  /// `msg.target` the destination.  Implementations increment `msg.hops`
  /// exactly once per transfer — including self-addressed messages — so
  /// hop accounting is identical across media.
  virtual void send(Message msg) = 0;

  /// Source of every stochastic protocol choice (random forwarding
  /// targets, epsilon-greedy exploration).  Deterministic per transport
  /// instance given its seed.
  virtual util::Rng& rng() = 0;

  /// Current time in the transport's clock domain: simulated ticks for the
  /// Simulator, microseconds since start for the live runtime.  Only used
  /// for ordering and interval measurement, never compared across domains.
  virtual SimTime now() const = 0;
};

}  // namespace adc::sim
