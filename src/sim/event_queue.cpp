#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace adc::sim {

void EventQueue::schedule(SimTime at, Action action) {
  assert(at >= last_popped_ && "cannot schedule into the past");
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

SimTime EventQueue::next_time() const noexcept {
  return heap_.empty() ? kSimTimeMax : heap_.top().time;
}

EventQueue::Popped EventQueue::pop_next() {
  assert(!heap_.empty());
  // priority_queue::top() is const; moving the action out requires a copy
  // otherwise, so take it via const_cast — the entry is popped immediately.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  last_popped_ = entry.time;
  ++executed_;
  return Popped{entry.time, std::move(entry.action)};
}

SimTime EventQueue::run_next() {
  Popped popped = pop_next();
  popped.action();
  return popped.time;
}

}  // namespace adc::sim
