// Messages exchanged by simulated nodes.
//
// The paper's system moves exactly two kinds of traffic: object *requests*
// travelling away from the client and *replies* carrying the object (plus
// the resolver annotation used by multicasting-by-backwarding) toward it.
// Objects themselves are never materialized — the paper simulates URL
// handling only — so a reply carries metadata, not payload bytes.
//
// The membership layer (src/membership) adds control traffic on the same
// Message shape so the SWIM detector and the anti-entropy repair run over
// any sim::Transport.  Control messages reuse existing fields instead of
// growing the struct:
//   * request_id — probe sequence number (SWIM) / unused (repair)
//   * resolver   — the *subject* node the message is about: the member
//                  being probed or gossiped (SWIM), the claimed object
//                  location (repair)
//   * version    — the subject's incarnation number (SWIM)
//   * client     — the original prober a ping-req relay acts for
//                  (kInvalidNode on direct probes)
//   * object / claim — the object and its resolver-claim version (repair)
#pragma once

#include "util/types.h"

namespace adc::sim {

enum class MessageKind : std::uint8_t {
  kRequest,
  kReply,

  // --- SWIM failure detection (src/membership/swim.h) -------------------
  kSwimPing,     // direct or relayed liveness probe
  kSwimAck,      // probe answer (relayed back to `client` when set)
  kSwimPingReq,  // "probe `resolver` for me" indirection request
  kSwimSuspect,  // broadcast: subject `resolver` is suspected at `version`
  kSwimAlive,    // refutation: subject `resolver` is alive at `version`
  kSwimDead,     // broadcast: subject `resolver` is confirmed dead

  // --- Anti-entropy repair of resolver opinions (AdcProxy) --------------
  kRepairOffer,  // "I believe `object` resolves at `resolver`, claim `claim`"
  kRepairReply,  // counter-opinion carrying a higher claim

  // --- Erasure-coded payload tier (src/store/erasure_tier.h) ------------
  // These reuse existing fields: `resolver` carries the stripe chunk
  // index, `cached` on a chunk reply means "I hold that chunk", and
  // `request_id` ties chunk traffic back to the client request being
  // answered by a degraded read.
  kStripeStore,   // "remember chunk `resolver` of `object` (payload_bytes each)"
  kChunkRequest,  // "send me chunk `resolver` of `object` for `request_id`"
  kChunkReply,    // chunk answer; `cached` = the chunk was actually held

  // --- Proactive re-stripe repair (src/store/restripe.h) ----------------
  // After a confirmed death the stripe's repair leader re-homes the lost
  // chunk: an offer asks the rendezvous-chosen replacement to adopt chunk
  // `resolver` of `object` (payload_bytes = chunk size; the live daemon
  // carries a sample of the chunk reconstructed by RDP equation peeling),
  // and the ack — control-sized — retires the leader's repair work item.
  kRestripeOffer,  // "adopt chunk `resolver` of `object` (repair / rejoin hand-back)"
  kRestripeAck,    // "adopted; stop re-offering"
};

/// True for the membership-layer control kinds that a MemberAgent or
/// NodeDaemon routes to the failure detector instead of the hosted agent.
constexpr bool is_swim_kind(MessageKind kind) noexcept {
  return kind >= MessageKind::kSwimPing && kind <= MessageKind::kSwimDead;
}

/// True for the anti-entropy kinds handled by core::AdcProxy.
constexpr bool is_repair_kind(MessageKind kind) noexcept {
  return kind == MessageKind::kRepairOffer || kind == MessageKind::kRepairReply;
}

/// True for the erasure-tier kinds handled by store::ErasureTier
/// (stripe registration, degraded-read chunk traffic, re-stripe repair).
constexpr bool is_store_kind(MessageKind kind) noexcept {
  return kind >= MessageKind::kStripeStore && kind <= MessageKind::kRestripeAck;
}

struct Message {
  MessageKind kind = MessageKind::kRequest;

  /// Globally unique per client request; proxies use it for loop detection
  /// and to index their pending-backwarding records (paper Section III.1).
  RequestId request_id = 0;

  ObjectId object = 0;

  /// Immediate sender (updated at every forwarding step: the paper's
  /// Request.setSender(this)) and delivery target.
  NodeId sender = kInvalidNode;
  NodeId target = kInvalidNode;

  /// The client that issued the request; replies terminate here.
  NodeId client = kInvalidNode;

  /// Number of proxy-to-proxy forwards so far (for the max-hops cutoff).
  int forward_count = 0;

  /// Total message transfers on this request's journey so far, maintained
  /// by the simulator on every send (client-proxy, proxy-proxy,
  /// proxy-origin and every backwarding transfer each count one hop).
  int hops = 0;

  // --- Reply-only fields -------------------------------------------------

  /// The proxy all backwarding participants should agree on as the
  /// object's location.  kInvalidNode encodes the paper's NULL ("the data
  /// came straight from the origin server").
  NodeId resolver = kInvalidNode;

  /// True once some proxy on the path holds the object in its cache
  /// (the paper's Reply.notCached() test inverted).
  bool cached = false;

  /// True when a proxy (as opposed to the origin server) resolved the
  /// request; drives the hit-rate metric.
  bool proxy_hit = false;

  /// Version of the object data this reply carries (stamped by the origin
  /// from the VersionOracle; cache hits carry the version the proxy
  /// stored).  The client compares it against the oracle to count stale
  /// hits.  Always 0 when versioning is disabled.
  std::uint64_t version = 0;

  /// Resolver-claim version for this object (monotone per object).
  /// Requests accumulate the highest claim seen along the forward path (a
  /// *floor*); a proxy claiming resolver status stamps floor + 1 onto the
  /// reply, and Update_Entry rejects learning from claims older than the
  /// one already stored.  0 = unversioned (clients, cold entries).
  std::uint64_t claim = 0;

  /// Simulated issue time, for latency accounting.
  SimTime issued_at = 0;

  /// Size in bytes of the payload this message carries or describes
  /// (replies and chunk traffic; 0 whenever the payload store is
  /// disabled).  The simulator never materializes bodies — this field *is*
  /// the byte accounting — while the live daemon additionally serializes a
  /// verifiable sample of the pattern (src/store/payload.h).
  std::uint64_t payload_bytes = 0;

  /// True when this reply was reconstructed from surviving stripe chunks
  /// (a degraded read) rather than served from a cache or the origin.
  bool degraded = false;
};

}  // namespace adc::sim
