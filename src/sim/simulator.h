// The discrete-event simulator that stands in for the paper's "Carolina"
// multi-agent platform.
//
// Single-threaded and fully deterministic: nodes are registered once, all
// communication goes through send(), and run() drains the event queue.
// The paper verified that a single-host simulation of its proxy agents is
// result-equivalent to the 8-host deployment; this engine is the
// single-host equivalent with explicit, auditable semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/fault_hook.h"
#include "sim/link_hook.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/transport.h"
#include "util/rng.h"
#include "util/types.h"

namespace adc::sim {

class Simulator final : public Transport {
 public:
  explicit Simulator(std::uint64_t seed = 1, LatencyModel latency = {});

  /// Registers a node; the simulator assigns and returns its id.  Nodes
  /// must all be added before the first send().
  NodeId add_node(std::unique_ptr<Node> node);

  Node& node(NodeId id) noexcept { return *nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(NodeId id) const noexcept { return *nodes_[static_cast<std::size_t>(id)]; }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Transfers a message.  `msg.sender` must name the sending node and
  /// `msg.target` the destination; the hop counter is incremented here so
  /// every transfer — including a proxy forwarding to itself — counts
  /// exactly once.
  void send(Message msg) override;

  /// Schedules an arbitrary action (request injection, membership change).
  void schedule(SimTime at, std::function<void()> action);
  void schedule_after(SimTime delay, std::function<void()> action);

  /// Runs until the event queue is empty or `max_events` executed.
  /// Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  SimTime now() const noexcept override { return now_; }
  bool idle() const noexcept { return queue_.empty(); }

  util::Rng& rng() noexcept override { return rng_; }
  Network& network() noexcept { return network_; }
  MetricsCollector& metrics() noexcept { return metrics_; }
  const MetricsCollector& metrics() const noexcept { return metrics_; }

  /// Replaces the metric collector (drivers configure window/sampling).
  void set_metrics(MetricsCollector collector) { metrics_ = std::move(collector); }

  /// Installs a fault hook (non-owning; must outlive the simulation, or be
  /// cleared with nullptr).  Consulted on every send after hop accounting:
  /// the hook can drop the transfer, duplicate it, or stretch its latency.
  /// With no hook — or a hook that always returns the default decision —
  /// delivery is bit-identical to the fault-free simulator.
  void set_fault_hook(FaultHook* hook) noexcept { fault_ = hook; }
  FaultHook* fault_hook() const noexcept { return fault_; }

  /// Installs a link hook (non-owning; must outlive the simulation, or be
  /// cleared with nullptr).  Consulted after the fault hook on every
  /// non-self transfer: the hook may take ownership of delivery timing to
  /// model serialization and queueing on finite-capacity links.  With no
  /// hook — or a hook that declines every transfer — delivery is
  /// bit-identical to the plain simulator.
  void set_link_hook(LinkHook* hook) noexcept { link_ = hook; }
  LinkHook* link_hook() const noexcept { return link_; }

  /// Observes every message at send time (after hop accounting), e.g. to
  /// reconstruct journeys for protocol-level assertions or visualization.
  /// Pass nullptr to disable.  The observer must not send messages.
  using MessageObserver = std::function<void(const Message&, SimTime sent_at)>;
  void set_message_observer(MessageObserver observer) { observer_ = std::move(observer); }

  std::uint64_t messages_delivered() const noexcept { return messages_delivered_; }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  std::vector<std::unique_ptr<Node>> nodes_;
  util::Rng rng_;
  Network network_;
  MetricsCollector metrics_;
  MessageObserver observer_;
  FaultHook* fault_ = nullptr;
  LinkHook* link_ = nullptr;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace adc::sim
