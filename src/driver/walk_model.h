// Analytical model of the ADC random search walk — a first cut of the
// "theoretical framework to explain emerging attributes" the paper's
// conclusion calls for.
//
// Setting: n proxies; r of them hold the object ("replicas"); nobody has
// a mapping-table entry for it (pure random forwarding, the cold-search
// regime).  A request enters a uniformly random proxy and then performs
// the paper's walk: forward to a uniformly random proxy (self included)
// until it reaches a holder (hit), revisits any proxy (loop → origin), or
// exhausts the forward budget F (→ origin).  The reply retraces the path,
// so a journey of m forward-path messages costs exactly 2m hops.
//
// The walk is a small absorbing Markov chain over (distinct proxies
// visited, forwards used); predict_walk() evaluates it exactly.  The
// validation tests drive the *real* simulator into this regime (unknown
// objects; warmed caches) and check the predictions.
#pragma once

namespace adc::driver {

struct WalkModelParams {
  int proxies = 5;       // n >= 1
  int replicas = 0;      // 0 <= r <= n proxies currently holding the object
  int max_forwards = 8;  // F >= 0, the paper's termination budget
};

struct WalkPrediction {
  /// Probability the request is served by a proxy (vs the origin).
  double hit_probability = 0.0;
  /// Expected messages on the forward path (client hop included).
  double expected_forward_messages = 0.0;
  /// Expected total hops for the journey: 2 x forward messages.
  double expected_hops = 0.0;
};

/// Exact evaluation of the walk chain.  O(n * F) states.
WalkPrediction predict_walk(const WalkModelParams& params);

}  // namespace adc::driver
