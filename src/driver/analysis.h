// Post-run analysis helpers: per-phase breakdowns, load-balance measures,
// and cache-content duplication — the quantities behind the paper's
// qualitative statements ("balance the user request load", "reduce the
// number of copies", "the diagram shows clearly the three phases").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "workload/trace.h"

namespace adc::driver {

struct PhaseMetrics {
  std::string name;          // "fill", "phase-I", "phase-II"
  std::uint64_t begin = 0;   // request-count window [begin, end)
  std::uint64_t end = 0;
  double hit_rate = 0.0;     // mean of the moving-average series inside the window
  double hops = 0.0;
  double latency = 0.0;
  std::size_t samples = 0;   // series points the means are built from
};

/// Splits the recorded series along the trace's phase boundaries.  Phases
/// without any sample report zeros with samples == 0.
std::vector<PhaseMetrics> phase_breakdown(const ExperimentResult& result,
                                          const workload::TracePhases& phases,
                                          std::uint64_t total_requests);

struct LoadStats {
  std::uint64_t total = 0;     // requests received over all proxies
  std::uint64_t peak = 0;      // busiest proxy
  double peak_share = 0.0;     // peak / total (1/n is perfectly even)
  double cv = 0.0;             // coefficient of variation of per-proxy load
};

/// Request-load distribution over the proxies.
LoadStats load_balance(const std::vector<ProxySnapshot>& proxies);

struct DuplicationStats {
  std::uint64_t total_cached = 0;     // sum of per-proxy cache sizes
  std::uint64_t distinct_cached = 0;  // union of cached object ids
  /// total / distinct: 1.0 = perfect partitioning (hashing), higher means
  /// replicated content (ADC's hot-object copies).
  double factor = 0.0;
};

/// Requires the run to have been executed with
/// ExperimentConfig::collect_cache_contents = true.
DuplicationStats duplication(const std::vector<ProxySnapshot>& proxies);

/// Mean and sample standard deviation over replicated runs.
struct ReplicationSummary {
  std::size_t runs = 0;
  double hit_rate_mean = 0.0;
  double hit_rate_sd = 0.0;
  double hops_mean = 0.0;
  double hops_sd = 0.0;
};

/// Runs the experiment once per seed (everything else fixed) and
/// aggregates — the error bars behind any single-seed comparison.  Thin
/// serial wrapper over run_replicated() (driver/parallel.h), which also
/// offers confidence intervals and multi-threaded fan-out.
ReplicationSummary run_seeds(const ExperimentConfig& config, const workload::Trace& trace,
                             const std::vector<std::uint64_t>& seeds);

}  // namespace adc::driver
