#include "driver/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace adc::driver {

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

void print_table(std::ostream& out, const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return;
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << "  ";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << rows[r][c];
    }
    out << '\n';
    if (r == 0) {
      out << "  ";
      for (std::size_t c = 0; c < widths.size(); ++c) {
        out << std::string(widths[c], '-') << "  ";
      }
      out << '\n';
    }
  }
}

void print_summary(std::ostream& out, std::string_view label, const ExperimentResult& result) {
  out << label << ": requests=" << util::with_thousands(result.summary.completed)
      << " hit_rate=" << fmt(result.summary.hit_rate()) << " avg_hops="
      << fmt(result.summary.avg_hops(), 3) << " avg_latency="
      << fmt(result.summary.avg_latency(), 2) << " p99=" << fmt(result.latency_p99, 1)
      << " p99.9=" << fmt(result.latency_p999, 1) << " fairness="
      << fmt(result.summary.request_fairness(), 2) << " origin_fetches="
      << util::with_thousands(result.origin_served) << " wall=" << fmt(result.wall_seconds, 3)
      << "s\n";
}

void print_series_csv(std::ostream& out, std::string_view label,
                      const std::vector<sim::SeriesPoint>& series) {
  util::CsvWriter csv(out);
  csv.header({"label", "requests", "hit_rate_ma", "hops_ma", "latency_ma"});
  for (const auto& point : series) {
    csv.field(label)
        .field(point.requests)
        .field(point.hit_rate)
        .field(point.hops, 4)
        .field(point.latency, 4);
    csv.end_row();
  }
}

void print_sweep_csv(std::ostream& out, const std::vector<SweepPoint>& points) {
  util::CsvWriter csv(out);
  csv.header({"table", "size", "hit_rate", "avg_hops", "wall_seconds", "avg_latency"});
  for (const auto& point : points) {
    csv.field(swept_table_name(point.table))
        .field(static_cast<std::uint64_t>(point.size))
        .field(point.hit_rate)
        .field(point.avg_hops, 4)
        .field(point.wall_seconds, 4)
        .field(point.avg_latency, 4);
    csv.end_row();
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonField json_str(std::string_view key, std::string_view value) {
  return JsonField{std::string(key), std::string(value), true};
}

JsonField json_num(std::string_view key, double value, int precision) {
  return JsonField{std::string(key), fmt(value, precision), false};
}

JsonField json_num(std::string_view key, std::uint64_t value) {
  return JsonField{std::string(key), std::to_string(value), false};
}

void print_json_rows(std::ostream& out, const std::vector<std::vector<JsonField>>& rows) {
  out << "[\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << "  {";
    for (std::size_t f = 0; f < rows[r].size(); ++f) {
      if (f != 0) out << ", ";
      const JsonField& field = rows[r][f];
      out << '"' << json_escape(field.key) << "\": ";
      if (field.quote) {
        out << '"' << json_escape(field.value) << '"';
      } else {
        out << field.value;
      }
    }
    out << (r + 1 < rows.size() ? "},\n" : "}\n");
  }
  out << "]\n";
}

bool write_json_rows(const std::string& path, const std::vector<std::vector<JsonField>>& rows) {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write JSON output to '" << path << "'\n";
    return false;
  }
  print_json_rows(out, rows);
  return out.good();
}

}  // namespace adc::driver
