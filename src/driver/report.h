// Human-readable experiment reporting: aligned tables on stdout plus CSV
// series dumps, shared by the bench binaries and examples.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/sweep.h"

namespace adc::driver {

/// Renders rows as an aligned ASCII table (first row = header).
void print_table(std::ostream& out, const std::vector<std::vector<std::string>>& rows);

/// One-paragraph summary of a run (scheme, hit rate, hops, time).
void print_summary(std::ostream& out, std::string_view label, const ExperimentResult& result);

/// The moving-average series as CSV (x = completed requests).
void print_series_csv(std::ostream& out, std::string_view label,
                      const std::vector<sim::SeriesPoint>& series);

/// Sweep points as CSV rows: table,size,hit_rate,avg_hops,wall_seconds.
void print_sweep_csv(std::ostream& out, const std::vector<SweepPoint>& points);

/// Formats a double with fixed precision (helper for tables).
std::string fmt(double value, int precision = 4);

// --- JSON bench output ----------------------------------------------------
//
// Benches emit their result grid as a JSON array of flat objects (one per
// table row) so CI can upload machine-readable artifacts and notebooks can
// load results without scraping the ASCII tables.

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

/// One cell of a JSON row.  `value` is emitted verbatim for numbers and
/// booleans (pre-rendered by the caller); set `quote` for strings.
struct JsonField {
  std::string key;
  std::string value;
  bool quote = false;
};

JsonField json_str(std::string_view key, std::string_view value);
JsonField json_num(std::string_view key, double value, int precision = 6);
JsonField json_num(std::string_view key, std::uint64_t value);

/// Renders rows as a pretty-printed JSON array of objects.
void print_json_rows(std::ostream& out, const std::vector<std::vector<JsonField>>& rows);

/// Writes rows to `path` (no-op when `path` is empty); returns false and
/// warns on stderr when the file cannot be written.
bool write_json_rows(const std::string& path, const std::vector<std::vector<JsonField>>& rows);

}  // namespace adc::driver
