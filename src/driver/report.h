// Human-readable experiment reporting: aligned tables on stdout plus CSV
// series dumps, shared by the bench binaries and examples.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/sweep.h"

namespace adc::driver {

/// Renders rows as an aligned ASCII table (first row = header).
void print_table(std::ostream& out, const std::vector<std::vector<std::string>>& rows);

/// One-paragraph summary of a run (scheme, hit rate, hops, time).
void print_summary(std::ostream& out, std::string_view label, const ExperimentResult& result);

/// The moving-average series as CSV (x = completed requests).
void print_series_csv(std::ostream& out, std::string_view label,
                      const std::vector<sim::SeriesPoint>& series);

/// Sweep points as CSV rows: table,size,hit_rate,avg_hops,wall_seconds.
void print_sweep_csv(std::ostream& out, const std::vector<SweepPoint>& points);

/// Formats a double with fixed precision (helper for tables).
std::string fmt(double value, int precision = 4);

}  // namespace adc::driver
