#include "driver/experiment.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "fault/faulty_network.h"
#include "hash/carp.h"
#include "link/transfer_scheduler.h"
#include "hash/consistent_hash.h"
#include "hash/rendezvous.h"
#include "proxy/coordinator.h"
#include "proxy/hashing_proxy.h"
#include "proxy/hierarchical_proxy.h"
#include "proxy/origin_server.h"
#include "proxy/soap_proxy.h"
#include "sim/simulator.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace adc::driver {
namespace {

std::string proxy_name(int index) { return "proxy[" + std::to_string(index) + "]"; }

std::size_t baseline_capacity(const ExperimentConfig& config) {
  return config.baseline_cache_capacity != 0 ? config.baseline_cache_capacity
                                             : config.adc.caching_table_size;
}

/// True for the schemes whose proxies can run under a MemberAgent wrapper
/// (the others have a topology fixed by construction — a hierarchy root or
/// a central coordinator — that live membership cannot rewire).
bool membership_supported(Scheme scheme) noexcept {
  return scheme == Scheme::kAdc || scheme == Scheme::kCarp ||
         scheme == Scheme::kConsistent || scheme == Scheme::kRendezvous;
}

// Cold-restarts a proxy node: its cache and learned tables are wiped,
// connectivity survives.  Shared by the milestone-triggered FaultSpec and
// the time-triggered crash windows of a FaultPlan.
void flush_proxy(sim::Simulator& sim, NodeId victim, Scheme scheme, bool wrapped) {
  sim::Node& registered = sim.node(victim);
  sim::Node& node =
      wrapped ? static_cast<membership::MemberAgent&>(registered).inner() : registered;
  switch (scheme) {
    case Scheme::kAdc:
      static_cast<core::AdcProxy&>(node).flush();
      break;
    case Scheme::kCarp:
    case Scheme::kConsistent:
    case Scheme::kRendezvous:
      static_cast<proxy::HashingProxy&>(node).flush();
      break;
    case Scheme::kHierarchical:
    case Scheme::kCoordinator:
      static_cast<proxy::CacheNode&>(node).flush();
      break;
    case Scheme::kSoap:
      static_cast<proxy::SoapProxy&>(node).flush();
      break;
  }
  ADC_LOG_INFO << "fault injected: flushed " << node.name() << " at t=" << sim.now();
}

// Folds one proxy's erasure-tier counters into the run totals (null tier
// — store or erasure disabled — contributes nothing).
void collect_erasure(ExperimentResult::StoreSummary& out, const store::ErasureTier* tier) {
  if (tier == nullptr) return;
  const store::ErasureStats& s = tier->stats();
  out.stripes_registered += s.stripes_registered;
  out.chunks_stored += s.chunks_stored;
  out.chunks_evicted += s.chunks_evicted;
  out.chunk_requests_sent += s.chunk_requests_sent;
  out.chunk_replies_served += s.chunk_replies_served;
  out.chunk_bytes_sent += s.chunk_bytes_sent;
  out.degraded_started += s.degraded_started;
  out.degraded_recovered += s.degraded_recovered;
  out.degraded_failed += s.degraded_failed;
  out.recovered_bytes += s.recovered_bytes;
  out.chunk_requests_skipped += s.chunk_requests_skipped;
  out.directory_entries += tier->directory_entries();
  out.directory_bytes += tier->directory_bytes();
  out.stripes_healed += s.stripes_healed;
  out.repair_adopted += s.restripe_adopted;
  out.repair_handbacks += s.restripe_handbacks;
  const store::RestripeStats& r = tier->restripe_stats();
  out.repair_offers += r.offers_sent;
  out.repair_retries += r.retries;
  out.repair_rounds += r.rounds;
  out.repair_bytes += r.repair_bytes;
  out.repair_abandoned += r.items_abandoned;
  out.repair_cancelled += r.items_cancelled;
  out.repair_round_bytes_max = std::max(out.repair_round_bytes_max, r.round_bytes_max);
}

}  // namespace

std::string_view scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kAdc:
      return "adc";
    case Scheme::kCarp:
      return "carp";
    case Scheme::kConsistent:
      return "consistent";
    case Scheme::kRendezvous:
      return "rendezvous";
    case Scheme::kHierarchical:
      return "hierarchical";
    case Scheme::kCoordinator:
      return "coordinator";
    case Scheme::kSoap:
      return "soap";
  }
  return "adc";
}

std::optional<Scheme> parse_scheme(std::string_view name) noexcept {
  const std::string lowered = util::to_lower(name);
  if (lowered == "adc") return Scheme::kAdc;
  if (lowered == "carp" || lowered == "hash" || lowered == "hashing") return Scheme::kCarp;
  if (lowered == "consistent" || lowered == "ring") return Scheme::kConsistent;
  if (lowered == "rendezvous" || lowered == "hrw") return Scheme::kRendezvous;
  if (lowered == "hierarchical" || lowered == "hier") return Scheme::kHierarchical;
  if (lowered == "coordinator" || lowered == "central") return Scheme::kCoordinator;
  if (lowered == "soap") return Scheme::kSoap;
  return std::nullopt;
}

ExperimentResult run_experiment(const ExperimentConfig& config, const workload::Trace& trace) {
  assert(config.proxies >= 1);

  sim::Simulator sim(config.seed, config.latency);
  sim.set_metrics(sim::MetricsCollector(config.ma_window, config.sample_every));

  const int p = config.proxies;
  std::vector<NodeId> proxy_ids;
  proxy_ids.reserve(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) proxy_ids.push_back(static_cast<NodeId>(i));

  // Node id layout: proxies [0, p), then scheme-specific extras, then the
  // origin, then the client.  Entry proxies are what the client targets.
  std::vector<NodeId> entry_proxies = proxy_ids;
  NodeId next_id = static_cast<NodeId>(p);
  NodeId root_id = kInvalidNode;
  NodeId coordinator_id = kInvalidNode;
  if (config.scheme == Scheme::kHierarchical) root_id = next_id++;
  if (config.scheme == Scheme::kCoordinator) coordinator_id = next_id++;
  const NodeId origin_id = next_id++;
  const NodeId client_id = next_id++;

  // Payload store: one immutable instance shared by every node of the run
  // (sizes and chunk patterns are pure functions of it).  Null while
  // disabled, and then nothing below touches it — store-free runs stay
  // bit-identical.
  store::PayloadStorePtr payload_store;
  if (config.payload.enabled) {
    payload_store = std::make_shared<const store::PayloadStore>(config.payload);
  }
  const store::StoreContext store_ctx{payload_store, proxy_ids};

  const bool membership_on =
      config.membership.swim.enabled && membership_supported(config.scheme);
  std::vector<membership::MemberAgent*> agents;
  // Erasure tiers hosted by membership-wrapped proxies: the tick loop
  // keeps running while any of them still has re-stripe repair queued.
  std::vector<const store::ErasureTier*> repair_tiers;
  // ADC entries purged by confirmed deaths (the silent-peer cleanup);
  // folded into faults.entries_invalidated alongside the reactive path.
  auto purged_entries = std::make_shared<std::uint64_t>(0);

  // Wraps a hashing proxy in a MemberAgent wired for owner-map rebuilds,
  // or registers it bare when membership is off.  `factory` recomputes the
  // scheme's owner map from a surviving membership.
  const auto add_hashing_proxy = [&](int i, std::shared_ptr<const proxy::OwnerMap> owners,
                                     const proxy::HashingProxy::OwnerMapFactory& factory) {
    auto inner = std::make_unique<proxy::HashingProxy>(
        proxy_ids[static_cast<std::size_t>(i)], proxy_name(i), std::move(owners), origin_id,
        baseline_capacity(config), config.baseline_policy, config.entry_caching);
    if (payload_store != nullptr) inner->enable_store(store_ctx);
    if (!membership_on) {
      sim.add_node(std::move(inner));
      return;
    }
    proxy::HashingProxy* hp = inner.get();
    hp->set_owner_map_factory(factory, proxy_ids);
    auto agent = std::make_unique<membership::MemberAgent>(std::move(inner), proxy_ids,
                                                           config.membership);
    membership::MemberAgent::Hooks hooks;
    hooks.peer_dead = [hp](NodeId peer) { hp->handle_peer_dead(peer); };
    hooks.peer_joined = [hp](NodeId peer) { hp->handle_peer_joined(peer); };
    if (store::ErasureTier* tier = hp->erasure_tier();
        tier != nullptr && tier->restripe_enabled()) {
      hooks.send_restripe = [tier](sim::Transport& net) { tier->restripe_round(net); };
      hooks.restripe_pending = [tier] { return tier->restripe_pending(); };
      repair_tiers.push_back(tier);
    }
    agent->set_hooks(std::move(hooks));
    agents.push_back(agent.get());
    sim.add_node(std::move(agent));
  };

  switch (config.scheme) {
    case Scheme::kAdc: {
      for (int i = 0; i < p; ++i) {
        auto inner = std::make_unique<core::AdcProxy>(proxy_ids[static_cast<std::size_t>(i)],
                                                      proxy_name(i), config.adc, proxy_ids,
                                                      origin_id);
        if (payload_store != nullptr) inner->enable_store(store_ctx);
        if (!membership_on) {
          sim.add_node(std::move(inner));
          continue;
        }
        core::AdcProxy* adc = inner.get();
        auto agent = std::make_unique<membership::MemberAgent>(std::move(inner), proxy_ids,
                                                               config.membership);
        membership::MemberAgent::Hooks hooks;
        hooks.peer_dead = [adc, purged_entries](NodeId peer) {
          *purged_entries += adc->handle_peer_dead(peer);
        };
        hooks.peer_joined = [adc](NodeId peer) { adc->handle_peer_joined(peer); };
        hooks.send_repair = [adc](sim::Transport& net, NodeId peer, std::size_t batch) {
          adc->send_anti_entropy(net, peer, batch);
        };
        if (store::ErasureTier* tier = adc->erasure_tier();
            tier != nullptr && tier->restripe_enabled()) {
          hooks.send_restripe = [tier](sim::Transport& net) { tier->restripe_round(net); };
          hooks.restripe_pending = [tier] { return tier->restripe_pending(); };
          repair_tiers.push_back(tier);
        }
        agent->set_hooks(std::move(hooks));
        agents.push_back(agent.get());
        sim.add_node(std::move(agent));
      }
      break;
    }
    case Scheme::kCarp: {
      assert(config.carp_load_factors.empty() ||
             config.carp_load_factors.size() == static_cast<std::size_t>(p));
      std::vector<hash::CarpArray::Member> members;
      for (int i = 0; i < p; ++i) {
        const double load_factor =
            config.carp_load_factors.empty() ? 1.0
                                             : config.carp_load_factors[static_cast<std::size_t>(i)];
        members.push_back({proxy_name(i), proxy_ids[static_cast<std::size_t>(i)], load_factor});
      }
      // The factory rebuilds the array over the surviving subset of the
      // startup membership, keeping each member's name and load factor so
      // ownership of the untouched key space is stable.
      const proxy::HashingProxy::OwnerMapFactory factory =
          [members](const std::vector<NodeId>& ids) -> std::shared_ptr<const proxy::OwnerMap> {
        std::vector<hash::CarpArray::Member> live;
        for (const hash::CarpArray::Member& m : members) {
          if (std::find(ids.begin(), ids.end(), m.node) != ids.end()) live.push_back(m);
        }
        return std::make_shared<proxy::CarpOwnerMap>(hash::CarpArray(std::move(live)));
      };
      auto owners = std::make_shared<proxy::CarpOwnerMap>(hash::CarpArray(std::move(members)));
      for (int i = 0; i < p; ++i) add_hashing_proxy(i, owners, factory);
      break;
    }
    case Scheme::kConsistent: {
      const proxy::HashingProxy::OwnerMapFactory factory =
          [](const std::vector<NodeId>& ids) -> std::shared_ptr<const proxy::OwnerMap> {
        hash::ConsistentHashRing ring;
        for (const NodeId id : ids) ring.add_member(id, proxy_name(static_cast<int>(id)));
        return std::make_shared<proxy::RingOwnerMap>(std::move(ring));
      };
      auto owners = factory(proxy_ids);
      for (int i = 0; i < p; ++i) add_hashing_proxy(i, owners, factory);
      break;
    }
    case Scheme::kRendezvous: {
      const proxy::HashingProxy::OwnerMapFactory factory =
          [](const std::vector<NodeId>& ids) -> std::shared_ptr<const proxy::OwnerMap> {
        hash::RendezvousHash hrw;
        for (const NodeId id : ids) hrw.add_member(id, proxy_name(static_cast<int>(id)));
        return std::make_shared<proxy::RendezvousOwnerMap>(std::move(hrw));
      };
      auto owners = factory(proxy_ids);
      for (int i = 0; i < p; ++i) add_hashing_proxy(i, owners, factory);
      break;
    }
    case Scheme::kHierarchical: {
      for (int i = 0; i < p; ++i) {
        auto leaf = std::make_unique<proxy::CacheNode>(proxy_ids[static_cast<std::size_t>(i)],
                                                       proxy_name(i), root_id,
                                                       baseline_capacity(config),
                                                       config.baseline_policy);
        if (payload_store != nullptr) leaf->enable_store(store_ctx);
        sim.add_node(std::move(leaf));
      }
      const std::size_t root_capacity = config.root_cache_capacity != 0
                                            ? config.root_cache_capacity
                                            : baseline_capacity(config);
      auto root = std::make_unique<proxy::CacheNode>(root_id, "root", origin_id, root_capacity,
                                                     config.baseline_policy);
      if (payload_store != nullptr) root->enable_store(store_ctx);
      sim.add_node(std::move(root));
      break;
    }
    case Scheme::kCoordinator: {
      for (int i = 0; i < p; ++i) {
        auto backend = std::make_unique<proxy::CacheNode>(proxy_ids[static_cast<std::size_t>(i)],
                                                          proxy_name(i), origin_id,
                                                          baseline_capacity(config),
                                                          config.baseline_policy);
        if (payload_store != nullptr) backend->enable_store(store_ctx);
        sim.add_node(std::move(backend));
      }
      sim.add_node(std::make_unique<proxy::Coordinator>(coordinator_id, "coordinator",
                                                        proxy_ids));
      entry_proxies = {coordinator_id};
      break;
    }
    case Scheme::kSoap: {
      auto categories = std::make_shared<proxy::CategoryMap>(config.soap_categories);
      for (int i = 0; i < p; ++i) {
        sim.add_node(std::make_unique<proxy::SoapProxy>(
            proxy_ids[static_cast<std::size_t>(i)], proxy_name(i), categories, proxy_ids,
            origin_id, baseline_capacity(config)));
      }
      break;
    }
  }

  sim::VersionOraclePtr oracle;
  if (config.object_update_interval > 0) {
    oracle = std::make_shared<sim::VersionOracle>(config.object_update_interval);
  }
  auto origin = std::make_unique<proxy::OriginServer>(origin_id, "origin", oracle);
  origin->set_sizer(payload_store);
  sim.add_node(std::move(origin));

  TraceStream stream(trace);
  auto client_ptr = std::make_unique<proxy::Client>(client_id, "client", stream, entry_proxies,
                                                    config.entry_policy, config.concurrency);
  proxy::Client& client = *client_ptr;
  client.set_version_oracle(oracle);
  sim.add_node(std::move(client_ptr));

  if (config.slow_proxy_delay > 0 && config.slow_proxy_index >= 0 &&
      config.slow_proxy_index < p) {
    sim.network().set_node_delay(proxy_ids[static_cast<std::size_t>(config.slow_proxy_index)],
                                 config.slow_proxy_delay);
  }

  if (config.fault.at_completed > 0) {
    const int index = config.fault.proxy_index;
    assert(index >= 0 && index < p && "fault.proxy_index out of range");
    const NodeId victim = proxy_ids[static_cast<std::size_t>(index)];
    const Scheme scheme = config.scheme;
    client.at_completed(config.fault.at_completed, [&sim, victim, scheme, membership_on]() {
      flush_proxy(sim, victim, scheme, membership_on);
    });
  }

  // Message-level fault injection: the FaultyNetwork decides per transfer
  // on the simulator's send path; crash windows additionally wipe the
  // victim's state at the window start (the messages it would have
  // received while down are dropped by the hook).
  std::unique_ptr<fault::FaultyNetwork> chaos;
  if (!config.fault_plan.is_zero()) {
    chaos = std::make_unique<fault::FaultyNetwork>(config.fault_plan);
    sim.set_fault_hook(chaos.get());
    const Scheme scheme = config.scheme;
    for (const fault::CrashWindow& window : config.fault_plan.crashes) {
      if (!window.flush_state) continue;
      assert(window.node >= 0 && window.node < static_cast<NodeId>(p) &&
             "crash window must name a proxy");
      sim.schedule(window.at, [&sim, victim = window.node, scheme, membership_on]() {
        flush_proxy(sim, victim, scheme, membership_on);
      });
    }
  }
  client.set_request_timeout(config.request_timeout);

  // Bandwidth model: the TransferScheduler owns delivery timing for every
  // send over a finite-capacity link (installed before the first request
  // so t=0 traffic is modeled too).  With the payload store on, degraded
  // reads additionally steer chunk requests toward stripe peers with the
  // lightest egress backlog.
  std::unique_ptr<link::TransferScheduler> link_sched;
  if (config.link.enabled) {
    link_sched =
        std::make_unique<link::TransferScheduler>(sim, link::LinkModel(config.link, origin_id));
    sim.set_link_hook(link_sched.get());
    if (payload_store != nullptr) {
      link::TransferScheduler* sched = link_sched.get();
      const store::ErasureTier::LoadProbe probe = [sched](NodeId peer) {
        return sched->backlog_bytes(peer);
      };
      for (int i = 0; i < p; ++i) {
        sim::Node* registered = &sim.node(proxy_ids[static_cast<std::size_t>(i)]);
        sim::Node* node =
            membership_on ? &static_cast<membership::MemberAgent*>(registered)->inner()
                          : registered;
        switch (config.scheme) {
          case Scheme::kAdc:
            static_cast<core::AdcProxy*>(node)->set_erasure_load_probe(probe);
            break;
          case Scheme::kCarp:
          case Scheme::kConsistent:
          case Scheme::kRendezvous:
            static_cast<proxy::HashingProxy*>(node)->set_erasure_load_probe(probe);
            break;
          default:
            break;  // the other schemes host no erasure tier
        }
      }
    }
  }

  client.start(sim);

  // Membership tick: one recurring event drives every member agent's
  // detector (probes, timeouts, repair rounds).  It re-arms only while the
  // client still has work, so the run terminates with the event queue.
  std::function<void()> membership_tick;
  if (!agents.empty()) {
    const SimTime tick_every = std::max<SimTime>(1, config.membership.tick_every);
    // Re-arm while the client has work OR re-stripe repair is still
    // queued: background healing may outlive the trace, and every queued
    // item eventually acks or abandons, so the extension is bounded.
    const auto restripe_pending = [&repair_tiers] {
      for (const store::ErasureTier* tier : repair_tiers) {
        if (tier->restripe_pending()) return true;
      }
      return false;
    };
    membership_tick = [&sim, &client, &agents, &membership_tick, restripe_pending,
                       tick_every]() {
      for (membership::MemberAgent* agent : agents) agent->tick(sim, sim.now());
      if (!client.drained() || restripe_pending()) {
        sim.schedule_after(tick_every, membership_tick);
      }
    };
    sim.schedule_after(tick_every, membership_tick);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t events = sim.run();
  const auto wall_end = std::chrono::steady_clock::now();

  if (!client.drained()) {
    ADC_LOG_WARN << "experiment ended with "
                 << (client.issued() - client.completed() - client.failed())
                 << " requests still in flight";
  }

  ExperimentResult result;
  result.summary = sim.metrics().summary();
  result.series = sim.metrics().series();
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  result.events = events;
  result.messages = sim.network().messages_sent();
  result.sim_end_time = sim.now();
  result.origin_served =
      static_cast<const proxy::OriginServer&>(sim.node(origin_id)).requests_served();
  result.store.origin_bytes_served =
      static_cast<const proxy::OriginServer&>(sim.node(origin_id)).bytes_served();
  result.hops_p50 = sim.metrics().hop_histogram().percentile(0.50);
  result.hops_p95 = sim.metrics().hop_histogram().percentile(0.95);
  result.hops_max = sim.metrics().hop_histogram().max_seen();
  result.latency_p50 = sim.metrics().latency_tracker().percentile(0.50);
  result.latency_p95 = sim.metrics().latency_tracker().percentile(0.95);
  result.latency_p99 = sim.metrics().latency_tracker().percentile(0.99);
  result.latency_p999 = sim.metrics().latency_tracker().percentile(0.999);
  result.summary.latency_p99 = result.latency_p99;
  result.summary.latency_p999 = result.latency_p999;
  if (chaos != nullptr) result.faults = chaos->counters();
  result.faults.timeouts += client.failed();
  result.faults.entries_invalidated += *purged_entries;

  // Per-link-class traffic totals (message + byte counters kept by the
  // network on every send).
  {
    const sim::Network& net = sim.network();
    sim::TrafficTotals& traffic = result.summary.traffic;
    traffic.request_messages = net.class_messages(sim::LinkClass::kRequest);
    traffic.reply_messages = net.class_messages(sim::LinkClass::kReply);
    traffic.control_messages = net.class_messages(sim::LinkClass::kControl);
    traffic.store_messages = net.class_messages(sim::LinkClass::kStore);
    traffic.request_bytes = net.class_bytes(sim::LinkClass::kRequest);
    traffic.reply_bytes = net.class_bytes(sim::LinkClass::kReply);
    traffic.control_bytes = net.class_bytes(sim::LinkClass::kControl);
    traffic.store_bytes = net.class_bytes(sim::LinkClass::kStore);
  }

  if (link_sched != nullptr) {
    const link::TransferStats& ls = link_sched->stats();
    result.link.transfers = ls.transfers;
    result.link.passthrough = ls.passthrough;
    result.link.queued = ls.queued;
    result.link.bursts = ls.bursts;
    result.link.bytes = ls.bytes;
    result.link.max_backlog_bytes = ls.max_backlog_bytes;
    result.link.max_wait = ls.max_wait;
    result.link.wait_p50 = link_sched->wait_tracker().percentile(0.50);
    result.link.wait_p99 = link_sched->wait_tracker().percentile(0.99);
    result.link.wait_p999 = link_sched->wait_tracker().percentile(0.999);
  }

  // A crashed member's own detector keeps ticking into isolation — it ends
  // up declaring everyone *else* dead and rebuilding an owner map of just
  // itself.  That degenerate self-view must not pollute the cluster-level
  // membership summary, so members a majority of their peers confirmed
  // dead are excluded from it (with zero churn nobody is excluded).
  const auto majority_confirmed_dead = [&agents](NodeId id) {
    std::size_t dead = 0;
    std::size_t voters = 0;
    for (const membership::MemberAgent* peer : agents) {
      if (peer->id() == id) continue;
      ++voters;
      if (peer->detector().state(id) == membership::PeerState::kDead) ++dead;
    }
    return voters > 0 && dead * 2 > voters;
  };

  for (int i = 0; i < p; ++i) {
    const NodeId proxy_id = proxy_ids[static_cast<std::size_t>(i)];
    const sim::Node* registered = &sim.node(proxy_id);
    bool count_membership = membership_on;
    if (membership_on) {
      const auto& agent = static_cast<const membership::MemberAgent&>(*registered);
      count_membership = !majority_confirmed_dead(proxy_id);
      if (count_membership) {
        const membership::SwimStats& swim = agent.detector().stats();
        result.membership.max_epoch =
            std::max(result.membership.max_epoch, agent.detector().epoch());
        result.membership.deaths += swim.deaths;
        result.membership.joins += swim.joins;
        result.membership.suspicions += swim.suspicions;
        result.membership.refutations += swim.refutations;
        result.membership.repair_rounds += agent.repair().rounds_fired();
      }
      registered = &agent.inner();
    }
    const sim::Node& node = *registered;
    ProxySnapshot snapshot;
    snapshot.name = node.name();
    if (config.scheme == Scheme::kAdc) {
      const auto& adc = static_cast<const core::AdcProxy&>(node);
      snapshot.requests_received = adc.stats().requests_received;
      snapshot.local_hits = adc.stats().local_hits;
      snapshot.cached_objects = adc.config().selective_caching
                                    ? adc.tables().caching().size()
                                    : adc.stats().cache_admissions;
      snapshot.table_entries = adc.tables().total_entries();
      if (config.collect_cache_contents && adc.config().selective_caching) {
        adc.tables().caching().for_each([&snapshot](const cache::TableEntry& entry) {
          snapshot.cached_ids.push_back(entry.object);
        });
      }

      result.adc_totals.requests_received += adc.stats().requests_received;
      result.adc_totals.local_hits += adc.stats().local_hits;
      result.adc_totals.forwards_learned += adc.stats().forwards_learned;
      result.adc_totals.forwards_random += adc.stats().forwards_random;
      result.adc_totals.forwards_origin += adc.stats().forwards_origin;
      result.adc_totals.loops_detected += adc.stats().loops_detected;
      result.adc_totals.max_forwards_hit += adc.stats().max_forwards_hit;
      result.adc_totals.replies_relayed += adc.stats().replies_relayed;
      result.adc_totals.resolver_claims += adc.stats().resolver_claims;
      result.adc_totals.cache_admissions += adc.stats().cache_admissions;
      result.adc_totals.orphan_replies += adc.stats().orphan_replies;
      result.adc_totals.peer_invalidations += adc.stats().peer_invalidations;
      result.adc_totals.stale_claims_rejected += adc.stats().stale_claims_rejected;
      result.adc_totals.repair_offers += adc.stats().repair_offers;
      result.adc_totals.repair_counter_offers += adc.stats().repair_counter_offers;
      result.adc_totals.repairs_applied += adc.stats().repairs_applied;
      result.adc_totals.payload_bytes_served += adc.stats().payload_bytes_served;
      result.adc_totals.payload_bytes_fetched += adc.stats().payload_bytes_fetched;
      result.adc_totals.degraded_reads_started += adc.stats().degraded_reads_started;
      result.adc_totals.degraded_reads_served += adc.stats().degraded_reads_served;
      snapshot.payload_bytes_served = adc.stats().payload_bytes_served;
      result.store.payload_bytes_served += adc.stats().payload_bytes_served;
      result.store.payload_bytes_fetched += adc.stats().payload_bytes_fetched;
      collect_erasure(result.store, adc.erasure());
    } else if (config.scheme == Scheme::kHierarchical ||
               config.scheme == Scheme::kCoordinator) {
      const auto& cn = static_cast<const proxy::CacheNode&>(node);
      snapshot.requests_received = cn.stats().requests_received;
      snapshot.local_hits = cn.stats().local_hits;
      snapshot.cached_objects = cn.cache().size();
      snapshot.payload_bytes_served = cn.stats().payload_bytes_served;
      result.store.payload_bytes_served += cn.stats().payload_bytes_served;
      result.store.payload_bytes_fetched += cn.stats().payload_bytes_fetched;
      if (config.collect_cache_contents) snapshot.cached_ids = cn.cache().eviction_order();
    } else if (config.scheme == Scheme::kSoap) {
      const auto& sp = static_cast<const proxy::SoapProxy&>(node);
      snapshot.requests_received = sp.stats().requests_received;
      snapshot.local_hits = sp.stats().local_hits;
      snapshot.cached_objects = sp.cache().size();
      if (config.collect_cache_contents) snapshot.cached_ids = sp.cache().eviction_order();
    } else {
      const auto& hp = static_cast<const proxy::HashingProxy&>(node);
      snapshot.requests_received = hp.stats().requests_received;
      snapshot.local_hits = hp.stats().local_hits;
      snapshot.cached_objects = hp.cache().size();
      snapshot.payload_bytes_served = hp.stats().payload_bytes_served;
      result.store.payload_bytes_served += hp.stats().payload_bytes_served;
      result.store.payload_bytes_fetched += hp.stats().payload_bytes_fetched;
      collect_erasure(result.store, hp.erasure());
      if (count_membership) {
        result.membership.max_reshuffle_fraction = std::max(
            result.membership.max_reshuffle_fraction, hp.stats().max_reshuffle_fraction);
      }
      if (config.collect_cache_contents) snapshot.cached_ids = hp.cache().eviction_order();
    }
    // Per-owner load accounting: what each proxy processed and served,
    // feeding the max/min fairness ratio the adversarial suite reports.
    result.summary.owner_requests.push_back(snapshot.requests_received);
    result.summary.owner_hits.push_back(snapshot.local_hits);
    result.summary.owner_bytes.push_back(snapshot.payload_bytes_served);
    result.proxies.push_back(std::move(snapshot));
  }

  // Post-run stripe census: union the chunk directories of every proxy
  // still standing at sim end (crash windows that never restarted exclude
  // their victim) and count the objects that can no longer gather k
  // distinct chunk indexes — the set one more unavailability strands.
  // With proactive repair this shrinks back toward zero as stripes heal.
  if (payload_store != nullptr && payload_store->config().erasure.enabled) {
    std::unordered_set<NodeId> down;
    for (const fault::CrashWindow& window : config.fault_plan.crashes) {
      if (window.at <= result.sim_end_time && window.restart > result.sim_end_time) {
        down.insert(window.node);
      }
    }
    std::unordered_map<ObjectId, std::uint64_t> index_mask;
    for (int i = 0; i < p; ++i) {
      const NodeId proxy_id = proxy_ids[static_cast<std::size_t>(i)];
      if (down.count(proxy_id) != 0) continue;
      const sim::Node* registered = &sim.node(proxy_id);
      if (membership_on) {
        registered = &static_cast<const membership::MemberAgent*>(registered)->inner();
      }
      const store::ErasureTier* tier = nullptr;
      switch (config.scheme) {
        case Scheme::kAdc:
          tier = static_cast<const core::AdcProxy*>(registered)->erasure();
          break;
        case Scheme::kCarp:
        case Scheme::kConsistent:
        case Scheme::kRendezvous:
          tier = static_cast<const proxy::HashingProxy*>(registered)->erasure();
          break;
        default:
          break;  // the other schemes host no erasure tier
      }
      if (tier == nullptr) continue;
      tier->for_each_chunk([&index_mask](ObjectId object, int index, std::uint64_t) {
        if (index >= 0 && index < 64) index_mask[object] |= 1ULL << index;
      });
    }
    const int k = payload_store->code().k();
    for (const auto& entry : index_mask) {
      ++result.store.stripe_objects_tracked;
      int held = 0;
      for (std::uint64_t m = entry.second; m != 0; m &= m - 1) ++held;
      if (held < k) ++result.store.stripes_stranded;
    }
  }

  return result;
}

}  // namespace adc::driver
