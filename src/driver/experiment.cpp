#include "driver/experiment.h"

#include <cassert>
#include <chrono>
#include <memory>

#include "fault/faulty_network.h"
#include "hash/carp.h"
#include "hash/consistent_hash.h"
#include "hash/rendezvous.h"
#include "proxy/coordinator.h"
#include "proxy/hashing_proxy.h"
#include "proxy/hierarchical_proxy.h"
#include "proxy/origin_server.h"
#include "proxy/soap_proxy.h"
#include "sim/simulator.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace adc::driver {
namespace {

std::string proxy_name(int index) { return "proxy[" + std::to_string(index) + "]"; }

std::size_t baseline_capacity(const ExperimentConfig& config) {
  return config.baseline_cache_capacity != 0 ? config.baseline_cache_capacity
                                             : config.adc.caching_table_size;
}

// Cold-restarts a proxy node: its cache and learned tables are wiped,
// connectivity survives.  Shared by the milestone-triggered FaultSpec and
// the time-triggered crash windows of a FaultPlan.
void flush_proxy(sim::Simulator& sim, NodeId victim, Scheme scheme) {
  sim::Node& node = sim.node(victim);
  switch (scheme) {
    case Scheme::kAdc:
      static_cast<core::AdcProxy&>(node).flush();
      break;
    case Scheme::kCarp:
    case Scheme::kConsistent:
    case Scheme::kRendezvous:
      static_cast<proxy::HashingProxy&>(node).flush();
      break;
    case Scheme::kHierarchical:
    case Scheme::kCoordinator:
      static_cast<proxy::CacheNode&>(node).flush();
      break;
    case Scheme::kSoap:
      static_cast<proxy::SoapProxy&>(node).flush();
      break;
  }
  ADC_LOG_INFO << "fault injected: flushed " << node.name() << " at t=" << sim.now();
}

}  // namespace

std::string_view scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kAdc:
      return "adc";
    case Scheme::kCarp:
      return "carp";
    case Scheme::kConsistent:
      return "consistent";
    case Scheme::kRendezvous:
      return "rendezvous";
    case Scheme::kHierarchical:
      return "hierarchical";
    case Scheme::kCoordinator:
      return "coordinator";
    case Scheme::kSoap:
      return "soap";
  }
  return "adc";
}

std::optional<Scheme> parse_scheme(std::string_view name) noexcept {
  const std::string lowered = util::to_lower(name);
  if (lowered == "adc") return Scheme::kAdc;
  if (lowered == "carp" || lowered == "hash" || lowered == "hashing") return Scheme::kCarp;
  if (lowered == "consistent" || lowered == "ring") return Scheme::kConsistent;
  if (lowered == "rendezvous" || lowered == "hrw") return Scheme::kRendezvous;
  if (lowered == "hierarchical" || lowered == "hier") return Scheme::kHierarchical;
  if (lowered == "coordinator" || lowered == "central") return Scheme::kCoordinator;
  if (lowered == "soap") return Scheme::kSoap;
  return std::nullopt;
}

ExperimentResult run_experiment(const ExperimentConfig& config, const workload::Trace& trace) {
  assert(config.proxies >= 1);

  sim::Simulator sim(config.seed, config.latency);
  sim.set_metrics(sim::MetricsCollector(config.ma_window, config.sample_every));

  const int p = config.proxies;
  std::vector<NodeId> proxy_ids;
  proxy_ids.reserve(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) proxy_ids.push_back(static_cast<NodeId>(i));

  // Node id layout: proxies [0, p), then scheme-specific extras, then the
  // origin, then the client.  Entry proxies are what the client targets.
  std::vector<NodeId> entry_proxies = proxy_ids;
  NodeId next_id = static_cast<NodeId>(p);
  NodeId root_id = kInvalidNode;
  NodeId coordinator_id = kInvalidNode;
  if (config.scheme == Scheme::kHierarchical) root_id = next_id++;
  if (config.scheme == Scheme::kCoordinator) coordinator_id = next_id++;
  const NodeId origin_id = next_id++;
  const NodeId client_id = next_id++;

  switch (config.scheme) {
    case Scheme::kAdc: {
      for (int i = 0; i < p; ++i) {
        sim.add_node(std::make_unique<core::AdcProxy>(proxy_ids[static_cast<std::size_t>(i)],
                                                      proxy_name(i), config.adc, proxy_ids,
                                                      origin_id));
      }
      break;
    }
    case Scheme::kCarp: {
      assert(config.carp_load_factors.empty() ||
             config.carp_load_factors.size() == static_cast<std::size_t>(p));
      std::vector<hash::CarpArray::Member> members;
      for (int i = 0; i < p; ++i) {
        const double load_factor =
            config.carp_load_factors.empty() ? 1.0
                                             : config.carp_load_factors[static_cast<std::size_t>(i)];
        members.push_back({proxy_name(i), proxy_ids[static_cast<std::size_t>(i)], load_factor});
      }
      auto owners = std::make_shared<proxy::CarpOwnerMap>(hash::CarpArray(std::move(members)));
      for (int i = 0; i < p; ++i) {
        sim.add_node(std::make_unique<proxy::HashingProxy>(
            proxy_ids[static_cast<std::size_t>(i)], proxy_name(i), owners, origin_id,
            baseline_capacity(config), config.baseline_policy, config.entry_caching));
      }
      break;
    }
    case Scheme::kConsistent: {
      hash::ConsistentHashRing ring;
      for (int i = 0; i < p; ++i) {
        ring.add_member(proxy_ids[static_cast<std::size_t>(i)], proxy_name(i));
      }
      auto owners = std::make_shared<proxy::RingOwnerMap>(std::move(ring));
      for (int i = 0; i < p; ++i) {
        sim.add_node(std::make_unique<proxy::HashingProxy>(
            proxy_ids[static_cast<std::size_t>(i)], proxy_name(i), owners, origin_id,
            baseline_capacity(config), config.baseline_policy, config.entry_caching));
      }
      break;
    }
    case Scheme::kRendezvous: {
      hash::RendezvousHash hrw;
      for (int i = 0; i < p; ++i) {
        hrw.add_member(proxy_ids[static_cast<std::size_t>(i)], proxy_name(i));
      }
      auto owners = std::make_shared<proxy::RendezvousOwnerMap>(std::move(hrw));
      for (int i = 0; i < p; ++i) {
        sim.add_node(std::make_unique<proxy::HashingProxy>(
            proxy_ids[static_cast<std::size_t>(i)], proxy_name(i), owners, origin_id,
            baseline_capacity(config), config.baseline_policy, config.entry_caching));
      }
      break;
    }
    case Scheme::kHierarchical: {
      for (int i = 0; i < p; ++i) {
        sim.add_node(std::make_unique<proxy::CacheNode>(proxy_ids[static_cast<std::size_t>(i)],
                                                        proxy_name(i), root_id,
                                                        baseline_capacity(config),
                                                        config.baseline_policy));
      }
      const std::size_t root_capacity = config.root_cache_capacity != 0
                                            ? config.root_cache_capacity
                                            : baseline_capacity(config);
      sim.add_node(std::make_unique<proxy::CacheNode>(root_id, "root", origin_id, root_capacity,
                                                      config.baseline_policy));
      break;
    }
    case Scheme::kCoordinator: {
      for (int i = 0; i < p; ++i) {
        sim.add_node(std::make_unique<proxy::CacheNode>(proxy_ids[static_cast<std::size_t>(i)],
                                                        proxy_name(i), origin_id,
                                                        baseline_capacity(config),
                                                        config.baseline_policy));
      }
      sim.add_node(std::make_unique<proxy::Coordinator>(coordinator_id, "coordinator",
                                                        proxy_ids));
      entry_proxies = {coordinator_id};
      break;
    }
    case Scheme::kSoap: {
      auto categories = std::make_shared<proxy::CategoryMap>(config.soap_categories);
      for (int i = 0; i < p; ++i) {
        sim.add_node(std::make_unique<proxy::SoapProxy>(
            proxy_ids[static_cast<std::size_t>(i)], proxy_name(i), categories, proxy_ids,
            origin_id, baseline_capacity(config)));
      }
      break;
    }
  }

  sim::VersionOraclePtr oracle;
  if (config.object_update_interval > 0) {
    oracle = std::make_shared<sim::VersionOracle>(config.object_update_interval);
  }
  sim.add_node(std::make_unique<proxy::OriginServer>(origin_id, "origin", oracle));

  TraceStream stream(trace);
  auto client_ptr = std::make_unique<proxy::Client>(client_id, "client", stream, entry_proxies,
                                                    config.entry_policy, config.concurrency);
  proxy::Client& client = *client_ptr;
  client.set_version_oracle(oracle);
  sim.add_node(std::move(client_ptr));

  if (config.slow_proxy_delay > 0 && config.slow_proxy_index >= 0 &&
      config.slow_proxy_index < p) {
    sim.network().set_node_delay(proxy_ids[static_cast<std::size_t>(config.slow_proxy_index)],
                                 config.slow_proxy_delay);
  }

  if (config.fault.at_completed > 0) {
    const int index = config.fault.proxy_index;
    assert(index >= 0 && index < p && "fault.proxy_index out of range");
    const NodeId victim = proxy_ids[static_cast<std::size_t>(index)];
    const Scheme scheme = config.scheme;
    client.at_completed(config.fault.at_completed,
                        [&sim, victim, scheme]() { flush_proxy(sim, victim, scheme); });
  }

  // Message-level fault injection: the FaultyNetwork decides per transfer
  // on the simulator's send path; crash windows additionally wipe the
  // victim's state at the window start (the messages it would have
  // received while down are dropped by the hook).
  std::unique_ptr<fault::FaultyNetwork> chaos;
  if (!config.fault_plan.is_zero()) {
    chaos = std::make_unique<fault::FaultyNetwork>(config.fault_plan);
    sim.set_fault_hook(chaos.get());
    const Scheme scheme = config.scheme;
    for (const fault::CrashWindow& window : config.fault_plan.crashes) {
      if (!window.flush_state) continue;
      assert(window.node >= 0 && window.node < static_cast<NodeId>(p) &&
             "crash window must name a proxy");
      sim.schedule(window.at,
                   [&sim, victim = window.node, scheme]() { flush_proxy(sim, victim, scheme); });
    }
  }
  client.set_request_timeout(config.request_timeout);

  client.start(sim);

  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t events = sim.run();
  const auto wall_end = std::chrono::steady_clock::now();

  if (!client.drained()) {
    ADC_LOG_WARN << "experiment ended with "
                 << (client.issued() - client.completed() - client.failed())
                 << " requests still in flight";
  }

  ExperimentResult result;
  result.summary = sim.metrics().summary();
  result.series = sim.metrics().series();
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  result.events = events;
  result.messages = sim.network().messages_sent();
  result.sim_end_time = sim.now();
  result.origin_served =
      static_cast<const proxy::OriginServer&>(sim.node(origin_id)).requests_served();
  result.hops_p50 = sim.metrics().hop_histogram().percentile(0.50);
  result.hops_p95 = sim.metrics().hop_histogram().percentile(0.95);
  result.hops_max = sim.metrics().hop_histogram().max_seen();
  result.latency_p50 = sim.metrics().latency_tracker().percentile(0.50);
  result.latency_p95 = sim.metrics().latency_tracker().percentile(0.95);
  result.latency_p99 = sim.metrics().latency_tracker().percentile(0.99);
  if (chaos != nullptr) result.faults = chaos->counters();
  result.faults.timeouts += client.failed();

  for (int i = 0; i < p; ++i) {
    const sim::Node& node = sim.node(proxy_ids[static_cast<std::size_t>(i)]);
    ProxySnapshot snapshot;
    snapshot.name = node.name();
    if (config.scheme == Scheme::kAdc) {
      const auto& adc = static_cast<const core::AdcProxy&>(node);
      snapshot.requests_received = adc.stats().requests_received;
      snapshot.local_hits = adc.stats().local_hits;
      snapshot.cached_objects = adc.config().selective_caching
                                    ? adc.tables().caching().size()
                                    : adc.stats().cache_admissions;
      snapshot.table_entries = adc.tables().total_entries();
      if (config.collect_cache_contents && adc.config().selective_caching) {
        adc.tables().caching().for_each([&snapshot](const cache::TableEntry& entry) {
          snapshot.cached_ids.push_back(entry.object);
        });
      }

      result.adc_totals.requests_received += adc.stats().requests_received;
      result.adc_totals.local_hits += adc.stats().local_hits;
      result.adc_totals.forwards_learned += adc.stats().forwards_learned;
      result.adc_totals.forwards_random += adc.stats().forwards_random;
      result.adc_totals.forwards_origin += adc.stats().forwards_origin;
      result.adc_totals.loops_detected += adc.stats().loops_detected;
      result.adc_totals.max_forwards_hit += adc.stats().max_forwards_hit;
      result.adc_totals.replies_relayed += adc.stats().replies_relayed;
      result.adc_totals.resolver_claims += adc.stats().resolver_claims;
      result.adc_totals.cache_admissions += adc.stats().cache_admissions;
      result.adc_totals.orphan_replies += adc.stats().orphan_replies;
      result.adc_totals.peer_invalidations += adc.stats().peer_invalidations;
    } else if (config.scheme == Scheme::kHierarchical ||
               config.scheme == Scheme::kCoordinator) {
      const auto& cn = static_cast<const proxy::CacheNode&>(node);
      snapshot.requests_received = cn.stats().requests_received;
      snapshot.local_hits = cn.stats().local_hits;
      snapshot.cached_objects = cn.cache().size();
      if (config.collect_cache_contents) snapshot.cached_ids = cn.cache().eviction_order();
    } else if (config.scheme == Scheme::kSoap) {
      const auto& sp = static_cast<const proxy::SoapProxy&>(node);
      snapshot.requests_received = sp.stats().requests_received;
      snapshot.local_hits = sp.stats().local_hits;
      snapshot.cached_objects = sp.cache().size();
      if (config.collect_cache_contents) snapshot.cached_ids = sp.cache().eviction_order();
    } else {
      const auto& hp = static_cast<const proxy::HashingProxy&>(node);
      snapshot.requests_received = hp.stats().requests_received;
      snapshot.local_hits = hp.stats().local_hits;
      snapshot.cached_objects = hp.cache().size();
      if (config.collect_cache_contents) snapshot.cached_ids = hp.cache().eviction_order();
    }
    result.proxies.push_back(std::move(snapshot));
  }

  return result;
}

}  // namespace adc::driver
