#include "driver/analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "driver/parallel.h"

namespace adc::driver {

std::vector<PhaseMetrics> phase_breakdown(const ExperimentResult& result,
                                          const workload::TracePhases& phases,
                                          std::uint64_t total_requests) {
  std::vector<PhaseMetrics> out;
  const struct {
    const char* name;
    std::uint64_t begin;
    std::uint64_t end;
  } windows[] = {
      {"fill", 0, phases.fill_end},
      {"phase-I", phases.fill_end, phases.phase2_end},
      {"phase-II", phases.phase2_end, total_requests},
  };
  for (const auto& window : windows) {
    PhaseMetrics metrics;
    metrics.name = window.name;
    metrics.begin = window.begin;
    metrics.end = window.end;
    double hit_sum = 0.0;
    double hops_sum = 0.0;
    double latency_sum = 0.0;
    for (const auto& point : result.series) {
      if (point.requests > window.begin && point.requests <= window.end) {
        hit_sum += point.hit_rate;
        hops_sum += point.hops;
        latency_sum += point.latency;
        ++metrics.samples;
      }
    }
    if (metrics.samples > 0) {
      const auto n = static_cast<double>(metrics.samples);
      metrics.hit_rate = hit_sum / n;
      metrics.hops = hops_sum / n;
      metrics.latency = latency_sum / n;
    }
    out.push_back(std::move(metrics));
  }
  return out;
}

LoadStats load_balance(const std::vector<ProxySnapshot>& proxies) {
  LoadStats stats;
  if (proxies.empty()) return stats;
  double sum = 0.0;
  for (const auto& proxy : proxies) {
    stats.total += proxy.requests_received;
    stats.peak = std::max(stats.peak, proxy.requests_received);
    sum += static_cast<double>(proxy.requests_received);
  }
  if (stats.total == 0) return stats;
  stats.peak_share = static_cast<double>(stats.peak) / static_cast<double>(stats.total);
  const double mean = sum / static_cast<double>(proxies.size());
  double variance = 0.0;
  for (const auto& proxy : proxies) {
    const double d = static_cast<double>(proxy.requests_received) - mean;
    variance += d * d;
  }
  variance /= static_cast<double>(proxies.size());
  stats.cv = mean == 0.0 ? 0.0 : std::sqrt(variance) / mean;
  return stats;
}

ReplicationSummary run_seeds(const ExperimentConfig& config, const workload::Trace& trace,
                             const std::vector<std::uint64_t>& seeds) {
  ReplicationSummary summary;
  summary.runs = seeds.size();
  if (seeds.empty()) return summary;

  ExperimentConfig run_config = config;
  run_config.sample_every = 0;  // series not needed for aggregates
  const ReplicationResult replicated = run_replicated(run_config, trace, seeds, /*workers=*/1);
  summary.hit_rate_mean = replicated.hit_rate.mean;
  summary.hit_rate_sd = replicated.hit_rate.stddev;
  summary.hops_mean = replicated.avg_hops.mean;
  summary.hops_sd = replicated.avg_hops.stddev;
  return summary;
}

DuplicationStats duplication(const std::vector<ProxySnapshot>& proxies) {
  DuplicationStats stats;
  std::unordered_set<ObjectId> distinct;
  for (const auto& proxy : proxies) {
    stats.total_cached += proxy.cached_ids.size();
    distinct.insert(proxy.cached_ids.begin(), proxy.cached_ids.end());
  }
  stats.distinct_cached = distinct.size();
  stats.factor = stats.distinct_cached == 0
                     ? 0.0
                     : static_cast<double>(stats.total_cached) /
                           static_cast<double>(stats.distinct_cached);
  return stats;
}

}  // namespace adc::driver
