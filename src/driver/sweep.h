// Parameter sweeps for the Figure 13-15 reproduction: vary one mapping
// table's size while the others stay at their defaults (paper Section V.3).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "driver/experiment.h"
#include "workload/trace.h"

namespace adc::driver {

enum class SweptTable {
  kCaching,
  kMultiple,
  kSingle,
};

std::string_view swept_table_name(SweptTable table) noexcept;

struct SweepPoint {
  SweptTable table = SweptTable::kCaching;
  std::size_t size = 0;
  double hit_rate = 0.0;
  double avg_hops = 0.0;
  double wall_seconds = 0.0;
  double avg_latency = 0.0;
};

/// The paper's sweep grid: 5k..30k in 5k steps, scaled by the same factor
/// as the workload.
std::vector<std::size_t> paper_sweep_sizes(double scale);

/// Runs `base` once per (table, size) combination; the swept table's size
/// is overridden, everything else kept.  Points come back grouped by table
/// in the order given, sizes ascending.  The grid is embarrassingly
/// parallel: `workers` > 1 fans the runs across that many threads (0 =
/// hardware concurrency) with bit-identical points except wall_seconds.
std::vector<SweepPoint> run_table_sweep(const ExperimentConfig& base,
                                        const workload::Trace& trace,
                                        const std::vector<SweptTable>& tables,
                                        const std::vector<std::size_t>& sizes,
                                        int workers = 1);

}  // namespace adc::driver
