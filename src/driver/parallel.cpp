#include "driver/parallel.h"

#include <algorithm>
#include <cmath>
#include <future>

#include "util/thread_pool.h"

namespace adc::driver {
namespace {

MetricStats stats_of(const std::vector<double>& values) {
  MetricStats stats;
  if (values.empty()) return stats;
  const double n = static_cast<double>(values.size());
  for (const double v : values) stats.mean += v;
  stats.mean /= n;
  if (values.size() < 2) return stats;
  double variance = 0.0;
  for (const double v : values) variance += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(variance / (n - 1.0));
  stats.ci95 = 1.96 * stats.stddev / std::sqrt(n);
  return stats;
}

}  // namespace

int resolve_workers(int workers) noexcept {
  if (workers == 0) return static_cast<int>(util::ThreadPool::hardware_workers());
  return std::max(workers, 1);
}

std::vector<ExperimentResult> run_parallel(const std::vector<ExperimentConfig>& configs,
                                           const workload::Trace& trace, int workers) {
  std::vector<ExperimentResult> results;
  results.reserve(configs.size());

  const int resolved = resolve_workers(workers);
  if (resolved <= 1 || configs.size() <= 1) {
    for (const ExperimentConfig& config : configs) {
      results.push_back(run_experiment(config, trace));
    }
    return results;
  }

  util::ThreadPool pool(std::min(static_cast<std::size_t>(resolved), configs.size()));
  std::vector<std::future<ExperimentResult>> futures;
  futures.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    futures.push_back(
        pool.submit([&config, &trace]() { return run_experiment(config, trace); }));
  }
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

ReplicationResult run_replicated(const ExperimentConfig& base, const workload::Trace& trace,
                                 const std::vector<std::uint64_t>& seeds, int workers) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    ExperimentConfig config = base;
    config.seed = seed;
    configs.push_back(std::move(config));
  }

  ReplicationResult out;
  out.runs = seeds.size();
  out.results = run_parallel(configs, trace, workers);

  std::vector<double> hit_rates;
  std::vector<double> hops;
  std::vector<double> latencies;
  hit_rates.reserve(out.results.size());
  hops.reserve(out.results.size());
  latencies.reserve(out.results.size());
  for (const ExperimentResult& result : out.results) {
    hit_rates.push_back(result.summary.hit_rate());
    hops.push_back(result.summary.avg_hops());
    latencies.push_back(result.summary.avg_latency());
  }
  out.hit_rate = stats_of(hit_rates);
  out.avg_hops = stats_of(hops);
  out.avg_latency = stats_of(latencies);
  return out;
}

}  // namespace adc::driver
