#include "driver/walk_model.h"

#include <cassert>
#include <utility>
#include <vector>

namespace adc::driver {
namespace {

/// Value of a walk state: probability of eventually hitting, and expected
/// *additional* forward messages from this state on.
struct StateValue {
  double p_hit = 0.0;
  double extra_messages = 0.0;
};

class WalkChain {
 public:
  explicit WalkChain(const WalkModelParams& params)
      : n_(params.proxies), r_(params.replicas), f_(params.max_forwards) {
    // memo_[k][j]: k distinct non-holders visited (1..n-r), j forwards
    // consumed (0..F).
    memo_.assign(static_cast<std::size_t>(n_ + 1),
                 std::vector<std::pair<bool, StateValue>>(
                     static_cast<std::size_t>(f_ + 1), {false, {}}));
  }

  /// State (k, j): the walk sits at a non-holder proxy, k distinct
  /// non-holders visited so far (including this one), j forwards consumed.
  StateValue evaluate(int k, int j) {
    if (j >= f_) {
      // Budget exhausted: this proxy sends the request to the origin.
      return {0.0, 1.0};
    }
    auto& slot = memo_[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
    if (slot.first) return slot.second;

    const double n = static_cast<double>(n_);
    const double p_holder = static_cast<double>(r_) / n;
    const double p_visited = static_cast<double>(k) / n;
    const int fresh = n_ - r_ - k;
    const double p_fresh = fresh > 0 ? static_cast<double>(fresh) / n : 0.0;
    // Self is part of the visited set, so p_holder + p_visited + p_fresh
    // covers the whole membership.
    assert(p_holder + p_visited + p_fresh > 0.999999);

    StateValue value;
    // Branch 1 — forward reaches a holder: one message, hit.
    value.p_hit += p_holder;
    value.extra_messages += p_holder * 1.0;
    // Branch 2 — forward revisits: one message to the revisited proxy,
    // which detects the loop and sends one more to the origin.
    value.extra_messages += p_visited * 2.0;
    // Branch 3 — forward reaches a fresh non-holder: one message, then
    // the walk continues from (k+1, j+1).
    if (p_fresh > 0.0) {
      const StateValue next = evaluate(k + 1, j + 1);
      value.p_hit += p_fresh * next.p_hit;
      value.extra_messages += p_fresh * (1.0 + next.extra_messages);
    }

    slot = {true, value};
    return value;
  }

 private:
  int n_;
  int r_;
  int f_;
  std::vector<std::vector<std::pair<bool, StateValue>>> memo_;
};

}  // namespace

WalkPrediction predict_walk(const WalkModelParams& params) {
  assert(params.proxies >= 1);
  assert(params.replicas >= 0 && params.replicas <= params.proxies);
  assert(params.max_forwards >= 0);

  const double n = static_cast<double>(params.proxies);
  const double p_entry_holder = static_cast<double>(params.replicas) / n;

  WalkPrediction out;
  // Entry proxy is a holder: the journey is client -> proxy -> client.
  out.hit_probability = p_entry_holder;
  out.expected_forward_messages = p_entry_holder * 1.0;

  if (params.replicas < params.proxies) {
    WalkChain chain(params);
    const StateValue walk = chain.evaluate(/*k=*/1, /*j=*/0);
    const double p_walk = 1.0 - p_entry_holder;
    out.hit_probability += p_walk * walk.p_hit;
    out.expected_forward_messages += p_walk * (1.0 + walk.extra_messages);
  }

  out.expected_hops = 2.0 * out.expected_forward_messages;
  return out;
}

}  // namespace adc::driver
