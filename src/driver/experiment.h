// Experiment driver: builds a proxy deployment for a scheme, replays a
// trace through it, and collects the metrics the paper reports.  Every
// bench binary and example is a thin wrapper around run_experiment().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/policies.h"
#include "core/adc_config.h"
#include "core/adc_proxy.h"
#include "fault/fault_plan.h"
#include "link/link_model.h"
#include "membership/member_agent.h"
#include "proxy/client.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "store/payload.h"
#include "workload/trace.h"

namespace adc::driver {

/// Distributed-caching schemes the testbed can run.
enum class Scheme {
  kAdc,           // the paper's contribution
  kCarp,          // the paper's hashing baseline (CARP v1.1)
  kConsistent,    // consistent-hashing ring baseline
  kRendezvous,    // rendezvous (HRW) baseline
  kHierarchical,  // 2-level admit-all hierarchy baseline
  kCoordinator,   // central-coordinator load balancer (paper Section II.1)
  kSoap,          // self-organized adaptive proxies (paper Section II.2)
};

std::string_view scheme_name(Scheme scheme) noexcept;
std::optional<Scheme> parse_scheme(std::string_view name) noexcept;

struct ExperimentConfig {
  Scheme scheme = Scheme::kAdc;

  /// Number of cooperating proxies (paper default: 5).
  int proxies = 5;

  /// ADC parameters (table sizes, max forwards, ablation switches).
  core::AdcConfig adc;

  /// Baseline proxies' cache capacity; 0 means "same as the ADC caching
  /// table" so aggregate storage is comparable across schemes.
  std::size_t baseline_cache_capacity = 0;
  cache::Policy baseline_policy = cache::Policy::kLru;

  /// CARP/hashing: route replies through the entry proxy so it caches too
  /// (the paper's baseline bypasses the entry proxy).
  bool entry_caching = false;

  /// CARP only: per-proxy relative load factors (empty = all equal).  The
  /// CARP draft's knob for heterogeneous members: a proxy with factor 0.5
  /// owns roughly half the URL space of a factor-1.0 peer.
  std::vector<double> carp_load_factors;

  /// Hierarchical: root cache capacity; 0 means same as a leaf.
  std::size_t root_cache_capacity = 0;

  /// SOAP: number of URL categories (domains) its mapping tables cover.
  std::size_t soap_categories = 256;

  /// Fault injection ("changes of the infrastructure", paper Section
  /// V.1): when `at_completed` > 0, proxy `proxy_index` cold-restarts —
  /// losing its cache and learned tables — the moment that many requests
  /// have completed.  Connectivity survives, so the run still finishes.
  struct FaultSpec {
    std::uint64_t at_completed = 0;  // 0 disables
    int proxy_index = 0;
  };
  FaultSpec fault;

  /// Message-level fault injection: the plan drives a fault::FaultyNetwork
  /// installed on the simulator's send path (drops, duplicates, extra
  /// delays, partitions, crash windows).  A crash window whose
  /// `flush_state` is set also cold-restarts the proxy at the window
  /// start, like FaultSpec but time- rather than milestone-triggered.
  /// A zero plan (the default) installs nothing — runs stay bit-identical
  /// to pre-fault builds.
  fault::FaultPlan fault_plan;

  /// Per-request client deadline in sim ticks (0 = off).  Required for a
  /// lossy fault_plan: a dropped message would otherwise stall the closed
  /// loop forever.  Expired requests count into MetricsSummary::failed.
  SimTime request_timeout = 0;

  /// Live membership (SWIM failure detection + transition-gated
  /// anti-entropy), enabled via membership.swim.enabled.  Each proxy is
  /// wrapped in a membership::MemberAgent; a confirmed death prunes the
  /// ADC mapping tables and forwarding membership, or rebuilds the
  /// CARP/ring/HRW owner map, and a rejoin reverses it.  Supported for
  /// kAdc, kCarp, kConsistent, kRendezvous; ignored for the other schemes
  /// (their topology is fixed by construction).  With zero churn a
  /// detector-enabled run is bit-identical to a disabled one apart from
  /// raw message/event counts (SWIM probes ride the same transport).
  membership::MembershipConfig membership;

  /// When true, each ProxySnapshot also lists the object ids cached at
  /// the end of the run (for duplication/partitioning analysis); costs
  /// memory proportional to the aggregate cache, so off by default.
  bool collect_cache_contents = false;

  /// Heterogeneous hardware: proxy `slow_proxy_index` takes an extra
  /// `slow_proxy_delay` time units to process every delivered message
  /// (disabled when the delay is 0).  The coordinator's response-time
  /// learning reacts to this; content-addressed schemes cannot.
  int slow_proxy_index = -1;
  SimTime slow_proxy_delay = 0;

  /// Cache consistency: mean simulated-time interval between origin-side
  /// object updates (0 = objects never change).  When enabled, hits that
  /// serve data older than the origin's current version are counted in
  /// MetricsSummary::stale_hits.
  SimTime object_update_interval = 0;

  /// Payload store (payload.enabled): every object gets a deterministic
  /// heavy-tailed size, replies carry payload bytes, proxy caches become
  /// byte-budgeted and size-aware, and (payload.erasure.enabled) proxies
  /// host an erasure tier answering post-death misses as degraded reads.
  /// Disabled (the default) the run is bit-identical to a store-free
  /// build: the store consumes no shared RNG state.  Applied to every
  /// scheme except kSoap (whose category tables predate the store).
  store::PayloadConfig payload;

  /// Bandwidth model (link.enabled): every send over a finite-capacity
  /// link becomes a queued transfer scheduled by a link::TransferScheduler
  /// (serialization + queueing + DRR fairness between destinations sharing
  /// an egress), and — with the payload store on — degraded reads prefer
  /// stripe peers with the lightest egress backlog.  Disabled (the
  /// default) the run is bit-identical to a link-free build.
  link::LinkConfig link;

  proxy::EntryPolicy entry_policy = proxy::EntryPolicy::kRandom;

  /// Closed-loop request streams kept in flight by the client.
  int concurrency = 1;

  std::uint64_t seed = 1;

  /// Metrics: moving-average window and series sampling stride (paper
  /// Figure 11 uses a 5000-request moving average).
  std::size_t ma_window = 5000;
  std::uint64_t sample_every = 5000;

  sim::LatencyModel latency;
};

struct ProxySnapshot {
  std::string name;
  std::uint64_t requests_received = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t cached_objects = 0;
  std::uint64_t table_entries = 0;
  /// Payload bytes this proxy served (hits + degraded reads; 0 while the
  /// store is disabled).
  std::uint64_t payload_bytes_served = 0;
  /// Filled only when ExperimentConfig::collect_cache_contents is set.
  std::vector<ObjectId> cached_ids;
};

struct ExperimentResult {
  sim::MetricsSummary summary;
  std::vector<sim::SeriesPoint> series;

  /// Host wall-clock seconds spent inside the simulation loop (the paper's
  /// Figure-15 "processing time" analogue).
  double wall_seconds = 0.0;

  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t origin_served = 0;
  SimTime sim_end_time = 0;

  /// Whole-run per-request hop distribution (median / tail / worst).
  int hops_p50 = -1;
  int hops_p95 = -1;
  int hops_max = -1;

  /// Whole-run simulated-latency percentiles (sim-time units), from the
  /// deterministic PercentileTracker the live runtime's loadgen also uses.
  /// p99/p99.9 are mirrored into summary.latency_p99/latency_p999, and the
  /// per-proxy request/hit counters into summary.owner_requests/owner_hits
  /// (feeding the max/min fairness ratio), so every bench reports tails
  /// and fairness through one struct.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_p999 = 0.0;

  std::vector<ProxySnapshot> proxies;

  /// ADC only: aggregated algorithm counters over all proxies.
  core::AdcProxyStats adc_totals;

  /// Membership summary (all zero unless membership.swim.enabled):
  /// detector counters aggregated over all member agents, plus the owner
  /// reshuffle impact for the hashing schemes.
  struct MembershipSummary {
    std::uint64_t max_epoch = 0;     // highest epoch any member reached
    std::uint64_t deaths = 0;        // confirmed deaths, summed over members
    std::uint64_t joins = 0;         // confirmed rejoins, summed over members
    std::uint64_t suspicions = 0;
    std::uint64_t refutations = 0;
    std::uint64_t repair_rounds = 0;  // anti-entropy rounds fired
    double max_reshuffle_fraction = 0.0;  // worst owner-map reshuffle observed
  };
  MembershipSummary membership;

  /// Fault-injection counters (all zero when fault_plan.is_zero()):
  /// injection side from the FaultyNetwork, `timeouts` from the client's
  /// expired deadlines.
  sim::FaultCounters faults;

  /// Payload-store and erasure-tier aggregates over all proxies (all zero
  /// while payload.enabled is false).  The request-level byte counters
  /// (byte hit rate, origin bytes, recovered bytes) live in `summary`;
  /// these are the supply-side totals.
  struct StoreSummary {
    std::uint64_t payload_bytes_served = 0;   // proxy-side hits + degraded
    std::uint64_t payload_bytes_fetched = 0;  // proxy-side origin fetches
    std::uint64_t origin_bytes_served = 0;    // origin's own byte counter
    std::uint64_t stripes_registered = 0;
    std::uint64_t chunks_stored = 0;
    std::uint64_t chunks_evicted = 0;
    std::uint64_t chunk_requests_sent = 0;
    std::uint64_t chunk_replies_served = 0;
    std::uint64_t chunk_bytes_sent = 0;
    std::uint64_t degraded_started = 0;
    std::uint64_t degraded_recovered = 0;
    std::uint64_t degraded_failed = 0;
    std::uint64_t recovered_bytes = 0;
    std::uint64_t chunk_requests_skipped = 0;  // recovery load steering
    std::uint64_t directory_entries = 0;  // chunk-directory totals at run end
    std::uint64_t directory_bytes = 0;

    // Proactive re-stripe repair (all zero unless payload.erasure.restripe).
    std::uint64_t stripes_healed = 0;      // repair offers acked, leader side
    std::uint64_t repair_offers = 0;       // kRestripeOffer messages sent
    std::uint64_t repair_retries = 0;      // offers re-sent after unacked rounds
    std::uint64_t repair_rounds = 0;       // planner rounds that sent >= 1 offer
    std::uint64_t repair_bytes = 0;        // chunk bytes offered (budget-charged)
    std::uint64_t repair_abandoned = 0;    // items that exhausted their retries
    std::uint64_t repair_cancelled = 0;    // items mooted by a rejoin
    std::uint64_t repair_handbacks = 0;    // rejoin hand-backs completed
    std::uint64_t repair_adopted = 0;      // offers recorded by replacements
    std::uint64_t repair_round_bytes_max = 0;  // largest single round anywhere

    // Post-run stripe census over the proxies still standing at sim end
    // (permanently crashed nodes excluded): objects with at least one
    // surviving chunk, and among them the ones no longer reconstructible
    // (fewer than k distinct chunk indexes alive) — the set a second
    // death strands without proactive repair.
    std::uint64_t stripe_objects_tracked = 0;
    std::uint64_t stripes_stranded = 0;
  };
  StoreSummary store;

  /// Link-layer transfer accounting (all zero unless config.link.enabled).
  /// Wait percentiles are ticks from enqueue to first burst, read off the
  /// scheduler's deterministic PercentileTracker.
  struct LinkSummary {
    std::uint64_t transfers = 0;
    std::uint64_t passthrough = 0;
    std::uint64_t queued = 0;
    std::uint64_t bursts = 0;
    std::uint64_t bytes = 0;
    std::uint64_t max_backlog_bytes = 0;
    double wait_p50 = 0.0;
    double wait_p99 = 0.0;
    double wait_p999 = 0.0;
    SimTime max_wait = 0;
  };
  LinkSummary link;
};

/// Adapts a workload::Trace to the client's pull interface.
class TraceStream final : public proxy::RequestStream {
 public:
  explicit TraceStream(const workload::Trace& trace) : trace_(&trace) {}

  std::optional<ObjectId> next() override {
    if (cursor_ >= trace_->size()) return std::nullopt;
    return (*trace_)[cursor_++];
  }

  std::uint64_t cursor() const noexcept { return cursor_; }

 private:
  const workload::Trace* trace_;
  std::uint64_t cursor_ = 0;
};

/// Runs the full trace through a freshly built deployment and returns the
/// collected metrics.  Deterministic in (config, trace).
ExperimentResult run_experiment(const ExperimentConfig& config, const workload::Trace& trace);

}  // namespace adc::driver
