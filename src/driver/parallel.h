// Parallel experiment execution: fans independent run_experiment() calls
// across a fixed-size thread pool (util::ThreadPool).
//
// run_experiment() is deterministic in (config, trace) and every run
// builds its own simulator, proxies, and RNG from its config — runs share
// only the immutable trace.  Results therefore come back bit-identical to
// the serial path (modulo wall_seconds, which measures host time) in
// submission order, regardless of worker count or OS scheduling; the
// determinism test in tests/driver/parallel_test.cpp enforces this.
#pragma once

#include <cstdint>
#include <vector>

#include "driver/experiment.h"
#include "workload/trace.h"

namespace adc::driver {

/// Resolves a --workers value: 0 means "hardware concurrency", anything
/// below 1 clamps to 1 (the serial path).
int resolve_workers(int workers) noexcept;

/// Runs every config against `trace` and returns the results in the order
/// the configs were given.  workers <= 1 runs inline on the calling thread
/// (today's serial behavior); otherwise runs execute concurrently on
/// min(workers, configs.size()) pool threads.  If a run throws, the first
/// failing run's exception is rethrown once outstanding runs finish.
std::vector<ExperimentResult> run_parallel(const std::vector<ExperimentConfig>& configs,
                                           const workload::Trace& trace, int workers);

/// Mean, sample standard deviation, and normal-approximation 95%
/// confidence half-width (mean ± ci95) of one scalar metric over
/// replicated runs.  stddev and ci95 are 0 for fewer than two runs.
struct MetricStats {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
};

struct ReplicationResult {
  std::size_t runs = 0;
  MetricStats hit_rate;
  MetricStats avg_hops;
  MetricStats avg_latency;
  /// Per-seed full results, in the order the seeds were given.
  std::vector<ExperimentResult> results;
};

/// Replays the trace once per seed (everything else fixed) and aggregates
/// mean/stddev/CI per metric — the error bars behind any single-seed
/// comparison (bench/ext_variance).  Seed fan-out runs on `workers`
/// threads; the aggregates are independent of the worker count.
ReplicationResult run_replicated(const ExperimentConfig& base, const workload::Trace& trace,
                                 const std::vector<std::uint64_t>& seeds, int workers = 1);

}  // namespace adc::driver
