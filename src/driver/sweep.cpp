#include "driver/sweep.h"

#include <algorithm>
#include <cmath>

#include "driver/parallel.h"

namespace adc::driver {

std::string_view swept_table_name(SweptTable table) noexcept {
  switch (table) {
    case SweptTable::kCaching:
      return "caching";
    case SweptTable::kMultiple:
      return "multiple";
    case SweptTable::kSingle:
      return "single";
  }
  return "caching";
}

std::vector<std::size_t> paper_sweep_sizes(double scale) {
  std::vector<std::size_t> sizes;
  for (int k = 5; k <= 30; k += 5) {
    const auto scaled = static_cast<std::size_t>(
        std::llround(static_cast<double>(k) * 1000.0 * scale));
    sizes.push_back(std::max<std::size_t>(scaled, 1));
  }
  return sizes;
}

std::vector<SweepPoint> run_table_sweep(const ExperimentConfig& base,
                                        const workload::Trace& trace,
                                        const std::vector<SweptTable>& tables,
                                        const std::vector<std::size_t>& sizes,
                                        int workers) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(tables.size() * sizes.size());
  for (const SweptTable table : tables) {
    for (const std::size_t size : sizes) {
      ExperimentConfig config = base;
      switch (table) {
        case SweptTable::kCaching:
          config.adc.caching_table_size = size;
          break;
        case SweptTable::kMultiple:
          config.adc.multiple_table_size = size;
          break;
        case SweptTable::kSingle:
          config.adc.single_table_size = size;
          break;
      }
      configs.push_back(std::move(config));
    }
  }

  const std::vector<ExperimentResult> results = run_parallel(configs, trace, workers);

  std::vector<SweepPoint> points;
  points.reserve(results.size());
  std::size_t i = 0;
  for (const SweptTable table : tables) {
    for (const std::size_t size : sizes) {
      const ExperimentResult& result = results[i++];
      SweepPoint point;
      point.table = table;
      point.size = size;
      point.hit_rate = result.summary.hit_rate();
      point.avg_hops = result.summary.avg_hops();
      point.wall_seconds = result.wall_seconds;
      point.avg_latency = result.summary.avg_latency();
      points.push_back(point);
    }
  }
  return points;
}

}  // namespace adc::driver
