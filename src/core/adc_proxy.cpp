#include "core/adc_proxy.h"

#include <cassert>
#include <utility>

#include "util/logging.h"

namespace adc::core {

using sim::Message;
using sim::MessageKind;
using sim::Transport;

AdcProxy::AdcProxy(NodeId id, std::string name, const AdcConfig& config,
                   std::vector<NodeId> proxies, NodeId origin)
    : Node(id, sim::NodeKind::kProxy, std::move(name)),
      config_(config),
      tables_(config),
      proxies_(std::move(proxies)),
      origin_(origin) {
  assert(!proxies_.empty());
  if (!config_.selective_caching) {
    lru_cache_ = cache::make_cache(config_.caching_table_size, cache::Policy::kLru);
  }
}

void AdcProxy::flush() {
  tables_.clear();
  if (lru_cache_ != nullptr) lru_cache_->clear();
  lru_versions_.clear();
}

void AdcProxy::warm_cache(ObjectId object, std::uint64_t version) {
  if (config_.selective_caching) {
    tables_.warm_cache(object, id(), local_time_, version);
    return;
  }
  if (const auto evicted = lru_cache_->insert(object)) lru_versions_.erase(*evicted);
  lru_versions_[object] = version;
}

std::size_t AdcProxy::invalidate_peer(NodeId peer) {
  const std::size_t removed = tables_.invalidate_location(peer);
  stats_.peer_invalidations += removed;
  return removed;
}

std::uint64_t AdcProxy::stored_version(ObjectId object) const noexcept {
  if (config_.selective_caching) {
    const cache::TableEntry* entry = tables_.caching().find(object);
    return entry != nullptr ? entry->version : 0;
  }
  const auto it = lru_versions_.find(object);
  return it == lru_versions_.end() ? 0 : it->second;
}

bool AdcProxy::is_locally_cached(ObjectId object) const noexcept {
  if (config_.selective_caching) return tables_.is_cached(object);
  return lru_cache_->contains(object);
}

void AdcProxy::on_message(Transport& net, const Message& msg) {
  if (msg.kind == MessageKind::kRequest) {
    receive_request(net, msg);
  } else {
    receive_reply(net, msg);
  }
}

// Paper Figure 5 (Receive_Request).
void AdcProxy::receive_request(Transport& net, const Message& msg) {
  ++local_time_;
  ++stats_.requests_received;
  const ObjectId object = msg.object;

  if (is_locally_cached(object)) {
    ++stats_.local_hits;
    if (!config_.selective_caching) lru_cache_->touch(object);
    tables_.update_entry(object, id(), local_time_);

    Message reply = msg;
    reply.kind = MessageKind::kReply;
    reply.sender = id();
    reply.target = msg.sender;
    reply.resolver = id();
    reply.cached = true;
    reply.proxy_hit = true;
    reply.version = stored_version(object);
    net.send(std::move(reply));
    return;
  }

  // Loop detection must precede storing the new backwarding record: a
  // request id already pending here means the random walk revisited us.
  const auto pending_it = pending_.find(msg.request_id);
  const bool loop = pending_it != pending_.end() && !pending_it->second.empty();
  pending_[msg.request_id].push_back(msg.sender);

  Message forward = msg;
  forward.sender = id();
  forward.forward_count = msg.forward_count + 1;

  const bool max_hops = msg.forward_count >= config_.max_forwards;
  if (loop || max_hops) {
    if (loop) ++stats_.loops_detected;
    if (max_hops) ++stats_.max_forwards_hit;
    ++stats_.forwards_origin;
    forward.target = origin_;
  } else {
    forward.target = forward_address(net, object);
  }
  net.send(std::move(forward));
}

// Paper Figure 6 (Forward_Addr).
NodeId AdcProxy::forward_address(Transport& net, ObjectId object) {
  const auto location = tables_.forward_location(object);
  if (!location.has_value()) {
    // Unknown object: random peer over the full membership, self included.
    ++stats_.forwards_random;
    return proxies_[net.rng().index(proxies_.size())];
  }
  if (*location == id()) {
    // THIS marker: we are responsible but do not hold the data — the
    // search terminates at the origin server (paper Section III.3.2).
    ++stats_.forwards_origin;
    return origin_;
  }
  ++stats_.forwards_learned;
  return *location;
}

// Paper Figure 7 (Receive_Reply).
void AdcProxy::receive_reply(Transport& net, const Message& msg) {
  // A reply with no backwarding record is an orphan: a duplicated message,
  // or a journey whose record died with a restart.  Drop it without
  // learning — processing it twice would double-count table updates and
  // could claim resolver status for a journey that already completed.
  const auto pending_check = pending_.find(msg.request_id);
  if (pending_check == pending_.end() || pending_check->second.empty()) {
    ++stats_.orphan_replies;
    return;
  }

  Message reply = msg;

  // NULL resolver == the data came straight from the origin server; the
  // first proxy on the backwarding path claims responsibility.
  if (reply.resolver == kInvalidNode) {
    reply.resolver = id();
    ++stats_.resolver_claims;
  }

  const bool learn = config_.backward_multicast || reply.resolver == id();
  if (learn) {
    const UpdateResult update =
        tables_.update_entry(reply.object, reply.resolver, local_time_, reply.version);
    if (update.promoted_to_cache) ++stats_.cache_admissions;
  }

  if (!config_.selective_caching) {
    // ABL-SEL: admit every passing object, evicting per LRU.
    if (!lru_cache_->contains(reply.object)) ++stats_.cache_admissions;
    if (const auto evicted = lru_cache_->insert(reply.object)) lru_versions_.erase(*evicted);
    lru_versions_[reply.object] = reply.version;
  }

  // If the update admitted the object into our cache and nobody on the
  // path cached it yet, we become the official location for upstream
  // proxies (focus on a single caching location, Section IV.2).
  if (is_locally_cached(reply.object) && !reply.cached) {
    reply.resolver = id();
    reply.cached = true;
    ++stats_.resolver_claims;
  }

  // Backward along the stored path (LIFO per request id).
  const auto it = pending_.find(reply.request_id);
  assert(it != pending_.end() && !it->second.empty());
  const NodeId previous_hop = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) pending_.erase(it);

  ++stats_.replies_relayed;
  reply.sender = id();
  reply.target = previous_hop;
  net.send(std::move(reply));
}

}  // namespace adc::core
