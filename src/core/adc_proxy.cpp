#include "core/adc_proxy.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/logging.h"

namespace adc::core {

using sim::Message;
using sim::MessageKind;
using sim::Transport;

AdcProxy::AdcProxy(NodeId id, std::string name, const AdcConfig& config,
                   std::vector<NodeId> proxies, NodeId origin)
    : Node(id, sim::NodeKind::kProxy, std::move(name)),
      config_(config),
      tables_(config),
      proxies_(std::move(proxies)),
      origin_(origin) {
  assert(!proxies_.empty());
  if (!config_.selective_caching) {
    lru_cache_ = cache::make_cache(config_.caching_table_size, cache::Policy::kLru);
  }
}

void AdcProxy::flush() {
  tables_.clear();
  if (lru_cache_ != nullptr) lru_cache_->clear();
  lru_versions_.clear();
}

void AdcProxy::enable_store(const store::StoreContext& ctx) {
  assert(ctx.store != nullptr);
  store_ = ctx.store;
  if (!config_.selective_caching) {
    store::PayloadStorePtr sizer = store_;
    lru_cache_ = cache::make_sized_cache(
        config_.caching_table_size, cache::Policy::kLru, store_->config().byte_budget,
        [sizer](ObjectId object) { return sizer->size_of(object); });
  }
  if (store_->config().erasure.enabled) {
    erasure_ = std::make_unique<store::ErasureTier>(id(), store_, ctx.proxies);
  }
}

void AdcProxy::warm_cache(ObjectId object, std::uint64_t version) {
  if (config_.selective_caching) {
    tables_.warm_cache(object, id(), local_time_, version);
    return;
  }
  for (const ObjectId evicted : lru_cache_->insert_evicting(object)) {
    lru_versions_.erase(evicted);
  }
  if (lru_cache_->contains(object)) lru_versions_[object] = version;
}

std::size_t AdcProxy::invalidate_peer(NodeId peer) {
  const std::size_t removed = tables_.invalidate_location(peer);
  stats_.peer_invalidations += removed;
  return removed;
}

std::size_t AdcProxy::handle_peer_dead(NodeId peer) {
  if (peer == id()) return 0;
  if (erasure_ != nullptr) erasure_->handle_peer_dead(peer);
  proxies_.erase(std::remove(proxies_.begin(), proxies_.end(), peer), proxies_.end());
  if (proxies_.empty()) proxies_.push_back(id());
  return invalidate_peer(peer);
}

void AdcProxy::handle_peer_joined(NodeId peer) {
  if (erasure_ != nullptr) erasure_->handle_peer_joined(peer);
  const auto pos = std::lower_bound(proxies_.begin(), proxies_.end(), peer);
  if (pos != proxies_.end() && *pos == peer) return;
  proxies_.insert(pos, peer);
}

void AdcProxy::seed_location(ObjectId object, NodeId location, std::uint64_t claim) {
  tables_.update_entry(object, location, local_time_, std::nullopt, claim);
}

void AdcProxy::send_anti_entropy(sim::Transport& net, NodeId peer, std::size_t batch) {
  if (peer == id() || batch == 0) return;
  std::size_t sent = 0;
  const auto offer = [this, &net, peer, batch, &sent](const cache::TableEntry& e) {
    if (sent >= batch || e.claim == 0) return;
    Message msg;
    msg.kind = MessageKind::kRepairOffer;
    msg.object = e.object;
    msg.sender = id();
    msg.target = peer;
    msg.resolver = e.location;
    msg.claim = e.claim;
    net.send(std::move(msg));
    ++sent;
    ++stats_.repair_offers;
  };
  // Hottest opinions first: the caching table holds the objects this proxy
  // itself resolves, the multiple-table its directory of remote locations.
  if (tables_.has_caching_table()) tables_.caching().for_each(offer);
  tables_.multiple().for_each(offer);
}

void AdcProxy::receive_opinion(sim::Transport& net, const Message& msg) {
  const cache::TableEntry* mine = tables_.find(msg.object);
  if (mine == nullptr) return;  // unknown object: never pollute the tables
  if (mine->claim > msg.claim) {
    // Our opinion is strictly fresher — push it back once (offers only, so
    // a disagreement settles in a single exchange instead of echoing).
    if (msg.kind == MessageKind::kRepairOffer) {
      Message counter;
      counter.kind = MessageKind::kRepairReply;
      counter.object = msg.object;
      counter.sender = id();
      counter.target = msg.sender;
      counter.resolver = mine->location;
      counter.claim = mine->claim;
      net.send(std::move(counter));
      ++stats_.repair_counter_offers;
    }
    return;
  }
  if (mine->claim == msg.claim) return;  // agreement or tie: keep ours
  if (tables_.repair_location(msg.object, msg.resolver, msg.claim)) {
    ++stats_.repairs_applied;
  }
}

std::uint64_t AdcProxy::stored_version(ObjectId object) const noexcept {
  if (config_.selective_caching) {
    const cache::TableEntry* entry = tables_.caching().find(object);
    return entry != nullptr ? entry->version : 0;
  }
  const auto it = lru_versions_.find(object);
  return it == lru_versions_.end() ? 0 : it->second;
}

bool AdcProxy::is_locally_cached(ObjectId object) const noexcept {
  if (config_.selective_caching) return tables_.is_cached(object);
  return lru_cache_->contains(object);
}

void AdcProxy::on_message(Transport& net, const Message& msg) {
  switch (msg.kind) {
    case MessageKind::kRequest:
      receive_request(net, msg);
      break;
    case MessageKind::kReply:
      receive_reply(net, msg);
      break;
    case MessageKind::kRepairOffer:
    case MessageKind::kRepairReply:
      receive_opinion(net, msg);
      break;
    case MessageKind::kStripeStore:
      if (erasure_ != nullptr) erasure_->on_stripe_store(msg);
      break;
    case MessageKind::kChunkRequest:
      if (erasure_ != nullptr) erasure_->on_chunk_request(net, msg);
      break;
    case MessageKind::kChunkReply:
      if (erasure_ != nullptr) handle_chunk_reply(net, msg);
      break;
    case MessageKind::kRestripeOffer:
      if (erasure_ != nullptr) erasure_->on_restripe_offer(net, msg);
      break;
    case MessageKind::kRestripeAck:
      if (erasure_ != nullptr) erasure_->on_restripe_ack(msg);
      break;
    default:
      // SWIM kinds are routed to the failure detector by the hosting
      // MemberAgent / NodeDaemon before reaching the agent.
      break;
  }
}

// Paper Figure 5 (Receive_Request).
void AdcProxy::receive_request(Transport& net, const Message& msg) {
  ++local_time_;
  ++stats_.requests_received;
  const ObjectId object = msg.object;

  if (is_locally_cached(object)) {
    ++stats_.local_hits;
    if (!config_.selective_caching) lru_cache_->touch(object);
    // Resolver event: answering locally re-asserts this proxy as the
    // object's location, one claim above everything the request saw on its
    // way here (its floor) and above our own stored claim.
    const std::uint64_t claim = std::max(msg.claim, tables_.claim_of(object)) + 1;
    tables_.update_entry(object, id(), local_time_, std::nullopt, claim);

    Message reply = msg;
    reply.kind = MessageKind::kReply;
    reply.sender = id();
    reply.target = msg.sender;
    reply.resolver = id();
    reply.cached = true;
    reply.proxy_hit = true;
    reply.version = stored_version(object);
    reply.claim = claim;
    reply.payload_bytes = size_of(object);
    stats_.payload_bytes_served += reply.payload_bytes;
    net.send(std::move(reply));
    return;
  }

  // Loop detection must precede storing the new backwarding record: a
  // request id already pending here means the random walk revisited us.
  const auto pending_it = pending_.find(msg.request_id);
  const bool loop = pending_it != pending_.end() && !pending_it->second.empty();
  pending_[msg.request_id].push_back(msg.sender);

  Message forward = msg;
  forward.sender = id();
  forward.forward_count = msg.forward_count + 1;
  // Claim floor: the request accumulates the freshest claim any proxy on
  // its path stores for the object, so whoever eventually claims resolver
  // status claims strictly above every participant's current knowledge —
  // which is what makes stale-claim rejection impossible on the journey's
  // own backward path (see mapping_tables.h).
  forward.claim = std::max(msg.claim, tables_.claim_of(object));

  const bool max_hops = msg.forward_count >= config_.max_forwards;
  if (loop || max_hops) {
    if (loop) ++stats_.loops_detected;
    if (max_hops) ++stats_.max_forwards_hit;
    ++stats_.forwards_origin;
    forward.target = origin_;
  } else {
    forward.target = forward_address(net, object);
  }

  // Degraded-read window: an origin-bound search after a confirmed peer
  // death tries reconstruction from surviving stripe chunks first.  The
  // backwarding record above stays in place; handle_chunk_reply either
  // synthesizes an origin-like reply or falls through to the origin.
  if (forward.target == origin_ && erasure_ != nullptr && erasure_->has_dead_peer() &&
      erasure_->begin_recovery(net, forward)) {
    ++stats_.degraded_reads_started;
    return;
  }
  net.send(std::move(forward));
}

void AdcProxy::handle_chunk_reply(Transport& net, const Message& msg) {
  const store::ErasureTier::Resolution res = erasure_->on_chunk_reply(msg);
  switch (res.outcome) {
    case store::ErasureTier::Outcome::kNone:
    case store::ErasureTier::Outcome::kPending:
      return;
    case store::ErasureTier::Outcome::kRecovered: {
      // Reconstructed: feed an origin-shaped reply through the normal
      // backwarding machinery so resolver claiming, table learning and
      // cache admission all run exactly as for an origin resolution.
      ++stats_.degraded_reads_served;
      Message reply = res.request;
      reply.kind = MessageKind::kReply;
      reply.sender = id();
      reply.target = id();
      reply.resolver = kInvalidNode;
      reply.cached = false;
      reply.proxy_hit = true;
      reply.degraded = true;
      reply.hops = msg.hops;
      reply.payload_bytes = res.object_bytes;
      reply.version = stored_version(reply.object);
      stats_.payload_bytes_served += reply.payload_bytes;
      receive_reply(net, reply);
      return;
    }
    case store::ErasureTier::Outcome::kFailed: {
      // Shortfall: the search terminates at the origin after all.  The
      // origin-bound decision was already counted when recovery started.
      Message forward = res.request;
      forward.sender = id();
      forward.target = origin_;
      net.send(std::move(forward));
      return;
    }
  }
}

// Paper Figure 6 (Forward_Addr).
NodeId AdcProxy::forward_address(Transport& net, ObjectId object) {
  const auto location = tables_.forward_location(object);
  if (!location.has_value()) {
    // Unknown object: random peer over the full membership, self included.
    ++stats_.forwards_random;
    return proxies_[net.rng().index(proxies_.size())];
  }
  if (*location == id()) {
    // THIS marker: we are responsible but do not hold the data — the
    // search terminates at the origin server (paper Section III.3.2).
    ++stats_.forwards_origin;
    return origin_;
  }
  ++stats_.forwards_learned;
  return *location;
}

// Paper Figure 7 (Receive_Reply).
void AdcProxy::receive_reply(Transport& net, const Message& msg) {
  // A reply with no backwarding record is an orphan: a duplicated message,
  // or a journey whose record died with a restart.  Drop it without
  // learning — processing it twice would double-count table updates and
  // could claim resolver status for a journey that already completed.
  const auto pending_check = pending_.find(msg.request_id);
  if (pending_check == pending_.end() || pending_check->second.empty()) {
    ++stats_.orphan_replies;
    return;
  }

  Message reply = msg;

  // NULL resolver == the data came straight from the origin server; the
  // first proxy on the backwarding path claims responsibility.  The origin
  // echoed the request's claim floor, so floor + 1 outbids every entry the
  // forward walk saw.
  if (reply.resolver == kInvalidNode) {
    reply.resolver = id();
    reply.claim = std::max(reply.claim, tables_.claim_of(reply.object)) + 1;
    ++stats_.resolver_claims;
    if (!reply.degraded) stats_.payload_bytes_fetched += reply.payload_bytes;
    // First proxy on the backward path: register (or refresh) the erasure
    // stripe for the freshly resolved object.
    if (erasure_ != nullptr) erasure_->stripe_object(net, reply.object);
  }

  const bool learn = config_.backward_multicast || reply.resolver == id();
  if (learn) {
    const UpdateResult update = tables_.update_entry(reply.object, reply.resolver, local_time_,
                                                     reply.version, reply.claim);
    if (update.promoted_to_cache) ++stats_.cache_admissions;
    if (update.rejected_stale) ++stats_.stale_claims_rejected;
  }

  if (!config_.selective_caching) {
    // ABL-SEL: admit every passing object, evicting per LRU (a size-aware
    // cache may multi-evict under its byte budget or refuse admission).
    if (!lru_cache_->contains(reply.object)) ++stats_.cache_admissions;
    for (const ObjectId evicted : lru_cache_->insert_evicting(reply.object)) {
      lru_versions_.erase(evicted);
    }
    if (lru_cache_->contains(reply.object)) lru_versions_[reply.object] = reply.version;
  }

  // If the update admitted the object into our cache and nobody on the
  // path cached it yet, we become the official location for upstream
  // proxies (focus on a single caching location, Section IV.2).  Another
  // resolver event: re-claim one above the reply's running claim.
  if (is_locally_cached(reply.object) && !reply.cached) {
    reply.resolver = id();
    reply.cached = true;
    reply.claim = std::max(reply.claim, tables_.claim_of(reply.object)) + 1;
    tables_.stamp_claim(reply.object, reply.claim);
    ++stats_.resolver_claims;
  }

  // Backward along the stored path (LIFO per request id).
  const auto it = pending_.find(reply.request_id);
  assert(it != pending_.end() && !it->second.empty());
  const NodeId previous_hop = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) pending_.erase(it);

  ++stats_.replies_relayed;
  reply.sender = id();
  reply.target = previous_hop;
  net.send(std::move(reply));
}

}  // namespace adc::core
