#include "core/mapping_tables.h"

#include <cassert>

namespace adc::core {

using cache::TableEntry;

MappingTables::MappingTables(const AdcConfig& config)
    : single_(config.single_table_size, config.table_impl),
      multiple_(cache::make_ordered_table(config.multiple_table_size, config.table_impl)),
      caching_(config.selective_caching
                   ? cache::make_ordered_table(config.caching_table_size, config.table_impl)
                   : nullptr) {}

bool MappingTables::is_cached(ObjectId object) const noexcept {
  return caching_ != nullptr && caching_->contains(object);
}

std::optional<NodeId> MappingTables::forward_location(ObjectId object) const noexcept {
  if (const TableEntry* e = find(object)) return e->location;
  return std::nullopt;
}

const TableEntry* MappingTables::find(ObjectId object) const noexcept {
  if (caching_ != nullptr) {
    if (const TableEntry* e = caching_->find(object)) return e;
  }
  if (const TableEntry* e = multiple_->find(object)) return e;
  return single_.find(object);
}

std::uint64_t MappingTables::claim_of(ObjectId object) const noexcept {
  const TableEntry* e = find(object);
  return e != nullptr ? e->claim : 0;
}

bool MappingTables::repair_location(ObjectId object, NodeId location, std::uint64_t claim) {
  if (caching_ != nullptr && caching_->contains(object)) return false;
  TableEntry* e = multiple_->find_mutable(object);
  if (e == nullptr) e = single_.find_mutable(object);
  if (e == nullptr) return false;
  e->location = location;
  e->claim = claim;
  return true;
}

void MappingTables::stamp_claim(ObjectId object, std::uint64_t claim) {
  TableEntry* e = caching_ != nullptr ? caching_->find_mutable(object) : nullptr;
  if (e == nullptr) e = multiple_->find_mutable(object);
  if (e == nullptr) e = single_.find_mutable(object);
  if (e != nullptr && e->claim < claim) e->claim = claim;
}

std::size_t MappingTables::total_entries() const noexcept {
  return single_.size() + multiple_->size() + (caching_ != nullptr ? caching_->size() : 0);
}

void MappingTables::clear() {
  single_.clear();
  multiple_->clear();
  if (caching_ != nullptr) caching_->clear();
}

std::size_t MappingTables::invalidate_location(NodeId location) {
  std::vector<ObjectId> victims;
  for (const TableEntry& e : single_.snapshot()) {
    if (e.location == location) victims.push_back(e.object);
  }
  for (ObjectId object : victims) single_.remove(object);
  std::size_t removed = victims.size();

  victims.clear();
  multiple_->for_each([&victims, location](const TableEntry& e) {
    if (e.location == location) victims.push_back(e.object);
  });
  for (ObjectId object : victims) multiple_->remove(object);
  removed += victims.size();
  return removed;
}

void MappingTables::warm_cache(ObjectId object, NodeId location, SimTime now,
                               std::uint64_t version) {
  if (caching_ == nullptr || caching_->contains(object)) return;
  // Drop any colder bookkeeping entry so the object lives in exactly one
  // table.
  multiple_->remove(object);
  single_.remove(object);
  if (caching_->full()) {
    auto demoted = caching_->remove_worst();
    assert(demoted.has_value());
    if (!multiple_->full()) multiple_->insert(*demoted);
  }
  cache::TableEntry entry = cache::make_entry(object, location, now);
  entry.hits = 2;  // behave like an established entry, not a part-4 fresh one
  entry.version = version;
  caching_->insert(entry);
}

UpdateResult MappingTables::update_entry(ObjectId object, NodeId location, SimTime now,
                                         std::optional<std::uint64_t> data_version,
                                         std::uint64_t claim) {
  // Stale-claim rejection: an update carrying a strictly older claim than
  // the stored entry's is pre-partition news — learning from it would
  // overwrite a fresher resolver opinion, so it is dropped before any
  // table state changes (no aging, no reordering).
  if (const TableEntry* existing = find(object);
      existing != nullptr && existing->claim > claim) {
    UpdateResult result;
    result.rejected_stale = true;
    return result;
  }

  // Figure 8, parts 1-4, searched in the order caching, multiple, single.
  if (caching_ != nullptr) {
    if (auto entry = caching_->remove(object)) {
      return update_in_caching(*entry, location, now, data_version, claim);
    }
  }
  if (auto entry = multiple_->remove(object)) {
    return update_in_multiple(*entry, location, now, data_version, claim);
  }
  if (auto entry = single_.remove(object)) {
    return update_in_single(*entry, location, now, data_version, claim);
  }
  return create_entry(object, location, now, data_version, claim);
}

// PART 1 — the entry is cached: refresh and reinsert at its new order
// position.  A cached entry is never demoted here; demotion only happens
// when a multiple-table entry outperforms it (part 2).
UpdateResult MappingTables::update_in_caching(TableEntry entry, NodeId location, SimTime now,
                                              std::optional<std::uint64_t> data_version,
                                              std::uint64_t claim) {
  entry.calc_average(now);
  entry.location = location;
  if (data_version.has_value()) entry.version = *data_version;
  if (entry.claim < claim) entry.claim = claim;
  caching_->insert(entry);  // one slot is free: we just removed the entry
  UpdateResult result;
  result.placement = TablePlacement::kCaching;
  return result;
}

// PART 2 — the entry is in the multiple-table: it moves into the caching
// table iff its aged average beats the cache's current worst; the displaced
// cache entry falls back into the multiple-table.
UpdateResult MappingTables::update_in_multiple(TableEntry entry, NodeId location, SimTime now,
                                               std::optional<std::uint64_t> data_version,
                                               std::uint64_t claim) {
  entry.calc_average(now);
  entry.location = location;
  if (data_version.has_value()) entry.version = *data_version;
  if (entry.claim < claim) entry.claim = claim;

  UpdateResult result;
  if (caching_ != nullptr && entry.aged(now) < caching_->worst_aged(now)) {
    if (caching_->full()) {
      auto demoted = caching_->remove_worst();
      assert(demoted.has_value());
      // The multiple-table has a free slot (the entry was removed above),
      // so this insert cannot overflow.
      multiple_->insert(*demoted);
      result.demoted_from_cache = true;
    }
    caching_->insert(entry);
    result.placement = TablePlacement::kCaching;
    result.promoted_to_cache = true;
  } else {
    multiple_->insert(entry);
    result.placement = TablePlacement::kMultiple;
  }
  return result;
}

// PART 3 — the entry is in the single-table: a second (or later) hit has
// occurred, so the average is now meaningful; it moves into the
// multiple-table iff it beats that table's worst, whose victim returns to
// the top of the single-table.
UpdateResult MappingTables::update_in_single(TableEntry entry, NodeId location, SimTime now,
                                             std::optional<std::uint64_t> data_version,
                                             std::uint64_t claim) {
  entry.calc_average(now);
  entry.location = location;
  if (data_version.has_value()) entry.version = *data_version;
  if (entry.claim < claim) entry.claim = claim;

  UpdateResult result;
  if (entry.aged(now) < multiple_->worst_aged(now)) {
    if (multiple_->full()) {
      auto demoted = multiple_->remove_worst();
      assert(demoted.has_value());
      // The single-table has a free slot (the entry was removed above).
      single_.insert_on_top(*demoted);
    }
    multiple_->insert(entry);
    result.placement = TablePlacement::kMultiple;
  } else {
    single_.insert_on_top(entry);
    result.placement = TablePlacement::kSingle;
  }
  return result;
}

// PART 4 — unknown object: fresh entry on top of the single-table; the
// bottom entry drops out of the system when the table is full.
UpdateResult MappingTables::create_entry(ObjectId object, NodeId location, SimTime now,
                                         std::optional<std::uint64_t> data_version,
                                         std::uint64_t claim) {
  cache::TableEntry entry = cache::make_entry(object, location, now);
  entry.version = data_version.value_or(0);
  entry.claim = claim;
  single_.insert_on_top(entry);
  UpdateResult result;
  result.placement = TablePlacement::kSingle;
  result.created = true;
  return result;
}

}  // namespace adc::core
