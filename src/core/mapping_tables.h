// The three-table mapping structure at the heart of ADC (paper Section
// III.3) and the Update_Entry procedure that moves entries between tables
// (paper Figure 8).
//
// Table roles:
//  * single-table  — LRU log of the recent request flow; entries wait here
//    for a second hit so an average inter-request time can be estimated.
//  * multiple-table — objects requested more than once, ordered by aged
//    average; the proxy's "directory" of remote locations.
//  * caching table — the subset the proxy actually stores, also ordered by
//    aged average (selective caching, Section III.4).
//
// This class is pure data logic: no messaging, no clock.  The proxy feeds
// it the local time, which makes every transition unit-testable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cache/ordered_table.h"
#include "cache/single_table.h"
#include "cache/table_entry.h"
#include "core/adc_config.h"
#include "util/types.h"

namespace adc::core {

/// Which table an entry landed in after an update (for stats and tests).
enum class TablePlacement {
  kCaching,
  kMultiple,
  kSingle,
};

struct UpdateResult {
  TablePlacement placement = TablePlacement::kSingle;
  bool created = false;            // part 4 ran (object previously unknown)
  bool promoted_to_cache = false;  // object newly entered the caching table
  bool demoted_from_cache = false; // some other object left the caching table
  bool rejected_stale = false;     // claim older than the stored one; no change
};

class MappingTables {
 public:
  explicit MappingTables(const AdcConfig& config);

  /// The paper's Update_Entry(Object, Location) at local time `now`.
  /// `data_version` — when the update accompanies actual object data (a
  /// backwarding reply) — records the version of that data in the entry;
  /// nullopt (pure bookkeeping touch) keeps the stored version.
  /// `claim` is the resolver-claim version the location was learned at: a
  /// strictly older claim than the stored entry's is rejected outright
  /// (`rejected_stale`, no state change) — the partition-tolerance rule
  /// that stops a healed proxy from overwriting fresher opinions with
  /// pre-partition state.  Claims only ratchet up; 0 never rejects an
  /// unversioned entry.
  UpdateResult update_entry(ObjectId object, NodeId location, SimTime now,
                            std::optional<std::uint64_t> data_version = std::nullopt,
                            std::uint64_t claim = 0);

  /// True when the object sits in the caching table — i.e. the proxy holds
  /// the object's data (the paper's "locally cached" test).
  bool is_cached(ObjectId object) const noexcept;

  /// Forwarding lookup (paper Figure 6): searches caching, multiple then
  /// single table and returns the stored location; nullopt when unknown.
  std::optional<NodeId> forward_location(ObjectId object) const noexcept;

  /// The entry for `object` wherever it lives (caching, multiple, single
  /// order — the forward_location search order); nullptr when unknown.
  const cache::TableEntry* find(ObjectId object) const noexcept;

  /// Resolver-claim version stored for `object`; 0 when unknown or
  /// unversioned.  Forwarded requests accumulate their claim floor from
  /// this.
  std::uint64_t claim_of(ObjectId object) const noexcept;

  /// Anti-entropy repair: overwrites the stored location and claim of an
  /// *existing* single- or multiple-table entry in place — no aging, no
  /// recency touch, so repair traffic cannot perturb table order.  Caching
  /// entries are left alone (this proxy holds the data; its own claim
  /// stands).  Returns false when the object is unknown or cached.
  bool repair_location(ObjectId object, NodeId location, std::uint64_t claim);

  /// Raises the stored claim of an existing entry to at least `claim`
  /// (in place, no aging).  Used when a proxy re-claims resolver status
  /// for an object it just admitted to its cache.
  void stamp_claim(ObjectId object, std::uint64_t claim);

  /// Drops every single- and multiple-table entry whose believed location
  /// is `location` — used when a peer is detected dead, so requests stop
  /// forwarding into a black hole.  Caching-table entries survive: the
  /// data is held locally regardless of where it once came from.  Returns
  /// the number of entries removed.
  std::size_t invalidate_location(NodeId location);

  /// Cache warming: places the object directly into the caching table as a
  /// maximally hot entry (operators prefill caches; the walk-model tests
  /// construct exact replica counts with it).  Evicts the current worst
  /// when full.  No-op without a caching table or if already cached.
  void warm_cache(ObjectId object, NodeId location, SimTime now,
                  std::uint64_t version = 0);

  /// Read-only access for tests, stats and diagnostics.
  const cache::SingleTable& single() const noexcept { return single_; }
  const cache::OrderedTable& multiple() const noexcept { return *multiple_; }
  const cache::OrderedTable& caching() const noexcept { return *caching_; }
  bool has_caching_table() const noexcept { return caching_ != nullptr; }

  std::size_t total_entries() const noexcept;

  void clear();

 private:
  UpdateResult update_in_caching(cache::TableEntry entry, NodeId location, SimTime now,
                                 std::optional<std::uint64_t> data_version, std::uint64_t claim);
  UpdateResult update_in_multiple(cache::TableEntry entry, NodeId location, SimTime now,
                                  std::optional<std::uint64_t> data_version, std::uint64_t claim);
  UpdateResult update_in_single(cache::TableEntry entry, NodeId location, SimTime now,
                                std::optional<std::uint64_t> data_version, std::uint64_t claim);
  UpdateResult create_entry(ObjectId object, NodeId location, SimTime now,
                            std::optional<std::uint64_t> data_version, std::uint64_t claim);

  cache::SingleTable single_;
  std::unique_ptr<cache::OrderedTable> multiple_;
  std::unique_ptr<cache::OrderedTable> caching_;  // null in ABL-SEL mode
};

}  // namespace adc::core
