// Tunables of the ADC algorithm — exactly the parameter space the paper
// sweeps (Section V.1) plus the ablation switches DESIGN.md calls out.
#pragma once

#include <cstddef>

#include "cache/single_table.h"

namespace adc::core {

struct AdcConfig {
  /// Paper defaults (Section V.2): 20k single, 20k multiple, 10k caching.
  std::size_t single_table_size = 20000;
  std::size_t multiple_table_size = 20000;
  std::size_t caching_table_size = 10000;

  /// Maximum request forwards between proxies before the next proxy must
  /// terminate the search at the origin server (Section III.1).  The paper
  /// leaves the value unspecified ("can be set"); 8 keeps random walks
  /// bounded while loops remain the dominant terminator for small systems.
  int max_forwards = 8;

  /// Mapping-table internals: the paper's structures or hash-indexed ones.
  cache::TableImpl table_impl = cache::TableImpl::kIndexed;

  /// Ablation ABL-SEL — when false, the ordered caching table is replaced
  /// by a plain LRU cache that admits every object passing on the
  /// backwarding path (the strategy the paper argues against in III.4).
  bool selective_caching = true;

  /// Ablation ABL-BWD — when false, relaying proxies do not learn from
  /// passing replies; only cache-hit proxies and the proxy that contacted
  /// the origin update their tables (disables multicast-by-backwarding).
  bool backward_multicast = true;
};

}  // namespace adc::core
