// The ADC proxy agent (paper Section IV): reacts to incoming requests and
// replies, maintains the three mapping tables, and self-organizes with its
// peers purely through request forwarding and backwarding.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/adc_config.h"
#include "core/mapping_tables.h"
#include "cache/policies.h"
#include "sim/node.h"
#include "sim/transport.h"
#include "store/erasure_tier.h"
#include "store/payload.h"
#include "util/types.h"

namespace adc::core {

struct AdcProxyStats {
  std::uint64_t requests_received = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t forwards_learned = 0;   // table lookup produced a peer
  std::uint64_t forwards_random = 0;    // no entry: random peer selection
  std::uint64_t forwards_origin = 0;    // THIS entry, loop or max-forwards
  std::uint64_t loops_detected = 0;
  std::uint64_t max_forwards_hit = 0;
  std::uint64_t replies_relayed = 0;
  std::uint64_t resolver_claims = 0;    // times this proxy set itself as resolver
  std::uint64_t cache_admissions = 0;   // objects newly admitted to the cache
  std::uint64_t orphan_replies = 0;     // replies with no pending record (duplicates
                                        // or post-restart arrivals), dropped
  std::uint64_t peer_invalidations = 0; // table entries aged out for dead peers
  std::uint64_t stale_claims_rejected = 0;  // updates dropped for an older claim
  std::uint64_t repair_offers = 0;          // anti-entropy opinions sent
  std::uint64_t repair_counter_offers = 0;  // fresher opinions pushed back
  std::uint64_t repairs_applied = 0;        // entries fixed by incoming opinions

  // Byte accounting (0 while the payload store is disabled).  Note that
  // forwards_origin counts origin-bound *decisions*; when the erasure tier
  // converts such a decision into a degraded read no origin message is
  // actually sent.
  std::uint64_t payload_bytes_served = 0;   // bytes of local hits + degraded reads
  std::uint64_t payload_bytes_fetched = 0;  // bytes this proxy fetched from origin
  std::uint64_t degraded_reads_started = 0;
  std::uint64_t degraded_reads_served = 0;
};

class AdcProxy final : public sim::Node {
 public:
  /// `proxies` is the full membership (including this proxy's own id) used
  /// for random forwarding; `origin` terminates unresolved searches.
  AdcProxy(NodeId id, std::string name, const AdcConfig& config,
           std::vector<NodeId> proxies, NodeId origin);

  void on_message(sim::Transport& net, const sim::Message& msg) override;

  const AdcConfig& config() const noexcept { return config_; }
  const MappingTables& tables() const noexcept { return tables_; }
  const AdcProxyStats& stats() const noexcept { return stats_; }
  SimTime local_time() const noexcept { return local_time_; }

  /// True when the proxy holds the object's data: the selective caching
  /// table in normal mode, the LRU cache in the ABL-SEL ablation.
  bool is_locally_cached(ObjectId object) const noexcept;

  /// Outstanding backwarding records (must drain to 0 when idle).
  std::size_t pending_backwards() const noexcept { return pending_.size(); }

  /// Fault injection: wipes all learned state (mapping tables and cache)
  /// as if the proxy cold-restarted.  In-flight backwarding records are
  /// preserved — connectivity survives, data does not — so outstanding
  /// journeys still complete.
  void flush();

  /// Cache warming: makes this proxy a holder of the object without any
  /// message traffic (so peers learn nothing).
  void warm_cache(ObjectId object, std::uint64_t version = 0);

  /// Peer-death notification: drops every mapping entry that points at
  /// `peer`, so lookups fall back to random forwarding instead of chasing
  /// a dead address.  Returns the number of entries removed.
  std::size_t invalidate_peer(NodeId peer);

  /// Confirmed membership change (failure detector callbacks).  Death
  /// removes the peer from the random-forwarding membership *and*
  /// invalidates entries naming it; a join reinstates it (sorted order is
  /// preserved so forwarding stays deterministic for a given rng stream).
  std::size_t handle_peer_dead(NodeId peer);
  void handle_peer_joined(NodeId peer);

  /// Test/operator prefill of a mapping entry (the table analogue of
  /// warm_cache): makes this proxy believe `object` resolves at
  /// `location` with the given claim, without any message traffic.
  void seed_location(ObjectId object, NodeId location, std::uint64_t claim = 0);

  /// Anti-entropy: sends up to `batch` resolver opinions (hottest caching
  /// and multiple-table entries with a nonzero claim) to `peer` as
  /// kRepairOffer messages.  The receiver adopts strictly fresher claims
  /// and pushes back its own opinion when it holds a strictly fresher one
  /// (one bounce, no further echo — convergence without storms).
  void send_anti_entropy(sim::Transport& net, NodeId peer, std::size_t batch);

  /// Attaches the payload store.  ABL-SEL mode swaps its admit-all LRU for
  /// the byte-budgeted size-aware variant (the selective-caching tables
  /// stay entry-counted — they are a mapping-table construct); when the
  /// store's erasure config asks for it an ErasureTier is hosted so
  /// origin-bound searches can resolve as degraded reads after a confirmed
  /// peer death.  Must run before traffic starts.
  void enable_store(const store::StoreContext& ctx);

  const store::ErasureTier* erasure() const noexcept { return erasure_.get(); }

  /// Mutable tier access for the hosts that drive background repair
  /// rounds (membership hooks, the live daemon).  Null while no tier.
  store::ErasureTier* erasure_tier() noexcept { return erasure_.get(); }

  /// Wires a link-load oracle into the hosted erasure tier (no-op while no
  /// tier exists).  Must run after enable_store.
  void set_erasure_load_probe(store::ErasureTier::LoadProbe probe) {
    if (erasure_ != nullptr) erasure_->set_load_probe(std::move(probe));
  }

 private:
  void receive_request(sim::Transport& net, const sim::Message& msg);
  void receive_reply(sim::Transport& net, const sim::Message& msg);
  void receive_opinion(sim::Transport& net, const sim::Message& msg);
  void handle_chunk_reply(sim::Transport& net, const sim::Message& msg);

  /// Paper Figure 6: table lookup, THIS -> origin, unknown -> random peer.
  NodeId forward_address(sim::Transport& net, ObjectId object);

  AdcConfig config_;
  MappingTables tables_;
  std::vector<NodeId> proxies_;
  NodeId origin_;

  /// Local logical clock: ticks once per received request (Figure 5).
  SimTime local_time_ = 0;

  /// Pending-backwarding records per request id; a stack because a looping
  /// request can traverse this proxy more than once.
  std::unordered_map<RequestId, std::vector<NodeId>> pending_;

  /// Version of the locally cached copy (0 when absent or versioning off).
  std::uint64_t stored_version(ObjectId object) const noexcept;

  /// ABL-SEL mode: admit-all LRU cache replacing the ordered caching table,
  /// plus the data versions of its contents.
  std::unique_ptr<cache::CacheSet> lru_cache_;
  std::unordered_map<ObjectId, std::uint64_t> lru_versions_;

  /// Payload store (null while disabled) and the erasure tier it powers.
  store::PayloadStorePtr store_;
  std::unique_ptr<store::ErasureTier> erasure_;

  std::uint64_t size_of(ObjectId object) const {
    return store_ == nullptr ? 0 : store_->size_of(object);
  }

  AdcProxyStats stats_;
};

}  // namespace adc::core
