// MD5 message digest (RFC 1321), implemented from scratch.
//
// The paper (Section V.3.3) proposes digesting request URLs with MD5 to cut
// the memory the mapping tables spend on raw URL strings; the workload layer
// uses this implementation to intern URLs into 64-bit object ids.  MD5 is
// used here strictly as a non-cryptographic mixing function.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace adc::hash {

class Md5 {
 public:
  using Digest = std::array<std::uint8_t, 16>;

  Md5() noexcept { reset(); }

  /// Restores the initial state so the instance can be reused.
  void reset() noexcept;

  /// Absorbs more input; may be called repeatedly.
  void update(const void* data, std::size_t len) noexcept;
  void update(std::string_view s) noexcept { update(s.data(), s.size()); }

  /// Finalizes and returns the 16-byte digest.  The instance must be
  /// reset() before further use.
  Digest finish() noexcept;

  /// One-shot digest of a buffer.
  static Digest digest(std::string_view s) noexcept;

  /// Lower-case hex rendering of a digest.
  static std::string hex(const Digest& d);

  /// First 8 digest bytes as a little-endian 64-bit value — the URL
  /// interning key used across the system.
  static std::uint64_t digest64(std::string_view s) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t state_[4];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

}  // namespace adc::hash
