#include "hash/consistent_hash.h"

#include <cassert>

#include "hash/fnv.h"
#include "hash/md5.h"

namespace adc::hash {

void ConsistentHashRing::add_member(NodeId node, std::string_view name) {
  assert(member_names_.find(node) == member_names_.end());
  member_names_.emplace(node, std::string(name));
  for (int replica = 0; replica < vnodes_; ++replica) {
    const std::string point_name = std::string(name) + "#" + std::to_string(replica);
    ring_.emplace(Md5::digest64(point_name), node);
  }
}

void ConsistentHashRing::remove_member(NodeId node) {
  const auto it = member_names_.find(node);
  if (it == member_names_.end()) return;
  for (int replica = 0; replica < vnodes_; ++replica) {
    const std::string point_name = it->second + "#" + std::to_string(replica);
    ring_.erase(Md5::digest64(point_name));
  }
  member_names_.erase(it);
}

NodeId ConsistentHashRing::owner(ObjectId oid) const noexcept {
  assert(!ring_.empty());
  const std::uint64_t point = fnv1a64_u64(oid);
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace adc::hash
