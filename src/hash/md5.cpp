#include "hash/md5.h"

#include <cstring>

namespace adc::hash {
namespace {

constexpr std::uint32_t kInit[4] = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};

// Per-round left-rotation amounts (RFC 1321, Section 3.4).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu, 0x4787c62au,
    0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu, 0xffff5bb1u, 0x895cd7beu,
    0x6b901122u, 0xfd987193u, 0xa679438eu, 0x49b40821u, 0xf61e2562u, 0xc040b340u,
    0x265e5a51u, 0xe9b6c7aau, 0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u,
    0x21e1cde6u, 0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u, 0xfde5380cu,
    0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u, 0x289b7ec6u, 0xeaa127fau,
    0xd4ef3085u, 0x04881d05u, 0xd9d4d039u, 0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u,
    0xf4292244u, 0x432aff97u, 0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u,
    0xffeff47du, 0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

void Md5::reset() noexcept {
  std::memcpy(state_, kInit, sizeof(state_));
  total_len_ = 0;
  buffer_len_ = 0;
}

void Md5::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le32(block + 4 * i);

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];

  for (int i = 0; i < 64; ++i) {
    std::uint32_t f = 0;
    int g = 0;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t temp = d;
    d = c;
    c = b;
    b = b + rotl32(a + f + kSine[i] + m[g], kShift[i]);
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(const void* data, std::size_t len) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  total_len_ += len;

  if (buffer_len_ > 0) {
    const std::size_t need = 64 - buffer_len_;
    const std::size_t take = len < need ? len : need;
    std::memcpy(buffer_ + buffer_len_, bytes, take);
    buffer_len_ += take;
    bytes += take;
    len -= take;
    if (buffer_len_ == 64) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }

  while (len >= 64) {
    process_block(bytes);
    bytes += 64;
    len -= 64;
  }

  if (len > 0) {
    std::memcpy(buffer_, bytes, len);
    buffer_len_ = len;
  }
}

Md5::Digest Md5::finish() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;

  // Padding: 0x80 then zeros until length ≡ 56 (mod 64), then 64-bit length.
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t pad_len =
      buffer_len_ < 56 ? 56 - buffer_len_ : 120 - buffer_len_;
  update(kPad, pad_len);

  std::uint8_t length_bytes[8];
  store_le32(length_bytes, static_cast<std::uint32_t>(bit_len));
  store_le32(length_bytes + 4, static_cast<std::uint32_t>(bit_len >> 32));
  // update() counts these 8 bytes into total_len_, but total_len_ is no
  // longer consulted after this point.
  update(length_bytes, 8);

  Digest out{};
  for (int i = 0; i < 4; ++i) store_le32(out.data() + 4 * i, state_[i]);
  return out;
}

Md5::Digest Md5::digest(std::string_view s) noexcept {
  Md5 md5;
  md5.update(s);
  return md5.finish();
}

std::string Md5::hex(const Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint8_t byte : d) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

std::uint64_t Md5::digest64(std::string_view s) noexcept {
  const Digest d = digest(s);
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | d[static_cast<std::size_t>(i)];
  return out;
}

}  // namespace adc::hash
