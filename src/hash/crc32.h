// CRC-32 (IEEE 802.3 polynomial, reflected) — used for trace-file
// checksumming and available as an alternative URL mixer.
#pragma once

#include <cstdint>
#include <string_view>

namespace adc::hash {

/// CRC of a buffer, starting from `seed` (pass the previous CRC to chain).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0) noexcept;

inline std::uint32_t crc32(std::string_view s, std::uint32_t seed = 0) noexcept {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace adc::hash
