#include "hash/crc32.h"

#include <array>

namespace adc::hash {
namespace {

constexpr std::uint32_t kPoly = 0xedb88320u;  // reflected 0x04C11DB7

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace adc::hash
