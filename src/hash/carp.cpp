#include "hash/carp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace adc::hash {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

std::uint32_t carp_url_hash(std::string_view url) noexcept {
  std::uint32_t hash = 0;
  for (char c : url) {
    hash += rotl32(hash, 19) + static_cast<std::uint8_t>(c);
  }
  return hash;
}

std::uint32_t carp_member_hash(std::string_view proxy_name) noexcept {
  std::uint32_t hash = 0;
  for (char c : proxy_name) {
    hash += rotl32(hash, 19) + static_cast<std::uint8_t>(c);
  }
  hash += hash * 0x62531965u;
  return rotl32(hash, 21);
}

std::uint32_t carp_combine(std::uint32_t url_hash, std::uint32_t member_hash) noexcept {
  std::uint32_t combined = url_hash ^ member_hash;
  combined += combined * 0x62531965u;
  return rotl32(combined, 21);
}

CarpArray::CarpArray(std::vector<Member> members) : members_(std::move(members)) {
  member_hashes_.reserve(members_.size());
  for (const auto& m : members_) member_hashes_.push_back(carp_member_hash(m.name));

  // Load-factor multipliers per the draft: sort by load factor ascending,
  // compute cumulative products so a member with k times the load factor
  // receives k times the URL space in expectation.
  const std::size_t n = members_.size();
  multipliers_.assign(n, 1.0);
  if (n == 0) return;

  double total = 0.0;
  for (const auto& m : members_) total += m.load_factor;
  assert(total > 0.0);

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return members_[a].load_factor < members_[b].load_factor;
  });

  // X_1 = (n * p_1)^(1/n); X_k derived recursively (draft section 3.4).
  std::vector<double> x(n, 1.0);
  const double p1 = members_[order[0]].load_factor / total;
  x[0] = std::pow(static_cast<double>(n) * p1, 1.0 / static_cast<double>(n));
  double product = x[0];
  double prev_p = p1;
  for (std::size_t k = 1; k < n; ++k) {
    const double pk = members_[order[k]].load_factor / total;
    const double nk = static_cast<double>(n - k);
    double xk = (nk * (pk - prev_p)) / product;
    xk += std::pow(x[k - 1], nk);
    xk = std::pow(xk, 1.0 / nk);
    x[k] = xk;
    product *= xk;
    prev_p = pk;
  }
  for (std::size_t k = 0; k < n; ++k) multipliers_[order[k]] = x[k];
}

std::size_t CarpArray::select(std::uint32_t url_hash) const noexcept {
  assert(!members_.empty());
  std::size_t best = 0;
  double best_score = -1.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const std::uint32_t combined = carp_combine(url_hash, member_hashes_[i]);
    const double score = static_cast<double>(combined) * multipliers_[i];
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

std::size_t CarpArray::owner_index(std::string_view url) const noexcept {
  return select(carp_url_hash(url));
}

NodeId CarpArray::owner(std::string_view url) const noexcept {
  return members_[owner_index(url)].node;
}

std::size_t CarpArray::owner_index(ObjectId oid) const noexcept {
  // Fold the 64-bit id into the 32-bit URL-hash domain.
  const auto folded = static_cast<std::uint32_t>(oid ^ (oid >> 32));
  return select(folded);
}

NodeId CarpArray::owner(ObjectId oid) const noexcept {
  return members_[owner_index(oid)].node;
}

}  // namespace adc::hash
