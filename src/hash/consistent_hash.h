// Consistent hashing ring (Karger et al., STOC '97) with virtual nodes.
//
// Provided as an additional hashing baseline (the paper cites consistent
// hashing alongside CARP) and for the ablation comparing allocation schemes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/types.h"

namespace adc::hash {

class ConsistentHashRing {
 public:
  /// `vnodes` replicas per member smooth the key distribution.
  explicit ConsistentHashRing(int vnodes = 64) : vnodes_(vnodes) {}

  void add_member(NodeId node, std::string_view name);
  void remove_member(NodeId node);

  std::size_t member_count() const noexcept { return member_names_.size(); }
  bool empty() const noexcept { return ring_.empty(); }

  /// Owner of an object id: first ring point clockwise from hash(oid).
  NodeId owner(ObjectId oid) const noexcept;

  /// Number of ring points (for tests).
  std::size_t ring_size() const noexcept { return ring_.size(); }

 private:
  int vnodes_;
  std::map<std::uint64_t, NodeId> ring_;
  std::map<NodeId, std::string> member_names_;
};

}  // namespace adc::hash
