// Rendezvous (highest-random-weight) hashing, with weighted variant.
//
// Third allocation baseline for the scheme-comparison ablation: every
// member scores each key and the highest score wins, giving minimal
// disruption on membership change without a ring structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace adc::hash {

class RendezvousHash {
 public:
  struct Member {
    NodeId node = kInvalidNode;
    std::uint64_t salt = 0;  // derived from the member name
    double weight = 1.0;
  };

  void add_member(NodeId node, std::string_view name, double weight = 1.0);
  void remove_member(NodeId node);

  std::size_t member_count() const noexcept { return members_.size(); }
  bool empty() const noexcept { return members_.empty(); }

  /// Owner of an object id; requires a non-empty membership.
  NodeId owner(ObjectId oid) const noexcept;

 private:
  std::vector<Member> members_;
};

}  // namespace adc::hash
