// FNV-1a hashing (32- and 64-bit) — the cheap string hash used on hot
// paths where cryptographic mixing is unnecessary.
#pragma once

#include <cstdint>
#include <string_view>

namespace adc::hash {

constexpr std::uint64_t kFnv64Offset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnv64Prime = 0x100000001b3ULL;
constexpr std::uint32_t kFnv32Offset = 0x811c9dc5u;
constexpr std::uint32_t kFnv32Prime = 0x01000193u;

constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = kFnv64Offset;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnv64Prime;
  }
  return h;
}

constexpr std::uint32_t fnv1a32(std::string_view s) noexcept {
  std::uint32_t h = kFnv32Offset;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnv32Prime;
  }
  return h;
}

/// FNV-1a over the bytes of an integer (little-endian), for hashing ids.
constexpr std::uint64_t fnv1a64_u64(std::uint64_t value) noexcept {
  std::uint64_t h = kFnv64Offset;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= kFnv64Prime;
  }
  return h;
}

}  // namespace adc::hash
