#include "hash/rendezvous.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hash/fnv.h"
#include "hash/md5.h"

namespace adc::hash {

void RendezvousHash::add_member(NodeId node, std::string_view name, double weight) {
  assert(weight > 0.0);
  members_.push_back(Member{node, Md5::digest64(name), weight});
}

void RendezvousHash::remove_member(NodeId node) {
  members_.erase(std::remove_if(members_.begin(), members_.end(),
                                [node](const Member& m) { return m.node == node; }),
                 members_.end());
}

NodeId RendezvousHash::owner(ObjectId oid) const noexcept {
  assert(!members_.empty());
  NodeId best = members_.front().node;
  double best_score = -1.0;
  for (const Member& m : members_) {
    const std::uint64_t mixed = fnv1a64_u64(oid ^ m.salt);
    // Weighted rendezvous (logarithm method): score = -w / ln(u),
    // u uniform in (0, 1) derived from the mixed hash.
    const double u = (static_cast<double>(mixed >> 11) + 0.5) * 0x1.0p-53;
    const double score = -m.weight / std::log(u);
    if (score > best_score) {
      best_score = score;
      best = m.node;
    }
  }
  return best;
}

}  // namespace adc::hash
