// Cache Array Routing Protocol (CARP) v1.1 membership hashing.
//
// Implements the hash functions of the CARP Internet-Draft (Cohen, Phadnis,
// Valloppillil, Ross, 1997) that the paper uses as its hashing baseline:
// a rotate-add URL hash, a scrambled member-proxy hash, the XOR+scramble
// combination, and highest-score owner selection with optional load
// factors.  Deterministic across platforms (pure 32-bit arithmetic).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace adc::hash {

/// Rotate-add hash over a URL (draft section 3.1).
std::uint32_t carp_url_hash(std::string_view url) noexcept;

/// Member proxy hash: rotate-add over the name plus a final scramble
/// (draft section 3.2).
std::uint32_t carp_member_hash(std::string_view proxy_name) noexcept;

/// Combines a URL hash with a member hash (draft section 3.3).
std::uint32_t carp_combine(std::uint32_t url_hash, std::uint32_t member_hash) noexcept;

/// A CARP hash array: a fixed membership of proxies with relative load
/// factors.  `owner()` returns the member with the highest combined score
/// for a URL; ties break toward the lower index (deterministic).
class CarpArray {
 public:
  struct Member {
    std::string name;
    NodeId node = kInvalidNode;
    double load_factor = 1.0;  // relative capacity share
  };

  CarpArray() = default;

  /// Builds the array; load factors are normalized internally following the
  /// draft's multiplicative-correction scheme.
  explicit CarpArray(std::vector<Member> members);

  std::size_t size() const noexcept { return members_.size(); }
  bool empty() const noexcept { return members_.empty(); }
  const Member& member(std::size_t i) const noexcept { return members_[i]; }

  /// Index of the owning member for a URL; requires a non-empty array.
  std::size_t owner_index(std::string_view url) const noexcept;
  NodeId owner(std::string_view url) const noexcept;

  /// Owner for a pre-hashed object id (the simulation's hot path): the id
  /// stands in for the URL hash.
  std::size_t owner_index(ObjectId oid) const noexcept;
  NodeId owner(ObjectId oid) const noexcept;

 private:
  std::size_t select(std::uint32_t url_hash) const noexcept;

  std::vector<Member> members_;
  std::vector<std::uint32_t> member_hashes_;
  std::vector<double> multipliers_;  // normalized load-factor multipliers
};

}  // namespace adc::hash
