// TCP load generator: the live-runtime counterpart of proxy::Client.
//
// Connects to every entry proxy of a running adcd cluster, announces
// itself with HELLO (so CARP's owner-to-client direct replies can route),
// and replays a workload trace closed-loop with a fixed number of
// outstanding requests.  Accounting mirrors the simulator's client: a hit
// is a reply with proxy_hit set, hops arrive pre-counted by the daemons
// (one per transfer, the client-to-entry transfer included), and latency
// is wall microseconds from issue to reply, summarized by the same
// deterministic PercentileTracker the simulator reports with.
//
// The generator survives faults: a dead entry connection is classified
// (refused / reset / orderly close / write error), the entry goes through
// the shared capped-backoff health tracker and is redialed, and an
// optional per-request deadline reclaims slots whose replies were lost,
// so an injected-loss run completes instead of hanging.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fault/peer_health.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"
#include "sim/metrics.h"
#include "util/rng.h"
#include "util/types.h"

namespace adc::server {

enum class EntryChoice : std::uint8_t {
  kRoundRobin,
  kRandom,
};

struct LoadGenConfig {
  NodeId client_id = 0;

  /// Entry proxies by node id; requests spread across all of them.
  std::map<NodeId, net::Endpoint> proxies;

  int concurrency = 4;
  EntryChoice entry = EntryChoice::kRoundRobin;
  std::uint64_t seed = 1;

  /// Abort when no reply arrives for this long (a wedged cluster must not
  /// hang the test suite).  <= 0 disables.
  int idle_timeout_ms = 30000;

  /// Per-request deadline (<= 0 disables).  An expired request counts as
  /// failed and frees its concurrency slot, so lost messages cannot stall
  /// the closed loop.  A reply arriving after its deadline is ignored.
  int request_timeout_ms = 0;

  /// Reconnect backoff for entries whose connection died.
  fault::PeerHealth::Config health;
};

/// Per-connection error accounting: how entry-proxy connections ended and
/// how often requests could not complete.
struct LoadGenErrors {
  std::uint64_t connect_refused = 0;  // redial attempts that failed outright
  std::uint64_t peer_resets = 0;      // connections lost to RST / hard errors
  std::uint64_t orderly_closes = 0;   // connections the peer closed cleanly
  std::uint64_t write_errors = 0;     // queued writes that killed the conn
  std::uint64_t corrupt_frames = 0;   // connections dropped on undecodable data
  std::uint64_t reconnects = 0;       // a down entry came back

  std::uint64_t total_conn_failures() const noexcept {
    return connect_refused + peer_resets + write_errors + corrupt_frames;
  }
  std::string text() const;
};

/// The client-side membership view: the generator runs no failure
/// detector, but its health tracker sees the same evidence one would
/// (connect failures, resets, reconnects), so the final report grades each
/// entry the way SWIM would — alive (no failure streak), suspect (a short
/// streak), dead (a streak past the suspicion threshold).
struct EntryView {
  NodeId entry = kInvalidNode;
  int failure_streak = 0;  // consecutive failures at report time
  const char* state() const noexcept {
    if (failure_streak == 0) return "alive";
    return failure_streak <= kSuspectStreak ? "suspect" : "dead";
  }
  static constexpr int kSuspectStreak = 3;
};

struct LoadGenReport {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;             // per-request deadlines that expired
  std::uint64_t duplicate_replies = 0;  // replies for already-resolved requests
  std::uint64_t hits = 0;
  std::uint64_t total_hops = 0;

  /// Byte accounting from the reply stream (all zero while the cluster
  /// runs without the payload store): payload bytes over completed
  /// requests, the subset served from proxy caches, and the subset
  /// reconstructed by degraded reads after a member death.
  std::uint64_t bytes_completed = 0;
  std::uint64_t bytes_hit = 0;
  std::uint64_t bytes_recovered = 0;
  std::uint64_t degraded_reads = 0;

  /// Proactive re-stripe repair progress, summed over the cluster by the
  /// harness that owns the daemons (the generator itself sees only the
  /// request stream, so a standalone adc_loadgen reports zeros; cluster
  /// tests fill these from NodeDaemon::hosted_tier()).
  std::uint64_t stripes_healed = 0;
  std::uint64_t repair_bytes = 0;
  std::uint64_t repair_rounds = 0;

  double wall_seconds = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_p999_us = 0.0;
  bool timed_out = false;
  LoadGenErrors errors;

  /// Requests issued per entry proxy, for the same max/min fairness ratio
  /// the simulator reports: a hash-flood replay shows up as one entry (or,
  /// with CARP direct replies, one owner) absorbing most of the traffic.
  std::map<NodeId, std::uint64_t> entry_requests;

  /// Payload bytes of completed requests, attributed to the entry proxy
  /// each request was issued through (empty while the store is off).
  /// json() derives per-entry bytes/s from these and wall_seconds — the
  /// observable an egress-paced cluster caps.
  std::map<NodeId, std::uint64_t> entry_bytes;

  /// Entry proxies graded by observed health, plus the count of up/down
  /// transitions this run saw — the client-side analogue of a membership
  /// epoch.
  std::vector<EntryView> entry_views;
  std::uint64_t view_epoch = 0;

  double hit_rate() const noexcept {
    return completed == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(completed);
  }
  double failure_rate() const noexcept {
    const std::uint64_t resolved = completed + failed;
    return resolved == 0 ? 0.0 : static_cast<double>(failed) / static_cast<double>(resolved);
  }
  double mean_hops() const noexcept {
    return completed == 0 ? 0.0
                          : static_cast<double>(total_hops) / static_cast<double>(completed);
  }
  double throughput() const noexcept {
    return wall_seconds <= 0.0 ? 0.0 : static_cast<double>(completed) / wall_seconds;
  }
  double byte_hit_rate() const noexcept {
    return bytes_completed == 0
               ? 0.0
               : static_cast<double>(bytes_hit) / static_cast<double>(bytes_completed);
  }
  double bytes_per_second() const noexcept {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(bytes_completed) / wall_seconds;
  }
  /// Max/min ratio over entry_requests (see sim::MetricsSummary).
  double entry_fairness() const noexcept;

  std::string text() const;

  /// Machine-readable artifact: one flat JSON object whose header names
  /// the workload that produced it, so a CI upload is self-describing.
  std::string json(std::string_view workload) const;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGenConfig config);
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Connects and HELLOs to every configured proxy (with startup retries).
  bool connect(std::string* error);

  /// Replays `objects` and blocks until every request resolved — completed
  /// or expired — or the idle timeout fired.  connect() must have
  /// succeeded.  Counters reset per call, so a harness can replay two
  /// phases through one generator and measure them separately.
  LoadGenReport run(const std::vector<ObjectId>& objects);

 private:
  bool issue_next();
  void expire_overdue();
  NodeId pick_entry();

  /// Usable fd for an entry: the live route, or a fresh backoff-gated
  /// redial.  -1 while the entry is down.
  int entry_fd(NodeId entry);

  void on_conn_event(int fd, bool readable, bool writable);
  void on_reply(const sim::Message& msg);

  /// Classifies a dead connection, records the failure against its entry,
  /// and forgets it.  Outstanding requests routed over it resolve via the
  /// request timeout.
  void conn_died(int fd, net::Conn::Io io);

  LoadGenConfig config_;
  util::Rng rng_;
  std::vector<NodeId> entries_;  // sorted proxy ids, for round-robin order
  std::size_t cursor_ = 0;

  net::EventLoop loop_;
  std::map<int, std::unique_ptr<net::Conn>> conns_;
  std::map<NodeId, int> routes_;
  fault::PeerHealth health_;

  const std::vector<ObjectId>* objects_ = nullptr;
  std::size_t next_index_ = 0;
  /// Never reset: request ids must stay unique across run() calls, or a
  /// straggler reply from a previous phase could resolve a new request.
  std::uint64_t lifetime_issued_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_requests_ = 0;
  std::uint64_t duplicate_replies_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t total_hops_ = 0;
  std::uint64_t bytes_completed_ = 0;
  std::uint64_t bytes_hit_ = 0;
  std::uint64_t bytes_recovered_ = 0;
  std::uint64_t degraded_reads_ = 0;
  std::map<NodeId, std::uint64_t> entry_requests_;
  std::map<NodeId, std::uint64_t> entry_bytes_;
  sim::PercentileTracker latency_us_;
  LoadGenErrors errors_;
  std::uint64_t view_epoch_ = 0;  // entry up/down transitions this run

  /// In-flight requests: deadline is a microsecond steady-clock stamp
  /// (INT64_MAX when the per-request timeout is off); entry is the proxy
  /// the request was issued through, for per-entry byte attribution.
  struct Outstanding {
    std::int64_t deadline = 0;
    NodeId entry = kInvalidNode;
  };
  std::unordered_map<RequestId, Outstanding> outstanding_;
};

}  // namespace adc::server
