// TCP load generator: the live-runtime counterpart of proxy::Client.
//
// Connects to every entry proxy of a running adcd cluster, announces
// itself with HELLO (so CARP's owner-to-client direct replies can route),
// and replays a workload trace closed-loop with a fixed number of
// outstanding requests.  Accounting mirrors the simulator's client: a hit
// is a reply with proxy_hit set, hops arrive pre-counted by the daemons
// (one per transfer, the client-to-entry transfer included), and latency
// is wall microseconds from issue to reply, summarized by the same
// deterministic PercentileTracker the simulator reports with.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"
#include "sim/metrics.h"
#include "util/rng.h"
#include "util/types.h"

namespace adc::server {

enum class EntryChoice : std::uint8_t {
  kRoundRobin,
  kRandom,
};

struct LoadGenConfig {
  NodeId client_id = 0;

  /// Entry proxies by node id; requests spread across all of them.
  std::map<NodeId, net::Endpoint> proxies;

  int concurrency = 4;
  EntryChoice entry = EntryChoice::kRoundRobin;
  std::uint64_t seed = 1;

  /// Abort when no reply arrives for this long (a wedged cluster must not
  /// hang the test suite).  <= 0 disables.
  int idle_timeout_ms = 30000;
};

struct LoadGenReport {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t hits = 0;
  std::uint64_t total_hops = 0;
  double wall_seconds = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  bool timed_out = false;

  double hit_rate() const noexcept {
    return completed == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(completed);
  }
  double mean_hops() const noexcept {
    return completed == 0 ? 0.0
                          : static_cast<double>(total_hops) / static_cast<double>(completed);
  }
  double throughput() const noexcept {
    return wall_seconds <= 0.0 ? 0.0 : static_cast<double>(completed) / wall_seconds;
  }

  std::string text() const;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGenConfig config);
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  /// Connects and HELLOs to every configured proxy (with startup retries).
  bool connect(std::string* error);

  /// Replays `objects` and blocks until every request completed (or the
  /// idle timeout fired).  connect() must have succeeded.
  LoadGenReport run(const std::vector<ObjectId>& objects);

 private:
  void issue_next();
  NodeId pick_entry();
  void on_conn_event(int fd, bool readable, bool writable);
  void on_reply(const sim::Message& msg);

  LoadGenConfig config_;
  util::Rng rng_;
  std::vector<NodeId> entries_;  // sorted proxy ids, for round-robin order
  std::size_t cursor_ = 0;

  net::EventLoop loop_;
  std::map<int, std::unique_ptr<net::Conn>> conns_;
  std::map<NodeId, int> routes_;

  const std::vector<ObjectId>* objects_ = nullptr;
  std::size_t next_index_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t total_hops_ = 0;
  sim::PercentileTracker latency_us_;
  bool failed_ = false;
};

}  // namespace adc::server
