// adcd — one live cluster node.
//
// Hosts a single protocol agent (ADC proxy, CARP proxy, or the origin
// server) over the TCP wire protocol.  A five-proxy cluster is five adcd
// processes plus one origin, each told about the others with --peer:
//
//   ./adcd --id 5 --role origin --port 7005 &
//   for i in 0 1 2 3 4; do
//     ./adcd --id $i --port 700$i --origin 5
//       --peer 0=127.0.0.1:7000 --peer 1=127.0.0.1:7001
//       --peer 2=127.0.0.1:7002 --peer 3=127.0.0.1:7003
//       --peer 4=127.0.0.1:7004 --peer 5=127.0.0.1:7005 &
//   done
//   (one line per process; wrapped here for readability)
//
// SIGUSR1 dumps stats to stderr; SIGINT/SIGTERM dump and exit cleanly.
#include <algorithm>
#include <csignal>
#include <iostream>
#include <string>

#include "server/daemon.h"
#include "util/cli.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;

void on_terminate(int) { g_stop = 1; }
void on_usr1(int) { g_dump = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace adc;

  util::CliParser cli("adcd — live ADC/CARP cluster node daemon.");
  cli.option("id", "0", "this node's id")
      .option("role", "adc", "adc | carp | origin")
      .option("host", "127.0.0.1", "listen address")
      .option("port", "0", "listen port (0 = ephemeral, printed on stdout)")
      .option("origin", "-1", "node id of the origin server (required for proxies)")
      .option("single", "20000", "ADC single-table entries")
      .option("multiple", "20000", "ADC multiple-table entries")
      .option("caching", "10000", "ADC caching-table entries")
      .option("max-forwards", "8", "ADC search cutoff")
      .option("cache-capacity", "10000", "CARP per-proxy LRU capacity")
      .option("seed", "1", "random seed (perturbed by --id per daemon)")
      .option("fault-drop", "0", "chaos: probability of dropping each outbound message")
      .option("fault-dup", "0", "chaos: probability of duplicating each outbound message")
      .option("fault-seed", "64023", "chaos: seed of the fault layer's private RNG")
      .option("membership", "0", "1 = enable the SWIM failure detector + anti-entropy")
      .option("swim-ping-ms", "1000", "SWIM probe interval in milliseconds")
      .option("swim-suspect-ms", "3000", "SWIM suspicion timeout in milliseconds")
      .option("repair-ms", "2000", "anti-entropy round interval in milliseconds")
      .option("payload", "0", "1 = enable the payload store (bytes on every reply)")
      .option("payload-seed", "97", "payload universe seed; must match cluster-wide")
      .option("payload-budget", "0", "per-proxy cache byte budget (0 = count-only)")
      .option("cache-policy", "lru",
              "CARP eviction policy: lru | lfu | gdsf | size-lru")
      .option("erasure", "0", "1 = enable the erasure tier (needs --payload 1)")
      .option("erasure-k", "3", "erasure data chunks per stripe (RDP k)")
      .option("erasure-dir-budget", "0", "chunk-directory byte budget (0 = unlimited)")
      .option("restripe", "0",
              "1 = proactive re-stripe repair after confirmed deaths (needs "
              "--erasure 1 and --membership 1)")
      .option("repair-budget-bytes", "262144",
              "chunk bytes a repair leader may offer per anti-entropy round "
              "(0 = unlimited)")
      .option("repair-max-attempts", "5",
              "offers per repair item before it is abandoned")
      .option("egress-bytes-per-sec", "0",
              "token-bucket egress cap in accounted bytes/sec (0 = unpaced)")
      .option("egress-burst-bytes", "0",
              "egress bucket capacity in bytes (0 = rate/20, floor 8 KiB)")
      .multi_option("peer", "cluster member as id=host:port; the origin too");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const auto& options = cli.config();

  server::DaemonConfig config;
  config.node_id = static_cast<NodeId>(options.get_int("id", 0));
  if (!server::parse_daemon_role(options.get_string("role", "adc"), &config.role)) {
    std::cerr << "unknown role '" << options.get_string("role", "") << "'\n";
    return 1;
  }
  config.listen.host = options.get_string("host", "127.0.0.1");
  config.listen.port = static_cast<std::uint16_t>(options.get_int("port", 0));
  config.origin_id = static_cast<NodeId>(options.get_int("origin", -1));
  config.adc.single_table_size = static_cast<std::size_t>(options.get_int("single", 20000));
  config.adc.multiple_table_size = static_cast<std::size_t>(options.get_int("multiple", 20000));
  config.adc.caching_table_size = static_cast<std::size_t>(options.get_int("caching", 10000));
  config.adc.max_forwards = static_cast<int>(options.get_int("max-forwards", 8));
  config.carp_cache_capacity =
      static_cast<std::size_t>(options.get_int("cache-capacity", 10000));
  config.seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  config.fault_plan.drop_prob = options.get_double("fault-drop", 0.0);
  config.fault_plan.dup_prob = options.get_double("fault-dup", 0.0);
  config.fault_plan.seed = static_cast<std::uint64_t>(options.get_int("fault-seed", 0x0fa17)) +
                           static_cast<std::uint64_t>(config.node_id);
  config.carp_policy = cache::parse_policy(options.get_string("cache-policy", "lru"));

  if (options.get_int("payload", 0) != 0) {
    config.payload.enabled = true;
    config.payload.seed = static_cast<std::uint64_t>(options.get_int("payload-seed", 97));
    config.payload.byte_budget =
        static_cast<std::uint64_t>(options.get_int("payload-budget", 0));
    if (options.get_int("erasure", 0) != 0) {
      config.payload.erasure.enabled = true;
      config.payload.erasure.data_chunks = static_cast<int>(options.get_int("erasure-k", 3));
      config.payload.erasure.directory_budget =
          static_cast<std::uint64_t>(options.get_int("erasure-dir-budget", 0));
      config.payload.erasure.restripe = options.get_int("restripe", 0) != 0;
      config.payload.erasure.repair_bytes_per_round =
          static_cast<std::uint64_t>(options.get_int("repair-budget-bytes", 256 * 1024));
      config.payload.erasure.repair_max_attempts =
          static_cast<int>(options.get_int("repair-max-attempts", 5));
    } else if (options.get_int("restripe", 0) != 0) {
      std::cerr << "--restripe 1 needs --erasure 1\n";
      return 1;
    }
  } else if (options.get_int("erasure", 0) != 0) {
    std::cerr << "--erasure 1 needs --payload 1\n";
    return 1;
  }
  if (options.get_int("restripe", 0) != 0 && options.get_int("membership", 0) == 0) {
    std::cerr << "--restripe 1 needs --membership 1 (deaths come from SWIM)\n";
    return 1;
  }

  config.egress_bytes_per_sec =
      static_cast<std::uint64_t>(options.get_int("egress-bytes-per-sec", 0));
  config.egress_burst_bytes =
      static_cast<std::uint64_t>(options.get_int("egress-burst-bytes", 0));

  if (options.get_int("membership", 0) != 0) {
    // The daemon's clock runs in microseconds; flags are milliseconds at
    // live scale (seconds-order detection, vs the simulator's sub-second
    // virtual ticks).
    const SimTime ping_us = options.get_int("swim-ping-ms", 1000) * 1000;
    const SimTime suspect_us = options.get_int("swim-suspect-ms", 3000) * 1000;
    config.membership.swim.enabled = true;
    config.membership.swim.ping_interval = ping_us;
    config.membership.swim.ack_timeout = ping_us / 3;
    config.membership.swim.indirect_timeout = ping_us / 3;
    config.membership.swim.suspect_timeout = suspect_us;
    config.membership.swim.dead_probe_interval = 2 * suspect_us;
    config.membership.swim.seed = config.seed;
    config.membership.repair.interval = options.get_int("repair-ms", 2000) * 1000;
  }

  for (const std::string& spec : cli.values("peer")) {
    NodeId id = kInvalidNode;
    net::Endpoint endpoint;
    if (!net::parse_peer_spec(spec, &id, &endpoint, &error)) {
      std::cerr << error << '\n';
      return 1;
    }
    if (id != config.node_id) config.peers[id] = endpoint;
    // Membership = every peer that is not the origin, plus ourselves.
    if (id != config.origin_id) config.proxy_ids.push_back(id);
  }
  if (config.role != server::DaemonRole::kOrigin) {
    bool listed = false;
    for (const NodeId id : config.proxy_ids) listed = listed || id == config.node_id;
    if (!listed) config.proxy_ids.push_back(config.node_id);
    std::sort(config.proxy_ids.begin(), config.proxy_ids.end());
    if (config.origin_id < 0) {
      std::cerr << "proxies need --origin\n";
      return 1;
    }
  }

  server::NodeDaemon daemon(std::move(config));
  const std::uint16_t port = daemon.bind(&error);
  if (port == 0) {
    std::cerr << "bind failed: " << error << '\n';
    return 1;
  }
  std::cout << "adcd node " << daemon.node_id() << " listening on port " << port << std::endl;

  std::signal(SIGINT, on_terminate);
  std::signal(SIGTERM, on_terminate);
  std::signal(SIGUSR1, on_usr1);
  std::signal(SIGPIPE, SIG_IGN);

  daemon.set_tick([&daemon]() {
    if (g_dump != 0) {
      g_dump = 0;
      std::cerr << daemon.stats_text();
    }
    if (g_stop != 0) daemon.stop();
  });
  daemon.run();

  std::cerr << daemon.stats_text();
  return 0;
}
