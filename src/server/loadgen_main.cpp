// adc_loadgen — replay a workload trace against a running adcd cluster.
//
//   ./adc_loadgen --peer 0=127.0.0.1:7000 ... --peer 4=127.0.0.1:7004
//       --scale 0.01 --concurrency 4        (one command line)
//
// Reports hit rate, mean hops, throughput, latency percentiles (p50..p99.9)
// and the per-entry fairness ratio; hit-rate and mean-hops numbers are
// directly comparable to a simulator run over the same trace (see
// docs/RUNTIME.md).
//
// Besides the PolyMix trace, --workload selects the hostile scenarios from
// src/workload/adversarial.h — hash-flood (keys mined onto one CARP/ring/
// HRW owner), flash-crowd (one cold URL ramping to a configurable share of
// traffic) and diurnal (working-set rotation) — so the same adversarial
// suite the simulator benches run can be replayed against a live cluster.
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "server/loadgen.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "workload/adversarial.h"
#include "workload/polygraph.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace adc;

  util::CliParser cli("adc_loadgen — TCP load generator for an adcd cluster.");
  cli.option("client-id", "6", "this client's node id (must not collide with daemons)")
      .option("trace", "", "replay a saved trace file (.txt or binary)")
      .option("workload", "polygraph", "generated workload: polygraph | flood | flash | diurnal")
      .option("scale", "0.01", "generator scale vs the paper's 3.99M requests")
      .option("trace-seed", "42", "generator seed")
      .option("flood-scheme", "carp", "flood: owner map to attack: carp | ring | hrw")
      .option("flood-victim", "0", "flood: proxy index the mined keys collide onto")
      .option("flood-fraction", "0.8", "flood: fraction of requests aimed at the victim")
      .option("flood-keys", "512", "flood: distinct mined keys in the flood set")
      .option("flash-peak", "0.3", "flash: crowd share of traffic once ramped")
      .option("flash-begin", "0.4", "flash: ramp start as a fraction of the trace")
      .option("flash-window", "0.1", "flash: ramp duration as a fraction of the trace")
      .option("diurnal-populations", "2", "diurnal: rotating client populations")
      .option("diurnal-cycles", "2", "diurnal: day/night cycles across the trace")
      .option("requests", "0", "truncate the trace to N requests (0 = all)")
      .option("concurrency", "4", "requests kept in flight")
      .option("entry", "rr", "entry proxy choice: rr | random")
      .option("seed", "1", "seed for --entry random")
      .option("idle-timeout", "30000", "abort after this many ms without a reply (0 = never)")
      .option("request-timeout", "0",
              "per-request deadline in ms; expired requests count as failed (0 = off)")
      .option("json", "", "also write the report as a JSON artifact to this path")
      .multi_option("peer", "entry proxy as id=host:port");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const auto& options = cli.config();

  // Flag hygiene: a workload-specific tuning flag paired with a workload
  // that ignores it is almost always a mistyped experiment, so fail loudly
  // instead of silently running something else.
  {
    const bool have_trace = !options.get_string("trace", "").empty();
    const std::string workload = options.get_string("workload", "polygraph");
    struct FlagGroup {
      const char* owner;  // the workload whose generator reads these flags
      std::vector<const char*> flags;
    };
    const std::vector<FlagGroup> groups = {
        {"flood", {"flood-scheme", "flood-victim", "flood-fraction", "flood-keys"}},
        {"flash", {"flash-peak", "flash-begin", "flash-window"}},
        {"diurnal", {"diurnal-populations", "diurnal-cycles"}},
    };
    for (const FlagGroup& group : groups) {
      for (const char* flag : group.flags) {
        if (!cli.given(flag)) continue;
        if (have_trace) {
          std::cerr << "--" << flag << " is a --workload " << group.owner
                    << " flag; it conflicts with --trace (a replayed trace file is "
                       "never regenerated)\n";
          return 1;
        }
        if (workload != group.owner) {
          std::cerr << "--" << flag << " only applies to --workload " << group.owner
                    << " (got --workload " << workload << ")\n";
          return 1;
        }
      }
    }
    if (have_trace && cli.given("workload")) {
      std::cerr << "--trace and --workload are mutually exclusive: a trace file "
                   "replays as-is\n";
      return 1;
    }
    if (have_trace && (cli.given("scale") || cli.given("trace-seed"))) {
      std::cerr << "--scale/--trace-seed configure the generator; they conflict "
                   "with --trace\n";
      return 1;
    }
  }

  server::LoadGenConfig config;
  config.client_id = static_cast<NodeId>(options.get_int("client-id", 6));
  config.concurrency = static_cast<int>(options.get_int("concurrency", 4));
  config.seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  config.idle_timeout_ms = static_cast<int>(options.get_int("idle-timeout", 30000));
  config.request_timeout_ms = static_cast<int>(options.get_int("request-timeout", 0));
  const std::string entry = options.get_string("entry", "rr");
  if (entry == "rr" || entry == "round-robin") {
    config.entry = server::EntryChoice::kRoundRobin;
  } else if (entry == "random") {
    config.entry = server::EntryChoice::kRandom;
  } else {
    std::cerr << "unknown --entry '" << entry << "'\n";
    return 1;
  }
  for (const std::string& spec : cli.values("peer")) {
    NodeId id = kInvalidNode;
    net::Endpoint endpoint;
    if (!net::parse_peer_spec(spec, &id, &endpoint, &error)) {
      std::cerr << error << '\n';
      return 1;
    }
    config.proxies[id] = endpoint;
  }
  if (config.proxies.empty()) {
    std::cerr << "at least one --peer is required\n" << cli.help_text();
    return 1;
  }

  workload::Trace trace;
  const std::string trace_path = options.get_string("trace", "");
  if (!trace_path.empty()) {
    const bool ok = util::ends_with(trace_path, ".txt")
                        ? workload::Trace::load_text(trace_path, &trace, &error)
                        : workload::Trace::load_binary(trace_path, &trace, &error);
    if (!ok) {
      std::cerr << "cannot load trace: " << error << '\n';
      return 1;
    }
  } else {
    const std::string workload = options.get_string("workload", "polygraph");
    const double scale = options.get_double("scale", 0.01);
    const auto seed = static_cast<std::uint64_t>(options.get_int("trace-seed", 42));
    // Hostile generators size themselves off the same 3.99M-request PolyMix
    // yardstick --scale already uses, so sim and live runs line up.
    const workload::PolygraphConfig paper_scale;
    const auto scaled_requests = static_cast<std::uint64_t>(
        scale * static_cast<double>(paper_scale.fill_requests + paper_scale.phase2_requests +
                                    paper_scale.phase3_requests));
    if (workload == "polygraph") {
      auto poly = workload::PolygraphConfig::scaled(scale);
      poly.seed = seed;
      trace = workload::generate_polygraph_trace(poly);
    } else if (workload == "flood") {
      workload::HashFloodConfig flood;
      const auto scheme = workload::parse_flood_scheme(options.get_string("flood-scheme", "carp"));
      if (!scheme) {
        std::cerr << "unknown --flood-scheme '" << options.get_string("flood-scheme", "carp")
                  << "' (carp | ring | hrw)\n";
        return 1;
      }
      flood.scheme = *scheme;
      flood.proxies = static_cast<int>(config.proxies.size());
      flood.victim = static_cast<int>(options.get_int("flood-victim", 0));
      flood.flood_fraction = options.get_double("flood-fraction", 0.8);
      flood.flood_keys = static_cast<std::uint64_t>(options.get_int("flood-keys", 512));
      flood.requests = scaled_requests;
      flood.seed = seed;
      trace = workload::generate_hash_flood_trace(flood);
    } else if (workload == "flash") {
      workload::FlashCrowdConfig flash;
      flash.requests = scaled_requests;
      flash.peak_fraction = options.get_double("flash-peak", 0.3);
      flash.ramp_begin = options.get_double("flash-begin", 0.4);
      flash.ramp_window = options.get_double("flash-window", 0.1);
      flash.seed = seed;
      trace = workload::generate_flash_crowd_trace(flash);
    } else if (workload == "diurnal") {
      workload::DiurnalConfig diurnal;
      diurnal.requests = scaled_requests;
      diurnal.populations = static_cast<std::uint64_t>(options.get_int("diurnal-populations", 2));
      diurnal.cycles = options.get_double("diurnal-cycles", 2);
      diurnal.seed = seed;
      trace = workload::generate_diurnal_trace(diurnal);
    } else {
      std::cerr << "unknown --workload '" << workload
                << "' (polygraph | flood | flash | diurnal)\n";
      return 1;
    }
  }
  std::vector<ObjectId> objects = trace.requests();
  const auto limit = static_cast<std::size_t>(options.get_int("requests", 0));
  if (limit != 0 && limit < objects.size()) objects.resize(limit);

  std::signal(SIGPIPE, SIG_IGN);

  server::LoadGenerator loadgen(std::move(config));
  if (!loadgen.connect(&error)) {
    std::cerr << error << '\n';
    return 1;
  }
  std::cout << "replaying " << objects.size() << " requests...\n";
  const server::LoadGenReport report = loadgen.run(objects);
  std::cout << report.text();

  const std::string json_path = options.get_string("json", "");
  if (!json_path.empty()) {
    // The artifact's header names its workload: a replayed trace file
    // reports as "trace", generated workloads by their generator name.
    const std::string workload_name =
        trace_path.empty() ? options.get_string("workload", "polygraph") : "trace";
    std::ofstream json_out(json_path);
    if (!json_out) {
      std::cerr << "cannot write JSON report to " << json_path << '\n';
      return 1;
    }
    json_out << report.json(workload_name);
    std::cout << "json report: " << json_path << "\n";
  }
  return report.timed_out ? 1 : 0;
}
