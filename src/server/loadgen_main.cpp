// adc_loadgen — replay a workload trace against a running adcd cluster.
//
//   ./adc_loadgen --peer 0=127.0.0.1:7000 ... --peer 4=127.0.0.1:7004
//       --scale 0.01 --concurrency 4        (one command line)
//
// Reports hit rate, mean hops, throughput and latency percentiles; the
// hit-rate and mean-hops numbers are directly comparable to a simulator
// run over the same trace (see docs/RUNTIME.md).
#include <csignal>
#include <iostream>
#include <string>

#include "server/loadgen.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "workload/polygraph.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace adc;

  util::CliParser cli("adc_loadgen — TCP load generator for an adcd cluster.");
  cli.option("client-id", "6", "this client's node id (must not collide with daemons)")
      .option("trace", "", "replay a saved trace file (.txt or binary)")
      .option("scale", "0.01", "no --trace: PolyMix scale vs the paper's 3.99M requests")
      .option("trace-seed", "42", "no --trace: PolyMix generator seed")
      .option("requests", "0", "truncate the trace to N requests (0 = all)")
      .option("concurrency", "4", "requests kept in flight")
      .option("entry", "rr", "entry proxy choice: rr | random")
      .option("seed", "1", "seed for --entry random")
      .option("idle-timeout", "30000", "abort after this many ms without a reply (0 = never)")
      .option("request-timeout", "0",
              "per-request deadline in ms; expired requests count as failed (0 = off)")
      .multi_option("peer", "entry proxy as id=host:port");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::cerr << error << '\n' << cli.help_text();
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  const auto& options = cli.config();

  server::LoadGenConfig config;
  config.client_id = static_cast<NodeId>(options.get_int("client-id", 6));
  config.concurrency = static_cast<int>(options.get_int("concurrency", 4));
  config.seed = static_cast<std::uint64_t>(options.get_int("seed", 1));
  config.idle_timeout_ms = static_cast<int>(options.get_int("idle-timeout", 30000));
  config.request_timeout_ms = static_cast<int>(options.get_int("request-timeout", 0));
  const std::string entry = options.get_string("entry", "rr");
  if (entry == "rr" || entry == "round-robin") {
    config.entry = server::EntryChoice::kRoundRobin;
  } else if (entry == "random") {
    config.entry = server::EntryChoice::kRandom;
  } else {
    std::cerr << "unknown --entry '" << entry << "'\n";
    return 1;
  }
  for (const std::string& spec : cli.values("peer")) {
    NodeId id = kInvalidNode;
    net::Endpoint endpoint;
    if (!net::parse_peer_spec(spec, &id, &endpoint, &error)) {
      std::cerr << error << '\n';
      return 1;
    }
    config.proxies[id] = endpoint;
  }
  if (config.proxies.empty()) {
    std::cerr << "at least one --peer is required\n" << cli.help_text();
    return 1;
  }

  workload::Trace trace;
  const std::string trace_path = options.get_string("trace", "");
  if (!trace_path.empty()) {
    const bool ok = util::ends_with(trace_path, ".txt")
                        ? workload::Trace::load_text(trace_path, &trace, &error)
                        : workload::Trace::load_binary(trace_path, &trace, &error);
    if (!ok) {
      std::cerr << "cannot load trace: " << error << '\n';
      return 1;
    }
  } else {
    auto poly = workload::PolygraphConfig::scaled(options.get_double("scale", 0.01));
    poly.seed = static_cast<std::uint64_t>(options.get_int("trace-seed", 42));
    trace = workload::generate_polygraph_trace(poly);
  }
  std::vector<ObjectId> objects = trace.requests();
  const auto limit = static_cast<std::size_t>(options.get_int("requests", 0));
  if (limit != 0 && limit < objects.size()) objects.resize(limit);

  std::signal(SIGPIPE, SIG_IGN);

  server::LoadGenerator loadgen(std::move(config));
  if (!loadgen.connect(&error)) {
    std::cerr << error << '\n';
    return 1;
  }
  std::cout << "replaying " << objects.size() << " requests...\n";
  const server::LoadGenReport report = loadgen.run(objects);
  std::cout << report.text();
  return report.timed_out ? 1 : 0;
}
