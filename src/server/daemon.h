// adcd: a node daemon hosting one protocol agent over TCP.
//
// NodeDaemon is the live-runtime implementation of sim::Transport: it owns
// exactly one sim::Node (an unmodified core::AdcProxy, the CARP baseline's
// proxy::HashingProxy, or the proxy::OriginServer), a listening socket, and
// lazily-established connections to its peers.  The agent code cannot tell
// whether it is running under the discrete-event Simulator or here — both
// deliver through Node::on_message and both increment Message::hops exactly
// once per transfer, so hit-rate and hop accounting agree across media.
//
// Frames carry the request's journey path: on every delivery the daemon
// extends the incoming path with its own id and stamps it onto each frame
// the delivery triggers, so a wire capture shows the full random walk and
// the backwarding return path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cache/policies.h"
#include "core/adc_config.h"
#include "fault/fault_plan.h"
#include "fault/faulty_network.h"
#include "fault/peer_health.h"
#include "membership/member_agent.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"
#include "sim/metrics.h"
#include "sim/node.h"
#include "sim/transport.h"
#include "store/payload.h"
#include "util/rng.h"
#include "util/types.h"

namespace adc::store {
class ErasureTier;
}

namespace adc::server {

enum class DaemonRole : std::uint8_t {
  kAdcProxy,   // core::AdcProxy
  kCarpProxy,  // proxy::HashingProxy over a CARP array of all proxies
  kOrigin,     // proxy::OriginServer
};

struct DaemonConfig {
  NodeId node_id = 0;
  DaemonRole role = DaemonRole::kAdcProxy;

  /// Listen address; port 0 binds an ephemeral port (bind() returns it).
  net::Endpoint listen;

  /// Other daemons by node id (proxies and the origin, not clients —
  /// clients announce themselves with HELLO when they connect).
  std::map<NodeId, net::Endpoint> peers;

  /// Full proxy membership including this node when it is a proxy; must be
  /// identical on every member (drives random forwarding and CARP).
  std::vector<NodeId> proxy_ids;
  NodeId origin_id = kInvalidNode;

  core::AdcConfig adc;
  std::size_t carp_cache_capacity = 10000;
  cache::Policy carp_policy = cache::Policy::kLru;

  std::uint64_t seed = 1;

  /// Chaos injection on this daemon's outbound sends.  Only the
  /// probabilistic drop/duplicate faults apply live — extra delay would
  /// need timers the poll loop does not keep, and crash windows are the
  /// operator's job (kill the process).  Zero plan (default) = no chaos.
  fault::FaultPlan fault_plan;

  /// Reconnect backoff parameters for peer-health tracking.
  fault::PeerHealth::Config health;

  /// SWIM failure detection + transition-gated anti-entropy, enabled via
  /// membership.swim.enabled (proxy roles only — the origin is not a
  /// member).  Timeouts are in this transport's clock, i.e. microseconds;
  /// adcd's --membership flag installs live-scale defaults (1s pings, 3s
  /// suspicion).  A confirmed death purges ADC mapping entries naming the
  /// silent peer (even with no traffic in flight) or rebuilds the CARP
  /// owner map; a rejoin reverses it.
  membership::MembershipConfig membership;

  /// Payload store (payload.enabled): the daemon derives the same synthetic
  /// object sizes the simulator uses, serializes a body sample + checksum
  /// into every payload-carrying frame, and verifies received bodies
  /// against its own derivation.  `payload.seed` must be identical
  /// cluster-wide or every received body reads as corrupt.  Proxy roles
  /// additionally get byte-budgeted caches and (payload.erasure.enabled)
  /// the degraded-read erasure tier over `proxy_ids`.
  store::PayloadConfig payload;

  /// Token-bucket egress pacing (0 = off): outbound frames are charged
  /// their *accounted* bytes — the larger of the frame's wire size and its
  /// payload_bytes, matching the byte accounting the simulator's link
  /// model and the loadgen's bytes/s both use — and queue behind the
  /// bucket when it runs dry.  SWIM frames bypass the queue: failure
  /// detection must not starve behind a payload backlog.  The live mirror
  /// of the sim's LinkConfig egress caps.
  std::uint64_t egress_bytes_per_sec = 0;

  /// Bucket capacity in bytes (0 = derived: egress_bytes_per_sec / 20,
  /// floor 8 KiB — 50ms of credit).  One oversized frame may overdraw the
  /// bucket into debt, so the cap bounds burstiness without blocking
  /// frames larger than the capacity.
  std::uint64_t egress_burst_bytes = 0;
};

struct DaemonStats {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t hellos = 0;
  std::uint64_t drops_unroutable = 0;  // sends to a node we cannot reach
  std::uint64_t drops_corrupt = 0;     // connections killed on bad frames
  std::uint64_t peer_resets = 0;       // connections lost to a hard reset / error
  std::uint64_t peer_closes = 0;       // connections closed in order
  std::uint64_t bodies_verified = 0;   // payload samples matching our derivation
  std::uint64_t body_verify_failures = 0;  // mismatched sample/checksum, frame dropped
  std::uint64_t payload_bytes_out = 0;     // sum of payload_bytes over sent frames
  std::uint64_t payload_bytes_in = 0;      // sum of payload_bytes over verified frames
  std::uint64_t egress_paced_frames = 0;   // frames that waited in the egress queue
  std::uint64_t egress_paced_bytes = 0;    // accounted bytes of those frames
  std::uint64_t egress_dropped_frames = 0; // paced frames whose target died queued
};

class NodeDaemon final : public sim::Transport {
 public:
  explicit NodeDaemon(DaemonConfig config);
  ~NodeDaemon() override;

  NodeDaemon(const NodeDaemon&) = delete;
  NodeDaemon& operator=(const NodeDaemon&) = delete;

  /// Binds the listener.  Returns the bound port, or 0 with a diagnostic
  /// in `error`.  Must be called before run().
  std::uint16_t bind(std::string* error);

  /// Replaces the peer endpoint map.  Peers are only dialed lazily from
  /// inside run(), so a harness may bind every daemon on an ephemeral port
  /// first and distribute the resulting map before any daemon runs.
  void set_peers(std::map<NodeId, net::Endpoint> peers) { config_.peers = std::move(peers); }

  /// Serves until stop().  `tick`, when set, runs every poll timeout
  /// (~500ms) on the loop thread — the signal-safe hook main() uses to
  /// turn a sig_atomic_t flag into a stats dump or shutdown.
  void run();
  void set_tick(std::function<void()> tick) { tick_ = std::move(tick); }

  /// Thread- and signal-safe.
  void stop() { loop_.stop(); }

  /// Human-readable stats: transport counters plus the hosted agent's own.
  std::string stats_text() const;

  const DaemonStats& stats() const noexcept { return stats_; }
  NodeId node_id() const noexcept { return config_.node_id; }
  sim::Node& hosted() noexcept { return *node_; }

  /// The hosted proxy's erasure tier, or nullptr (origin role, store or
  /// erasure disabled).  Loop thread only, like the stats.
  store::ErasureTier* hosted_tier() noexcept;
  const store::ErasureTier* hosted_tier() const noexcept {
    return const_cast<NodeDaemon*>(this)->hosted_tier();
  }

  /// Resilience counters (retries/reconnects/degraded fetches/table
  /// invalidations) merged with the injection side when a fault plan is
  /// active.
  sim::FaultCounters fault_stats() const;
  const fault::PeerHealth& peer_health() const noexcept { return health_; }

  /// Current membership epoch (confirmed deaths + joins), 0 when the
  /// detector is off.  Atomic so harnesses on other threads can poll for
  /// an epoch bump without racing the loop thread.
  std::uint64_t membership_epoch() const noexcept {
    return membership_epoch_.load(std::memory_order_acquire);
  }

  /// Re-stripe repair items still queued on the hosted tier, snapshotted
  /// by the loop every membership drive.  Atomic for the same reason as
  /// membership_epoch: a harness can await repair quiescence (backlog 0
  /// after a death was confirmed) without racing the loop thread.
  std::uint64_t restripe_backlog() const noexcept {
    return restripe_backlog_.load(std::memory_order_acquire);
  }

  /// The failure detector, or nullptr when membership is disabled.  Only
  /// safe to read from the loop thread (or after run() returned).
  const membership::SwimDetector* detector() const noexcept { return detector_.get(); }

  /// Egress-pacing introspection (loop thread only, like the stats).
  std::size_t egress_queue_depth() const noexcept { return egress_q_.size(); }
  std::uint64_t egress_queue_bytes() const noexcept { return egress_queued_bytes_; }
  double egress_tokens() const noexcept { return egress_tokens_; }

  /// Accounted bytes exchanged per peer (out: charged at queue-to-wire
  /// time; in: payload bytes of verified frames by sender).
  const std::map<NodeId, std::uint64_t>& peer_bytes_out() const noexcept {
    return peer_bytes_out_;
  }
  const std::map<NodeId, std::uint64_t>& peer_bytes_in() const noexcept {
    return peer_bytes_in_;
  }

  // --- sim::Transport ----------------------------------------------------
  void send(sim::Message msg) override;
  util::Rng& rng() noexcept override { return rng_; }
  SimTime now() const noexcept override;

 private:
  void make_node();
  void on_listener_readable();
  void on_conn_event(int fd, bool readable, bool writable);
  void drop_conn(int fd);
  void deliver(net::WireMessage wire);
  void flush_conn(int fd, net::Conn& conn);

  /// Connection that can reach `id`.  The first-ever dial to a configured
  /// peer retries for a few seconds (cluster startup ordering); later
  /// redials are single non-blocking attempts gated by the peer-health
  /// backoff.  -1 when the id is unreachable right now.
  int fd_for(NodeId id);

  /// Peer-health transitions: a peer observed down (dial/write/read
  /// failure) or back up.  Down transitions age out ADC mapping entries
  /// pointing at the dead peer so lookups stop chasing it.
  void note_peer_down(NodeId peer);
  void note_peer_up(NodeId peer);

  /// Classifies a dead connection's ending into reset/close counters and
  /// records the failure against any peer routed over it.
  void account_dead_conn(int fd, net::Conn::Io io);

  /// Detector callbacks (confirmed transitions) and the per-poll driver
  /// for probes, timeouts and repair rounds.
  void on_member_dead(NodeId peer);
  void on_member_joined(NodeId peer);
  void drive_membership();

  /// Fills `wire.body`/`wire.checksum` for payload-carrying frame kinds
  /// (replies get a body-pattern sample, chunk replies a chunk sample).
  /// No-op with the store disabled or for body-less kinds.
  void materialize_body(net::WireMessage& wire);

  /// Verifies a received frame's body sample against the local derivation.
  /// True (deliver) for body-less frames or with the store disabled; false
  /// means the sample or checksum mismatched and the frame must be dropped.
  bool verify_body(const net::WireMessage& wire);

  /// Token bucket: refills from wall time, hands a frame to its
  /// connection, and drains the pending queue while credit lasts.
  void egress_refill();
  void queue_to_wire(NodeId target, int fd, const std::vector<std::uint8_t>& bytes,
                     std::uint64_t cost);
  void drain_egress();
  std::uint64_t egress_burst() const noexcept;

  DaemonConfig config_;
  util::Rng rng_;
  std::chrono::steady_clock::time_point start_;

  fault::PeerHealth health_;
  std::unique_ptr<fault::FaultyNetwork> chaos_;  // null without a fault plan
  sim::FaultCounters fault_stats_;
  std::set<NodeId> dialed_before_;  // peers that had their startup dial

  std::unique_ptr<membership::SwimDetector> detector_;  // null when disabled
  std::unique_ptr<membership::RepairScheduler> repair_;
  bool transition_pending_ = false;
  std::atomic<std::uint64_t> membership_epoch_{0};
  std::atomic<std::uint64_t> restripe_backlog_{0};

  store::PayloadStorePtr store_;  // null with the payload store disabled

  std::unique_ptr<sim::Node> node_;
  net::EventLoop loop_;
  int listener_ = -1;
  std::map<int, std::unique_ptr<net::Conn>> conns_;
  std::map<NodeId, int> routes_;  // node id -> connection fd

  /// Self-addressed messages queue here and drain in delivery order, so a
  /// proxy forwarding to itself never recurses through on_message.
  std::deque<net::WireMessage> local_;
  bool draining_ = false;

  /// Journey path of the delivery currently executing; stamped onto every
  /// frame that delivery sends.
  std::vector<NodeId> current_path_;

  /// Egress pacing: frames the token bucket could not cover yet, in send
  /// order.  Targets are re-resolved at drain time (the peer may have died
  /// while the frame waited).
  struct PendingFrame {
    NodeId target = kInvalidNode;
    std::vector<std::uint8_t> bytes;
    std::uint64_t cost = 0;  // accounted bytes charged to the bucket
  };
  std::deque<PendingFrame> egress_q_;
  std::uint64_t egress_queued_bytes_ = 0;
  double egress_tokens_ = 0.0;
  SimTime egress_last_refill_ = 0;  // microseconds, transport clock

  std::map<NodeId, std::uint64_t> peer_bytes_out_;
  std::map<NodeId, std::uint64_t> peer_bytes_in_;

  std::function<void()> tick_;
  DaemonStats stats_;
};

/// Maps "adc"/"proxy" -> kAdcProxy, "carp" -> kCarpProxy, "origin" ->
/// kOrigin; false on anything else.
bool parse_daemon_role(std::string_view text, DaemonRole* out);

}  // namespace adc::server
