#include "server/loadgen.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "util/logging.h"

namespace adc::server {
namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string LoadGenReport::text() const {
  std::ostringstream out;
  out << "requests:   " << completed << " completed / " << issued << " issued"
      << (timed_out ? "  [TIMED OUT]" : "") << "\n";
  out << "hit rate:   " << hit_rate() << "\n";
  out << "mean hops:  " << mean_hops() << "\n";
  out << "throughput: " << throughput() << " req/s (" << wall_seconds << " s)\n";
  out << "latency:    p50=" << latency_p50_us << "us p95=" << latency_p95_us
      << "us p99=" << latency_p99_us << "us\n";
  return out.str();
}

LoadGenerator::LoadGenerator(LoadGenConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  for (const auto& [id, endpoint] : config_.proxies) entries_.push_back(id);
}

LoadGenerator::~LoadGenerator() = default;

bool LoadGenerator::connect(std::string* error) {
  for (const auto& [id, endpoint] : config_.proxies) {
    int fd = -1;
    std::string last_error;
    for (int attempt = 0; attempt < 100; ++attempt) {
      fd = net::connect_tcp(endpoint, &last_error);
      if (fd >= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (fd < 0) {
      if (error) {
        *error = "cannot connect to proxy " + std::to_string(id) + " at " + endpoint.host + ":" +
                 std::to_string(endpoint.port) + ": " + last_error;
      }
      return false;
    }
    auto conn = std::make_unique<net::Conn>(fd);
    std::vector<std::uint8_t> hello;
    net::encode_hello(net::Hello{config_.client_id, sim::NodeKind::kClient}, &hello);
    conn->queue(hello);
    if (conn->flush() == net::Conn::Io::kError) {
      if (error) *error = "HELLO to proxy " + std::to_string(id) + " failed";
      return false;
    }
    routes_[id] = fd;
    conns_.emplace(fd, std::move(conn));
    loop_.watch(fd, [this](int f, bool r, bool w) { on_conn_event(f, r, w); });
  }
  return true;
}

NodeId LoadGenerator::pick_entry() {
  if (config_.entry == EntryChoice::kRoundRobin) {
    const NodeId entry = entries_[cursor_];
    cursor_ = (cursor_ + 1) % entries_.size();
    return entry;
  }
  return entries_[rng_.index(entries_.size())];
}

void LoadGenerator::issue_next() {
  if (failed_ || next_index_ >= objects_->size()) return;

  sim::Message request;
  request.kind = sim::MessageKind::kRequest;
  request.request_id = make_request_id(config_.client_id, issued_);
  request.object = (*objects_)[next_index_++];
  request.sender = config_.client_id;
  request.target = pick_entry();
  request.client = config_.client_id;
  request.forward_count = 0;
  // The client-to-entry transfer counts one hop, exactly as
  // Simulator::send() charges it when proxy::Client injects.
  request.hops = 1;
  request.issued_at = now_us();
  ++issued_;

  std::vector<std::uint8_t> bytes;
  net::encode_message(net::WireMessage{request, {}}, &bytes);
  const int fd = routes_.at(request.target);
  net::Conn& conn = *conns_.at(fd);
  conn.queue(bytes);
  if (conn.flush() == net::Conn::Io::kError) {
    ADC_LOG_WARN << "loadgen: write to proxy " << request.target << " failed";
    failed_ = true;
    return;
  }
  if (conn.wants_write()) loop_.request_write(fd, true);
}

void LoadGenerator::on_reply(const sim::Message& msg) {
  if (msg.kind != sim::MessageKind::kReply || msg.client != config_.client_id) {
    ADC_LOG_WARN << "loadgen: unexpected message for node " << msg.client;
    return;
  }
  ++completed_;
  if (msg.proxy_hit) ++hits_;
  total_hops_ += static_cast<std::uint64_t>(msg.hops);
  latency_us_.add(static_cast<double>(now_us() - msg.issued_at));
  issue_next();
}

void LoadGenerator::on_conn_event(int fd, bool readable, bool writable) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  net::Conn& conn = *it->second;

  if (writable) {
    if (conn.flush() == net::Conn::Io::kError) {
      failed_ = true;
      return;
    }
    if (!conn.wants_write()) loop_.request_write(fd, false);
  }
  if (!readable) return;

  const net::Conn::Io io = conn.read_some();
  for (;;) {
    net::Frame frame;
    std::string error;
    const net::DecodeResult result = conn.next_frame(&frame, &error);
    if (result == net::DecodeResult::kNeedMore) break;
    if (result == net::DecodeResult::kCorrupt) {
      ADC_LOG_WARN << "loadgen: corrupt frame from fd=" << fd << ": " << error;
      failed_ = true;
      return;
    }
    if (frame.type == net::FrameType::kHello) continue;
    on_reply(frame.message.msg);
  }
  if (io != net::Conn::Io::kOk) {
    ADC_LOG_WARN << "loadgen: proxy connection fd=" << fd << " closed mid-run";
    failed_ = true;
  }
}

LoadGenReport LoadGenerator::run(const std::vector<ObjectId>& objects) {
  objects_ = &objects;
  next_index_ = 0;
  const auto wall_start = std::chrono::steady_clock::now();

  for (int i = 0; i < config_.concurrency && !failed_; ++i) issue_next();

  std::uint64_t last_completed = completed_;
  auto last_progress = wall_start;
  bool timed_out = false;
  while (!failed_ && completed_ < issued_) {
    loop_.poll_once(100);
    const auto now = std::chrono::steady_clock::now();
    if (completed_ != last_completed) {
      last_completed = completed_;
      last_progress = now;
    } else if (config_.idle_timeout_ms > 0 &&
               now - last_progress > std::chrono::milliseconds(config_.idle_timeout_ms)) {
      ADC_LOG_WARN << "loadgen: no progress for " << config_.idle_timeout_ms << "ms; aborting";
      timed_out = true;
      break;
    }
  }
  const auto wall_end = std::chrono::steady_clock::now();

  LoadGenReport report;
  report.issued = issued_;
  report.completed = completed_;
  report.hits = hits_;
  report.total_hops = total_hops_;
  report.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  report.latency_p50_us = latency_us_.percentile(0.50);
  report.latency_p95_us = latency_us_.percentile(0.95);
  report.latency_p99_us = latency_us_.percentile(0.99);
  report.timed_out = timed_out || failed_;
  return report;
}

}  // namespace adc::server
