#include "server/loadgen.h"

#include <chrono>
#include <limits>
#include <sstream>
#include <thread>

#include "util/logging.h"

namespace adc::server {
namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string LoadGenErrors::text() const {
  std::ostringstream out;
  out << "connect_refused=" << connect_refused << " peer_resets=" << peer_resets
      << " orderly_closes=" << orderly_closes << " write_errors=" << write_errors
      << " corrupt_frames=" << corrupt_frames << " reconnects=" << reconnects;
  return out.str();
}

double LoadGenReport::entry_fairness() const noexcept {
  std::vector<std::uint64_t> counts;
  counts.reserve(entry_requests.size());
  for (const auto& [entry, count] : entry_requests) counts.push_back(count);
  return sim::MetricsSummary::fairness_ratio(counts);
}

std::string LoadGenReport::text() const {
  std::ostringstream out;
  out << "requests:   " << completed << " completed / " << failed << " failed / " << issued
      << " issued" << (timed_out ? "  [TIMED OUT]" : "") << "\n";
  out << "hit rate:   " << hit_rate() << "\n";
  if (failed > 0) out << "failure:    " << failure_rate() << "\n";
  if (duplicate_replies > 0) out << "dup replies: " << duplicate_replies << "\n";
  out << "mean hops:  " << mean_hops() << "\n";
  out << "throughput: " << throughput() << " req/s (" << wall_seconds << " s)\n";
  if (bytes_completed > 0) {
    out << "payload:    " << bytes_completed << " bytes, byte_hit_rate=" << byte_hit_rate()
        << ", " << bytes_per_second() << " B/s";
    if (degraded_reads > 0) {
      out << ", degraded=" << degraded_reads << " (" << bytes_recovered << " bytes recovered)";
    }
    out << "\n";
  }
  if (stripes_healed > 0 || repair_bytes > 0 || repair_rounds > 0) {
    out << "restripe:   healed=" << stripes_healed << " bytes=" << repair_bytes
        << " rounds=" << repair_rounds << "\n";
  }
  out << "latency:    p50=" << latency_p50_us << "us p95=" << latency_p95_us
      << "us p99=" << latency_p99_us << "us p99.9=" << latency_p999_us << "us\n";
  if (!entry_requests.empty()) {
    out << "entries:    fairness=" << entry_fairness() << " requests:";
    for (const auto& [entry, count] : entry_requests) out << " " << entry << ":" << count;
    out << "\n";
  }
  if (!entry_bytes.empty()) {
    out << "entry bytes:";
    for (const auto& [entry, bytes] : entry_bytes) out << " " << entry << ":" << bytes;
    out << "\n";
  }
  out << "conn errors: " << errors.text() << "\n";
  out << "membership: view_epoch=" << view_epoch << " entries:";
  for (const EntryView& view : entry_views) {
    out << " " << view.entry << ":" << view.state();
    if (view.failure_streak > 0) out << "/" << view.failure_streak;
  }
  out << "\n";
  return out.str();
}

std::string LoadGenReport::json(std::string_view workload) const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"workload\": \"" << workload << "\",\n";
  out << "  \"issued\": " << issued << ",\n";
  out << "  \"completed\": " << completed << ",\n";
  out << "  \"failed\": " << failed << ",\n";
  out << "  \"timed_out\": " << (timed_out ? "true" : "false") << ",\n";
  out << "  \"hit_rate\": " << hit_rate() << ",\n";
  out << "  \"mean_hops\": " << mean_hops() << ",\n";
  out << "  \"throughput_rps\": " << throughput() << ",\n";
  out << "  \"wall_seconds\": " << wall_seconds << ",\n";
  out << "  \"bytes_completed\": " << bytes_completed << ",\n";
  out << "  \"bytes_hit\": " << bytes_hit << ",\n";
  out << "  \"bytes_recovered\": " << bytes_recovered << ",\n";
  out << "  \"degraded_reads\": " << degraded_reads << ",\n";
  out << "  \"byte_hit_rate\": " << byte_hit_rate() << ",\n";
  out << "  \"bytes_per_second\": " << bytes_per_second() << ",\n";
  out << "  \"latency_us\": {\"p50\": " << latency_p50_us << ", \"p95\": " << latency_p95_us
      << ", \"p99\": " << latency_p99_us << ", \"p999\": " << latency_p999_us << "},\n";
  out << "  \"entry_fairness\": " << entry_fairness() << ",\n";
  out << "  \"entry_requests\": {";
  bool first = true;
  for (const auto& [entry, count] : entry_requests) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << entry << "\": " << count;
  }
  out << "},\n";
  out << "  \"entry_bytes\": {";
  first = true;
  for (const auto& [entry, bytes] : entry_bytes) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << entry << "\": " << bytes;
  }
  out << "},\n";
  out << "  \"entry_bytes_per_second\": {";
  first = true;
  for (const auto& [entry, bytes] : entry_bytes) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << entry << "\": "
        << (wall_seconds <= 0.0 ? 0.0 : static_cast<double>(bytes) / wall_seconds);
  }
  out << "},\n";
  out << "  \"view_epoch\": " << view_epoch << ",\n";
  out << "  \"stripes_healed\": " << stripes_healed << ",\n";
  out << "  \"repair_bytes\": " << repair_bytes << ",\n";
  out << "  \"repair_rounds\": " << repair_rounds << ",\n";
  out << "  \"conn_failures\": " << errors.total_conn_failures() << "\n";
  out << "}\n";
  return out.str();
}

LoadGenerator::LoadGenerator(LoadGenConfig config)
    : config_(std::move(config)), rng_(config_.seed), health_(config_.health) {
  for (const auto& [id, endpoint] : config_.proxies) entries_.push_back(id);
}

LoadGenerator::~LoadGenerator() = default;

bool LoadGenerator::connect(std::string* error) {
  for (const auto& [id, endpoint] : config_.proxies) {
    int fd = -1;
    std::string last_error;
    for (int attempt = 0; attempt < 100; ++attempt) {
      fd = net::connect_tcp(endpoint, &last_error);
      if (fd >= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (fd < 0) {
      if (error) {
        *error = "cannot connect to proxy " + std::to_string(id) + " at " + endpoint.host + ":" +
                 std::to_string(endpoint.port) + ": " + last_error;
      }
      return false;
    }
    auto conn = std::make_unique<net::Conn>(fd);
    std::vector<std::uint8_t> hello;
    net::encode_hello(net::Hello{config_.client_id, sim::NodeKind::kClient}, &hello);
    conn->queue(hello);
    if (conn->flush() != net::Conn::Io::kOk) {
      if (error) *error = "HELLO to proxy " + std::to_string(id) + " failed";
      return false;
    }
    routes_[id] = fd;
    conns_.emplace(fd, std::move(conn));
    loop_.watch(fd, [this](int f, bool r, bool w) { on_conn_event(f, r, w); });
  }
  return true;
}

NodeId LoadGenerator::pick_entry() {
  if (config_.entry == EntryChoice::kRoundRobin) {
    const NodeId entry = entries_[cursor_];
    cursor_ = (cursor_ + 1) % entries_.size();
    return entry;
  }
  return entries_[rng_.index(entries_.size())];
}

int LoadGenerator::entry_fd(NodeId entry) {
  if (const auto it = routes_.find(entry); it != routes_.end()) return it->second;
  if (!health_.can_attempt(entry, now_us())) return -1;

  const net::Endpoint& endpoint = config_.proxies.at(entry);
  std::string error;
  const int fd = net::connect_tcp(endpoint, &error);
  if (fd < 0) {
    ++errors_.connect_refused;
    if (health_.record_failure(entry, now_us())) ++view_epoch_;
    return -1;
  }
  auto conn = std::make_unique<net::Conn>(fd);
  std::vector<std::uint8_t> hello;
  net::encode_hello(net::Hello{config_.client_id, sim::NodeKind::kClient}, &hello);
  conn->queue(hello);
  if (conn->flush() != net::Conn::Io::kOk) {
    ++errors_.connect_refused;
    if (health_.record_failure(entry, now_us())) ++view_epoch_;
    return -1;  // conn's destructor closes the fd
  }
  if (health_.record_success(entry)) {
    ++view_epoch_;
    ++errors_.reconnects;
    ADC_LOG_INFO << "loadgen: entry proxy " << entry << " reconnected";
  }
  routes_[entry] = fd;
  conns_.emplace(fd, std::move(conn));
  loop_.watch(fd, [this](int f, bool r, bool w) { on_conn_event(f, r, w); });
  return fd;
}

bool LoadGenerator::issue_next() {
  if (objects_ == nullptr || next_index_ >= objects_->size()) return false;

  // One try per configured entry: the preferred pick first, then the rest,
  // so a single dead proxy degrades throughput instead of stopping the run.
  int fd = -1;
  NodeId target = kInvalidNode;
  for (std::size_t attempt = 0; attempt < entries_.size(); ++attempt) {
    const NodeId candidate = pick_entry();
    fd = entry_fd(candidate);
    if (fd >= 0) {
      target = candidate;
      break;
    }
  }
  if (fd < 0) return false;  // every entry down; retry next poll round

  sim::Message request;
  request.kind = sim::MessageKind::kRequest;
  request.request_id = make_request_id(config_.client_id, lifetime_issued_++);
  request.object = (*objects_)[next_index_++];
  request.sender = config_.client_id;
  request.target = target;
  request.client = config_.client_id;
  request.forward_count = 0;
  // The client-to-entry transfer counts one hop, exactly as
  // Simulator::send() charges it when proxy::Client injects.
  request.hops = 1;
  request.issued_at = now_us();
  ++issued_;
  ++entry_requests_[target];
  outstanding_.emplace(
      request.request_id,
      Outstanding{config_.request_timeout_ms > 0
                      ? request.issued_at + std::int64_t{config_.request_timeout_ms} * 1000
                      : std::numeric_limits<std::int64_t>::max(),
                  target});

  std::vector<std::uint8_t> bytes;
  net::encode_message(net::WireMessage{request, {}}, &bytes);
  net::Conn& conn = *conns_.at(fd);
  conn.queue(bytes);
  const net::Conn::Io io = conn.flush();
  if (io != net::Conn::Io::kOk) {
    if (io == net::Conn::Io::kError) ++errors_.write_errors;
    conn_died(fd, io);
    return true;  // the request is in flight bookkeeping-wise; it will expire
  }
  if (conn.wants_write()) loop_.request_write(fd, true);
  return true;
}

void LoadGenerator::expire_overdue() {
  if (config_.request_timeout_ms <= 0 || outstanding_.empty()) return;
  const std::int64_t now = now_us();
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->second.deadline <= now) {
      it = outstanding_.erase(it);
      ++failed_requests_;
    } else {
      ++it;
    }
  }
}

void LoadGenerator::on_reply(const sim::Message& msg) {
  if (msg.kind != sim::MessageKind::kReply || msg.client != config_.client_id) {
    ADC_LOG_WARN << "loadgen: unexpected message for node " << msg.client;
    return;
  }
  const auto it = outstanding_.find(msg.request_id);
  if (it == outstanding_.end()) {
    // Chaos duplicated the reply, or it lost the race against its
    // deadline; either way this request already resolved.
    ++duplicate_replies_;
    return;
  }
  const NodeId entry = it->second.entry;
  outstanding_.erase(it);
  ++completed_;
  if (msg.proxy_hit) ++hits_;
  total_hops_ += static_cast<std::uint64_t>(msg.hops);
  bytes_completed_ += msg.payload_bytes;
  if (msg.payload_bytes > 0) entry_bytes_[entry] += msg.payload_bytes;
  if (msg.proxy_hit) bytes_hit_ += msg.payload_bytes;
  if (msg.degraded) {
    ++degraded_reads_;
    bytes_recovered_ += msg.payload_bytes;
  }
  latency_us_.add(static_cast<double>(now_us() - msg.issued_at));
}

void LoadGenerator::conn_died(int fd, net::Conn::Io io) {
  switch (io) {
    case net::Conn::Io::kClosed:
      ++errors_.orderly_closes;
      break;
    case net::Conn::Io::kReset:
      ++errors_.peer_resets;
      break;
    default:
      break;  // kError call sites count write_errors/corrupt themselves
  }
  for (auto it = routes_.begin(); it != routes_.end();) {
    if (it->second == fd) {
      // An orderly close is still a down signal for a client: the proxy
      // went away and must be redialed before it can serve us again.
      if (health_.record_failure(it->first, now_us())) ++view_epoch_;
      ADC_LOG_WARN << "loadgen: lost connection to entry proxy " << it->first;
      it = routes_.erase(it);
    } else {
      ++it;
    }
  }
  loop_.unwatch(fd);
  conns_.erase(fd);  // closes the fd
}

void LoadGenerator::on_conn_event(int fd, bool readable, bool writable) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  net::Conn& conn = *it->second;

  if (writable) {
    const net::Conn::Io io = conn.flush();
    if (io != net::Conn::Io::kOk) {
      if (io == net::Conn::Io::kError) ++errors_.write_errors;
      conn_died(fd, io);
      return;
    }
    if (!conn.wants_write()) loop_.request_write(fd, false);
  }
  if (!readable) return;

  const net::Conn::Io io = conn.read_some();
  for (;;) {
    net::Frame frame;
    std::string error;
    const net::DecodeResult result = conn.next_frame(&frame, &error);
    if (result == net::DecodeResult::kNeedMore) break;
    if (result == net::DecodeResult::kCorrupt) {
      ADC_LOG_WARN << "loadgen: corrupt frame from fd=" << fd << ": " << error;
      ++errors_.corrupt_frames;
      conn_died(fd, net::Conn::Io::kError);
      return;
    }
    if (frame.type == net::FrameType::kHello) continue;
    on_reply(frame.message.msg);
  }
  if (io != net::Conn::Io::kOk) conn_died(fd, io);
}

LoadGenReport LoadGenerator::run(const std::vector<ObjectId>& objects) {
  objects_ = &objects;
  next_index_ = 0;
  issued_ = 0;
  completed_ = 0;
  failed_requests_ = 0;
  duplicate_replies_ = 0;
  hits_ = 0;
  total_hops_ = 0;
  bytes_completed_ = 0;
  bytes_hit_ = 0;
  bytes_recovered_ = 0;
  degraded_reads_ = 0;
  entry_requests_.clear();
  entry_bytes_.clear();
  latency_us_.clear();
  errors_ = LoadGenErrors{};
  view_epoch_ = 0;
  outstanding_.clear();
  const auto wall_start = std::chrono::steady_clock::now();

  std::uint64_t last_resolved = 0;
  auto last_progress = wall_start;
  bool timed_out = false;
  for (;;) {
    // Top up the closed loop; issue_next() returning false means either
    // the trace is exhausted or every entry is in backoff right now.
    while (outstanding_.size() < static_cast<std::size_t>(config_.concurrency)) {
      if (!issue_next()) break;
    }
    if (next_index_ >= objects.size() && outstanding_.empty()) break;

    loop_.poll_once(100);
    expire_overdue();

    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t resolved = completed_ + failed_requests_;
    if (resolved != last_resolved) {
      last_resolved = resolved;
      last_progress = now;
    } else if (config_.idle_timeout_ms > 0 &&
               now - last_progress > std::chrono::milliseconds(config_.idle_timeout_ms)) {
      ADC_LOG_WARN << "loadgen: no progress for " << config_.idle_timeout_ms << "ms; aborting";
      timed_out = true;
      break;
    }
  }
  const auto wall_end = std::chrono::steady_clock::now();

  LoadGenReport report;
  report.issued = issued_;
  report.completed = completed_;
  report.failed = failed_requests_;
  report.duplicate_replies = duplicate_replies_;
  report.hits = hits_;
  report.total_hops = total_hops_;
  report.bytes_completed = bytes_completed_;
  report.bytes_hit = bytes_hit_;
  report.bytes_recovered = bytes_recovered_;
  report.degraded_reads = degraded_reads_;
  report.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  report.latency_p50_us = latency_us_.percentile(0.50);
  report.latency_p95_us = latency_us_.percentile(0.95);
  report.latency_p99_us = latency_us_.percentile(0.99);
  report.latency_p999_us = latency_us_.percentile(0.999);
  report.timed_out = timed_out;
  report.errors = errors_;
  report.entry_requests = entry_requests_;
  report.entry_bytes = entry_bytes_;
  for (const NodeId entry : entries_) {
    report.entry_views.push_back(EntryView{entry, health_.failure_streak(entry)});
  }
  report.view_epoch = view_epoch_;
  return report;
}

}  // namespace adc::server
