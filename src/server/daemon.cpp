#include "server/daemon.h"

#include <algorithm>
#include <iterator>
#include <thread>
#include <utility>

#include "core/adc_proxy.h"
#include "hash/carp.h"
#include "proxy/hashing_proxy.h"
#include "proxy/origin_server.h"
#include "util/logging.h"

namespace adc::server {
namespace {

// The wire frame's body field and the store's sample bound are one limit
// seen from two modules; a drift between them would silently truncate.
static_assert(net::kMaxBodyBytes == store::kMaxBodySample,
              "wire body capacity must match the store's body sample size");

std::string role_name(DaemonRole role) {
  switch (role) {
    case DaemonRole::kAdcProxy:
      return "adc";
    case DaemonRole::kCarpProxy:
      return "carp";
    case DaemonRole::kOrigin:
      return "origin";
  }
  return "adc";
}

}  // namespace

bool parse_daemon_role(std::string_view text, DaemonRole* out) {
  if (text == "adc" || text == "proxy") {
    *out = DaemonRole::kAdcProxy;
    return true;
  }
  if (text == "carp") {
    *out = DaemonRole::kCarpProxy;
    return true;
  }
  if (text == "origin") {
    *out = DaemonRole::kOrigin;
    return true;
  }
  return false;
}

namespace {

fault::PeerHealth::Config health_for_node(fault::PeerHealth::Config health, NodeId node) {
  // Per-node jitter streams, so members do not redial in lockstep.
  health.seed += static_cast<std::uint64_t>(node);
  return health;
}

}  // namespace

NodeDaemon::NodeDaemon(DaemonConfig config)
    : config_(std::move(config)),
      // Fold the node id into the seed so same-seeded daemons draw
      // independent streams (the simulator has one Rng; a cluster has one
      // per node, which only perturbs random-forwarding choices).
      rng_(config_.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(config_.node_id)),
      start_(std::chrono::steady_clock::now()),
      health_(health_for_node(config_.health, config_.node_id)) {
  if (!config_.fault_plan.is_zero()) {
    chaos_ = std::make_unique<fault::FaultyNetwork>(config_.fault_plan);
    ADC_LOG_INFO << "adcd[" << config_.node_id
                 << "]: chaos enabled: " << config_.fault_plan.describe();
  }
  if (config_.payload.enabled) {
    store_ = std::make_shared<const store::PayloadStore>(config_.payload);
    ADC_LOG_INFO << "adcd[" << config_.node_id << "]: payload store enabled, seed="
                 << config_.payload.seed
                 << (config_.payload.erasure.enabled ? ", erasure tier on" : "");
  }
  make_node();
  if (config_.membership.swim.enabled && config_.role != DaemonRole::kOrigin) {
    // Same per-node seed derivation membership::MemberAgent uses, so a
    // cluster and a simulation draw comparable private probe streams.
    membership::SwimConfig swim = config_.membership.swim;
    swim.seed = swim.seed * 0x9e3779b97f4a7c15ULL +
                static_cast<std::uint64_t>(config_.node_id) + 1;
    detector_ = std::make_unique<membership::SwimDetector>(config_.node_id,
                                                           config_.proxy_ids, swim);
    repair_ = std::make_unique<membership::RepairScheduler>(config_.membership.repair);
    detector_->set_on_death([this](NodeId peer) { on_member_dead(peer); });
    detector_->set_on_join([this](NodeId peer) { on_member_joined(peer); });
    detector_->set_on_transition([this] { transition_pending_ = true; });
    ADC_LOG_INFO << "adcd[" << config_.node_id << "]: SWIM detector enabled, watching "
                 << detector_->alive_peers().size() << " peers";
  }
}

NodeDaemon::~NodeDaemon() {
  conns_.clear();
  net::close_fd(listener_);
}

void NodeDaemon::make_node() {
  const std::string name = role_name(config_.role) + "[" + std::to_string(config_.node_id) + "]";
  switch (config_.role) {
    case DaemonRole::kAdcProxy: {
      auto adc = std::make_unique<core::AdcProxy>(config_.node_id, name, config_.adc,
                                                  config_.proxy_ids, config_.origin_id);
      if (store_ != nullptr) adc->enable_store(store::StoreContext{store_, config_.proxy_ids});
      node_ = std::move(adc);
      break;
    }
    case DaemonRole::kCarpProxy: {
      std::vector<hash::CarpArray::Member> members;
      for (const NodeId id : config_.proxy_ids) {
        // Member names must match run_experiment's proxy_name() so the CARP
        // hash — and therefore object ownership — is identical to the sim.
        members.push_back({"proxy[" + std::to_string(id) + "]", id, 1.0});
      }
      auto owners = std::make_shared<proxy::CarpOwnerMap>(hash::CarpArray(std::move(members)));
      auto carp = std::make_unique<proxy::HashingProxy>(config_.node_id, name,
                                                        std::move(owners), config_.origin_id,
                                                        config_.carp_cache_capacity,
                                                        config_.carp_policy);
      if (config_.membership.swim.enabled) {
        // Live membership: rebuild the array over whatever subset of the
        // startup membership survives, keeping the sim-compatible names.
        carp->set_owner_map_factory(
            [](const std::vector<NodeId>& ids) -> std::shared_ptr<const proxy::OwnerMap> {
              std::vector<hash::CarpArray::Member> live;
              for (const NodeId id : ids) {
                live.push_back({"proxy[" + std::to_string(id) + "]", id, 1.0});
              }
              return std::make_shared<proxy::CarpOwnerMap>(hash::CarpArray(std::move(live)));
            },
            config_.proxy_ids);
      }
      if (store_ != nullptr) carp->enable_store(store::StoreContext{store_, config_.proxy_ids});
      node_ = std::move(carp);
      break;
    }
    case DaemonRole::kOrigin: {
      auto origin = std::make_unique<proxy::OriginServer>(config_.node_id, name);
      if (store_ != nullptr) origin->set_sizer(store_);
      node_ = std::move(origin);
      break;
    }
  }
}

std::uint16_t NodeDaemon::bind(std::string* error) {
  listener_ = net::listen_tcp(config_.listen, error);
  if (listener_ < 0) return 0;
  loop_.watch(listener_, [this](int, bool, bool) { on_listener_readable(); });
  return net::local_port(listener_);
}

void NodeDaemon::run() {
  // With the detector on, the poll timeout bounds how late a probe or
  // suspicion timeout can fire; 100ms is comfortably finer than the
  // live-scale SWIM intervals (seconds).  With frames waiting on the
  // egress bucket the timeout drops to 5ms so paced drains track the
  // configured rate instead of the poll cadence.
  const int idle_poll_ms = detector_ != nullptr ? 100 : 500;
  while (!loop_.stopped()) {
    const int poll_ms = egress_q_.empty() ? idle_poll_ms : 5;
    if (loop_.poll_once(poll_ms) < 0) break;
    drain_egress();
    drive_membership();
    if (tick_) tick_();
  }
}

void NodeDaemon::on_member_dead(NodeId peer) {
  membership_epoch_.store(detector_->epoch(), std::memory_order_release);
  switch (config_.role) {
    case DaemonRole::kAdcProxy: {
      // The silent-peer purge: a peer the detector declares dead loses its
      // mapping entries and forwarding-membership slot even when no
      // request traffic ever touched the dead connection (probe timeouts
      // alone get here).
      const std::size_t removed =
          static_cast<core::AdcProxy&>(*node_).handle_peer_dead(peer);
      fault_stats_.entries_invalidated += removed;
      ADC_LOG_WARN << "adcd[" << config_.node_id << "]: member " << peer
                   << " confirmed dead (epoch " << detector_->epoch() << "), purged "
                   << removed << " table entries";
      break;
    }
    case DaemonRole::kCarpProxy: {
      const double fraction =
          static_cast<proxy::HashingProxy&>(*node_).handle_peer_dead(peer);
      ADC_LOG_WARN << "adcd[" << config_.node_id << "]: member " << peer
                   << " confirmed dead (epoch " << detector_->epoch()
                   << "), owner map rebuilt, reshuffle_fraction=" << fraction;
      break;
    }
    case DaemonRole::kOrigin:
      break;
  }
}

void NodeDaemon::on_member_joined(NodeId peer) {
  membership_epoch_.store(detector_->epoch(), std::memory_order_release);
  switch (config_.role) {
    case DaemonRole::kAdcProxy:
      static_cast<core::AdcProxy&>(*node_).handle_peer_joined(peer);
      break;
    case DaemonRole::kCarpProxy:
      static_cast<proxy::HashingProxy&>(*node_).handle_peer_joined(peer);
      break;
    case DaemonRole::kOrigin:
      break;
  }
  ADC_LOG_INFO << "adcd[" << config_.node_id << "]: member " << peer
               << " rejoined (epoch " << detector_->epoch() << ")";
}

store::ErasureTier* NodeDaemon::hosted_tier() noexcept {
  switch (config_.role) {
    case DaemonRole::kAdcProxy:
      return static_cast<core::AdcProxy&>(*node_).erasure_tier();
    case DaemonRole::kCarpProxy:
      return static_cast<proxy::HashingProxy&>(*node_).erasure_tier();
    case DaemonRole::kOrigin:
      return nullptr;
  }
  return nullptr;
}

void NodeDaemon::drive_membership() {
  if (detector_ == nullptr) return;
  current_path_.clear();  // control traffic carries no journey path
  const SimTime t = now();
  detector_->tick(*this, t);
  if (transition_pending_) {
    repair_->note_transition(t);
    transition_pending_ = false;
  }
  if (repair_->next_round(t)) {
    if (config_.role == DaemonRole::kAdcProxy) {
      auto& adc = static_cast<core::AdcProxy&>(*node_);
      for (const NodeId peer : detector_->alive_peers()) {
        adc.send_anti_entropy(*this, peer, config_.membership.repair.batch);
      }
    }
    // Re-stripe repair rides the same transition-gated cadence on every
    // proxy role that hosts a tier; offers are egress-paced like any
    // payload frame (they are not SWIM kinds), so background healing
    // cannot starve foreground traffic under a byte ceiling.
    if (store::ErasureTier* tier = hosted_tier();
        tier != nullptr && tier->restripe_enabled()) {
      tier->restripe_round(*this);
    }
  }
  // Repair queues outlive the fixed per-transition round budget; keep the
  // scheduler armed while items remain (bounded: each acks or abandons).
  if (!repair_->armed()) {
    if (const store::ErasureTier* tier = hosted_tier();
        tier != nullptr && tier->restripe_pending()) {
      repair_->note_transition(t);
    }
  }
  if (const store::ErasureTier* tier = hosted_tier(); tier != nullptr) {
    restripe_backlog_.store(tier->restripe_queued(), std::memory_order_release);
  }
}

SimTime NodeDaemon::now() const noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void NodeDaemon::on_listener_readable() {
  for (;;) {
    const int fd = net::accept_tcp(listener_);
    if (fd < 0) return;
    conns_.emplace(fd, std::make_unique<net::Conn>(fd));
    loop_.watch(fd, [this](int f, bool r, bool w) { on_conn_event(f, r, w); });
  }
}

void NodeDaemon::drop_conn(int fd) {
  loop_.unwatch(fd);
  for (auto it = routes_.begin(); it != routes_.end();) {
    it = it->second == fd ? routes_.erase(it) : std::next(it);
  }
  conns_.erase(fd);  // closes the fd
}

void NodeDaemon::on_conn_event(int fd, bool readable, bool writable) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  net::Conn& conn = *it->second;

  if (writable) {
    const net::Conn::Io io = conn.flush();
    if (io != net::Conn::Io::kOk) {
      account_dead_conn(fd, io);
      drop_conn(fd);
      return;
    }
    if (!conn.wants_write()) loop_.request_write(fd, false);
  }
  if (!readable) return;

  const net::Conn::Io io = conn.read_some();
  for (;;) {
    net::Frame frame;
    std::string error;
    const net::DecodeResult result = conn.next_frame(&frame, &error);
    if (result == net::DecodeResult::kNeedMore) break;
    if (result == net::DecodeResult::kCorrupt) {
      ADC_LOG_WARN << "adcd[" << config_.node_id << "]: dropping connection fd=" << fd
                   << " on corrupt frame: " << error;
      ++stats_.drops_corrupt;
      drop_conn(fd);
      return;
    }
    ++stats_.frames_in;
    if (frame.type == net::FrameType::kHello) {
      ++stats_.hellos;
      routes_[frame.hello.node_id] = fd;
      // A configured peer dialing in proves it is alive — possibly a
      // restarted daemon reconnecting.
      if (config_.peers.count(frame.hello.node_id) != 0) note_peer_up(frame.hello.node_id);
      continue;
    }
    if (sim::is_swim_kind(frame.message.msg.kind)) {
      // Failure-detector control traffic never reaches the hosted agent
      // (and may trigger outbound acks/broadcasts right here).
      if (detector_ != nullptr) {
        current_path_.clear();
        detector_->on_message(*this, frame.message.msg);
      }
      if (conns_.find(fd) == conns_.end()) return;  // ack send dropped us
      continue;
    }
    if (sim::is_repair_kind(frame.message.msg.kind) &&
        config_.role != DaemonRole::kAdcProxy) {
      continue;  // only the ADC agent understands anti-entropy frames
    }
    if (!verify_body(frame.message)) continue;  // corrupt payload, frame dropped
    deliver(std::move(frame.message));
    if (conns_.find(fd) == conns_.end()) return;  // delivery dropped us
  }
  if (io != net::Conn::Io::kOk) {
    account_dead_conn(fd, io);
    drop_conn(fd);
  }
}

void NodeDaemon::deliver(net::WireMessage wire) {
  local_.push_back(std::move(wire));
  if (draining_) return;
  draining_ = true;
  while (!local_.empty()) {
    net::WireMessage next = std::move(local_.front());
    local_.pop_front();
    current_path_ = std::move(next.path);
    if (current_path_.size() < net::kMaxPath) current_path_.push_back(config_.node_id);
    ++stats_.deliveries;
    node_->on_message(*this, next.msg);
  }
  draining_ = false;
}

void NodeDaemon::note_peer_down(NodeId peer) {
  if (!health_.record_failure(peer, now())) return;  // deeper into an existing streak
  ADC_LOG_WARN << "adcd[" << config_.node_id << "]: peer " << peer << " is down";
  if (config_.role == DaemonRole::kAdcProxy && peer != config_.origin_id) {
    // Age out mapping entries pointing at the dead peer so lookups fall
    // back to random forwarding instead of chasing a black hole.
    const std::size_t removed = static_cast<core::AdcProxy&>(*node_).invalidate_peer(peer);
    fault_stats_.entries_invalidated += removed;
    if (removed != 0) {
      ADC_LOG_INFO << "adcd[" << config_.node_id << "]: invalidated " << removed
                   << " table entries for dead peer " << peer;
    }
  }
  // Transport-level evidence short-circuits the probe cycle: suspect the
  // peer now instead of waiting for its next scheduled ping to time out.
  if (detector_ != nullptr && peer != config_.origin_id) {
    detector_->observe_failure(*this, peer, now());
  }
}

void NodeDaemon::note_peer_up(NodeId peer) {
  if (detector_ != nullptr && peer != config_.origin_id) detector_->observe_alive(peer);
  if (!health_.record_success(peer)) return;  // was not down
  ++fault_stats_.reconnects;
  ADC_LOG_INFO << "adcd[" << config_.node_id << "]: peer " << peer << " reconnected";
}

void NodeDaemon::account_dead_conn(int fd, net::Conn::Io io) {
  if (io == net::Conn::Io::kClosed) {
    ++stats_.peer_closes;
  } else {
    ++stats_.peer_resets;
  }
  // An orderly close is not a failure signal (daemons close on shutdown,
  // clients when their run ends); resets and errors are.
  if (io == net::Conn::Io::kClosed) return;
  for (const auto& [id, route_fd] : routes_) {
    if (route_fd == fd && config_.peers.count(id) != 0) note_peer_down(id);
  }
}

int NodeDaemon::fd_for(NodeId id) {
  if (const auto it = routes_.find(id); it != routes_.end()) return it->second;
  const auto peer = config_.peers.find(id);
  if (peer == config_.peers.end()) return -1;

  int fd = -1;
  std::string error;
  if (dialed_before_.insert(id).second) {
    // First-ever dial: tolerate cluster startup ordering — peers launched
    // moments after us are worth a few seconds of retries before the
    // message is dropped.
    for (int attempt = 0; attempt < 100; ++attempt) {
      fd = net::connect_tcp(peer->second, &error);
      if (fd >= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (fd < 0) {
      ADC_LOG_WARN << "adcd[" << config_.node_id << "]: cannot reach peer " << id << ": "
                   << error;
      note_peer_down(id);
      return -1;
    }
  } else {
    // Redial of a previously reached peer: one non-blocking attempt under
    // the capped-exponential-backoff schedule, so a dead peer costs one
    // connect() per backoff window instead of a 5-second stall per send.
    if (!health_.can_attempt(id, now())) return -1;
    if (health_.is_down(id)) ++fault_stats_.retries;
    fd = net::connect_tcp(peer->second, &error);
    if (fd < 0) {
      note_peer_down(id);
      return -1;
    }
  }
  note_peer_up(id);
  auto conn = std::make_unique<net::Conn>(fd);
  std::vector<std::uint8_t> hello;
  net::encode_hello(net::Hello{config_.node_id,
                               config_.role == DaemonRole::kOrigin ? sim::NodeKind::kOrigin
                                                                   : sim::NodeKind::kProxy},
                    &hello);
  conn->queue(hello);
  conns_.emplace(fd, std::move(conn));
  routes_[id] = fd;
  loop_.watch(fd, [this](int f, bool r, bool w) { on_conn_event(f, r, w); });
  return fd;
}

void NodeDaemon::flush_conn(int fd, net::Conn& conn) {
  const net::Conn::Io io = conn.flush();
  if (io != net::Conn::Io::kOk) {
    account_dead_conn(fd, io);
    drop_conn(fd);
    return;
  }
  loop_.request_write(fd, conn.wants_write());
}

void NodeDaemon::send(sim::Message msg) {
  // Mirror Simulator::send(): every transfer costs exactly one hop, self
  // deliveries included.
  msg.hops += 1;

  // Chaos injection mirrors the simulator's hook placement: after hop
  // accounting, before routing.  Live chaos is drop/duplicate only; the
  // poll loop keeps no timers, so extra-delay faults have no effect here.
  int duplicates = 0;
  if (chaos_ != nullptr) {
    const sim::FaultDecision fate = chaos_->on_send(msg, now());
    if (fate.drop) return;
    duplicates = fate.duplicates;
  }

  if (msg.target == config_.node_id) {
    for (int copy = 0; copy <= duplicates; ++copy) {
      net::WireMessage wire;
      wire.msg = msg;
      wire.path = current_path_;
      deliver(std::move(wire));
    }
    return;
  }

  int fd = fd_for(msg.target);
  if (fd < 0 && msg.kind == sim::MessageKind::kRequest &&
      msg.target != config_.origin_id) {
    // Graceful degradation: the forwarding target is down, so resolve at
    // the origin instead of dropping the search.  The origin replies to
    // this node (msg.sender stays intact), which backwards it normally.
    const int origin_fd = fd_for(config_.origin_id);
    if (origin_fd >= 0) {
      ++fault_stats_.degraded_fetches;
      ADC_LOG_INFO << "adcd[" << config_.node_id << "]: peer " << msg.target
                   << " unreachable; degrading req=" << msg.request_id << " to origin fetch";
      msg.target = config_.origin_id;
      fd = origin_fd;
    }
  }
  if (fd < 0) {
    ++stats_.drops_unroutable;
    if (!sim::is_swim_kind(msg.kind) && !sim::is_repair_kind(msg.kind)) {
      // Control traffic to a down peer is routine while the detector is
      // still confirming the death — not worth a warning per probe.
      ADC_LOG_WARN << "adcd[" << config_.node_id << "]: no route to node " << msg.target
                   << "; dropping "
                   << (msg.kind == sim::MessageKind::kRequest ? "REQUEST" : "REPLY")
                   << " req=" << msg.request_id;
    }
    return;
  }
  std::vector<std::uint8_t> bytes;
  net::WireMessage wire;
  wire.msg = msg;
  wire.path = current_path_;
  materialize_body(wire);
  net::encode_message(wire, &bytes);

  // A frame's accounted cost is the larger of its wire size and its
  // payload_bytes: the body on the wire is only a bounded sample, so
  // charging wire bytes alone would let a 256 KiB object slip through the
  // bucket for the price of one frame.  This keeps the live ceiling
  // comparable to the simulator's link model and the loadgen's bytes/s.
  const std::uint64_t cost = std::max<std::uint64_t>(bytes.size(), msg.payload_bytes);
  const bool pace = config_.egress_bytes_per_sec > 0 && !sim::is_swim_kind(msg.kind);
  for (int copy = 0; copy <= duplicates; ++copy) {
    if (pace) {
      egress_refill();
      // FIFO: once anything waits, everything paced waits behind it.
      if (!egress_q_.empty() || egress_tokens_ < 0.0) {
        egress_q_.push_back(PendingFrame{msg.target, bytes, cost});
        egress_queued_bytes_ += cost;
        ++stats_.egress_paced_frames;
        stats_.egress_paced_bytes += cost;
        continue;
      }
      // Debt semantics: a frame goes out whenever the bucket is
      // non-negative and may overdraw it, so frames larger than the
      // bucket capacity still pass (and repay before the next one).
      egress_tokens_ -= static_cast<double>(cost);
    }
    queue_to_wire(msg.target, fd, bytes, cost);
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // flush inside queue_to_wire dropped it
  }
}

std::uint64_t NodeDaemon::egress_burst() const noexcept {
  if (config_.egress_burst_bytes > 0) return config_.egress_burst_bytes;
  return std::max<std::uint64_t>(config_.egress_bytes_per_sec / 20, 8 * 1024);
}

void NodeDaemon::egress_refill() {
  const SimTime t = now();
  const double dt = static_cast<double>(t - egress_last_refill_) / 1e6;
  egress_last_refill_ = t;
  egress_tokens_ =
      std::min(egress_tokens_ + dt * static_cast<double>(config_.egress_bytes_per_sec),
               static_cast<double>(egress_burst()));
}

void NodeDaemon::queue_to_wire(NodeId target, int fd, const std::vector<std::uint8_t>& bytes,
                               std::uint64_t cost) {
  net::Conn& conn = *conns_.at(fd);
  conn.queue(bytes);
  ++stats_.frames_out;
  peer_bytes_out_[target] += cost;
  flush_conn(fd, conn);  // may drop the conn on error
}

void NodeDaemon::drain_egress() {
  if (egress_q_.empty()) return;
  egress_refill();
  while (!egress_q_.empty() && egress_tokens_ >= 0.0) {
    PendingFrame frame = std::move(egress_q_.front());
    egress_q_.pop_front();
    egress_queued_bytes_ -= frame.cost;
    // Re-resolve the route: the peer may have died while the frame waited.
    const int fd = fd_for(frame.target);
    if (fd < 0) {
      ++stats_.drops_unroutable;
      ++stats_.egress_dropped_frames;
      continue;
    }
    egress_tokens_ -= static_cast<double>(frame.cost);
    queue_to_wire(frame.target, fd, frame.bytes, frame.cost);
  }
}

void NodeDaemon::materialize_body(net::WireMessage& wire) {
  if (store_ == nullptr || wire.msg.payload_bytes == 0) return;
  const bool chunk = wire.msg.kind == sim::MessageKind::kChunkReply;
  const bool restripe = wire.msg.kind == sim::MessageKind::kRestripeOffer;
  if (wire.msg.kind != sim::MessageKind::kReply && !chunk && !restripe) return;
  wire.body.resize(static_cast<std::size_t>(
      std::min<std::uint64_t>(wire.msg.payload_bytes, store::kMaxBodySample)));
  // A chunk reply's resolver field carries the stripe chunk index; the
  // body is genuine chunk bytes (pattern slice or real RDP parity).  A
  // re-stripe offer carries the *reconstructed* chunk — the repair leader
  // rebuilds the dead peer's chunk by RDP equation peeling over the other
  // k + 1, so every live repair exercises the erasure math end to end
  // (the receiver verifies the sample against its own fill_chunk).
  std::size_t n = 0;
  if (restripe) {
    n = store_->reconstruct_chunk(wire.msg.object, static_cast<int>(wire.msg.resolver),
                                  wire.body.data(), wire.body.size());
  } else if (chunk) {
    n = store_->fill_chunk(wire.msg.object, static_cast<int>(wire.msg.resolver),
                           wire.body.data(), wire.body.size());
  } else {
    n = store_->fill_body(wire.msg.object, wire.body.data(), wire.body.size());
  }
  wire.body.resize(n);
  wire.checksum = store_->checksum(wire.msg.object, wire.msg.payload_bytes,
                                   wire.body.data(), wire.body.size());
  stats_.payload_bytes_out += wire.msg.payload_bytes;
}

bool NodeDaemon::verify_body(const net::WireMessage& wire) {
  if (store_ == nullptr) return true;
  const sim::Message& msg = wire.msg;
  // A re-stripe offer's body is the leader's *reconstructed* chunk;
  // verify_chunk regenerates the same bytes directly, so any peeling bug
  // surfaces as a verification failure at the replacement.
  const bool chunk = msg.kind == sim::MessageKind::kChunkReply ||
                     msg.kind == sim::MessageKind::kRestripeOffer;
  if (msg.kind != sim::MessageKind::kReply && !chunk) return true;
  if (msg.payload_bytes == 0) return true;  // reply from a store-unaware sender
  bool ok = !wire.body.empty();  // a nonzero payload always carries a sample
  if (ok && chunk) {
    ok = store_->verify_chunk(msg.object, static_cast<int>(msg.resolver), msg.payload_bytes,
                              wire.body.data(), wire.body.size(), wire.checksum);
  } else if (ok) {
    ok = store_->verify_body(msg.object, msg.payload_bytes, wire.body.data(),
                             wire.body.size(), wire.checksum);
  }
  if (!ok) {
    ++stats_.body_verify_failures;
    ADC_LOG_WARN << "adcd[" << config_.node_id << "]: payload verification failed for "
                 << (chunk ? "chunk" : "body") << " of object " << msg.object << " req="
                 << msg.request_id << " (" << msg.payload_bytes << " bytes claimed, "
                 << wire.body.size() << "-byte sample); dropping frame";
    return false;
  }
  ++stats_.bodies_verified;
  stats_.payload_bytes_in += msg.payload_bytes;
  peer_bytes_in_[msg.sender] += msg.payload_bytes;
  return true;
}

sim::FaultCounters NodeDaemon::fault_stats() const {
  sim::FaultCounters merged = fault_stats_;
  if (chaos_ != nullptr) {
    const sim::FaultCounters& injected = chaos_->counters();
    merged.drops_random = injected.drops_random;
    merged.drops_partition = injected.drops_partition;
    merged.drops_crash = injected.drops_crash;
    merged.duplicates = injected.duplicates;
    merged.delays = injected.delays;
  }
  return merged;
}

std::string NodeDaemon::stats_text() const {
  std::string out = "adcd node " + std::to_string(config_.node_id) + " (" +
                    role_name(config_.role) + ")\n";
  out += "  frames_in=" + std::to_string(stats_.frames_in) +
         " frames_out=" + std::to_string(stats_.frames_out) +
         " deliveries=" + std::to_string(stats_.deliveries) +
         " hellos=" + std::to_string(stats_.hellos) + "\n";
  out += "  drops_unroutable=" + std::to_string(stats_.drops_unroutable) +
         " drops_corrupt=" + std::to_string(stats_.drops_corrupt) +
         " peer_resets=" + std::to_string(stats_.peer_resets) +
         " peer_closes=" + std::to_string(stats_.peer_closes) + "\n";
  out += "  faults: " + fault_stats().text() + "\n";
  if (store_ != nullptr) {
    out += "  payload: bytes_out=" + std::to_string(stats_.payload_bytes_out) +
           " bytes_in=" + std::to_string(stats_.payload_bytes_in) +
           " bodies_verified=" + std::to_string(stats_.bodies_verified) +
           " verify_failures=" + std::to_string(stats_.body_verify_failures) + "\n";
  }
  if (config_.egress_bytes_per_sec > 0) {
    out += "  egress: rate=" + std::to_string(config_.egress_bytes_per_sec) +
           " burst=" + std::to_string(egress_burst()) +
           " tokens=" + std::to_string(static_cast<long long>(egress_tokens_)) +
           " queue_frames=" + std::to_string(egress_q_.size()) +
           " queue_bytes=" + std::to_string(egress_queued_bytes_) +
           " paced_frames=" + std::to_string(stats_.egress_paced_frames) +
           " paced_bytes=" + std::to_string(stats_.egress_paced_bytes) +
           " dropped=" + std::to_string(stats_.egress_dropped_frames) + "\n";
  }
  if (!peer_bytes_out_.empty() || !peer_bytes_in_.empty()) {
    out += "  peer_bytes:";
    // Union of both maps, in peer order (both are std::map).
    std::map<NodeId, std::pair<std::uint64_t, std::uint64_t>> merged;
    for (const auto& [peer, bytes] : peer_bytes_out_) merged[peer].first = bytes;
    for (const auto& [peer, bytes] : peer_bytes_in_) merged[peer].second = bytes;
    for (const auto& [peer, io] : merged) {
      out += " " + std::to_string(peer) + ":out=" + std::to_string(io.first) +
             ",in=" + std::to_string(io.second);
    }
    out += "\n";
  }
  const std::vector<NodeId> down = health_.down_peers();
  if (!down.empty()) {
    out += "  down_peers:";
    for (const NodeId peer : down) out += " " + std::to_string(peer);
    out += "\n";
  }
  if (detector_ != nullptr) {
    const membership::SwimStats& swim = detector_->stats();
    out += "  membership_epoch=" + std::to_string(detector_->epoch()) +
           " incarnation=" + std::to_string(detector_->self_incarnation()) +
           " peers: " + detector_->describe_peers() + "\n";
    out += "  swim: pings_sent=" + std::to_string(swim.pings_sent) +
           " acks_sent=" + std::to_string(swim.acks_sent) +
           " ping_reqs_sent=" + std::to_string(swim.ping_reqs_sent) +
           " relayed_probes=" + std::to_string(swim.relayed_probes) +
           " suspicions=" + std::to_string(swim.suspicions) +
           " refutations=" + std::to_string(swim.refutations) +
           " deaths=" + std::to_string(swim.deaths) +
           " joins=" + std::to_string(swim.joins) +
           " repair_rounds=" + std::to_string(repair_->rounds_fired()) + "\n";
  }
  if (const store::ErasureTier* tier = hosted_tier();
      tier != nullptr && tier->restripe_enabled()) {
    const store::RestripeStats& r = tier->restripe_stats();
    const store::ErasureStats& es = tier->stats();
    out += "  restripe: stripes_healed=" + std::to_string(es.stripes_healed) +
           " adopted=" + std::to_string(es.restripe_adopted) +
           " handbacks=" + std::to_string(es.restripe_handbacks) +
           " offers=" + std::to_string(r.offers_sent) +
           " retries=" + std::to_string(r.retries) +
           " rounds=" + std::to_string(r.rounds) + "\n";
    out += "  restripe: repair_bytes=" + std::to_string(r.repair_bytes) +
           " round_bytes_max=" + std::to_string(r.round_bytes_max) +
           " queued=" + std::to_string(tier->restripe_queued()) +
           " abandoned=" + std::to_string(r.items_abandoned) +
           " cancelled=" + std::to_string(r.items_cancelled) + "\n";
  }
  switch (config_.role) {
    case DaemonRole::kAdcProxy: {
      const auto& stats = static_cast<const core::AdcProxy&>(*node_).stats();
      out += "  requests_received=" + std::to_string(stats.requests_received) +
             " local_hits=" + std::to_string(stats.local_hits) +
             " forwards_learned=" + std::to_string(stats.forwards_learned) +
             " forwards_random=" + std::to_string(stats.forwards_random) +
             " forwards_origin=" + std::to_string(stats.forwards_origin) + "\n";
      out += "  loops_detected=" + std::to_string(stats.loops_detected) +
             " replies_relayed=" + std::to_string(stats.replies_relayed) +
             " resolver_claims=" + std::to_string(stats.resolver_claims) +
             " cache_admissions=" + std::to_string(stats.cache_admissions) +
             " orphan_replies=" + std::to_string(stats.orphan_replies) + "\n";
      if (store_ != nullptr) {
        out += "  store: payload_bytes_served=" + std::to_string(stats.payload_bytes_served) +
               " payload_bytes_fetched=" + std::to_string(stats.payload_bytes_fetched) +
               " degraded_started=" + std::to_string(stats.degraded_reads_started) +
               " degraded_served=" + std::to_string(stats.degraded_reads_served) + "\n";
      }
      break;
    }
    case DaemonRole::kCarpProxy: {
      const auto& stats = static_cast<const proxy::HashingProxy&>(*node_).stats();
      out += "  requests_received=" + std::to_string(stats.requests_received) +
             " local_hits=" + std::to_string(stats.local_hits) +
             " forwards_to_owner=" + std::to_string(stats.forwards_to_owner) +
             " forwards_to_origin=" + std::to_string(stats.forwards_to_origin) + "\n";
      if (store_ != nullptr) {
        out += "  store: payload_bytes_served=" + std::to_string(stats.payload_bytes_served) +
               " payload_bytes_fetched=" + std::to_string(stats.payload_bytes_fetched) +
               " degraded_served=" + std::to_string(stats.degraded_reads_served) + "\n";
      }
      break;
    }
    case DaemonRole::kOrigin: {
      const auto& origin = static_cast<const proxy::OriginServer&>(*node_);
      out += "  requests_served=" + std::to_string(origin.requests_served());
      if (store_ != nullptr) {
        out += " bytes_served=" + std::to_string(origin.bytes_served());
      }
      out += "\n";
      break;
    }
  }
  return out;
}

}  // namespace adc::server
