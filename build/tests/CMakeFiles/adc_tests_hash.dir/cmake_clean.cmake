file(REMOVE_RECURSE
  "CMakeFiles/adc_tests_hash.dir/hash/carp_test.cpp.o"
  "CMakeFiles/adc_tests_hash.dir/hash/carp_test.cpp.o.d"
  "CMakeFiles/adc_tests_hash.dir/hash/consistent_hash_test.cpp.o"
  "CMakeFiles/adc_tests_hash.dir/hash/consistent_hash_test.cpp.o.d"
  "CMakeFiles/adc_tests_hash.dir/hash/crc32_test.cpp.o"
  "CMakeFiles/adc_tests_hash.dir/hash/crc32_test.cpp.o.d"
  "CMakeFiles/adc_tests_hash.dir/hash/fnv_test.cpp.o"
  "CMakeFiles/adc_tests_hash.dir/hash/fnv_test.cpp.o.d"
  "CMakeFiles/adc_tests_hash.dir/hash/md5_test.cpp.o"
  "CMakeFiles/adc_tests_hash.dir/hash/md5_test.cpp.o.d"
  "CMakeFiles/adc_tests_hash.dir/hash/rendezvous_test.cpp.o"
  "CMakeFiles/adc_tests_hash.dir/hash/rendezvous_test.cpp.o.d"
  "adc_tests_hash"
  "adc_tests_hash.pdb"
  "adc_tests_hash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_tests_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
