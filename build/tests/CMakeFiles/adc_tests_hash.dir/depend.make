# Empty dependencies file for adc_tests_hash.
# This may be replaced when dependencies are built.
