file(REMOVE_RECURSE
  "CMakeFiles/adc_tests_sim.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/adc_tests_sim.dir/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/adc_tests_sim.dir/sim/metrics_test.cpp.o"
  "CMakeFiles/adc_tests_sim.dir/sim/metrics_test.cpp.o.d"
  "CMakeFiles/adc_tests_sim.dir/sim/network_test.cpp.o"
  "CMakeFiles/adc_tests_sim.dir/sim/network_test.cpp.o.d"
  "CMakeFiles/adc_tests_sim.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/adc_tests_sim.dir/sim/simulator_test.cpp.o.d"
  "CMakeFiles/adc_tests_sim.dir/sim/version_test.cpp.o"
  "CMakeFiles/adc_tests_sim.dir/sim/version_test.cpp.o.d"
  "adc_tests_sim"
  "adc_tests_sim.pdb"
  "adc_tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
