# Empty dependencies file for adc_tests_sim.
# This may be replaced when dependencies are built.
