file(REMOVE_RECURSE
  "CMakeFiles/adc_tests_workload.dir/workload/polygraph_test.cpp.o"
  "CMakeFiles/adc_tests_workload.dir/workload/polygraph_test.cpp.o.d"
  "CMakeFiles/adc_tests_workload.dir/workload/squid_log_test.cpp.o"
  "CMakeFiles/adc_tests_workload.dir/workload/squid_log_test.cpp.o.d"
  "CMakeFiles/adc_tests_workload.dir/workload/trace_test.cpp.o"
  "CMakeFiles/adc_tests_workload.dir/workload/trace_test.cpp.o.d"
  "CMakeFiles/adc_tests_workload.dir/workload/url_space_test.cpp.o"
  "CMakeFiles/adc_tests_workload.dir/workload/url_space_test.cpp.o.d"
  "CMakeFiles/adc_tests_workload.dir/workload/wpb_test.cpp.o"
  "CMakeFiles/adc_tests_workload.dir/workload/wpb_test.cpp.o.d"
  "adc_tests_workload"
  "adc_tests_workload.pdb"
  "adc_tests_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_tests_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
