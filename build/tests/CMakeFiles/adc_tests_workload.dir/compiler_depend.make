# Empty compiler generated dependencies file for adc_tests_workload.
# This may be replaced when dependencies are built.
