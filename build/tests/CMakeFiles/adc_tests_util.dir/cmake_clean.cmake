file(REMOVE_RECURSE
  "CMakeFiles/adc_tests_util.dir/util/cli_test.cpp.o"
  "CMakeFiles/adc_tests_util.dir/util/cli_test.cpp.o.d"
  "CMakeFiles/adc_tests_util.dir/util/config_test.cpp.o"
  "CMakeFiles/adc_tests_util.dir/util/config_test.cpp.o.d"
  "CMakeFiles/adc_tests_util.dir/util/csv_test.cpp.o"
  "CMakeFiles/adc_tests_util.dir/util/csv_test.cpp.o.d"
  "CMakeFiles/adc_tests_util.dir/util/logging_test.cpp.o"
  "CMakeFiles/adc_tests_util.dir/util/logging_test.cpp.o.d"
  "CMakeFiles/adc_tests_util.dir/util/rng_test.cpp.o"
  "CMakeFiles/adc_tests_util.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/adc_tests_util.dir/util/string_util_test.cpp.o"
  "CMakeFiles/adc_tests_util.dir/util/string_util_test.cpp.o.d"
  "CMakeFiles/adc_tests_util.dir/util/types_test.cpp.o"
  "CMakeFiles/adc_tests_util.dir/util/types_test.cpp.o.d"
  "adc_tests_util"
  "adc_tests_util.pdb"
  "adc_tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
