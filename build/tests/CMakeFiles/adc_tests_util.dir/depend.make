# Empty dependencies file for adc_tests_util.
# This may be replaced when dependencies are built.
