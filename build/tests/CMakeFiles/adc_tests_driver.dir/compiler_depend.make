# Empty compiler generated dependencies file for adc_tests_driver.
# This may be replaced when dependencies are built.
