file(REMOVE_RECURSE
  "CMakeFiles/adc_tests_driver.dir/driver/analysis_test.cpp.o"
  "CMakeFiles/adc_tests_driver.dir/driver/analysis_test.cpp.o.d"
  "CMakeFiles/adc_tests_driver.dir/driver/experiment_test.cpp.o"
  "CMakeFiles/adc_tests_driver.dir/driver/experiment_test.cpp.o.d"
  "CMakeFiles/adc_tests_driver.dir/driver/sweep_test.cpp.o"
  "CMakeFiles/adc_tests_driver.dir/driver/sweep_test.cpp.o.d"
  "CMakeFiles/adc_tests_driver.dir/driver/walk_model_test.cpp.o"
  "CMakeFiles/adc_tests_driver.dir/driver/walk_model_test.cpp.o.d"
  "adc_tests_driver"
  "adc_tests_driver.pdb"
  "adc_tests_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_tests_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
