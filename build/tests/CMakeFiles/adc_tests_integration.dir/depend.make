# Empty dependencies file for adc_tests_integration.
# This may be replaced when dependencies are built.
