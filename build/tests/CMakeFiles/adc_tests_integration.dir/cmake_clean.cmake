file(REMOVE_RECURSE
  "CMakeFiles/adc_tests_integration.dir/integration/ablation_test.cpp.o"
  "CMakeFiles/adc_tests_integration.dir/integration/ablation_test.cpp.o.d"
  "CMakeFiles/adc_tests_integration.dir/integration/backwarding_test.cpp.o"
  "CMakeFiles/adc_tests_integration.dir/integration/backwarding_test.cpp.o.d"
  "CMakeFiles/adc_tests_integration.dir/integration/convergence_test.cpp.o"
  "CMakeFiles/adc_tests_integration.dir/integration/convergence_test.cpp.o.d"
  "CMakeFiles/adc_tests_integration.dir/integration/fault_test.cpp.o"
  "CMakeFiles/adc_tests_integration.dir/integration/fault_test.cpp.o.d"
  "CMakeFiles/adc_tests_integration.dir/integration/phases_test.cpp.o"
  "CMakeFiles/adc_tests_integration.dir/integration/phases_test.cpp.o.d"
  "CMakeFiles/adc_tests_integration.dir/integration/property_test.cpp.o"
  "CMakeFiles/adc_tests_integration.dir/integration/property_test.cpp.o.d"
  "CMakeFiles/adc_tests_integration.dir/integration/staleness_test.cpp.o"
  "CMakeFiles/adc_tests_integration.dir/integration/staleness_test.cpp.o.d"
  "adc_tests_integration"
  "adc_tests_integration.pdb"
  "adc_tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
