file(REMOVE_RECURSE
  "CMakeFiles/adc_tests_proxy.dir/proxy/cache_node_test.cpp.o"
  "CMakeFiles/adc_tests_proxy.dir/proxy/cache_node_test.cpp.o.d"
  "CMakeFiles/adc_tests_proxy.dir/proxy/client_test.cpp.o"
  "CMakeFiles/adc_tests_proxy.dir/proxy/client_test.cpp.o.d"
  "CMakeFiles/adc_tests_proxy.dir/proxy/coordinator_test.cpp.o"
  "CMakeFiles/adc_tests_proxy.dir/proxy/coordinator_test.cpp.o.d"
  "CMakeFiles/adc_tests_proxy.dir/proxy/hashing_proxy_test.cpp.o"
  "CMakeFiles/adc_tests_proxy.dir/proxy/hashing_proxy_test.cpp.o.d"
  "CMakeFiles/adc_tests_proxy.dir/proxy/origin_server_test.cpp.o"
  "CMakeFiles/adc_tests_proxy.dir/proxy/origin_server_test.cpp.o.d"
  "CMakeFiles/adc_tests_proxy.dir/proxy/soap_proxy_test.cpp.o"
  "CMakeFiles/adc_tests_proxy.dir/proxy/soap_proxy_test.cpp.o.d"
  "adc_tests_proxy"
  "adc_tests_proxy.pdb"
  "adc_tests_proxy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_tests_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
