file(REMOVE_RECURSE
  "CMakeFiles/adc_tests_cache.dir/cache/edge_cases_test.cpp.o"
  "CMakeFiles/adc_tests_cache.dir/cache/edge_cases_test.cpp.o.d"
  "CMakeFiles/adc_tests_cache.dir/cache/ordered_table_test.cpp.o"
  "CMakeFiles/adc_tests_cache.dir/cache/ordered_table_test.cpp.o.d"
  "CMakeFiles/adc_tests_cache.dir/cache/policies_test.cpp.o"
  "CMakeFiles/adc_tests_cache.dir/cache/policies_test.cpp.o.d"
  "CMakeFiles/adc_tests_cache.dir/cache/single_table_test.cpp.o"
  "CMakeFiles/adc_tests_cache.dir/cache/single_table_test.cpp.o.d"
  "CMakeFiles/adc_tests_cache.dir/cache/table_entry_test.cpp.o"
  "CMakeFiles/adc_tests_cache.dir/cache/table_entry_test.cpp.o.d"
  "adc_tests_cache"
  "adc_tests_cache.pdb"
  "adc_tests_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_tests_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
