# Empty dependencies file for adc_tests_cache.
# This may be replaced when dependencies are built.
