
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adc_proxy_test.cpp" "tests/CMakeFiles/adc_tests_core.dir/core/adc_proxy_test.cpp.o" "gcc" "tests/CMakeFiles/adc_tests_core.dir/core/adc_proxy_test.cpp.o.d"
  "/root/repo/tests/core/mapping_tables_test.cpp" "tests/CMakeFiles/adc_tests_core.dir/core/mapping_tables_test.cpp.o" "gcc" "tests/CMakeFiles/adc_tests_core.dir/core/mapping_tables_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/adc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/adc_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/adc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/adc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/adc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
