file(REMOVE_RECURSE
  "CMakeFiles/adc_tests_core.dir/core/adc_proxy_test.cpp.o"
  "CMakeFiles/adc_tests_core.dir/core/adc_proxy_test.cpp.o.d"
  "CMakeFiles/adc_tests_core.dir/core/mapping_tables_test.cpp.o"
  "CMakeFiles/adc_tests_core.dir/core/mapping_tables_test.cpp.o.d"
  "adc_tests_core"
  "adc_tests_core.pdb"
  "adc_tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
