# Empty compiler generated dependencies file for ext_proxy_count.
# This may be replaced when dependencies are built.
