file(REMOVE_RECURSE
  "CMakeFiles/ext_proxy_count.dir/ext_proxy_count.cpp.o"
  "CMakeFiles/ext_proxy_count.dir/ext_proxy_count.cpp.o.d"
  "ext_proxy_count"
  "ext_proxy_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_proxy_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
