# Empty dependencies file for fig13_hits_by_table_size.
# This may be replaced when dependencies are built.
