file(REMOVE_RECURSE
  "CMakeFiles/fig13_hits_by_table_size.dir/fig13_hits_by_table_size.cpp.o"
  "CMakeFiles/fig13_hits_by_table_size.dir/fig13_hits_by_table_size.cpp.o.d"
  "fig13_hits_by_table_size"
  "fig13_hits_by_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hits_by_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
