file(REMOVE_RECURSE
  "CMakeFiles/ablation_table_impl.dir/ablation_table_impl.cpp.o"
  "CMakeFiles/ablation_table_impl.dir/ablation_table_impl.cpp.o.d"
  "ablation_table_impl"
  "ablation_table_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_table_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
