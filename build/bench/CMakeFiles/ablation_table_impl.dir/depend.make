# Empty dependencies file for ablation_table_impl.
# This may be replaced when dependencies are built.
