file(REMOVE_RECURSE
  "CMakeFiles/ext_max_forwards.dir/ext_max_forwards.cpp.o"
  "CMakeFiles/ext_max_forwards.dir/ext_max_forwards.cpp.o.d"
  "ext_max_forwards"
  "ext_max_forwards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_max_forwards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
