# Empty compiler generated dependencies file for ext_max_forwards.
# This may be replaced when dependencies are built.
