# Empty dependencies file for ablation_selective_caching.
# This may be replaced when dependencies are built.
