file(REMOVE_RECURSE
  "CMakeFiles/ablation_selective_caching.dir/ablation_selective_caching.cpp.o"
  "CMakeFiles/ablation_selective_caching.dir/ablation_selective_caching.cpp.o.d"
  "ablation_selective_caching"
  "ablation_selective_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selective_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
