# Empty dependencies file for ablation_unlimited_tables.
# This may be replaced when dependencies are built.
