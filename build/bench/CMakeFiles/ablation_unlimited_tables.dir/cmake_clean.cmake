file(REMOVE_RECURSE
  "CMakeFiles/ablation_unlimited_tables.dir/ablation_unlimited_tables.cpp.o"
  "CMakeFiles/ablation_unlimited_tables.dir/ablation_unlimited_tables.cpp.o.d"
  "ablation_unlimited_tables"
  "ablation_unlimited_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unlimited_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
