file(REMOVE_RECURSE
  "CMakeFiles/ext_walk_model.dir/ext_walk_model.cpp.o"
  "CMakeFiles/ext_walk_model.dir/ext_walk_model.cpp.o.d"
  "ext_walk_model"
  "ext_walk_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_walk_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
