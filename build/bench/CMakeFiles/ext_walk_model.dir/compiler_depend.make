# Empty compiler generated dependencies file for ext_walk_model.
# This may be replaced when dependencies are built.
