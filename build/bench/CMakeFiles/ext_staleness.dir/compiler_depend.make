# Empty compiler generated dependencies file for ext_staleness.
# This may be replaced when dependencies are built.
