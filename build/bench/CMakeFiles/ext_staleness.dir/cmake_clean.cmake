file(REMOVE_RECURSE
  "CMakeFiles/ext_staleness.dir/ext_staleness.cpp.o"
  "CMakeFiles/ext_staleness.dir/ext_staleness.cpp.o.d"
  "ext_staleness"
  "ext_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
