file(REMOVE_RECURSE
  "CMakeFiles/ablation_backwarding.dir/ablation_backwarding.cpp.o"
  "CMakeFiles/ablation_backwarding.dir/ablation_backwarding.cpp.o.d"
  "ablation_backwarding"
  "ablation_backwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
