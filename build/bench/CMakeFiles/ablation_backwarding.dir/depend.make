# Empty dependencies file for ablation_backwarding.
# This may be replaced when dependencies are built.
