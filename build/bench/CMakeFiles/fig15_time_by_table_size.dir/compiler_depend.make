# Empty compiler generated dependencies file for fig15_time_by_table_size.
# This may be replaced when dependencies are built.
