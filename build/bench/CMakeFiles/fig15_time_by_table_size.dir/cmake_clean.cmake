file(REMOVE_RECURSE
  "CMakeFiles/fig15_time_by_table_size.dir/fig15_time_by_table_size.cpp.o"
  "CMakeFiles/fig15_time_by_table_size.dir/fig15_time_by_table_size.cpp.o.d"
  "fig15_time_by_table_size"
  "fig15_time_by_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_time_by_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
