# Empty compiler generated dependencies file for fig14_hops_by_table_size.
# This may be replaced when dependencies are built.
