# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_hops_by_table_size.
