file(REMOVE_RECURSE
  "CMakeFiles/fig14_hops_by_table_size.dir/fig14_hops_by_table_size.cpp.o"
  "CMakeFiles/fig14_hops_by_table_size.dir/fig14_hops_by_table_size.cpp.o.d"
  "fig14_hops_by_table_size"
  "fig14_hops_by_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_hops_by_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
