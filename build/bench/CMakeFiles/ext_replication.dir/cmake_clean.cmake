file(REMOVE_RECURSE
  "CMakeFiles/ext_replication.dir/ext_replication.cpp.o"
  "CMakeFiles/ext_replication.dir/ext_replication.cpp.o.d"
  "ext_replication"
  "ext_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
