# Empty dependencies file for ablation_replacement_policy.
# This may be replaced when dependencies are built.
