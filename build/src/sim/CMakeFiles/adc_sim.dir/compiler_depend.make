# Empty compiler generated dependencies file for adc_sim.
# This may be replaced when dependencies are built.
