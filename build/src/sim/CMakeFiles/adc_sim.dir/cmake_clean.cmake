file(REMOVE_RECURSE
  "CMakeFiles/adc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/adc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/adc_sim.dir/metrics.cpp.o"
  "CMakeFiles/adc_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/adc_sim.dir/network.cpp.o"
  "CMakeFiles/adc_sim.dir/network.cpp.o.d"
  "CMakeFiles/adc_sim.dir/simulator.cpp.o"
  "CMakeFiles/adc_sim.dir/simulator.cpp.o.d"
  "libadc_sim.a"
  "libadc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
