file(REMOVE_RECURSE
  "libadc_sim.a"
)
