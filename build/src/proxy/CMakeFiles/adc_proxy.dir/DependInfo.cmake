
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/client.cpp" "src/proxy/CMakeFiles/adc_proxy.dir/client.cpp.o" "gcc" "src/proxy/CMakeFiles/adc_proxy.dir/client.cpp.o.d"
  "/root/repo/src/proxy/coordinator.cpp" "src/proxy/CMakeFiles/adc_proxy.dir/coordinator.cpp.o" "gcc" "src/proxy/CMakeFiles/adc_proxy.dir/coordinator.cpp.o.d"
  "/root/repo/src/proxy/hashing_proxy.cpp" "src/proxy/CMakeFiles/adc_proxy.dir/hashing_proxy.cpp.o" "gcc" "src/proxy/CMakeFiles/adc_proxy.dir/hashing_proxy.cpp.o.d"
  "/root/repo/src/proxy/hierarchical_proxy.cpp" "src/proxy/CMakeFiles/adc_proxy.dir/hierarchical_proxy.cpp.o" "gcc" "src/proxy/CMakeFiles/adc_proxy.dir/hierarchical_proxy.cpp.o.d"
  "/root/repo/src/proxy/origin_server.cpp" "src/proxy/CMakeFiles/adc_proxy.dir/origin_server.cpp.o" "gcc" "src/proxy/CMakeFiles/adc_proxy.dir/origin_server.cpp.o.d"
  "/root/repo/src/proxy/soap_proxy.cpp" "src/proxy/CMakeFiles/adc_proxy.dir/soap_proxy.cpp.o" "gcc" "src/proxy/CMakeFiles/adc_proxy.dir/soap_proxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/adc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/adc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/adc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
