file(REMOVE_RECURSE
  "CMakeFiles/adc_proxy.dir/client.cpp.o"
  "CMakeFiles/adc_proxy.dir/client.cpp.o.d"
  "CMakeFiles/adc_proxy.dir/coordinator.cpp.o"
  "CMakeFiles/adc_proxy.dir/coordinator.cpp.o.d"
  "CMakeFiles/adc_proxy.dir/hashing_proxy.cpp.o"
  "CMakeFiles/adc_proxy.dir/hashing_proxy.cpp.o.d"
  "CMakeFiles/adc_proxy.dir/hierarchical_proxy.cpp.o"
  "CMakeFiles/adc_proxy.dir/hierarchical_proxy.cpp.o.d"
  "CMakeFiles/adc_proxy.dir/origin_server.cpp.o"
  "CMakeFiles/adc_proxy.dir/origin_server.cpp.o.d"
  "CMakeFiles/adc_proxy.dir/soap_proxy.cpp.o"
  "CMakeFiles/adc_proxy.dir/soap_proxy.cpp.o.d"
  "libadc_proxy.a"
  "libadc_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
