file(REMOVE_RECURSE
  "libadc_proxy.a"
)
