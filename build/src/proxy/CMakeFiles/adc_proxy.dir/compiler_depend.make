# Empty compiler generated dependencies file for adc_proxy.
# This may be replaced when dependencies are built.
