file(REMOVE_RECURSE
  "libadc_workload.a"
)
