# Empty dependencies file for adc_workload.
# This may be replaced when dependencies are built.
