
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/polygraph.cpp" "src/workload/CMakeFiles/adc_workload.dir/polygraph.cpp.o" "gcc" "src/workload/CMakeFiles/adc_workload.dir/polygraph.cpp.o.d"
  "/root/repo/src/workload/squid_log.cpp" "src/workload/CMakeFiles/adc_workload.dir/squid_log.cpp.o" "gcc" "src/workload/CMakeFiles/adc_workload.dir/squid_log.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/adc_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/adc_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/url_space.cpp" "src/workload/CMakeFiles/adc_workload.dir/url_space.cpp.o" "gcc" "src/workload/CMakeFiles/adc_workload.dir/url_space.cpp.o.d"
  "/root/repo/src/workload/wpb.cpp" "src/workload/CMakeFiles/adc_workload.dir/wpb.cpp.o" "gcc" "src/workload/CMakeFiles/adc_workload.dir/wpb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hash/CMakeFiles/adc_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
