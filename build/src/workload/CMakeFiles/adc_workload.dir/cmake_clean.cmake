file(REMOVE_RECURSE
  "CMakeFiles/adc_workload.dir/polygraph.cpp.o"
  "CMakeFiles/adc_workload.dir/polygraph.cpp.o.d"
  "CMakeFiles/adc_workload.dir/squid_log.cpp.o"
  "CMakeFiles/adc_workload.dir/squid_log.cpp.o.d"
  "CMakeFiles/adc_workload.dir/trace.cpp.o"
  "CMakeFiles/adc_workload.dir/trace.cpp.o.d"
  "CMakeFiles/adc_workload.dir/url_space.cpp.o"
  "CMakeFiles/adc_workload.dir/url_space.cpp.o.d"
  "CMakeFiles/adc_workload.dir/wpb.cpp.o"
  "CMakeFiles/adc_workload.dir/wpb.cpp.o.d"
  "libadc_workload.a"
  "libadc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
