file(REMOVE_RECURSE
  "CMakeFiles/adc_util.dir/cli.cpp.o"
  "CMakeFiles/adc_util.dir/cli.cpp.o.d"
  "CMakeFiles/adc_util.dir/config.cpp.o"
  "CMakeFiles/adc_util.dir/config.cpp.o.d"
  "CMakeFiles/adc_util.dir/csv.cpp.o"
  "CMakeFiles/adc_util.dir/csv.cpp.o.d"
  "CMakeFiles/adc_util.dir/logging.cpp.o"
  "CMakeFiles/adc_util.dir/logging.cpp.o.d"
  "CMakeFiles/adc_util.dir/rng.cpp.o"
  "CMakeFiles/adc_util.dir/rng.cpp.o.d"
  "CMakeFiles/adc_util.dir/string_util.cpp.o"
  "CMakeFiles/adc_util.dir/string_util.cpp.o.d"
  "libadc_util.a"
  "libadc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
