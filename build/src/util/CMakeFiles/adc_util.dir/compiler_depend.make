# Empty compiler generated dependencies file for adc_util.
# This may be replaced when dependencies are built.
