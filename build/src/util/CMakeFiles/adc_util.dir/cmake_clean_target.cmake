file(REMOVE_RECURSE
  "libadc_util.a"
)
