file(REMOVE_RECURSE
  "CMakeFiles/adc_hash.dir/carp.cpp.o"
  "CMakeFiles/adc_hash.dir/carp.cpp.o.d"
  "CMakeFiles/adc_hash.dir/consistent_hash.cpp.o"
  "CMakeFiles/adc_hash.dir/consistent_hash.cpp.o.d"
  "CMakeFiles/adc_hash.dir/crc32.cpp.o"
  "CMakeFiles/adc_hash.dir/crc32.cpp.o.d"
  "CMakeFiles/adc_hash.dir/md5.cpp.o"
  "CMakeFiles/adc_hash.dir/md5.cpp.o.d"
  "CMakeFiles/adc_hash.dir/rendezvous.cpp.o"
  "CMakeFiles/adc_hash.dir/rendezvous.cpp.o.d"
  "libadc_hash.a"
  "libadc_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
