file(REMOVE_RECURSE
  "libadc_hash.a"
)
