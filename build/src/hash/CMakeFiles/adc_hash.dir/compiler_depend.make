# Empty compiler generated dependencies file for adc_hash.
# This may be replaced when dependencies are built.
