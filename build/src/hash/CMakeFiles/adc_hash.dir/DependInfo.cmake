
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/carp.cpp" "src/hash/CMakeFiles/adc_hash.dir/carp.cpp.o" "gcc" "src/hash/CMakeFiles/adc_hash.dir/carp.cpp.o.d"
  "/root/repo/src/hash/consistent_hash.cpp" "src/hash/CMakeFiles/adc_hash.dir/consistent_hash.cpp.o" "gcc" "src/hash/CMakeFiles/adc_hash.dir/consistent_hash.cpp.o.d"
  "/root/repo/src/hash/crc32.cpp" "src/hash/CMakeFiles/adc_hash.dir/crc32.cpp.o" "gcc" "src/hash/CMakeFiles/adc_hash.dir/crc32.cpp.o.d"
  "/root/repo/src/hash/md5.cpp" "src/hash/CMakeFiles/adc_hash.dir/md5.cpp.o" "gcc" "src/hash/CMakeFiles/adc_hash.dir/md5.cpp.o.d"
  "/root/repo/src/hash/rendezvous.cpp" "src/hash/CMakeFiles/adc_hash.dir/rendezvous.cpp.o" "gcc" "src/hash/CMakeFiles/adc_hash.dir/rendezvous.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
