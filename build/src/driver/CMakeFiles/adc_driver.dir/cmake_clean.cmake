file(REMOVE_RECURSE
  "CMakeFiles/adc_driver.dir/analysis.cpp.o"
  "CMakeFiles/adc_driver.dir/analysis.cpp.o.d"
  "CMakeFiles/adc_driver.dir/experiment.cpp.o"
  "CMakeFiles/adc_driver.dir/experiment.cpp.o.d"
  "CMakeFiles/adc_driver.dir/report.cpp.o"
  "CMakeFiles/adc_driver.dir/report.cpp.o.d"
  "CMakeFiles/adc_driver.dir/sweep.cpp.o"
  "CMakeFiles/adc_driver.dir/sweep.cpp.o.d"
  "CMakeFiles/adc_driver.dir/walk_model.cpp.o"
  "CMakeFiles/adc_driver.dir/walk_model.cpp.o.d"
  "libadc_driver.a"
  "libadc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
