file(REMOVE_RECURSE
  "libadc_driver.a"
)
