# Empty dependencies file for adc_driver.
# This may be replaced when dependencies are built.
