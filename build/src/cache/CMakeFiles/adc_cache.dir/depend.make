# Empty dependencies file for adc_cache.
# This may be replaced when dependencies are built.
