
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/ordered_table.cpp" "src/cache/CMakeFiles/adc_cache.dir/ordered_table.cpp.o" "gcc" "src/cache/CMakeFiles/adc_cache.dir/ordered_table.cpp.o.d"
  "/root/repo/src/cache/policies.cpp" "src/cache/CMakeFiles/adc_cache.dir/policies.cpp.o" "gcc" "src/cache/CMakeFiles/adc_cache.dir/policies.cpp.o.d"
  "/root/repo/src/cache/single_table.cpp" "src/cache/CMakeFiles/adc_cache.dir/single_table.cpp.o" "gcc" "src/cache/CMakeFiles/adc_cache.dir/single_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/adc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
