file(REMOVE_RECURSE
  "CMakeFiles/adc_cache.dir/ordered_table.cpp.o"
  "CMakeFiles/adc_cache.dir/ordered_table.cpp.o.d"
  "CMakeFiles/adc_cache.dir/policies.cpp.o"
  "CMakeFiles/adc_cache.dir/policies.cpp.o.d"
  "CMakeFiles/adc_cache.dir/single_table.cpp.o"
  "CMakeFiles/adc_cache.dir/single_table.cpp.o.d"
  "libadc_cache.a"
  "libadc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
