file(REMOVE_RECURSE
  "libadc_cache.a"
)
