
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adc_proxy.cpp" "src/core/CMakeFiles/adc_core.dir/adc_proxy.cpp.o" "gcc" "src/core/CMakeFiles/adc_core.dir/adc_proxy.cpp.o.d"
  "/root/repo/src/core/mapping_tables.cpp" "src/core/CMakeFiles/adc_core.dir/mapping_tables.cpp.o" "gcc" "src/core/CMakeFiles/adc_core.dir/mapping_tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/adc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
