file(REMOVE_RECURSE
  "CMakeFiles/adc_core.dir/adc_proxy.cpp.o"
  "CMakeFiles/adc_core.dir/adc_proxy.cpp.o.d"
  "CMakeFiles/adc_core.dir/mapping_tables.cpp.o"
  "CMakeFiles/adc_core.dir/mapping_tables.cpp.o.d"
  "libadc_core.a"
  "libadc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
