# Empty dependencies file for adc_core.
# This may be replaced when dependencies are built.
