file(REMOVE_RECURSE
  "libadc_core.a"
)
