# Empty compiler generated dependencies file for membership_churn.
# This may be replaced when dependencies are built.
