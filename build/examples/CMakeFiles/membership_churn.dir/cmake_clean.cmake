file(REMOVE_RECURSE
  "CMakeFiles/membership_churn.dir/membership_churn.cpp.o"
  "CMakeFiles/membership_churn.dir/membership_churn.cpp.o.d"
  "membership_churn"
  "membership_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
