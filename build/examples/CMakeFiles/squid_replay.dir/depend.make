# Empty dependencies file for squid_replay.
# This may be replaced when dependencies are built.
