file(REMOVE_RECURSE
  "CMakeFiles/squid_replay.dir/squid_replay.cpp.o"
  "CMakeFiles/squid_replay.dir/squid_replay.cpp.o.d"
  "squid_replay"
  "squid_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squid_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
