file(REMOVE_RECURSE
  "CMakeFiles/adc_vs_carp.dir/adc_vs_carp.cpp.o"
  "CMakeFiles/adc_vs_carp.dir/adc_vs_carp.cpp.o.d"
  "adc_vs_carp"
  "adc_vs_carp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adc_vs_carp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
