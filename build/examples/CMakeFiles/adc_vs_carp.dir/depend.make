# Empty dependencies file for adc_vs_carp.
# This may be replaced when dependencies are built.
