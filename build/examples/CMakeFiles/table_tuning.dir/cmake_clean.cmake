file(REMOVE_RECURSE
  "CMakeFiles/table_tuning.dir/table_tuning.cpp.o"
  "CMakeFiles/table_tuning.dir/table_tuning.cpp.o.d"
  "table_tuning"
  "table_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
