# Empty compiler generated dependencies file for table_tuning.
# This may be replaced when dependencies are built.
