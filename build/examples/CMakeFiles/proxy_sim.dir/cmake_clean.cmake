file(REMOVE_RECURSE
  "CMakeFiles/proxy_sim.dir/proxy_sim.cpp.o"
  "CMakeFiles/proxy_sim.dir/proxy_sim.cpp.o.d"
  "proxy_sim"
  "proxy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
