file(REMOVE_RECURSE
  "CMakeFiles/journey_inspector.dir/journey_inspector.cpp.o"
  "CMakeFiles/journey_inspector.dir/journey_inspector.cpp.o.d"
  "journey_inspector"
  "journey_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journey_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
