# Empty dependencies file for journey_inspector.
# This may be replaced when dependencies are built.
