// Extension EXT-HET — heterogeneous proxy performance.
//
// The paper's central-coordinator predecessor (Section II.1) existed to
// "adapt the load distribution in regard to the individual performance
// characteristics of every proxy".  This bench makes one proxy 10x slower
// at processing messages and measures which schemes route around it:
// the coordinator's response-time learning shifts load away; CARP's hash
// and ADC's content mapping cannot, so their latency suffers.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "driver/analysis.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: one slow proxy (10x message processing delay)",
                          scale, trace);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "latency_even", "latency_slow", "penalty",
                  "slow_proxy_share", "hit_rate_slow"});
  for (const auto scheme : {driver::Scheme::kAdc, driver::Scheme::kCarp,
                            driver::Scheme::kCoordinator, driver::Scheme::kSoap}) {
    driver::ExperimentConfig even = bench::paper_config(scale);
    even.scheme = scheme;
    even.sample_every = 0;
    driver::ExperimentConfig slow = even;
    slow.slow_proxy_index = 2;
    slow.slow_proxy_delay = 20;  // 10x the proxy-proxy link latency

    const auto even_result = driver::run_experiment(even, trace);
    const auto slow_result = driver::run_experiment(slow, trace);

    const auto& victim = slow_result.proxies[2];
    const driver::LoadStats load = driver::load_balance(slow_result.proxies);
    const double share = load.total == 0
                             ? 0.0
                             : static_cast<double>(victim.requests_received) /
                                   static_cast<double>(load.total);
    rows.push_back({std::string(driver::scheme_name(scheme)),
                    driver::fmt(even_result.summary.avg_latency(), 2),
                    driver::fmt(slow_result.summary.avg_latency(), 2),
                    driver::fmt(slow_result.summary.avg_latency() -
                                    even_result.summary.avg_latency(), 2),
                    driver::fmt(share, 3),
                    driver::fmt(slow_result.summary.hit_rate(), 3)});
  }
  // CARP's own remedy: shrink the slow member's load factor so the hash
  // assigns it a fraction of the URL space (CARP draft section 3.4).
  {
    driver::ExperimentConfig remedied = bench::paper_config(scale);
    remedied.scheme = driver::Scheme::kCarp;
    remedied.sample_every = 0;
    remedied.slow_proxy_index = 2;
    remedied.slow_proxy_delay = 20;
    remedied.carp_load_factors = {1.0, 1.0, 0.25, 1.0, 1.0};
    const auto result = driver::run_experiment(remedied, trace);
    const auto& victim = result.proxies[2];
    const driver::LoadStats load = driver::load_balance(result.proxies);
    const double share = load.total == 0
                             ? 0.0
                             : static_cast<double>(victim.requests_received) /
                                   static_cast<double>(load.total);
    rows.push_back({"carp+loadfactor", "-", driver::fmt(result.summary.avg_latency(), 2), "-",
                    driver::fmt(share, 3), driver::fmt(result.summary.hit_rate(), 3)});
  }

  driver::print_table(std::cout, rows);
  std::cout << "\n(slow_proxy_share: fraction of proxy-received requests landing on the\n"
            << " slow proxy; 0.2 = no avoidance over 5 proxies.  carp+loadfactor gives\n"
            << " the slow member a 0.25 CARP load factor — the draft's remedy.)\n";
  return 0;
}
