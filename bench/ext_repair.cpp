// Extension EXT-REPAIR — proactive re-stripe repair and the multi-death
// data-loss window, across ADC x CARP.
//
// The deployment is the paper's, widened to 8 proxies so k = 3 stripes
// (width 5) always have spare members to re-home chunks onto.  Two grids:
//
//   1. Two deaths + eviction pressure: proxies 2 and 5 crash for good at
//      0.30 and 0.55 of the healthy run, under a per-proxy chunk-directory
//      byte budget.  Two deaths alone leave every stripe at exactly k
//      chunks — arithmetically safe — but any directory eviction among the
//      survivors then strands the object.  With repair off, the post-run
//      stripe census finds those stranded objects; with repair on, each
//      death is healed back to full k + 2 width in byte-budgeted rounds,
//      so the same evictions land on stripes that still have margin.
//   2. Three deaths, no eviction pressure: proxy 7 additionally crashes at
//      0.65.  The unrepaired cluster deterministically loses every object
//      whose stripe contained all three victims; the repaired one strands
//      nothing.
//
// The binary exits nonzero when the repair invariants fail — no healed
// stripe, a round over the byte budget, or a repaired run stranding more
// than its unrepaired twin — so the CI job is a real check, not just an
// artifact upload.
//
// Accepts --workers N (0 = hardware concurrency) and --json PATH for a
// machine-readable artifact; the grid is bit-identical at any worker
// count.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"

namespace {

using namespace adc;

constexpr int kProxies = 8;
constexpr std::uint64_t kRepairBudget = 256 * 1024;  // > the largest chunk

std::string mb(std::uint64_t bytes) {
  return driver::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

fault::CrashWindow crash_at(const driver::ExperimentResult& probe, NodeId node,
                            double fraction) {
  fault::CrashWindow window;
  window.node = node;
  window.at = static_cast<SimTime>(static_cast<double>(probe.sim_end_time) * fraction);
  window.restart = kSimTimeMax;  // permanent: the member never returns
  window.flush_state = true;
  return window;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: proactive re-stripe repair vs the multi-death window",
                          scale, trace);
  const int workers = bench::bench_workers(argc, argv);
  const std::string json_path = bench::bench_json_path(argc, argv);
  std::vector<std::vector<driver::JsonField>> json_rows;

  const std::vector<driver::Scheme> schemes = {driver::Scheme::kAdc, driver::Scheme::kCarp};

  // ---- Healthy probes: place the crashes and size the deadlines ----
  std::vector<driver::ExperimentConfig> probes;
  for (const auto scheme : schemes) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = scheme;
    config.proxies = kProxies;
    config.payload.enabled = true;
    config.payload.erasure.enabled = true;
    probes.push_back(config);
  }
  const std::vector<driver::ExperimentResult> healthy =
      driver::run_parallel(probes, trace, workers);

  // ---- Grid 1: two deaths under directory-eviction pressure ----
  // The budget is the third unavailability: sized so survivors must evict
  // a meaningful share of their chunk directories.
  const auto dir_budget =
      static_cast<std::uint64_t>(bench::scaled_size(std::size_t{48} << 20, scale));
  std::vector<driver::ExperimentConfig> two_death_configs;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const driver::ExperimentResult& probe = healthy[s];
    const auto deadline = std::max<SimTime>(
        static_cast<SimTime>(std::llround(probe.latency_p99 * 20.0)), 1000);
    for (const bool repair : {false, true}) {
      driver::ExperimentConfig config = probes[s];
      config.membership.swim.enabled = true;
      config.payload.erasure.directory_budget = dir_budget;
      config.payload.erasure.restripe = repair;
      config.payload.erasure.repair_bytes_per_round = kRepairBudget;
      config.fault_plan.crashes.push_back(crash_at(probe, 2, 0.30));
      config.fault_plan.crashes.push_back(crash_at(probe, 5, 0.55));
      config.request_timeout = deadline;
      two_death_configs.push_back(config);
    }
  }
  const std::vector<driver::ExperimentResult> two_deaths =
      driver::run_parallel(two_death_configs, trace, workers);

  bool ok = true;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "repair", "tracked", "stranded", "healed", "repair_mb", "rounds",
                  "round_max_kb", "degraded_failed", "origin_mb"});
  std::size_t index = 0;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const driver::ExperimentResult* off = nullptr;
    for (const bool repair : {false, true}) {
      const driver::ExperimentResult& result = two_deaths[index++];
      if (!repair) off = &result;
      rows.push_back(
          {std::string(driver::scheme_name(schemes[s])), repair ? "on" : "off",
           std::to_string(result.store.stripe_objects_tracked),
           std::to_string(result.store.stripes_stranded),
           std::to_string(result.store.stripes_healed), mb(result.store.repair_bytes),
           std::to_string(result.store.repair_rounds),
           driver::fmt(static_cast<double>(result.store.repair_round_bytes_max) / 1024.0, 1),
           std::to_string(result.store.degraded_failed), mb(result.summary.origin_bytes())});
      json_rows.push_back(
          {driver::json_str("grid", "two-deaths-evictions"),
           driver::json_str("scheme", driver::scheme_name(schemes[s])),
           driver::json_str("repair", repair ? "on" : "off"),
           driver::json_num("stripe_objects_tracked", result.store.stripe_objects_tracked),
           driver::json_num("stripes_stranded", result.store.stripes_stranded),
           driver::json_num("stripes_healed", result.store.stripes_healed),
           driver::json_num("repair_offers", result.store.repair_offers),
           driver::json_num("repair_adopted", result.store.repair_adopted),
           driver::json_num("repair_abandoned", result.store.repair_abandoned),
           driver::json_num("repair_bytes", result.store.repair_bytes),
           driver::json_num("repair_rounds", result.store.repair_rounds),
           driver::json_num("repair_round_bytes_max", result.store.repair_round_bytes_max),
           driver::json_num("degraded_failed", result.store.degraded_failed),
           driver::json_num("origin_bytes", result.summary.origin_bytes())});
      if (repair) {
        if (result.store.stripes_healed == 0) {
          std::cerr << "FAIL: repair-on run healed no stripes ("
                    << driver::scheme_name(schemes[s]) << ")\n";
          ok = false;
        }
        if (result.store.repair_round_bytes_max > kRepairBudget) {
          std::cerr << "FAIL: a repair round exceeded the byte budget ("
                    << result.store.repair_round_bytes_max << " > " << kRepairBudget << ")\n";
          ok = false;
        }
        if (off != nullptr && result.store.stripes_stranded > off->store.stripes_stranded) {
          std::cerr << "FAIL: repair-on stranded more than repair-off ("
                    << result.store.stripes_stranded << " > " << off->store.stripes_stranded
                    << ", " << driver::scheme_name(schemes[s]) << ")\n";
          ok = false;
        }
      }
    }
  }
  std::cout << "\n## proxies 2 and 5 lost for good (0.30, 0.55) under a " << mb(dir_budget)
            << " MB chunk-directory budget\n";
  driver::print_table(std::cout, rows);

  // ---- Grid 2: a third death, no eviction pressure ----
  std::vector<driver::ExperimentConfig> three_death_configs;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const driver::ExperimentResult& probe = healthy[s];
    const auto deadline = std::max<SimTime>(
        static_cast<SimTime>(std::llround(probe.latency_p99 * 20.0)), 1000);
    for (const bool repair : {false, true}) {
      driver::ExperimentConfig config = probes[s];
      config.membership.swim.enabled = true;
      config.payload.erasure.restripe = repair;
      config.payload.erasure.repair_bytes_per_round = kRepairBudget;
      config.fault_plan.crashes.push_back(crash_at(probe, 2, 0.25));
      config.fault_plan.crashes.push_back(crash_at(probe, 5, 0.45));
      config.fault_plan.crashes.push_back(crash_at(probe, 7, 0.65));
      config.request_timeout = deadline;
      three_death_configs.push_back(config);
    }
  }
  const std::vector<driver::ExperimentResult> three_deaths =
      driver::run_parallel(three_death_configs, trace, workers);

  rows.clear();
  rows.push_back({"scheme", "repair", "tracked", "stranded", "healed", "repair_mb", "rounds",
                  "degraded_failed", "origin_mb"});
  index = 0;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    for (const bool repair : {false, true}) {
      const driver::ExperimentResult& result = three_deaths[index++];
      rows.push_back(
          {std::string(driver::scheme_name(schemes[s])), repair ? "on" : "off",
           std::to_string(result.store.stripe_objects_tracked),
           std::to_string(result.store.stripes_stranded),
           std::to_string(result.store.stripes_healed), mb(result.store.repair_bytes),
           std::to_string(result.store.repair_rounds),
           std::to_string(result.store.degraded_failed), mb(result.summary.origin_bytes())});
      json_rows.push_back(
          {driver::json_str("grid", "three-deaths"),
           driver::json_str("scheme", driver::scheme_name(schemes[s])),
           driver::json_str("repair", repair ? "on" : "off"),
           driver::json_num("stripe_objects_tracked", result.store.stripe_objects_tracked),
           driver::json_num("stripes_stranded", result.store.stripes_stranded),
           driver::json_num("stripes_healed", result.store.stripes_healed),
           driver::json_num("repair_bytes", result.store.repair_bytes),
           driver::json_num("repair_rounds", result.store.repair_rounds),
           driver::json_num("degraded_failed", result.store.degraded_failed),
           driver::json_num("origin_bytes", result.summary.origin_bytes())});
      if (repair && result.store.stripes_stranded != 0) {
        std::cerr << "FAIL: repaired cluster stranded "
                  << result.store.stripes_stranded << " stripes after three deaths ("
                  << driver::scheme_name(schemes[s]) << ")\n";
        ok = false;
      }
      if (!repair && result.store.stripes_stranded == 0) {
        std::cerr << "FAIL: unrepaired cluster stranded nothing after three deaths ("
                  << driver::scheme_name(schemes[s])
                  << ") — the loss window never opened, the comparison is vacuous\n";
        ok = false;
      }
    }
  }
  std::cout << "\n## a third death (proxy 7 at 0.65), no eviction pressure\n";
  driver::print_table(std::cout, rows);

  std::cout << "\ntracked/stranded is the post-run stripe census over surviving proxies:"
            << "\nobjects with any chunk still directory-resident / those below k chunks"
            << "\n(no longer reconstructible); healed counts acked re-stripe offers and"
            << "\nround_max_kb audits the per-round repair byte budget ("
            << kRepairBudget / 1024 << " KiB)\n";
  if (!driver::write_json_rows(json_path, json_rows)) return 1;
  if (!json_path.empty()) std::cout << "wrote " << json_path << "\n";
  return ok ? 0 : 1;
}
