// Extension EXT-MODEL — analytical walk model vs measured behaviour.
//
// The paper's conclusion asks for "a theoretical framework to explain
// emerging attributes"; driver/walk_model.h is the first piece: an exact
// absorbing-chain evaluation of the cold random search.  This bench prints
// the model's hit probability and expected hops per replica count next to
// measurements from the real simulator (fresh deployment per sample, r
// warmed holders, one probe each).
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/adc_proxy.h"
#include "driver/walk_model.h"
#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"

namespace {

using namespace adc;

struct Measured {
  double hit_rate;
  double hops;
};

Measured measure(int proxies, int replicas, int max_forwards, int samples) {
  std::uint64_t hits = 0;
  double hops = 0.0;
  for (int s = 0; s < samples; ++s) {
    core::AdcConfig config;
    config.single_table_size = 64;
    config.multiple_table_size = 64;
    config.caching_table_size = 16;
    config.max_forwards = max_forwards;

    sim::Simulator sim(static_cast<std::uint64_t>(s) + 1);
    std::vector<NodeId> ids;
    for (int i = 0; i < proxies; ++i) ids.push_back(i);
    std::vector<core::AdcProxy*> nodes;
    for (int i = 0; i < proxies; ++i) {
      auto node = std::make_unique<core::AdcProxy>(i, "p" + std::to_string(i), config, ids,
                                                   static_cast<NodeId>(proxies));
      nodes.push_back(node.get());
      sim.add_node(std::move(node));
    }
    sim.add_node(std::make_unique<proxy::OriginServer>(static_cast<NodeId>(proxies), "origin"));
    proxy::VectorStream stream({42});
    auto client_node = std::make_unique<proxy::Client>(static_cast<NodeId>(proxies + 1),
                                                       "client", stream, ids);
    auto* client = client_node.get();
    sim.add_node(std::move(client_node));
    for (int i = 0; i < replicas; ++i) nodes[static_cast<std::size_t>(i)]->warm_cache(42);

    client->start(sim);
    sim.run();
    hits += sim.metrics().summary().hits;
    hops += sim.metrics().summary().avg_hops();
  }
  return {static_cast<double>(hits) / samples, hops / samples};
}

}  // namespace

int main() {
  constexpr int kProxies = 5;
  constexpr int kForwards = 8;
  constexpr int kSamples = 4000;

  std::cout << "# Extension: analytical walk model vs simulator (n=" << kProxies
            << ", F=" << kForwards << ", " << kSamples << " samples per point)\n";

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"replicas", "model_hit", "sim_hit", "model_hops", "sim_hops"});
  for (int replicas = 0; replicas <= kProxies; ++replicas) {
    const driver::WalkPrediction model =
        driver::predict_walk({kProxies, replicas, kForwards});
    const Measured sim = measure(kProxies, replicas, kForwards, kSamples);
    rows.push_back({std::to_string(replicas), driver::fmt(model.hit_probability, 4),
                    driver::fmt(sim.hit_rate, 4), driver::fmt(model.expected_hops, 3),
                    driver::fmt(sim.hops, 3)});
  }
  driver::print_table(std::cout, rows);
  std::cout << "\n(each simulator point: fresh 5-proxy deployment per sample, r proxies\n"
            << " warmed, one cold probe — the regime the chain models.)\n";
  return 0;
}
