// Shared setup for the figure-reproduction bench binaries.
//
// Every bench runs the paper's deployment (5 proxies; single=20k,
// multiple=20k, caching=10k; ~3.99M-request PolyMix-like trace) scaled by
// ADC_BENCH_SCALE (default 0.1 so the whole suite finishes in minutes;
// set ADC_BENCH_SCALE=1.0 for the paper-scale run).  Table sizes and the
// workload scale together, preserving the cache-to-working-set ratios the
// paper's results depend on.
#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "driver/experiment.h"
#include "driver/parallel.h"
#include "driver/report.h"
#include "driver/sweep.h"
#include "util/string_util.h"
#include "workload/polygraph.h"

namespace adc::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("ADC_BENCH_SCALE")) {
    if (const auto parsed = util::parse_double(env); parsed && *parsed > 0.0) {
      return *parsed;
    }
    std::cerr << "ignoring unparsable ADC_BENCH_SCALE='" << env << "'\n";
  }
  return 0.1;
}

/// Finds `--name VALUE` / `--name=VALUE` in a bench binary's argv and
/// returns the raw value, or nullopt when the flag is absent.  `name`
/// carries no leading dashes.
inline std::optional<std::string_view> bench_flag(int argc, const char* const* argv,
                                                  std::string_view name) {
  const std::string separate = "--" + std::string(name);
  const std::string inline_form = separate + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == separate && i + 1 < argc) return std::string_view(argv[i + 1]);
    if (arg.rfind(inline_form, 0) == 0) return arg.substr(inline_form.size());
  }
  return std::nullopt;
}

/// Parses `--workers N` / `--workers=N` from a bench binary's argv.
/// Absent or unparsable: returns `fallback`, which
/// driver::resolve_workers() maps 0 -> hardware concurrency.  `--workers
/// 1` preserves the serial path; any other count produces bit-identical
/// metrics (modulo wall_seconds) — the determinism test in
/// tests/driver/parallel_test.cpp enforces it.
inline int bench_workers(int argc, const char* const* argv, int fallback = 0) {
  if (const auto value = bench_flag(argc, argv, "workers")) {
    if (const auto parsed = util::parse_int(*value)) return static_cast<int>(*parsed);
    std::cerr << "ignoring unparsable --workers '" << *value << "'\n";
  }
  return fallback;
}

/// Parses `--json PATH`: where the bench writes its result grid as a JSON
/// array of flat objects (driver::write_json_rows).  Empty = stdout only.
inline std::string bench_json_path(int argc, const char* const* argv) {
  if (const auto value = bench_flag(argc, argv, "json")) return std::string(*value);
  return {};
}

/// Parses `--scale N`: a workload multiplier applied on top of
/// ADC_BENCH_SCALE (N > 1 grows the trace past the paper's 3.99M requests
/// for planet-scale runs; PolygraphConfig::scaled accepts factors above 1).
inline double bench_extra_scale(int argc, const char* const* argv, double fallback = 1.0) {
  if (const auto value = bench_flag(argc, argv, "scale")) {
    if (const auto parsed = util::parse_double(*value); parsed && *parsed > 0.0) return *parsed;
    std::cerr << "ignoring unparsable --scale '" << *value << "'\n";
  }
  return fallback;
}

inline std::size_t scaled_size(std::size_t paper_value, double scale) {
  const auto scaled = static_cast<std::size_t>(static_cast<double>(paper_value) * scale);
  return scaled == 0 ? 1 : scaled;
}

/// The paper's default experiment (Section V.2) at the given scale.
inline driver::ExperimentConfig paper_config(double scale) {
  driver::ExperimentConfig config;
  config.scheme = driver::Scheme::kAdc;
  config.proxies = 5;
  config.adc.single_table_size = scaled_size(20000, scale);
  config.adc.multiple_table_size = scaled_size(20000, scale);
  config.adc.caching_table_size = scaled_size(10000, scale);
  config.seed = 1;
  // The moving-average window follows the paper's 5000-request window at
  // full scale and shrinks with the workload.
  config.ma_window = scaled_size(5000, scale);
  config.sample_every = scaled_size(5000, scale);
  return config;
}

inline workload::Trace paper_trace(double scale) {
  const auto config = workload::PolygraphConfig::scaled(scale);
  return workload::generate_polygraph_trace(config);
}

/// One experiment summary as a flat JSON row (for --json artifacts): the
/// same metrics print_summary writes, machine-readable.
inline std::vector<driver::JsonField> summary_json_row(std::string_view label,
                                                       const driver::ExperimentResult& result) {
  return {driver::json_str("label", label),
          driver::json_num("requests", result.summary.completed),
          driver::json_num("hit_rate", result.summary.hit_rate(), 4),
          driver::json_num("avg_hops", result.summary.avg_hops(), 4),
          driver::json_num("avg_latency", result.summary.avg_latency(), 4),
          driver::json_num("latency_p99", result.latency_p99, 2),
          driver::json_num("latency_p999", result.latency_p999, 2),
          driver::json_num("fairness", result.summary.request_fairness(), 4),
          driver::json_num("origin_fetches", result.origin_served)};
}

inline void print_run_banner(const char* figure, double scale,
                             const workload::Trace& trace) {
  const auto stats = trace.stats();
  std::cout << "# " << figure << "  (scale=" << scale << ", requests="
            << util::with_thousands(stats.requests) << ", unique="
            << util::with_thousands(stats.unique_objects) << ", recurrence="
            << driver::fmt(stats.recurrence_rate, 3) << ")\n";
}

}  // namespace adc::bench
