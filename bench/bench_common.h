// Shared setup for the figure-reproduction bench binaries.
//
// Every bench runs the paper's deployment (5 proxies; single=20k,
// multiple=20k, caching=10k; ~3.99M-request PolyMix-like trace) scaled by
// ADC_BENCH_SCALE (default 0.1 so the whole suite finishes in minutes;
// set ADC_BENCH_SCALE=1.0 for the paper-scale run).  Table sizes and the
// workload scale together, preserving the cache-to-working-set ratios the
// paper's results depend on.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "driver/experiment.h"
#include "driver/parallel.h"
#include "driver/report.h"
#include "driver/sweep.h"
#include "util/string_util.h"
#include "workload/polygraph.h"

namespace adc::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("ADC_BENCH_SCALE")) {
    if (const auto parsed = util::parse_double(env); parsed && *parsed > 0.0) {
      return *parsed;
    }
    std::cerr << "ignoring unparsable ADC_BENCH_SCALE='" << env << "'\n";
  }
  return 0.1;
}

/// Parses `--workers N` / `--workers=N` from a bench binary's argv (the
/// figure benches take no other flags).  Absent or unparsable: returns
/// `fallback`, which driver::resolve_workers() maps 0 -> hardware
/// concurrency.  `--workers 1` preserves the serial path; any other count
/// produces bit-identical metrics (modulo wall_seconds) — the determinism
/// test in tests/driver/parallel_test.cpp enforces it.
inline int bench_workers(int argc, const char* const* argv, int fallback = 0) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (arg == "--workers" && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.rfind("--workers=", 0) == 0) {
      value = arg.substr(10);
    } else {
      continue;
    }
    if (const auto parsed = util::parse_int(value)) return static_cast<int>(*parsed);
    std::cerr << "ignoring unparsable --workers '" << value << "'\n";
  }
  return fallback;
}

inline std::size_t scaled_size(std::size_t paper_value, double scale) {
  const auto scaled = static_cast<std::size_t>(static_cast<double>(paper_value) * scale);
  return scaled == 0 ? 1 : scaled;
}

/// The paper's default experiment (Section V.2) at the given scale.
inline driver::ExperimentConfig paper_config(double scale) {
  driver::ExperimentConfig config;
  config.scheme = driver::Scheme::kAdc;
  config.proxies = 5;
  config.adc.single_table_size = scaled_size(20000, scale);
  config.adc.multiple_table_size = scaled_size(20000, scale);
  config.adc.caching_table_size = scaled_size(10000, scale);
  config.seed = 1;
  // The moving-average window follows the paper's 5000-request window at
  // full scale and shrinks with the workload.
  config.ma_window = scaled_size(5000, scale);
  config.sample_every = scaled_size(5000, scale);
  return config;
}

inline workload::Trace paper_trace(double scale) {
  const auto config = workload::PolygraphConfig::scaled(scale);
  return workload::generate_polygraph_trace(config);
}

inline void print_run_banner(const char* figure, double scale,
                             const workload::Trace& trace) {
  const auto stats = trace.stats();
  std::cout << "# " << figure << "  (scale=" << scale << ", requests="
            << util::with_thousands(stats.requests) << ", unique="
            << util::with_thousands(stats.unique_objects) << ", recurrence="
            << driver::fmt(stats.recurrence_rate, 3) << ")\n";
}

}  // namespace adc::bench
