// Extension EXT-NP — "Number of proxies" (paper Section V.1.2): one of the
// paper's five experiment parameters, listed but not plotted (their
// hardware capped the distributed runs at 8 hosts; the simulator has no
// such cap).
//
// Sweeps the proxy count for ADC and CARP with *fixed per-proxy* table
// sizes, so adding proxies adds aggregate capacity — the deployment
// question an operator actually faces.  Expected shapes: hit rate grows
// with aggregate cache until the hot set is covered; ADC's random-walk
// hops grow with the membership while CARP's stay constant.
#include <iostream>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: number of proxies (1..12)", scale, trace);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"proxies", "adc_hit", "carp_hit", "adc_hops", "carp_hops",
                  "adc_origin", "carp_origin"});
  for (const int proxies : {1, 2, 3, 5, 8, 12}) {
    driver::ExperimentConfig adc_config = bench::paper_config(scale);
    adc_config.proxies = proxies;
    adc_config.sample_every = 0;
    driver::ExperimentConfig carp_config = adc_config;
    carp_config.scheme = driver::Scheme::kCarp;
    const auto adc_result = driver::run_experiment(adc_config, trace);
    const auto carp_result = driver::run_experiment(carp_config, trace);
    rows.push_back({std::to_string(proxies),
                    driver::fmt(adc_result.summary.hit_rate(), 3),
                    driver::fmt(carp_result.summary.hit_rate(), 3),
                    driver::fmt(adc_result.summary.avg_hops(), 2),
                    driver::fmt(carp_result.summary.avg_hops(), 2),
                    std::to_string(adc_result.origin_served),
                    std::to_string(carp_result.origin_served)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
