// Extension EXT-NP — "Number of proxies" (paper Section V.1.2): one of the
// paper's five experiment parameters, listed but not plotted (their
// hardware capped the distributed runs at 8 hosts; the simulator has no
// such cap).
//
// Sweeps the proxy count for ADC and CARP with *fixed per-proxy* table
// sizes, so adding proxies adds aggregate capacity — the deployment
// question an operator actually faces.  Expected shapes: hit rate grows
// with aggregate cache until the hot set is covered; ADC's random-walk
// hops grow with the membership while CARP's stay constant.
#include <iostream>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace adc;

  const double scale = bench::bench_scale();
  const int workers = driver::resolve_workers(bench::bench_workers(argc, argv));
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: number of proxies (1..12)", scale, trace);
  std::cout << "# workers=" << workers << '\n';

  // Interleave ADC and CARP configs per proxy count and fan the whole grid
  // out at once: results come back in submission order, so row i reads
  // from slots 2i (ADC) and 2i + 1 (CARP).
  const std::vector<int> proxy_counts = {1, 2, 3, 5, 8, 12};
  std::vector<driver::ExperimentConfig> configs;
  for (const int proxies : proxy_counts) {
    driver::ExperimentConfig adc_config = bench::paper_config(scale);
    adc_config.proxies = proxies;
    adc_config.sample_every = 0;
    driver::ExperimentConfig carp_config = adc_config;
    carp_config.scheme = driver::Scheme::kCarp;
    configs.push_back(adc_config);
    configs.push_back(carp_config);
  }
  const auto results = driver::run_parallel(configs, trace, workers);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"proxies", "adc_hit", "carp_hit", "adc_hops", "carp_hops",
                  "adc_origin", "carp_origin"});
  for (std::size_t i = 0; i < proxy_counts.size(); ++i) {
    const auto& adc_result = results[2 * i];
    const auto& carp_result = results[2 * i + 1];
    rows.push_back({std::to_string(proxy_counts[i]),
                    driver::fmt(adc_result.summary.hit_rate(), 3),
                    driver::fmt(carp_result.summary.hit_rate(), 3),
                    driver::fmt(adc_result.summary.avg_hops(), 2),
                    driver::fmt(carp_result.summary.avg_hops(), 2),
                    std::to_string(adc_result.origin_served),
                    std::to_string(carp_result.origin_served)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
