// Extension EXT-CHURN — message loss x proxy churn grid (paper Section
// V.1 stops at a single cold restart; this sweeps the two failure axes
// together): every message is dropped with probability `loss`, and the
// churn schedule crashes proxy 2 for a window of simulated time (once, or
// twice for "periodic"), dropping everything to or from it while down.
//
// Lossy runs need the client's per-request deadline, so expired requests
// show up as a failure rate instead of a stalled closed loop.  ADC routes
// around the damage (stale table entries invalidate into origin fetches
// and relearn); CARP keeps hashing into the dead owner until it returns.
//
// Accepts --workers N (0 = hardware concurrency); the grid is
// bit-identical at any worker count.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"

namespace {

using namespace adc;

double window_mean(const std::vector<sim::SeriesPoint>& series, std::uint64_t begin,
                   std::uint64_t end) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& point : series) {
    if (point.requests > begin && point.requests <= end) {
      sum += point.hit_rate;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

struct ChurnSchedule {
  const char* name;
  /// Crash windows as fractions of the healthy run's simulated duration.
  std::vector<std::pair<double, double>> windows;
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: message loss x proxy churn", scale, trace);
  const int workers = bench::bench_workers(argc, argv);

  const std::vector<driver::Scheme> schemes = {driver::Scheme::kAdc, driver::Scheme::kCarp};
  const std::vector<double> losses = {0.0, 0.02, 0.05};
  const std::vector<ChurnSchedule> churns = {
      {"none", {}},
      {"crash", {{0.40, 0.55}}},
      {"periodic", {{0.25, 0.35}, {0.55, 0.65}, {0.80, 0.90}}},
  };

  // Healthy probe per scheme: its simulated duration places the crash
  // windows, and its tail latency sizes the request deadline so only
  // genuinely lost requests expire.
  std::vector<driver::ExperimentConfig> probes;
  for (const auto scheme : schemes) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = scheme;
    probes.push_back(config);
  }
  const std::vector<driver::ExperimentResult> probe_results =
      driver::run_parallel(probes, trace, workers);

  std::vector<driver::ExperimentConfig> configs;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const SimTime sim_end = probe_results[s].sim_end_time;
    const auto deadline = std::max<SimTime>(
        static_cast<SimTime>(std::llround(probe_results[s].latency_p99 * 20.0)), 1000);
    for (const double loss : losses) {
      for (const ChurnSchedule& churn : churns) {
        driver::ExperimentConfig config = probes[s];
        config.fault_plan.drop_prob = loss;
        for (const auto& [from, until] : churn.windows) {
          fault::CrashWindow window;
          window.node = 2;
          window.at = static_cast<SimTime>(static_cast<double>(sim_end) * from);
          window.restart = static_cast<SimTime>(static_cast<double>(sim_end) * until);
          window.flush_state = true;
          config.fault_plan.crashes.push_back(window);
        }
        if (!config.fault_plan.is_zero()) config.request_timeout = deadline;
        configs.push_back(config);
      }
    }
  }
  const std::vector<driver::ExperimentResult> results =
      driver::run_parallel(configs, trace, workers);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "loss", "churn", "hit_rate", "tail_hit", "fail_rate", "drops",
                  "timeouts"});
  const std::uint64_t tail = std::max<std::uint64_t>(trace.size() / 10, 1000);
  std::size_t index = 0;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    for (const double loss : losses) {
      for (const ChurnSchedule& churn : churns) {
        const driver::ExperimentResult& result = results[index++];
        // Series points are indexed by *completed* requests, so the tail
        // window must be too — failed requests never produce a sample.
        const std::uint64_t completed = result.summary.completed;
        const std::uint64_t tail_begin = completed > tail ? completed - tail : 0;
        rows.push_back({std::string(driver::scheme_name(schemes[s])), driver::fmt(loss, 2),
                        churn.name, driver::fmt(result.summary.hit_rate(), 3),
                        driver::fmt(window_mean(result.series, tail_begin, completed), 3),
                        driver::fmt(result.summary.failure_rate(), 3),
                        std::to_string(result.faults.total_drops()),
                        std::to_string(result.faults.timeouts)});
      }
    }
  }

  driver::print_table(std::cout, rows);
  std::cout << "\ncrash windows hit proxy[2] (state flushed on entry); tail_hit averages the"
            << "\nlast " << tail << " requests — recovery after the final restart\n";
  return 0;
}
