// Figure 12 — Average hops per request, ADC vs hashing (CARP).
//
// A hop is one message transfer (client-proxy, proxy-proxy, proxy-server,
// and each backwarding transfer).  Paper's shape: ADC needs on average
// about two more hops than the hashing baseline — the price of its random
// search — with ADC around 7 hops in its configuration.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace adc;

  const double scale = bench::bench_scale();
  const std::string json_path = bench::bench_json_path(argc, argv);
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Figure 12: hops, ADC vs hashing", scale, trace);

  driver::ExperimentConfig adc_config = bench::paper_config(scale);
  driver::ExperimentConfig carp_config = adc_config;
  carp_config.scheme = driver::Scheme::kCarp;

  const driver::ExperimentResult adc_result = driver::run_experiment(adc_config, trace);
  const driver::ExperimentResult carp_result = driver::run_experiment(carp_config, trace);

  driver::print_series_csv(std::cout, "adc", adc_result.series);
  driver::print_series_csv(std::cout, "carp", carp_result.series);

  std::cout << '\n';
  driver::print_summary(std::cout, "adc ", adc_result);
  driver::print_summary(std::cout, "carp", carp_result);
  std::cout << "\navg_hops adc=" << driver::fmt(adc_result.summary.avg_hops(), 3)
            << " carp=" << driver::fmt(carp_result.summary.avg_hops(), 3)
            << " delta=" << driver::fmt(adc_result.summary.avg_hops() -
                                            carp_result.summary.avg_hops(), 3)
            << "\nhop_distribution adc p50=" << adc_result.hops_p50
            << " p95=" << adc_result.hops_p95 << " max=" << adc_result.hops_max
            << " | carp p50=" << carp_result.hops_p50 << " p95=" << carp_result.hops_p95
            << " max=" << carp_result.hops_max << '\n';
  if (!driver::write_json_rows(json_path, {bench::summary_json_row("adc", adc_result),
                                           bench::summary_json_row("carp", carp_result)})) {
    return 1;
  }
  return 0;
}
