// Figure 14 — Average hops vs table size, same sweep as Figure 13.
//
// Paper's shape: all three curves are mildly declining and the total
// variation stays within about a quarter hop of the ~7-hop average —
// larger tables help requests resolve slightly earlier, with the single
// table showing the most visible decline.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace adc;

  const double scale = bench::bench_scale();
  const int workers = driver::resolve_workers(bench::bench_workers(argc, argv));
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Figure 14: hops by table size", scale, trace);
  std::cout << "# workers=" << workers << '\n';

  const driver::ExperimentConfig base = bench::paper_config(scale);
  const auto sizes = driver::paper_sweep_sizes(scale);
  const auto points = driver::run_table_sweep(
      base, trace,
      {driver::SweptTable::kCaching, driver::SweptTable::kMultiple,
       driver::SweptTable::kSingle},
      sizes, workers);

  driver::print_sweep_csv(std::cout, points);

  double min_hops = 1e300;
  double max_hops = 0.0;
  for (const auto& p : points) {
    min_hops = std::min(min_hops, p.avg_hops);
    max_hops = std::max(max_hops, p.avg_hops);
  }
  std::cout << "\nhops_range min=" << driver::fmt(min_hops, 3)
            << " max=" << driver::fmt(max_hops, 3)
            << " spread=" << driver::fmt(max_hops - min_hops, 3) << '\n';
  return 0;
}
