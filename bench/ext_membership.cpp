// Extension EXT-MEMBER — live membership vs a static view under a
// permanent member loss (paper Section V.1 restarts its crashed proxy;
// here proxy 2 never comes back).  Each scheme runs the same permanent
// crash twice: once with the membership layer off (the static view every
// figure in the paper assumes) and once with the SWIM detector on, which
// confirms the death, rebuilds the CARP/HRW owner array (measuring the
// reshuffled URL fraction) or purges the ADC mapping entries naming the
// dead member, and fires the transition-gated anti-entropy rounds.
//
// The claim under test: self-healing membership converts a permanent
// member loss from a standing tax (every walk that touches the ghost
// burns a timeout or a degraded origin fetch, forever) into a one-time
// reshuffle whose post-crash hit rate re-approaches the healthy run.
//
// Accepts --workers N (0 = hardware concurrency); the grid is
// bit-identical at any worker count.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"

namespace {

using namespace adc;

double window_mean(const std::vector<sim::SeriesPoint>& series, std::uint64_t begin,
                   std::uint64_t end) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& point : series) {
    if (point.requests > begin && point.requests <= end) {
      sum += point.hit_rate;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: membership vs static view under permanent loss", scale,
                          trace);
  const int workers = bench::bench_workers(argc, argv);

  const std::vector<driver::Scheme> schemes = {driver::Scheme::kAdc, driver::Scheme::kCarp};
  constexpr double kCrashAt = 0.35;  // fraction of the healthy simulated run

  // Healthy probes: place the crash and size the request deadline.
  std::vector<driver::ExperimentConfig> probes;
  for (const auto scheme : schemes) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = scheme;
    probes.push_back(config);
  }
  const std::vector<driver::ExperimentResult> probe_results =
      driver::run_parallel(probes, trace, workers);

  std::vector<driver::ExperimentConfig> configs;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const auto deadline = std::max<SimTime>(
        static_cast<SimTime>(std::llround(probe_results[s].latency_p99 * 20.0)), 1000);
    for (const bool membership : {false, true}) {
      driver::ExperimentConfig config = probes[s];
      fault::CrashWindow window;
      window.node = 2;
      window.at = static_cast<SimTime>(static_cast<double>(probe_results[s].sim_end_time) *
                                       kCrashAt);
      window.restart = kSimTimeMax;  // permanent: the member never returns
      window.flush_state = true;
      config.fault_plan.crashes.push_back(window);
      config.request_timeout = deadline;
      config.membership.swim.enabled = membership;
      configs.push_back(config);
    }
  }
  const std::vector<driver::ExperimentResult> results =
      driver::run_parallel(configs, trace, workers);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "membership", "hit_rate", "post_hit", "dip", "fail_rate", "epoch",
                  "reshuffle", "repairs", "invalidated"});
  std::size_t index = 0;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    // The dip compares the post-crash request window against the healthy
    // run's same window (series points are indexed by completed requests,
    // and the crash lands at ~kCrashAt of those).
    const std::uint64_t healthy_completed = probe_results[s].summary.completed;
    const auto window_begin =
        static_cast<std::uint64_t>(static_cast<double>(healthy_completed) * kCrashAt);
    const double healthy_post =
        window_mean(probe_results[s].series, window_begin, healthy_completed);
    for (const bool membership : {false, true}) {
      const driver::ExperimentResult& result = results[index++];
      const double post =
          window_mean(result.series, window_begin, result.summary.completed);
      rows.push_back({std::string(driver::scheme_name(schemes[s])),
                      membership ? "swim" : "static",
                      driver::fmt(result.summary.hit_rate(), 3), driver::fmt(post, 3),
                      driver::fmt(healthy_post - post, 3),
                      driver::fmt(result.summary.failure_rate(), 3),
                      std::to_string(result.membership.max_epoch),
                      driver::fmt(result.membership.max_reshuffle_fraction, 3),
                      std::to_string(result.membership.repair_rounds),
                      std::to_string(result.faults.entries_invalidated)});
    }
  }

  driver::print_table(std::cout, rows);
  std::cout << "\nproxy[2] crashes for good at " << driver::fmt(kCrashAt, 2)
            << " of the healthy run (state flushed); post_hit averages the hit rate"
            << "\nover the post-crash request window, dip is the healthy run's same window"
            << "\nminus post_hit; reshuffle is the worst owner-map fraction a survivor"
            << "\nremeasured on the epoch bump\n";
  return 0;
}
