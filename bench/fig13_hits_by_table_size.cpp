// Figure 13 — Hit rate vs table size: each of the three ADC tables swept
// from 5k to 30k (scaled) while the other two stay at the defaults
// (single=20k, multiple=20k, caching=10k).
//
// Paper's shape: the caching-table size dominates the hit rate (more cache
// -> more hits, saturating above 10k); a 5k single-table already captures
// enough of the request flow; a multiple-table below 10k hurts, above 10k
// adds little.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace adc;

  const double scale = bench::bench_scale();
  const int workers = driver::resolve_workers(bench::bench_workers(argc, argv));
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Figure 13: hit rate by table size", scale, trace);
  std::cout << "# workers=" << workers << '\n';

  const driver::ExperimentConfig base = bench::paper_config(scale);
  const auto sizes = driver::paper_sweep_sizes(scale);
  const auto points = driver::run_table_sweep(
      base, trace,
      {driver::SweptTable::kCaching, driver::SweptTable::kMultiple,
       driver::SweptTable::kSingle},
      sizes, workers);

  driver::print_sweep_csv(std::cout, points);
  return 0;
}
