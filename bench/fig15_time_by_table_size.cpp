// Figure 15 — Processing time vs table size (google-benchmark wall time).
//
// Runs the same sweep as Figures 13/14 in the paper's *faithful* table
// mode: the single-table is a linked list searched element-wise and the
// ordered tables are contiguous arrays maintained by binary search — the
// structures whose cost the paper measured.  Paper's shape: growing the
// single and multiple tables slows the run down; growing the caching table
// has no significant impact.  (Our indexed mode removes the growth — see
// bench/ablation_table_impl.)
//
// Each (table, size) point is one google-benchmark benchmark so the wall
// times come with benchmark's reporting; iterations are pinned to 1
// because a full trace replay is already a long, deterministic run.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"

namespace {

using namespace adc;

// The trace is shared by all registered benchmarks (generated once).
std::unique_ptr<workload::Trace> g_trace;
double g_scale = 0.1;

void run_point(benchmark::State& state, driver::SweptTable table, std::size_t size) {
  driver::ExperimentConfig config = bench::paper_config(g_scale);
  config.adc.table_impl = cache::TableImpl::kFaithful;
  config.sample_every = 0;  // no series needed; keep the loop lean
  switch (table) {
    case driver::SweptTable::kCaching:
      config.adc.caching_table_size = size;
      break;
    case driver::SweptTable::kMultiple:
      config.adc.multiple_table_size = size;
      break;
    case driver::SweptTable::kSingle:
      config.adc.single_table_size = size;
      break;
  }
  for (auto _ : state) {
    const driver::ExperimentResult result = driver::run_experiment(config, *g_trace);
    state.counters["hit_rate"] = result.summary.hit_rate();
    state.counters["avg_hops"] = result.summary.avg_hops();
    state.counters["wall_seconds"] = result.wall_seconds;
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_scale = bench::bench_scale();

  // --workers defaults to 1 here, unlike fig13/14: this bench *measures*
  // per-point wall time, and concurrent runs contend for cores, inflating
  // each other's timings.  With --workers > 1 the sweep runs through the
  // parallel engine instead of google-benchmark, and the reported
  // wall_seconds column (per-run simulation-loop time) is what Figure 15
  // plots — useful for a quick look at the shape, not for clean timings.
  const int workers = driver::resolve_workers(bench::bench_workers(argc, argv, /*fallback=*/1));
  // Strip --workers so benchmark::Initialize doesn't reject it.
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      ++i;
      continue;
    }
    if (arg.rfind("--workers=", 0) == 0) continue;
    bench_args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_args.size());

  g_trace = std::make_unique<workload::Trace>(bench::paper_trace(g_scale));
  bench::print_run_banner("Figure 15: processing time by table size (faithful structures)",
                          g_scale, *g_trace);

  const auto sizes = driver::paper_sweep_sizes(g_scale);
  const std::vector<driver::SweptTable> tables = {
      driver::SweptTable::kCaching, driver::SweptTable::kMultiple, driver::SweptTable::kSingle};

  if (workers > 1) {
    std::cout << "# workers=" << workers << " (parallel mode; timings are contended)\n";
    driver::ExperimentConfig base = bench::paper_config(g_scale);
    base.adc.table_impl = cache::TableImpl::kFaithful;
    base.sample_every = 0;
    const auto points = driver::run_table_sweep(base, *g_trace, tables, sizes, workers);
    driver::print_sweep_csv(std::cout, points);
    return 0;
  }

  for (const auto table : tables) {
    for (const std::size_t size : sizes) {
      const std::string name = std::string("fig15/") +
                               std::string(driver::swept_table_name(table)) + "/" +
                               std::to_string(size);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [table, size](benchmark::State& state) {
                                     run_point(state, table, size);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }

  benchmark::Initialize(&bench_argc, bench_args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
