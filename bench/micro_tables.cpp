// Micro-benchmarks of the mapping-table operations (google-benchmark):
// single-table insert/lookup, ordered-table insert/remove/promote, and
// the full Update_Entry path, in both faithful and indexed modes.
//
// These isolate the per-operation costs behind Figure 15: the faithful
// structures scale linearly with the table size, the indexed ones stay
// flat.
#include <benchmark/benchmark.h>

#include "cache/ordered_table.h"
#include "cache/single_table.h"
#include "core/mapping_tables.h"
#include "util/rng.h"

namespace {

using namespace adc;

cache::TableImpl impl_of(const benchmark::State& state) {
  return state.range(1) == 0 ? cache::TableImpl::kFaithful : cache::TableImpl::kIndexed;
}

const char* impl_label(const benchmark::State& state) {
  return state.range(1) == 0 ? "faithful" : "indexed";
}

void BM_SingleTableChurn(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  cache::SingleTable table(capacity, impl_of(state));
  util::Rng rng(7);
  // Pre-fill to capacity so every insert evicts and every lookup scans a
  // full table in faithful mode.
  for (std::size_t i = 0; i < capacity; ++i) {
    table.insert_on_top(cache::make_entry(i + 1, 0, static_cast<SimTime>(i)));
  }
  SimTime now = static_cast<SimTime>(capacity);
  for (auto _ : state) {
    const ObjectId object = 1 + rng.below(2 * capacity);
    if (auto entry = table.remove(object)) {
      entry->calc_average(++now);
      table.insert_on_top(*entry);
    } else {
      table.insert_on_top(cache::make_entry(object, 0, ++now));
    }
  }
  state.SetLabel(impl_label(state));
  state.SetItemsProcessed(state.iterations());
}

void BM_OrderedTableChurn(benchmark::State& state) {
  const auto capacity = static_cast<std::size_t>(state.range(0));
  auto table = cache::make_ordered_table(capacity, impl_of(state));
  util::Rng rng(7);
  SimTime now = 0;
  for (std::size_t i = 0; i < capacity; ++i) {
    auto entry = cache::make_entry(i + 1, 0, ++now);
    entry.average = static_cast<SimTime>(rng.below(1000));
    table->insert(entry);
  }
  for (auto _ : state) {
    const ObjectId object = 1 + rng.below(2 * capacity);
    ++now;
    if (auto entry = table->remove(object)) {
      entry->calc_average(now);
      table->insert(*entry);
    } else {
      table->remove_worst();
      auto fresh = cache::make_entry(object, 0, now);
      fresh.average = static_cast<SimTime>(rng.below(1000));
      table->insert(fresh);
    }
  }
  state.SetLabel(impl_label(state));
  state.SetItemsProcessed(state.iterations());
}

void BM_UpdateEntry(benchmark::State& state) {
  core::AdcConfig config;
  config.single_table_size = static_cast<std::size_t>(state.range(0));
  config.multiple_table_size = static_cast<std::size_t>(state.range(0));
  config.caching_table_size = static_cast<std::size_t>(state.range(0)) / 2;
  config.table_impl = impl_of(state);
  core::MappingTables tables(config);
  util::Rng rng(7);
  SimTime now = 0;
  // Zipf-ish skew: small ids recur often, so entries flow between tables.
  const util::ZipfSampler zipf(4 * static_cast<std::size_t>(state.range(0)), 0.8);
  for (auto _ : state) {
    const auto object = static_cast<ObjectId>(zipf.sample(rng));
    tables.update_entry(object, static_cast<NodeId>(rng.below(5)), ++now);
  }
  state.SetLabel(impl_label(state));
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_SingleTableChurn)
    ->ArgsProduct({{1000, 4000, 16000}, {0, 1}})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_OrderedTableChurn)
    ->ArgsProduct({{1000, 4000, 16000}, {0, 1}})
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_UpdateEntry)
    ->ArgsProduct({{1000, 4000, 16000}, {0, 1}})
    ->Unit(benchmark::kNanosecond);

BENCHMARK_MAIN();
