// Ablation ABL-UNL — this paper vs its own predecessor: "Unlimited
// Adaptive Distributed Caching" (Section II.3) let the mapping tables grow
// indefinitely; the paper under reproduction bounds them with the
// single/multiple split and claims the bounded system keeps "the
// performance at the previously attained level".
//
// We run the bounded configuration (paper defaults) against an effectively
// unlimited one (tables sized to hold every object the trace contains) and
// compare hit rate, hops, and actual table occupancy.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Ablation: bounded vs unlimited mapping tables", scale, trace);

  driver::ExperimentConfig bounded = bench::paper_config(scale);
  bounded.sample_every = 0;

  driver::ExperimentConfig unlimited = bounded;
  const auto universe = trace.stats().unique_objects + 1;
  unlimited.adc.single_table_size = universe;
  unlimited.adc.multiple_table_size = universe;
  // The *cache* stays bounded in both configurations — storage is the
  // physical resource; only the bookkeeping tables differ.

  const driver::ExperimentResult b = driver::run_experiment(bounded, trace);
  const driver::ExperimentResult u = driver::run_experiment(unlimited, trace);

  driver::print_summary(std::cout, "tables/bounded  ", b);
  driver::print_summary(std::cout, "tables/unlimited", u);

  std::uint64_t bounded_entries = 0;
  std::uint64_t unlimited_entries = 0;
  for (const auto& proxy : b.proxies) bounded_entries += proxy.table_entries;
  for (const auto& proxy : u.proxies) unlimited_entries += proxy.table_entries;

  std::cout << "\nhit_rate bounded=" << driver::fmt(b.summary.hit_rate())
            << " unlimited=" << driver::fmt(u.summary.hit_rate())
            << " gap=" << driver::fmt(u.summary.hit_rate() - b.summary.hit_rate())
            << "\ntable_entries bounded=" << bounded_entries
            << " unlimited=" << unlimited_entries << " ("
            << driver::fmt(static_cast<double>(unlimited_entries) /
                               static_cast<double>(std::max<std::uint64_t>(bounded_entries, 1)),
                           1)
            << "x the memory)\n";
  return 0;
}
