// Extension EXT-ADVERSARIAL — scheme robustness under hostile workloads
// (ROADMAP: adversarial and planet-scale workload suite).
//
// The paper's comparison uses well-behaved PolyMix traffic; this bench
// stresses the schemes where content-addressed routing is structurally
// weakest, with the generators from src/workload/adversarial.h:
//
//   * hash-flood  — keys mined (against the real CARP array) to collide
//                   onto one owner, 80% of traffic aimed at them
//   * flash-crowd — one cold URL ramping to 30% of all traffic
//   * diurnal     — the active working set rotates between populations
//
// For each scenario x scheme (ADC, CARP, hierarchical) it reports hit
// rate, tail latency (p99 / p99.9) and the per-owner max/min fairness
// ratio plus the hottest member's share of all proxy-received requests —
// a CARP flood shows up as fairness exploding while ADC's replication
// spreads the same keys across members.
//
// Flags: --workers N (run grid in parallel; results are bit-identical at
// any count), --scale N (multiply request counts for planet-scale runs),
// --json PATH (write the grid as a JSON artifact for CI).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/adversarial.h"

namespace {

using namespace adc;

struct Scenario {
  const char* name;
  workload::Trace trace;
  int victim = -1;  // flood only: the mined owner index
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::bench_scale() * bench::bench_extra_scale(argc, argv);
  const int workers = driver::resolve_workers(bench::bench_workers(argc, argv));
  const std::string json_path = bench::bench_json_path(argc, argv);
  const auto requests = static_cast<std::uint64_t>(3'990'000 * scale);

  std::cout << "# Extension: adversarial workloads (hash-flood, flash-crowd, diurnal), scale="
            << scale << ", workers=" << workers << "\n";

  std::vector<Scenario> scenarios;
  {
    workload::HashFloodConfig flood;
    flood.requests = requests;
    scenarios.push_back(
        {"hash-flood", workload::generate_hash_flood_trace(flood), flood.victim});
    workload::FlashCrowdConfig flash;
    flash.requests = requests;
    scenarios.push_back({"flash-crowd", workload::generate_flash_crowd_trace(flash)});
    workload::DiurnalConfig diurnal;
    diurnal.requests = requests;
    scenarios.push_back({"diurnal", workload::generate_diurnal_trace(diurnal)});
  }

  const driver::Scheme schemes[] = {driver::Scheme::kAdc, driver::Scheme::kCarp,
                                    driver::Scheme::kHierarchical};

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scenario", "scheme", "hit_rate", "avg_hops", "p99", "p99.9", "fairness",
                  "max_share", "victim_share"});
  std::vector<std::vector<driver::JsonField>> json_rows;

  for (const Scenario& scenario : scenarios) {
    std::vector<driver::ExperimentConfig> configs;
    for (const driver::Scheme scheme : schemes) {
      driver::ExperimentConfig config = bench::paper_config(scale);
      config.scheme = scheme;
      config.sample_every = 0;
      configs.push_back(config);
    }
    const auto results = driver::run_parallel(configs, scenario.trace, workers);
    for (std::size_t s = 0; s < results.size(); ++s) {
      const driver::ExperimentResult& result = results[s];
      const double fairness = result.summary.request_fairness();
      const double max_share = sim::MetricsSummary::max_share(result.summary.owner_requests);
      double victim_share = 0.0;
      if (scenario.victim >= 0 &&
          static_cast<std::size_t>(scenario.victim) < result.summary.owner_requests.size()) {
        std::uint64_t total = 0;
        for (const std::uint64_t c : result.summary.owner_requests) total += c;
        if (total > 0) {
          victim_share = static_cast<double>(
                             result.summary.owner_requests[static_cast<std::size_t>(
                                 scenario.victim)]) /
                         static_cast<double>(total);
        }
      }
      rows.push_back({scenario.name, std::string(driver::scheme_name(configs[s].scheme)),
                      driver::fmt(result.summary.hit_rate(), 3),
                      driver::fmt(result.summary.avg_hops(), 2),
                      driver::fmt(result.latency_p99, 1), driver::fmt(result.latency_p999, 1),
                      driver::fmt(fairness, 2), driver::fmt(max_share, 3),
                      scenario.victim >= 0 ? driver::fmt(victim_share, 3) : "-"});
      json_rows.push_back(
          {driver::json_str("scenario", scenario.name),
           driver::json_str("scheme", driver::scheme_name(configs[s].scheme)),
           driver::json_num("requests", result.summary.completed),
           driver::json_num("hit_rate", result.summary.hit_rate(), 4),
           driver::json_num("avg_hops", result.summary.avg_hops(), 4),
           driver::json_num("latency_p99", result.latency_p99, 2),
           driver::json_num("latency_p999", result.latency_p999, 2),
           driver::json_num("fairness", fairness, 4),
           driver::json_num("max_share", max_share, 4),
           driver::json_num("victim_share", victim_share, 4)});
    }
  }
  driver::print_table(std::cout, rows);
  if (!driver::write_json_rows(json_path, json_rows)) return 1;
  if (!json_path.empty()) std::cout << "wrote " << json_path << "\n";
  return 0;
}
