// Extension EXT-FAIL — infrastructure changes (paper Section V.1 lists
// them as unapplied future work): one proxy cold-restarts mid-run, losing
// its cache and learned tables, and we measure how each scheme's hit rate
// dips and recovers.
//
// ADC relearns through its normal backwarding multicast (stale THIS
// entries at peers degrade to origin fetches that re-teach the tables);
// CARP's hash owner simply refills its LRU cache; the coordinator routes
// around nothing because it never knew about content in the first place.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"

namespace {

using namespace adc;

double window_mean(const std::vector<sim::SeriesPoint>& series, std::uint64_t begin,
                   std::uint64_t end) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& point : series) {
    if (point.requests > begin && point.requests <= end) {
      sum += point.hit_rate;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: proxy cold-restart and recovery", scale, trace);

  const auto fault_at = static_cast<std::uint64_t>(trace.size() * 3 / 5);
  const std::uint64_t window = std::max<std::uint64_t>(trace.size() / 20, 1000);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "pre_fault", "post_fault", "recovered", "dip", "final_hit"});

  for (const auto scheme : {driver::Scheme::kAdc, driver::Scheme::kCarp,
                            driver::Scheme::kHierarchical, driver::Scheme::kCoordinator,
                            driver::Scheme::kSoap}) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = scheme;
    config.fault.at_completed = fault_at;
    config.fault.proxy_index = 2;
    const driver::ExperimentResult result = driver::run_experiment(config, trace);

    const double pre = window_mean(result.series, fault_at - window, fault_at);
    const double post = window_mean(result.series, fault_at, fault_at + window);
    const double recovered =
        window_mean(result.series, fault_at + 3 * window, fault_at + 4 * window);
    rows.push_back({std::string(driver::scheme_name(scheme)), driver::fmt(pre, 3),
                    driver::fmt(post, 3), driver::fmt(recovered, 3),
                    driver::fmt(pre - post, 3), driver::fmt(result.summary.hit_rate(), 3)});
  }

  driver::print_table(std::cout, rows);
  std::cout << "\nfault injected at request " << fault_at << " (proxy[2] flushed); windows of "
            << window << " requests\n";
  return 0;
}
