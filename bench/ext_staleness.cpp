// Extension EXT-STALE — cache consistency under mutable objects.
//
// The paper's model (like its hashing baseline) assumes immutable objects;
// the broader literature it builds on (web cache consistency, Gwertzman &
// Seltzer) does not.  Here the origin updates every object on a jittered
// interval and we measure the *stale hit rate*: the fraction of cache hits
// that served outdated data.  ADC's selective caching holds popular
// objects for a long time and replicates them — both raise staleness —
// while CARP's single LRU copy refreshes on every churn cycle.  The sweep
// shows the freshness/hit-rate trade-off per scheme.
#include <iostream>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: stale hits under origin-side object updates", scale,
                          trace);

  // Mean update intervals in simulated time units.  A full trace spans
  // roughly trace.size() * avg_latency time units (~6M at the default
  // scale); the grid covers "churns many times per run" down to "changes
  // once or twice".
  std::vector<SimTime> intervals = {0, 200'000, 1'000'000, 5'000'000, 20'000'000};

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "update_interval", "hit_rate", "stale_rate", "stale_hits"});
  for (const auto scheme : {driver::Scheme::kAdc, driver::Scheme::kCarp,
                            driver::Scheme::kHierarchical}) {
    for (const SimTime interval : intervals) {
      driver::ExperimentConfig config = bench::paper_config(scale);
      config.scheme = scheme;
      config.sample_every = 0;
      config.object_update_interval = interval;
      const auto result = driver::run_experiment(config, trace);
      rows.push_back({std::string(driver::scheme_name(scheme)),
                      interval == 0 ? "off" : std::to_string(interval),
                      driver::fmt(result.summary.hit_rate(), 3),
                      driver::fmt(result.summary.stale_rate(), 4),
                      std::to_string(result.summary.stale_hits)});
    }
  }
  driver::print_table(std::cout, rows);
  return 0;
}
