// Ablation ABL-SEL — selective caching (ordered caching table, the paper's
// design) vs admit-all LRU caching inside the same ADC machinery.
//
// The paper (Section III.4) reports that "our algorithm works better with
// the approach of selective caching and an ordered table than a table
// based on a typical LRU algorithm"; this bench quantifies that claim.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Ablation: selective caching vs admit-all LRU", scale, trace);

  driver::ExperimentConfig selective = bench::paper_config(scale);
  driver::ExperimentConfig lru_all = selective;
  lru_all.adc.selective_caching = false;

  const driver::ExperimentResult sel_result = driver::run_experiment(selective, trace);
  const driver::ExperimentResult lru_result = driver::run_experiment(lru_all, trace);

  driver::print_summary(std::cout, "adc/selective", sel_result);
  driver::print_summary(std::cout, "adc/lru-all  ", lru_result);

  std::cout << "\nhit_rate selective=" << driver::fmt(sel_result.summary.hit_rate())
            << " lru_all=" << driver::fmt(lru_result.summary.hit_rate())
            << " delta=" << driver::fmt(sel_result.summary.hit_rate() -
                                            lru_result.summary.hit_rate())
            << '\n';
  return 0;
}
