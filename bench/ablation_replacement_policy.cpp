// Ablation ABL-POL — the hashing baseline's replacement policy.
//
// The paper runs its CARP baseline with LRU (Section V.1.1) and argues
// (Section III.4) that admit-all recency caching churns under one-timer
// traffic.  Swapping the baseline's policy (LRU / FIFO / LFU) bounds how
// much of the ADC-vs-hashing gap is about *placement* (the hash) versus
// *replacement* (the policy): LFU is the frequency-aware endpoint that
// shares selective caching's instincts.
#include <iostream>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Ablation: CARP replacement policy (LRU/FIFO/LFU) vs ADC", scale,
                          trace);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"configuration", "hit_rate", "avg_hops", "origin_fetches"});

  {
    driver::ExperimentConfig adc_config = bench::paper_config(scale);
    adc_config.sample_every = 0;
    const auto result = driver::run_experiment(adc_config, trace);
    rows.push_back({"adc/selective", driver::fmt(result.summary.hit_rate()),
                    driver::fmt(result.summary.avg_hops(), 3),
                    std::to_string(result.origin_served)});
  }
  for (const auto policy : {cache::Policy::kLru, cache::Policy::kFifo, cache::Policy::kLfu}) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = driver::Scheme::kCarp;
    config.baseline_policy = policy;
    config.sample_every = 0;
    const auto result = driver::run_experiment(config, trace);
    rows.push_back({"carp/" + std::string(cache::policy_name(policy)),
                    driver::fmt(result.summary.hit_rate()),
                    driver::fmt(result.summary.avg_hops(), 3),
                    std::to_string(result.origin_served)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
