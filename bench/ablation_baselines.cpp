// Ablation ABL-BASE — ADC against every implemented allocation scheme:
// CARP (the paper's baseline), consistent hashing, rendezvous hashing, a
// 2-level admit-all hierarchy and the central-coordinator load balancer
// from the paper's own previous work (Section II.1).
//
// All schemes get the same per-proxy cache capacity (the ADC caching-table
// size) so aggregate storage is comparable.
#include <iostream>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Ablation: ADC vs all baselines", scale, trace);

  const driver::ExperimentConfig base = bench::paper_config(scale);
  const std::vector<driver::Scheme> schemes = {
      driver::Scheme::kAdc,          driver::Scheme::kCarp,
      driver::Scheme::kConsistent,   driver::Scheme::kRendezvous,
      driver::Scheme::kHierarchical, driver::Scheme::kCoordinator,
      driver::Scheme::kSoap,
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "hit_rate", "avg_hops", "avg_latency", "origin_fetches", "wall_s"});
  for (const driver::Scheme scheme : schemes) {
    driver::ExperimentConfig config = base;
    config.scheme = scheme;
    config.sample_every = 0;
    const driver::ExperimentResult result = driver::run_experiment(config, trace);
    rows.push_back({std::string(driver::scheme_name(scheme)),
                    driver::fmt(result.summary.hit_rate()),
                    driver::fmt(result.summary.avg_hops(), 3),
                    driver::fmt(result.summary.avg_latency(), 2),
                    std::to_string(result.origin_served),
                    driver::fmt(result.wall_seconds, 3)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
