// Extension EXT-REP — replication vs partitioning.
//
// The paper's introduction positions ADC as combining hierarchical
// caching's *multiple copies* of hot documents with hashing's fast
// allocation.  This bench quantifies the copies: the cache-content
// duplication factor (total cached / distinct cached) and the load spread,
// side by side for every scheme.  Hashing schemes partition (factor 1.0);
// ADC replicates hot objects and spreads their load.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "driver/analysis.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: duplication factor and load balance", scale, trace);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "hit_rate", "total_cached", "distinct", "dup_factor",
                  "peak_load_share", "load_cv"});
  for (const auto scheme : {driver::Scheme::kAdc, driver::Scheme::kCarp,
                            driver::Scheme::kConsistent, driver::Scheme::kRendezvous,
                            driver::Scheme::kSoap}) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = scheme;
    config.sample_every = 0;
    config.collect_cache_contents = true;
    const driver::ExperimentResult result = driver::run_experiment(config, trace);
    const driver::DuplicationStats dup = driver::duplication(result.proxies);
    const driver::LoadStats load = driver::load_balance(result.proxies);
    rows.push_back({std::string(driver::scheme_name(scheme)),
                    driver::fmt(result.summary.hit_rate(), 3),
                    std::to_string(dup.total_cached), std::to_string(dup.distinct_cached),
                    driver::fmt(dup.factor, 3), driver::fmt(load.peak_share, 3),
                    driver::fmt(load.cv, 3)});
  }
  driver::print_table(std::cout, rows);
  std::cout << "\n(dup_factor 1.0 = pure partitioning; >1 = replicated content."
            << "  peak_load_share 0.2 = perfectly even over 5 proxies.)\n";
  return 0;
}
