// Micro-benchmarks of the wire-protocol codec: frame encode and decode
// throughput for the payloads the live runtime actually moves — bare
// messages (the common case), journey paths of typical random-walk depth,
// and the maximum-size backward stack.  Bytes/sec is the number to watch:
// the daemon encodes or decodes every frame on its event-loop thread, so
// codec cost bounds per-node message throughput.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "net/wire.h"
#include "util/rng.h"

namespace {

using namespace adc;

net::WireMessage sample_message(std::size_t path_len) {
  util::Rng rng(1234 + path_len);
  net::WireMessage wire;
  wire.msg.kind = sim::MessageKind::kReply;
  wire.msg.request_id = make_request_id(6, 999);
  wire.msg.object = rng.next();
  wire.msg.sender = 3;
  wire.msg.target = 1;
  wire.msg.client = 6;
  wire.msg.forward_count = 4;
  wire.msg.hops = 9;
  wire.msg.resolver = 2;
  wire.msg.cached = true;
  wire.msg.proxy_hit = true;
  wire.msg.version = 7;
  wire.msg.issued_at = 123456789;
  for (std::size_t i = 0; i < path_len; ++i) {
    wire.path.push_back(static_cast<NodeId>(rng.index(64)));
  }
  return wire;
}

void BM_WireEncode(benchmark::State& state) {
  const net::WireMessage wire = sample_message(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> out;
  std::size_t frame_bytes = 0;
  for (auto _ : state) {
    out.clear();
    net::encode_message(wire, &out);
    benchmark::DoNotOptimize(out.data());
    frame_bytes = out.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(frame_bytes));
}

void BM_WireDecode(benchmark::State& state) {
  const net::WireMessage wire = sample_message(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> bytes;
  net::encode_message(wire, &bytes);
  net::Frame frame;
  for (auto _ : state) {
    std::size_t consumed = 0;
    net::decode_frame(bytes.data(), bytes.size(), &consumed, &frame);
    benchmark::DoNotOptimize(frame);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes.size()));
}

void BM_WireEncodeHello(benchmark::State& state) {
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    net::encode_hello(net::Hello{6, sim::NodeKind::kClient}, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_WireRoundTrip(benchmark::State& state) {
  // Encode + decode back to back: the cost one forwarded message adds on
  // top of the protocol logic itself.
  const net::WireMessage wire = sample_message(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> bytes;
  net::Frame frame;
  for (auto _ : state) {
    bytes.clear();
    net::encode_message(wire, &bytes);
    std::size_t consumed = 0;
    net::decode_frame(bytes.data(), bytes.size(), &consumed, &frame);
    benchmark::DoNotOptimize(frame);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

// Path depths: none, a typical random walk (8), a deep walk, the cap.
BENCHMARK(BM_WireEncode)->Arg(0)->Arg(8)->Arg(64)->Arg(1024);
BENCHMARK(BM_WireDecode)->Arg(0)->Arg(8)->Arg(64)->Arg(1024);
BENCHMARK(BM_WireEncodeHello);
BENCHMARK(BM_WireRoundTrip)->Arg(0)->Arg(8);

BENCHMARK_MAIN();
