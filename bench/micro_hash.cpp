// Micro-benchmarks of the hashing substrate: MD5 digesting, FNV-1a,
// CRC-32, the CARP combine, and full owner selection for all three
// allocation schemes, plus a key-distribution spot check.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "hash/carp.h"
#include "hash/consistent_hash.h"
#include "hash/crc32.h"
#include "hash/fnv.h"
#include "hash/md5.h"
#include "hash/rendezvous.h"
#include "util/rng.h"
#include "workload/url_space.h"

namespace {

using namespace adc;

std::vector<std::string> sample_urls(std::size_t count) {
  workload::UrlSpace space;
  std::vector<std::string> urls;
  urls.reserve(count);
  for (std::size_t i = 0; i < count; ++i) urls.push_back(space.url_for(i + 1));
  return urls;
}

void BM_Md5Digest64(benchmark::State& state) {
  const auto urls = sample_urls(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Md5::digest64(urls[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Fnv1a64(benchmark::State& state) {
  const auto urls = sample_urls(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::fnv1a64(urls[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Crc32(benchmark::State& state) {
  const auto urls = sample_urls(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::crc32(urls[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CarpUrlHash(benchmark::State& state) {
  const auto urls = sample_urls(1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::carp_url_hash(urls[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}

hash::CarpArray make_array(int members) {
  std::vector<hash::CarpArray::Member> list;
  for (int i = 0; i < members; ++i) {
    list.push_back({"proxy[" + std::to_string(i) + "]", static_cast<NodeId>(i), 1.0});
  }
  return hash::CarpArray(std::move(list));
}

void BM_CarpOwner(benchmark::State& state) {
  const auto array = make_array(static_cast<int>(state.range(0)));
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.owner(static_cast<ObjectId>(rng.next())));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RingOwner(benchmark::State& state) {
  hash::ConsistentHashRing ring;
  for (int i = 0; i < state.range(0); ++i) {
    ring.add_member(static_cast<NodeId>(i), "proxy[" + std::to_string(i) + "]");
  }
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.owner(static_cast<ObjectId>(rng.next())));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RendezvousOwner(benchmark::State& state) {
  hash::RendezvousHash hrw;
  for (int i = 0; i < state.range(0); ++i) {
    hrw.add_member(static_cast<NodeId>(i), "proxy[" + std::to_string(i) + "]");
  }
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hrw.owner(static_cast<ObjectId>(rng.next())));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_Md5Digest64);
BENCHMARK(BM_Fnv1a64);
BENCHMARK(BM_Crc32);
BENCHMARK(BM_CarpUrlHash);
BENCHMARK(BM_CarpOwner)->Arg(5)->Arg(16)->Arg(64);
BENCHMARK(BM_RingOwner)->Arg(5)->Arg(16)->Arg(64);
BENCHMARK(BM_RendezvousOwner)->Arg(5)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
