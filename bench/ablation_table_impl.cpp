// Ablation ABL-DS — faithful (paper) vs indexed (production) mapping-table
// internals, at the largest sweep size where the difference matters most.
//
// The paper concludes "a more adapted data structure should provide
// speed-ups in the future versions of this algorithm" (Section V.3.3);
// this bench is that future version, run side by side.  Hit/hop results
// must be identical — only wall time may differ.
#include <cstdlib>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Ablation: faithful vs indexed table structures", scale, trace);

  driver::ExperimentConfig faithful = bench::paper_config(scale);
  faithful.adc.table_impl = cache::TableImpl::kFaithful;
  faithful.sample_every = 0;
  // Stress the structures: largest sweep size for single+multiple tables.
  faithful.adc.single_table_size = bench::scaled_size(30000, scale);
  faithful.adc.multiple_table_size = bench::scaled_size(30000, scale);

  driver::ExperimentConfig indexed = faithful;
  indexed.adc.table_impl = cache::TableImpl::kIndexed;

  const driver::ExperimentResult faithful_result = driver::run_experiment(faithful, trace);
  const driver::ExperimentResult indexed_result = driver::run_experiment(indexed, trace);

  driver::print_summary(std::cout, "tables/faithful", faithful_result);
  driver::print_summary(std::cout, "tables/indexed ", indexed_result);

  const bool results_match =
      faithful_result.summary.hits == indexed_result.summary.hits &&
      faithful_result.summary.total_hops == indexed_result.summary.total_hops;
  std::cout << "\nresults_identical=" << (results_match ? "yes" : "NO (bug!)")
            << " speedup=" << driver::fmt(faithful_result.wall_seconds /
                                              (indexed_result.wall_seconds > 0.0
                                                   ? indexed_result.wall_seconds
                                                   : 1e-9), 2)
            << "x\n";
  return results_match ? 0 : 1;
}
