// Extension EXT-BW — bandwidth-modeled links and the transfer scheduler,
// across ADC x CARP x hierarchical under an origin-egress sweep.
//
// Two grids on the paper deployment, both with the payload store on:
//   1. Origin-egress sweep: every send becomes a queued transfer
//      (serialization + DRR queueing at the sender's egress).  As the
//      origin's uplink tightens, misses contend for the same constrained
//      pipe: transfer-queue waits grow from zero to dominating the
//      response time, and the schemes order by byte hit rate — whoever
//      keeps more bytes out of the origin's queue degrades last.
//   2. Recovery placement: CARP + erasure tier, proxy 2 lost for good
//      mid-run, links constrained.  With the link model on, degraded
//      reads read per-egress backlog and ask only the lightest-loaded
//      stripe peers (chunk_requests_skipped counts the avoided asks);
//      with it off, every survivor is asked.
//
// Accepts --workers N (0 = hardware concurrency) and --json PATH for a
// machine-readable artifact; the grid is bit-identical at any worker
// count.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"

namespace {

using namespace adc;

std::string mb(std::uint64_t bytes) {
  return driver::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

std::string egress_label(std::uint64_t bytes_per_sec) {
  if (bytes_per_sec == 0) return "unlimited";
  return driver::fmt(static_cast<double>(bytes_per_sec) / (1024.0 * 1024.0), 1) + "MB/s";
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: bandwidth-modeled links and transfer scheduling", scale,
                          trace);
  const int workers = bench::bench_workers(argc, argv);
  const std::string json_path = bench::bench_json_path(argc, argv);
  std::vector<std::vector<driver::JsonField>> json_rows;

  const std::vector<driver::Scheme> schemes = {
      driver::Scheme::kAdc, driver::Scheme::kCarp, driver::Scheme::kHierarchical};
  // Origin uplink sweep; proxies keep a generous (but finite) egress so
  // DRR fairness between destinations stays in play throughout.
  const std::vector<std::uint64_t> origin_sweep = {0, 64u << 20, 4u << 20, 1u << 20};
  constexpr std::uint64_t kProxyEgress = 64u << 20;

  auto linked_config = [&](driver::Scheme scheme, std::uint64_t origin_egress) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = scheme;
    config.payload.enabled = true;
    config.link.enabled = true;
    config.link.node_egress_bytes_per_sec = kProxyEgress;
    config.link.origin_egress_bytes_per_sec = origin_egress;
    // Enough overlapping streams that misses actually contend for the
    // origin's uplink; at the paper's single closed loop no transfer
    // ever queues and the sweep is flat.
    config.concurrency = 16;
    return config;
  };

  // ---- Grid 1: the origin-egress sweep ----
  std::vector<driver::ExperimentConfig> sweep_configs;
  for (const auto scheme : schemes) {
    for (const std::uint64_t egress : origin_sweep) {
      sweep_configs.push_back(linked_config(scheme, egress));
    }
  }
  const std::vector<driver::ExperimentResult> swept =
      driver::run_parallel(sweep_configs, trace, workers);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "origin_egress", "hit_rate", "byte_hit", "origin_mb", "wait_p50",
                  "wait_p99", "wait_max", "queued"});
  std::size_t index = 0;
  for (const auto scheme : schemes) {
    for (const std::uint64_t egress : origin_sweep) {
      const driver::ExperimentResult& result = swept[index++];
      rows.push_back({std::string(driver::scheme_name(scheme)), egress_label(egress),
                      driver::fmt(result.summary.hit_rate(), 3),
                      driver::fmt(result.summary.byte_hit_rate(), 3),
                      mb(result.summary.origin_bytes()),
                      driver::fmt(result.link.wait_p50, 1),
                      driver::fmt(result.link.wait_p99, 1),
                      std::to_string(result.link.max_wait),
                      std::to_string(result.link.queued)});
      json_rows.push_back(
          {driver::json_str("grid", "sweep"),
           driver::json_str("scheme", driver::scheme_name(scheme)),
           driver::json_num("origin_egress_bytes_per_sec", egress),
           driver::json_num("hit_rate", result.summary.hit_rate(), 4),
           driver::json_num("byte_hit_rate", result.summary.byte_hit_rate(), 4),
           driver::json_num("origin_bytes", result.summary.origin_bytes()),
           driver::json_num("link_transfers", result.link.transfers),
           driver::json_num("link_queued", result.link.queued),
           driver::json_num("link_bytes", result.link.bytes),
           driver::json_num("wait_p50", result.link.wait_p50, 2),
           driver::json_num("wait_p99", result.link.wait_p99, 2),
           driver::json_num("wait_p999", result.link.wait_p999, 2),
           driver::json_num("wait_max", static_cast<double>(result.link.max_wait), 0),
           driver::json_num("store_bytes", result.summary.traffic.store_bytes),
           driver::json_num("control_messages",
                            result.summary.traffic.control_messages)});
    }
  }
  std::cout << "\n## origin-egress sweep (waits in sim ticks; 1 tick = 1ms)\n";
  driver::print_table(std::cout, rows);

  // ---- Grid 2: recovery placement under constrained links ----
  constexpr double kCrashAt = 0.35;
  constexpr std::uint64_t kConstrainedOrigin = 4u << 20;
  constexpr int kRecoveryDataChunks = 2;  // k=2 over 5 proxies: recovery has
                                          // more survivors than it needs, so
                                          // load steering has a choice
  // The carp run at the constrained origin rate times the crash window
  // (sweep_configs is scheme-major: carp is scheme 1, 4MB/s is egress
  // step 2).
  const driver::ExperimentResult& probe = swept[1 * origin_sweep.size() + 2];
  const auto deadline = std::max<SimTime>(
      static_cast<SimTime>(std::llround(probe.latency_p99 * 20.0)), 1000);

  std::vector<driver::ExperimentConfig> recovery_configs;
  for (const bool link_on : {false, true}) {
    driver::ExperimentConfig config = linked_config(driver::Scheme::kCarp, kConstrainedOrigin);
    config.link.enabled = link_on;
    config.membership.swim.enabled = true;
    config.payload.erasure.enabled = true;
    config.payload.erasure.data_chunks = kRecoveryDataChunks;
    fault::CrashWindow window;
    window.node = 2;
    window.at = static_cast<SimTime>(static_cast<double>(probe.sim_end_time) * kCrashAt);
    window.restart = kSimTimeMax;  // permanent: the member never returns
    window.flush_state = true;
    config.fault_plan.crashes.push_back(window);
    config.request_timeout = deadline;
    recovery_configs.push_back(config);
  }
  const std::vector<driver::ExperimentResult> recovered =
      driver::run_parallel(recovery_configs, trace, workers);

  rows.clear();
  rows.push_back({"link_model", "byte_hit", "recovered_mb", "degraded_ok", "chunk_asks",
                  "asks_skipped", "wait_p99"});
  for (std::size_t r = 0; r < recovered.size(); ++r) {
    const driver::ExperimentResult& result = recovered[r];
    const bool link_on = r == 1;
    rows.push_back({link_on ? "on" : "off",
                    driver::fmt(result.summary.byte_hit_rate(), 3),
                    mb(result.summary.bytes_recovered),
                    std::to_string(result.store.degraded_recovered),
                    std::to_string(result.store.chunk_requests_sent),
                    std::to_string(result.store.chunk_requests_skipped),
                    driver::fmt(result.link.wait_p99, 1)});
    json_rows.push_back(
        {driver::json_str("grid", "recovery"),
         driver::json_str("link_model", link_on ? "on" : "off"),
         driver::json_num("byte_hit_rate", result.summary.byte_hit_rate(), 4),
         driver::json_num("bytes_recovered", result.summary.bytes_recovered),
         driver::json_num("degraded_recovered", result.store.degraded_recovered),
         driver::json_num("chunk_requests_sent", result.store.chunk_requests_sent),
         driver::json_num("chunk_requests_skipped", result.store.chunk_requests_skipped),
         driver::json_num("wait_p99", result.link.wait_p99, 2)});
  }
  std::cout << "\n## CARP + erasure, proxy[2] lost at " << driver::fmt(kCrashAt, 2)
            << " of the healthy run, origin at " << egress_label(kConstrainedOrigin) << "\n";
  driver::print_table(std::cout, rows);

  std::cout << "\nwait_* are transfer-queue waits (enqueue to first burst) in sim ticks;"
            << "\nasks_skipped counts stripe peers a degraded read did NOT ask because"
            << "\nthe link model reported lighter-loaded survivors with enough chunks\n";
  if (!driver::write_json_rows(json_path, json_rows)) return 1;
  if (!json_path.empty()) std::cout << "wrote " << json_path << "\n";
  return 0;
}
