// Figure 11 — Hit rate, ADC vs hashing (CARP), over the three-phase trace.
//
// Prints the two moving-average hit-rate series (5000-request window at
// full scale) the paper plots, then the end-of-run comparison row.  The
// paper's shape: both algorithms near zero through the fill phase; in
// request phase I the hashing baseline rises first while ADC is still
// learning; after the learning phase ADC matches and outperforms hashing
// by a small margin.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace adc;

  const double scale = bench::bench_scale();
  const std::string json_path = bench::bench_json_path(argc, argv);
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Figure 11: hit rate, ADC vs hashing", scale, trace);

  driver::ExperimentConfig adc_config = bench::paper_config(scale);
  driver::ExperimentConfig carp_config = adc_config;
  carp_config.scheme = driver::Scheme::kCarp;

  const driver::ExperimentResult adc_result = driver::run_experiment(adc_config, trace);
  const driver::ExperimentResult carp_result = driver::run_experiment(carp_config, trace);

  driver::print_series_csv(std::cout, "adc", adc_result.series);
  driver::print_series_csv(std::cout, "carp", carp_result.series);

  std::cout << '\n';
  driver::print_summary(std::cout, "adc ", adc_result);
  driver::print_summary(std::cout, "carp", carp_result);

  const auto tail_rate = [](const driver::ExperimentResult& r) {
    // Steady-state hit rate: the mean of the last quarter of the series
    // (request phase II), where the paper reads off its comparison.
    if (r.series.empty()) return 0.0;
    const std::size_t start = r.series.size() - r.series.size() / 4;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = start; i < r.series.size(); ++i, ++n) sum += r.series[i].hit_rate;
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  };
  std::cout << "\nsteady_state_hit_rate adc=" << driver::fmt(tail_rate(adc_result))
            << " carp=" << driver::fmt(tail_rate(carp_result)) << '\n';
  if (!driver::write_json_rows(json_path, {bench::summary_json_row("adc", adc_result),
                                           bench::summary_json_row("carp", carp_result)})) {
    return 1;
  }
  return 0;
}
