// Ablation ABL-BWD — multicasting by backwarding (every proxy on the
// return path learns the resolver, the paper's Section III.2 mechanism)
// vs learning only at the resolving end.
//
// Without the multicast, location knowledge spreads one proxy per request
// instead of path-length proxies per request, so agreement — and with it
// the learned-forwarding hit rate — should build much more slowly.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Ablation: multicast-by-backwarding on vs off", scale, trace);

  driver::ExperimentConfig multicast = bench::paper_config(scale);
  driver::ExperimentConfig endpoint_only = multicast;
  endpoint_only.adc.backward_multicast = false;

  const driver::ExperimentResult on_result = driver::run_experiment(multicast, trace);
  const driver::ExperimentResult off_result = driver::run_experiment(endpoint_only, trace);

  driver::print_summary(std::cout, "backwarding/on ", on_result);
  driver::print_summary(std::cout, "backwarding/off", off_result);

  std::cout << "\nlearned_forwards on=" << on_result.adc_totals.forwards_learned
            << " off=" << off_result.adc_totals.forwards_learned
            << "\nrandom_forwards  on=" << on_result.adc_totals.forwards_random
            << " off=" << off_result.adc_totals.forwards_random << '\n';
  return 0;
}
