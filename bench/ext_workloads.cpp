// Extension EXT-WPB — "performance comparison based on a new set of
// request patterns and an evaluation based on the Wisconsin Proxy
// Benchmark" (paper Section VI, future work).
//
// Runs ADC and the CARP baseline over three request models with the same
// deployment: the PolyMix-like three-phase trace (global Zipf popularity),
// a WPB-style trace (temporal locality via an LRU-stack model), and a
// flash-crowd trace (a sudden tiny hot set).  The interesting readout is
// how the ranking changes: frequency-based selective caching (ADC) versus
// recency-based LRU sharding (CARP) depend on *which kind* of locality
// the workload offers.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "util/rng.h"
#include "workload/wpb.h"

namespace {

using namespace adc;

workload::Trace flash_trace(std::uint64_t requests, std::uint64_t seed) {
  util::Rng rng(seed);
  const util::ZipfSampler zipf(20000, 0.9);
  std::vector<ObjectId> stream;
  stream.reserve(requests);
  const std::uint64_t flash_begin = requests / 3;
  const std::uint64_t flash_end = 2 * requests / 3;
  for (std::uint64_t i = 0; i < requests; ++i) {
    if (i >= flash_begin && i < flash_end && rng.chance(0.85)) {
      stream.push_back(1'000'000 + rng.below(8));
    } else {
      stream.push_back(static_cast<ObjectId>(zipf.sample(rng)));
    }
  }
  return workload::Trace(std::move(stream),
                         workload::TracePhases{flash_begin, flash_end});
}

}  // namespace

int main() {
  const double scale = bench::bench_scale();
  std::cout << "# Extension: workload models (PolyMix-like, WPB-like, flash crowd), scale="
            << scale << "\n";

  struct Entry {
    const char* name;
    workload::Trace trace;
  };
  std::vector<Entry> workloads;
  workloads.push_back({"polymix", bench::paper_trace(scale)});
  workload::WpbConfig wpb;
  wpb.requests = static_cast<std::uint64_t>(3'990'000 * scale);
  wpb.stack_depth = bench::scaled_size(20000, scale);
  workloads.push_back({"wpb", workload::generate_wpb_trace(wpb)});
  workloads.push_back(
      {"flash", flash_trace(static_cast<std::uint64_t>(3'990'000 * scale), 7)});

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"workload", "requests", "recurrence", "adc_hit", "carp_hit", "delta",
                  "adc_hops", "carp_hops"});
  for (const auto& entry : workloads) {
    driver::ExperimentConfig adc_config = bench::paper_config(scale);
    adc_config.sample_every = 0;
    driver::ExperimentConfig carp_config = adc_config;
    carp_config.scheme = driver::Scheme::kCarp;
    const auto adc_result = driver::run_experiment(adc_config, entry.trace);
    const auto carp_result = driver::run_experiment(carp_config, entry.trace);
    const auto stats = entry.trace.stats();
    rows.push_back({entry.name, std::to_string(stats.requests),
                    driver::fmt(stats.recurrence_rate, 3),
                    driver::fmt(adc_result.summary.hit_rate(), 3),
                    driver::fmt(carp_result.summary.hit_rate(), 3),
                    driver::fmt(adc_result.summary.hit_rate() -
                                    carp_result.summary.hit_rate(), 3),
                    driver::fmt(adc_result.summary.avg_hops(), 2),
                    driver::fmt(carp_result.summary.avg_hops(), 2)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
