// Extension EXT-BYTES — byte accounting, size-aware replacement, and the
// erasure tier's degraded reads, across ADC x CARP x hierarchical.
//
// Three grids on the paper deployment:
//   1. Healthy byte accounting: with the payload store on, every reply
//      carries a heavy-tailed payload size, so byte hit rate diverges
//      from request hit rate (the large-object tail misses more bytes
//      than requests).
//   2. Degraded reads: proxy 2 crashes for good at 0.35 of the healthy
//      run with SWIM on.  With the erasure tier off, every post-crash
//      miss burns an origin fetch; with it on, previously-striped
//      objects are rebuilt from surviving stripe peers and their bytes
//      land in the hit ledger instead of the origin's.
//   3. Policy-on-bytes: under a tight per-proxy byte budget the
//      replacement policy decides which bytes stay; GDSF and size-aware
//      LRU trade large-object hits for small-object ones.
//
// Accepts --workers N (0 = hardware concurrency) and --json PATH for a
// machine-readable artifact; the grid is bit-identical at any worker
// count.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/fault_plan.h"

namespace {

using namespace adc;

std::string mb(std::uint64_t bytes) {
  return driver::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: payload bytes, size-aware policies, erasure tier", scale,
                          trace);
  const int workers = bench::bench_workers(argc, argv);
  const std::string json_path = bench::bench_json_path(argc, argv);
  std::vector<std::vector<driver::JsonField>> json_rows;

  const std::vector<driver::Scheme> schemes = {
      driver::Scheme::kAdc, driver::Scheme::kCarp, driver::Scheme::kHierarchical};
  constexpr double kCrashAt = 0.35;

  // ---- Grid 1: healthy byte accounting (doubles as the crash probe) ----
  std::vector<driver::ExperimentConfig> probes;
  for (const auto scheme : schemes) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = scheme;
    config.payload.enabled = true;
    probes.push_back(config);
  }
  const std::vector<driver::ExperimentResult> healthy =
      driver::run_parallel(probes, trace, workers);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "hit_rate", "byte_hit", "total_mb", "origin_mb"});
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const driver::ExperimentResult& result = healthy[s];
    rows.push_back({std::string(driver::scheme_name(schemes[s])),
                    driver::fmt(result.summary.hit_rate(), 3),
                    driver::fmt(result.summary.byte_hit_rate(), 3),
                    mb(result.summary.bytes_completed), mb(result.summary.origin_bytes())});
    json_rows.push_back({driver::json_str("grid", "healthy"),
                         driver::json_str("scheme", driver::scheme_name(schemes[s])),
                         driver::json_num("hit_rate", result.summary.hit_rate(), 4),
                         driver::json_num("byte_hit_rate", result.summary.byte_hit_rate(), 4),
                         driver::json_num("bytes_completed", result.summary.bytes_completed),
                         driver::json_num("origin_bytes", result.summary.origin_bytes())});
  }
  std::cout << "\n## healthy runs: request vs byte hit rate\n";
  driver::print_table(std::cout, rows);

  // ---- Grid 2: permanent loss, erasure tier off vs on (ADC, CARP) ----
  const std::vector<driver::Scheme> crash_schemes = {driver::Scheme::kAdc,
                                                     driver::Scheme::kCarp};
  std::vector<driver::ExperimentConfig> crash_configs;
  for (std::size_t s = 0; s < crash_schemes.size(); ++s) {
    const driver::ExperimentResult& probe = healthy[s];  // adc, carp lead the list
    const auto deadline = std::max<SimTime>(
        static_cast<SimTime>(std::llround(probe.latency_p99 * 20.0)), 1000);
    for (const bool erasure : {false, true}) {
      driver::ExperimentConfig config = probes[s];
      config.membership.swim.enabled = true;
      config.payload.erasure.enabled = erasure;
      fault::CrashWindow window;
      window.node = 2;
      window.at =
          static_cast<SimTime>(static_cast<double>(probe.sim_end_time) * kCrashAt);
      window.restart = kSimTimeMax;  // permanent: the member never returns
      window.flush_state = true;
      config.fault_plan.crashes.push_back(window);
      config.request_timeout = deadline;
      crash_configs.push_back(config);
    }
  }
  const std::vector<driver::ExperimentResult> crashed =
      driver::run_parallel(crash_configs, trace, workers);

  rows.clear();
  rows.push_back({"scheme", "erasure", "byte_hit", "recovered_mb", "origin_mb", "degraded",
                  "recovered", "failed"});
  std::size_t index = 0;
  for (std::size_t s = 0; s < crash_schemes.size(); ++s) {
    for (const bool erasure : {false, true}) {
      const driver::ExperimentResult& result = crashed[index++];
      rows.push_back({std::string(driver::scheme_name(crash_schemes[s])),
                      erasure ? "on" : "off",
                      driver::fmt(result.summary.byte_hit_rate(), 3),
                      mb(result.summary.bytes_recovered), mb(result.summary.origin_bytes()),
                      std::to_string(result.store.degraded_started),
                      std::to_string(result.store.degraded_recovered),
                      std::to_string(result.store.degraded_failed)});
      json_rows.push_back(
          {driver::json_str("grid", "crash"),
           driver::json_str("scheme", driver::scheme_name(crash_schemes[s])),
           driver::json_str("erasure", erasure ? "on" : "off"),
           driver::json_num("byte_hit_rate", result.summary.byte_hit_rate(), 4),
           driver::json_num("bytes_recovered", result.summary.bytes_recovered),
           driver::json_num("origin_bytes", result.summary.origin_bytes()),
           driver::json_num("degraded_started", result.store.degraded_started),
           driver::json_num("degraded_recovered", result.store.degraded_recovered),
           driver::json_num("degraded_failed", result.store.degraded_failed)});
    }
  }
  std::cout << "\n## proxy[2] lost for good at " << driver::fmt(kCrashAt, 2)
            << " of the healthy run (SWIM on)\n";
  driver::print_table(std::cout, rows);

  // ---- Grid 3: replacement policy under a tight byte budget (CARP) ----
  const auto budget =
      static_cast<std::uint64_t>(bench::scaled_size(std::size_t{32} << 20, scale));
  const std::vector<cache::Policy> policies = {cache::Policy::kLru, cache::Policy::kLfu,
                                               cache::Policy::kGdsf, cache::Policy::kSizeLru};
  std::vector<driver::ExperimentConfig> policy_configs;
  for (const cache::Policy policy : policies) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = driver::Scheme::kCarp;
    config.payload.enabled = true;
    config.payload.byte_budget = budget;
    config.baseline_policy = policy;
    policy_configs.push_back(config);
  }
  const std::vector<driver::ExperimentResult> budgeted =
      driver::run_parallel(policy_configs, trace, workers);

  rows.clear();
  rows.push_back({"policy", "hit_rate", "byte_hit", "origin_mb"});
  for (std::size_t p = 0; p < policies.size(); ++p) {
    const driver::ExperimentResult& result = budgeted[p];
    rows.push_back({std::string(cache::policy_name(policies[p])),
                    driver::fmt(result.summary.hit_rate(), 3),
                    driver::fmt(result.summary.byte_hit_rate(), 3),
                    mb(result.summary.origin_bytes())});
    json_rows.push_back(
        {driver::json_str("grid", "policy"),
         driver::json_str("policy", cache::policy_name(policies[p])),
         driver::json_num("hit_rate", result.summary.hit_rate(), 4),
         driver::json_num("byte_hit_rate", result.summary.byte_hit_rate(), 4),
         driver::json_num("origin_bytes", result.summary.origin_bytes())});
  }
  std::cout << "\n## CARP under a " << mb(budget)
            << " MB per-proxy byte budget, by replacement policy\n";
  driver::print_table(std::cout, rows);

  std::cout << "\nbyte_hit is bytes served from proxy caches (degraded reads included)"
            << "\nover total payload bytes; recovered_mb is bytes rebuilt from surviving"
            << "\nstripe peers after the crash instead of refetched from the origin\n";
  if (!driver::write_json_rows(json_path, json_rows)) return 1;
  if (!json_path.empty()) std::cout << "wrote " << json_path << "\n";
  return 0;
}
