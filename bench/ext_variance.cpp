// Extension EXT-VAR — seed sensitivity of the headline comparison.
//
// Figure 11's "minimal margin" between ADC and hashing only means
// something if it exceeds the run-to-run noise.  This bench replays the
// same trace under 8 simulation seeds (entry-proxy choices and random
// forwarding differ; the workload stays fixed) and reports mean ± sd for
// both schemes.
#include <iostream>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace adc;

  const double scale = bench::bench_scale();
  const int workers = driver::resolve_workers(bench::bench_workers(argc, argv));
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: seed variance of the ADC vs CARP comparison", scale,
                          trace);
  std::cout << "# workers=" << workers << '\n';

  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8};

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "runs", "hit_rate_mean", "hit_rate_sd", "hit_rate_ci95",
                  "hops_mean", "hops_sd", "hops_ci95"});
  for (const auto scheme : {driver::Scheme::kAdc, driver::Scheme::kCarp}) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = scheme;
    config.sample_every = 0;  // aggregates only; no series needed
    const driver::ReplicationResult summary =
        driver::run_replicated(config, trace, seeds, workers);
    rows.push_back({std::string(driver::scheme_name(scheme)), std::to_string(summary.runs),
                    driver::fmt(summary.hit_rate.mean), driver::fmt(summary.hit_rate.stddev),
                    driver::fmt(summary.hit_rate.ci95), driver::fmt(summary.avg_hops.mean, 3),
                    driver::fmt(summary.avg_hops.stddev, 4),
                    driver::fmt(summary.avg_hops.ci95, 4)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
