// Extension EXT-VAR — seed sensitivity of the headline comparison.
//
// Figure 11's "minimal margin" between ADC and hashing only means
// something if it exceeds the run-to-run noise.  This bench replays the
// same trace under 8 simulation seeds (entry-proxy choices and random
// forwarding differ; the workload stays fixed) and reports mean ± sd for
// both schemes.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "driver/analysis.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: seed variance of the ADC vs CARP comparison", scale,
                          trace);

  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8};

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"scheme", "runs", "hit_rate_mean", "hit_rate_sd", "hops_mean", "hops_sd"});
  for (const auto scheme : {driver::Scheme::kAdc, driver::Scheme::kCarp}) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.scheme = scheme;
    const driver::ReplicationSummary summary = driver::run_seeds(config, trace, seeds);
    rows.push_back({std::string(driver::scheme_name(scheme)), std::to_string(summary.runs),
                    driver::fmt(summary.hit_rate_mean), driver::fmt(summary.hit_rate_sd),
                    driver::fmt(summary.hops_mean, 3), driver::fmt(summary.hops_sd, 4)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
