// Extension EXT-MF — the maximum-forwards parameter (paper Section III.1
// defines the cutoff; Section V.1 lists it among the parameters left for
// future work).
//
// Sweeps the bound on proxy-to-proxy forwards.  Small bounds truncate the
// random search (fewer hops, fewer found copies); beyond the point where
// loop detection dominates termination, raising the bound changes nothing
// — the knee this bench locates.
#include <iostream>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace adc;

  const double scale = bench::bench_scale();
  const workload::Trace trace = bench::paper_trace(scale);
  bench::print_run_banner("Extension: max-forwards sweep", scale, trace);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"max_forwards", "hit_rate", "avg_hops", "loops", "max_forwards_hit"});
  for (const int max_forwards : {1, 2, 3, 4, 6, 8, 12, 16}) {
    driver::ExperimentConfig config = bench::paper_config(scale);
    config.adc.max_forwards = max_forwards;
    config.sample_every = 0;
    const auto result = driver::run_experiment(config, trace);
    rows.push_back({std::to_string(max_forwards),
                    driver::fmt(result.summary.hit_rate()),
                    driver::fmt(result.summary.avg_hops(), 3),
                    std::to_string(result.adc_totals.loops_detected),
                    std::to_string(result.adc_totals.max_forwards_hit)});
  }
  driver::print_table(std::cout, rows);
  return 0;
}
