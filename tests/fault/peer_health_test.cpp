// The backoff schedule behind every live reconnect decision.  PeerHealth
// is a pure state machine, so the doubling, the cap, and the jitter
// bounds are all exactly testable.
#include "fault/peer_health.h"

#include <gtest/gtest.h>

namespace adc::fault {
namespace {

PeerHealth::Config no_jitter(std::int64_t base, std::int64_t max) {
  PeerHealth::Config config;
  config.base_backoff_us = base;
  config.max_backoff_us = max;
  config.jitter = 0.0;
  return config;
}

TEST(PeerHealth, UnknownPeerIsHealthy) {
  PeerHealth health;
  EXPECT_TRUE(health.can_attempt(3, 0));
  EXPECT_FALSE(health.is_down(3));
  EXPECT_EQ(health.failure_streak(3), 0);
  EXPECT_TRUE(health.down_peers().empty());
}

TEST(PeerHealth, FirstFailureOfAStreakReportsTheDownTransition) {
  PeerHealth health(no_jitter(100, 1000));
  EXPECT_TRUE(health.record_failure(3, 0));    // up -> down
  EXPECT_FALSE(health.record_failure(3, 200)); // already down
  EXPECT_TRUE(health.is_down(3));
  EXPECT_EQ(health.failure_streak(3), 2);
}

TEST(PeerHealth, SuccessReportsTheReconnectAndResetsTheStreak) {
  PeerHealth health(no_jitter(100, 1000));
  EXPECT_FALSE(health.record_success(3));  // healthy peer: not a reconnect
  health.record_failure(3, 0);
  EXPECT_TRUE(health.record_success(3));
  EXPECT_FALSE(health.is_down(3));
  EXPECT_EQ(health.failure_streak(3), 0);
  EXPECT_TRUE(health.can_attempt(3, 0));
}

TEST(PeerHealth, BackoffDoublesPerFailureUpToTheCap) {
  PeerHealth health(no_jitter(100, 800));

  health.record_failure(3, 0);  // streak 1: backoff 100
  EXPECT_FALSE(health.can_attempt(3, 99));
  EXPECT_TRUE(health.can_attempt(3, 100));

  health.record_failure(3, 100);  // streak 2: backoff 200
  EXPECT_FALSE(health.can_attempt(3, 299));
  EXPECT_TRUE(health.can_attempt(3, 300));

  health.record_failure(3, 300);  // streak 3: backoff 400
  EXPECT_TRUE(health.can_attempt(3, 700));

  health.record_failure(3, 700);  // streak 4: backoff 800 (= cap)
  EXPECT_FALSE(health.can_attempt(3, 1499));
  EXPECT_TRUE(health.can_attempt(3, 1500));

  health.record_failure(3, 1500);  // streak 5: 1600 uncapped, stays 800
  EXPECT_FALSE(health.can_attempt(3, 2299));
  EXPECT_TRUE(health.can_attempt(3, 2300));
}

TEST(PeerHealth, JitterStaysWithinTheConfiguredBand) {
  PeerHealth::Config config;
  config.base_backoff_us = 1000;
  config.max_backoff_us = 1'000'000;
  config.jitter = 0.2;
  // Many first-failure draws from one tracker's RNG: every first-retry
  // backoff must land in [base*(1-jitter), base*(1+jitter)) = [800, 1200).
  PeerHealth health(config);
  for (NodeId peer = 0; peer < 64; ++peer) {
    health.record_failure(peer, 0);
    EXPECT_FALSE(health.can_attempt(peer, 799)) << "peer " << peer;
    EXPECT_TRUE(health.can_attempt(peer, 1200)) << "peer " << peer;
  }
}

TEST(PeerHealth, JitterBandScalesWithTheDoubledBackoff) {
  PeerHealth::Config config;
  config.base_backoff_us = 1000;
  config.max_backoff_us = 1'000'000;
  config.jitter = 0.25;
  PeerHealth health(config);
  // Streak k backs off around base * 2^(k-1); the jitter band is relative,
  // so at every depth the next try lands in [nominal*(1-j), nominal*(1+j)).
  std::int64_t nominal = 1000;
  std::int64_t now = 0;
  for (int streak = 1; streak <= 6; ++streak) {
    health.record_failure(9, now);
    const std::int64_t lo = nominal * 3 / 4;   // nominal * (1 - 0.25)
    const std::int64_t hi = nominal * 5 / 4;   // nominal * (1 + 0.25)
    EXPECT_FALSE(health.can_attempt(9, now + lo - 1)) << "streak " << streak;
    EXPECT_TRUE(health.can_attempt(9, now + hi)) << "streak " << streak;
    now += hi;  // move past the widest possible wait before the next failure
    nominal *= 2;
  }
}

TEST(PeerHealth, JitterBandHoldsAtTheBackoffCap) {
  PeerHealth::Config config;
  config.base_backoff_us = 1000;
  config.max_backoff_us = 8000;
  config.jitter = 0.2;
  PeerHealth health(config);
  std::int64_t now = 0;
  for (int streak = 1; streak <= 12; ++streak) {
    health.record_failure(4, now);
    now += 100'000;  // far past any possible backoff
  }
  // Deep into the streak the nominal backoff saturates at the cap, and the
  // jittered wait must stay inside [cap*(1-j), cap*(1+j)) — it can neither
  // keep doubling nor collapse below the band.
  health.record_failure(4, now);
  EXPECT_FALSE(health.can_attempt(4, now + 6400 - 1));
  EXPECT_TRUE(health.can_attempt(4, now + 9600));
}

TEST(PeerHealth, SameSeedSameSchedule) {
  PeerHealth::Config config;
  config.base_backoff_us = 1000;
  config.jitter = 0.5;
  config.seed = 42;
  PeerHealth a(config);
  PeerHealth b(config);
  for (int i = 0; i < 10; ++i) {
    a.record_failure(7, i * 10'000);
    b.record_failure(7, i * 10'000);
  }
  // Identical draws mean identical next-try stamps: probe a few instants.
  for (std::int64_t t = 90'000; t < 110'000; t += 100) {
    EXPECT_EQ(a.can_attempt(7, t), b.can_attempt(7, t)) << "t=" << t;
  }
}

TEST(PeerHealth, DownPeersAreSorted) {
  PeerHealth health(no_jitter(100, 1000));
  health.record_failure(5, 0);
  health.record_failure(1, 0);
  health.record_failure(3, 0);
  EXPECT_EQ(health.down_peers(), (std::vector<NodeId>{1, 3, 5}));
}

}  // namespace
}  // namespace adc::fault
