// FaultyNetwork contract tests, unit level and end-to-end.
//
// The two properties everything else leans on:
//  * a plan that never fires is invisible — bit-identical metrics to a run
//    without any fault layer (the hook draws no RNG unless a probability
//    is actually evaluated), and
//  * fault decisions come only from the plan's seed, so lossy runs are
//    reproducible at any --workers count.
#include "fault/faulty_network.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "driver/parallel.h"
#include "fault/fault_plan.h"
#include "workload/polygraph.h"

namespace adc::fault {
namespace {

sim::Message transfer(NodeId sender, NodeId target) {
  sim::Message msg;
  msg.sender = sender;
  msg.target = target;
  return msg;
}

TEST(FaultyNetwork, ZeroPlanNeverTouchesATransfer) {
  FaultyNetwork chaos{FaultPlan{}};
  for (int i = 0; i < 10'000; ++i) {
    const sim::FaultDecision fate = chaos.on_send(transfer(0, 1), i);
    EXPECT_FALSE(fate.drop);
    EXPECT_EQ(fate.duplicates, 0);
    EXPECT_EQ(fate.extra_delay, 0);
  }
  EXPECT_EQ(chaos.counters().total_drops(), 0u);
  EXPECT_EQ(chaos.counters().duplicates, 0u);
  EXPECT_EQ(chaos.counters().delays, 0u);
}

TEST(FaultyNetwork, DropProbabilityIsRoughlyHonored) {
  FaultPlan plan;
  plan.drop_prob = 0.5;
  FaultyNetwork chaos{plan};
  int drops = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (chaos.on_send(transfer(0, 1), i).drop) ++drops;
  }
  EXPECT_GT(drops, 4500);
  EXPECT_LT(drops, 5500);
  EXPECT_EQ(chaos.counters().drops_random, static_cast<std::uint64_t>(drops));
}

TEST(FaultyNetwork, SameSeedSameDecisions) {
  FaultPlan plan;
  plan.drop_prob = 0.2;
  plan.dup_prob = 0.1;
  plan.extra_delay_prob = 0.1;
  plan.extra_delay_mean = 25.0;
  FaultyNetwork a{plan};
  FaultyNetwork b{plan};
  for (int i = 0; i < 5'000; ++i) {
    const sim::FaultDecision fa = a.on_send(transfer(0, 1), i);
    const sim::FaultDecision fb = b.on_send(transfer(0, 1), i);
    ASSERT_EQ(fa.drop, fb.drop) << "transfer " << i;
    ASSERT_EQ(fa.duplicates, fb.duplicates) << "transfer " << i;
    ASSERT_EQ(fa.extra_delay, fb.extra_delay) << "transfer " << i;
  }
}

TEST(FaultyNetwork, CrashWindowIsHalfOpenAndDirectionless) {
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{2, 100, 200, false});
  FaultyNetwork chaos{plan};

  EXPECT_FALSE(chaos.node_down(2, 99));
  EXPECT_TRUE(chaos.node_down(2, 100));
  EXPECT_TRUE(chaos.node_down(2, 199));
  EXPECT_FALSE(chaos.node_down(2, 200));
  EXPECT_FALSE(chaos.node_down(1, 150));

  // Messages to and from the crashed node both drop; bystanders pass.
  EXPECT_TRUE(chaos.on_send(transfer(0, 2), 150).drop);
  EXPECT_TRUE(chaos.on_send(transfer(2, 0), 150).drop);
  EXPECT_FALSE(chaos.on_send(transfer(0, 1), 150).drop);
  EXPECT_EQ(chaos.counters().drops_crash, 2u);
}

TEST(FaultyNetwork, PartitionCutsBothDirectionsOfOneLink) {
  FaultPlan plan;
  plan.partitions.push_back(LinkPartition{0, 1, 100, 200});
  FaultyNetwork chaos{plan};

  EXPECT_TRUE(chaos.link_cut(0, 1, 150));
  EXPECT_TRUE(chaos.link_cut(1, 0, 150));
  EXPECT_FALSE(chaos.link_cut(0, 2, 150));
  EXPECT_FALSE(chaos.link_cut(0, 1, 200));

  EXPECT_TRUE(chaos.on_send(transfer(1, 0), 150).drop);
  EXPECT_FALSE(chaos.on_send(transfer(0, 2), 150).drop);
  EXPECT_EQ(chaos.counters().drops_partition, 1u);
}

// --- End-to-end through the driver --------------------------------------

workload::Trace tiny_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 800;
  config.phase2_requests = 1200;
  config.phase3_requests = 1000;
  config.hot_set_size = 100;
  config.seed = 5;
  return workload::generate_polygraph_trace(config);
}

driver::ExperimentConfig base_config() {
  driver::ExperimentConfig config;
  config.proxies = 3;
  config.adc.single_table_size = 150;
  config.adc.multiple_table_size = 150;
  config.adc.caching_table_size = 80;
  config.sample_every = 500;
  return config;
}

void expect_identical(const driver::ExperimentResult& a, const driver::ExperimentResult& b) {
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  EXPECT_EQ(a.summary.hits, b.summary.hits);
  EXPECT_EQ(a.summary.failed, b.summary.failed);
  EXPECT_EQ(a.summary.total_hops, b.summary.total_hops);
  EXPECT_EQ(a.summary.total_latency, b.summary.total_latency);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.origin_served, b.origin_served);
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
  EXPECT_EQ(a.faults.total_drops(), b.faults.total_drops());
  EXPECT_EQ(a.faults.duplicates, b.faults.duplicates);
  EXPECT_EQ(a.faults.timeouts, b.faults.timeouts);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].requests, b.series[i].requests);
    EXPECT_EQ(a.series[i].hit_rate, b.series[i].hit_rate);
    EXPECT_EQ(a.series[i].hops, b.series[i].hops);
    EXPECT_EQ(a.series[i].latency, b.series[i].latency);
  }
}

TEST(FaultyNetworkExperiment, PlanThatNeverFiresIsByteIdentical) {
  const workload::Trace trace = tiny_trace();
  const driver::ExperimentResult baseline = driver::run_experiment(base_config(), trace);

  // A partition between nodes that do not exist installs the full fault
  // path (non-zero plan -> hook on every send) but can never fire and
  // never draws randomness.  Metrics must match an undecorated run bit
  // for bit.
  driver::ExperimentConfig config = base_config();
  config.fault_plan.partitions.push_back(LinkPartition{98, 99, 0, kSimTimeMax});
  const driver::ExperimentResult decorated = driver::run_experiment(config, trace);

  expect_identical(baseline, decorated);
  EXPECT_EQ(decorated.faults.total_drops(), 0u);
}

TEST(FaultyNetworkExperiment, LossyRunCompletesViaRequestTimeouts) {
  const workload::Trace trace = tiny_trace();
  const driver::ExperimentResult probe = driver::run_experiment(base_config(), trace);

  driver::ExperimentConfig config = base_config();
  config.fault_plan.drop_prob = 0.05;
  config.request_timeout =
      std::max<SimTime>(static_cast<SimTime>(probe.latency_p99 * 20.0), 1000);
  const driver::ExperimentResult result = driver::run_experiment(config, trace);

  // Every request resolves — completed or expired — so the closed loop
  // drained the whole trace despite the losses.
  EXPECT_EQ(result.summary.completed + result.summary.failed, trace.size());
  EXPECT_GT(result.summary.failed, 0u);
  EXPECT_GT(result.faults.drops_random, 0u);
  EXPECT_EQ(result.faults.timeouts, result.summary.failed);
  EXPECT_GT(result.summary.hit_rate(), 0.0);
}

TEST(FaultyNetworkExperiment, CrashWindowDropsTrafficAndRunRecovers) {
  const workload::Trace trace = tiny_trace();
  const driver::ExperimentResult probe = driver::run_experiment(base_config(), trace);

  driver::ExperimentConfig config = base_config();
  CrashWindow window;
  window.node = 2;
  window.at = probe.sim_end_time * 2 / 5;
  window.restart = probe.sim_end_time * 3 / 5;
  window.flush_state = true;
  config.fault_plan.crashes.push_back(window);
  config.request_timeout =
      std::max<SimTime>(static_cast<SimTime>(probe.latency_p99 * 20.0), 1000);
  const driver::ExperimentResult result = driver::run_experiment(config, trace);

  EXPECT_EQ(result.summary.completed + result.summary.failed, trace.size());
  EXPECT_GT(result.faults.drops_crash, 0u);
  EXPECT_EQ(result.faults.drops_random, 0u);  // no probabilistic faults drawn
  EXPECT_GT(result.summary.hit_rate(), 0.0);
}

TEST(FaultyNetworkExperiment, LossySweepIsBitIdenticalAcrossWorkerCounts) {
  const workload::Trace trace = tiny_trace();
  const driver::ExperimentResult probe = driver::run_experiment(base_config(), trace);
  const SimTime deadline =
      std::max<SimTime>(static_cast<SimTime>(probe.latency_p99 * 20.0), 1000);

  std::vector<driver::ExperimentConfig> configs;
  for (const double loss : {0.01, 0.03, 0.05, 0.08}) {
    driver::ExperimentConfig config = base_config();
    config.fault_plan.drop_prob = loss;
    config.request_timeout = deadline;
    configs.push_back(config);
  }
  const auto serial = driver::run_parallel(configs, trace, 1);
  const auto fanned = driver::run_parallel(configs, trace, 4);
  ASSERT_EQ(serial.size(), fanned.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], fanned[i]);
  }
}

}  // namespace
}  // namespace adc::fault
