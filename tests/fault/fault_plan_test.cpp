// FaultPlan is pure data; these tests pin down the two behaviors the rest
// of the subsystem builds on: is_zero() gates whether a fault layer is
// installed at all, and describe() is the banner every chaos run logs.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

namespace adc::fault {
namespace {

TEST(FaultPlan, DefaultPlanIsZero) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.is_zero());
  EXPECT_EQ(plan.describe(), "no faults");
}

TEST(FaultPlan, SeedAloneKeepsPlanZero) {
  // The seed is not a fault: sweeping seeds over a zero plan must not
  // install a fault layer anywhere.
  FaultPlan plan;
  plan.seed = 12345;
  EXPECT_TRUE(plan.is_zero());
}

TEST(FaultPlan, AnyProbabilityMakesPlanNonZero) {
  FaultPlan drop;
  drop.drop_prob = 0.01;
  EXPECT_FALSE(drop.is_zero());

  FaultPlan dup;
  dup.dup_prob = 0.01;
  EXPECT_FALSE(dup.is_zero());

  FaultPlan delay;
  delay.extra_delay_prob = 0.01;
  EXPECT_FALSE(delay.is_zero());

  FaultPlan reorder;
  reorder.reorder_prob = 0.01;
  EXPECT_FALSE(reorder.is_zero());
}

TEST(FaultPlan, WindowsMakePlanNonZero) {
  FaultPlan partitioned;
  partitioned.partitions.push_back(LinkPartition{0, 1, 100, 200});
  EXPECT_FALSE(partitioned.is_zero());

  FaultPlan crashing;
  crashing.crashes.push_back(CrashWindow{2, 100, 200, true});
  EXPECT_FALSE(crashing.is_zero());
}

TEST(FaultPlan, DescribeMentionsEveryActiveFault) {
  FaultPlan plan;
  plan.drop_prob = 0.05;
  plan.dup_prob = 0.01;
  plan.crashes.push_back(CrashWindow{2, 100, 200, true});
  plan.seed = 7;
  const std::string text = plan.describe();
  EXPECT_NE(text.find("drop=0.05"), std::string::npos) << text;
  EXPECT_NE(text.find("dup=0.01"), std::string::npos) << text;
  EXPECT_NE(text.find("crashes=1"), std::string::npos) << text;
  EXPECT_NE(text.find("seed=7"), std::string::npos) << text;
}

}  // namespace
}  // namespace adc::fault
