#include "cache/single_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace adc::cache {
namespace {

class SingleTableTest : public ::testing::TestWithParam<TableImpl> {
 protected:
  SingleTable make(std::size_t capacity) { return SingleTable(capacity, GetParam()); }
};

TEST_P(SingleTableTest, StartsEmpty) {
  auto table = make(4);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.full());
  EXPECT_EQ(table.capacity(), 4u);
  EXPECT_EQ(table.top(), nullptr);
  EXPECT_EQ(table.bottom(), nullptr);
}

TEST_P(SingleTableTest, InsertOnTopIsMostRecent) {
  auto table = make(4);
  table.insert_on_top(make_entry(1, 0, 10));
  table.insert_on_top(make_entry(2, 0, 11));
  ASSERT_NE(table.top(), nullptr);
  EXPECT_EQ(table.top()->object, 2u);
  EXPECT_EQ(table.bottom()->object, 1u);
}

TEST_P(SingleTableTest, FindDoesNotReorder) {
  auto table = make(4);
  table.insert_on_top(make_entry(1, 0, 10));
  table.insert_on_top(make_entry(2, 0, 11));
  ASSERT_NE(table.find(1), nullptr);
  EXPECT_EQ(table.top()->object, 2u);  // unchanged: no LRU bump on read
}

TEST_P(SingleTableTest, OverflowDropsBottom) {
  auto table = make(3);
  for (ObjectId id = 1; id <= 3; ++id) table.insert_on_top(make_entry(id, 0, 0));
  const auto evicted = table.insert_on_top(make_entry(4, 0, 0));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->object, 1u);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_FALSE(table.contains(1));
  EXPECT_TRUE(table.contains(4));
}

TEST_P(SingleTableTest, NoEvictionWhileSpace) {
  auto table = make(3);
  EXPECT_FALSE(table.insert_on_top(make_entry(1, 0, 0)).has_value());
  EXPECT_FALSE(table.insert_on_top(make_entry(2, 0, 0)).has_value());
}

TEST_P(SingleTableTest, RemoveReturnsEntry) {
  auto table = make(4);
  auto entry = make_entry(7, 3, 42);
  entry.average = 99;
  table.insert_on_top(entry);
  const auto removed = table.remove(7);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->object, 7u);
  EXPECT_EQ(removed->location, 3);
  EXPECT_EQ(removed->average, 99);
  EXPECT_FALSE(table.contains(7));
  EXPECT_TRUE(table.empty());
}

TEST_P(SingleTableTest, RemoveMissingIsNullopt) {
  auto table = make(4);
  table.insert_on_top(make_entry(1, 0, 0));
  EXPECT_FALSE(table.remove(99).has_value());
  EXPECT_EQ(table.size(), 1u);
}

TEST_P(SingleTableTest, RemoveMiddlePreservesOrder) {
  auto table = make(4);
  for (ObjectId id = 1; id <= 4; ++id) table.insert_on_top(make_entry(id, 0, 0));
  table.remove(3);
  const auto snapshot = table.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].object, 4u);
  EXPECT_EQ(snapshot[1].object, 2u);
  EXPECT_EQ(snapshot[2].object, 1u);
}

TEST_P(SingleTableTest, RemoveLastIsLruVictim) {
  auto table = make(4);
  for (ObjectId id = 1; id <= 3; ++id) table.insert_on_top(make_entry(id, 0, 0));
  const auto last = table.remove_last();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->object, 1u);
}

TEST_P(SingleTableTest, RemoveLastOnEmpty) {
  auto table = make(2);
  EXPECT_FALSE(table.remove_last().has_value());
}

TEST_P(SingleTableTest, ReinsertionMovesToTop) {
  // The ADC update path removes an entry and re-inserts it on top — the
  // LRU bump.
  auto table = make(3);
  for (ObjectId id = 1; id <= 3; ++id) table.insert_on_top(make_entry(id, 0, 0));
  auto entry = table.remove(1);
  ASSERT_TRUE(entry.has_value());
  table.insert_on_top(*entry);
  EXPECT_EQ(table.top()->object, 1u);
  // Next eviction victim is now object 2.
  const auto evicted = table.insert_on_top(make_entry(9, 0, 0));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->object, 2u);
}

TEST_P(SingleTableTest, CapacityOne) {
  auto table = make(1);
  table.insert_on_top(make_entry(1, 0, 0));
  const auto evicted = table.insert_on_top(make_entry(2, 0, 0));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->object, 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.top()->object, 2u);
  EXPECT_EQ(table.bottom()->object, 2u);
}

TEST_P(SingleTableTest, ClearEmpties) {
  auto table = make(4);
  for (ObjectId id = 1; id <= 4; ++id) table.insert_on_top(make_entry(id, 0, 0));
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.contains(1));
  table.insert_on_top(make_entry(5, 0, 0));
  EXPECT_EQ(table.size(), 1u);
}

TEST_P(SingleTableTest, SizeNeverExceedsCapacityUnderChurn) {
  auto table = make(16);
  for (ObjectId id = 1; id <= 1000; ++id) {
    if (auto existing = table.remove(id % 40)) {
      table.insert_on_top(*existing);
    } else {
      table.insert_on_top(make_entry(id % 40 + 1000, 0, static_cast<SimTime>(id)));
    }
    ASSERT_LE(table.size(), 16u);
  }
}

INSTANTIATE_TEST_SUITE_P(BothImpls, SingleTableTest,
                         ::testing::Values(TableImpl::kFaithful, TableImpl::kIndexed),
                         [](const auto& info) {
                           return info.param == TableImpl::kFaithful ? "Faithful" : "Indexed";
                         });

TEST(SingleTableEquivalence, FaithfulAndIndexedAgreeUnderRandomOps) {
  SingleTable faithful(8, TableImpl::kFaithful);
  SingleTable indexed(8, TableImpl::kIndexed);
  std::uint64_t state = 123;
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t r = adc::util::splitmix64(state);
    const ObjectId object = r % 24;
    if ((r >> 8) % 3 == 0) {
      const auto a = faithful.remove(object);
      const auto b = indexed.remove(object);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        ASSERT_EQ(a->object, b->object);
        ASSERT_EQ(a->last, b->last);
      }
    } else if (!faithful.contains(object)) {
      const auto a = faithful.insert_on_top(make_entry(object, 0, step));
      const auto b = indexed.insert_on_top(make_entry(object, 0, step));
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        ASSERT_EQ(a->object, b->object);
      }
    }
    const auto sa = faithful.snapshot();
    const auto sb = indexed.snapshot();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) ASSERT_EQ(sa[i].object, sb[i].object);
  }
}

}  // namespace
}  // namespace adc::cache
