#include "cache/ordered_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace adc::cache {
namespace {

TableEntry entry_with(ObjectId object, SimTime average, SimTime last) {
  TableEntry e = make_entry(object, 0, last);
  e.average = average;
  return e;
}

class OrderedTableTest : public ::testing::TestWithParam<TableImpl> {
 protected:
  std::unique_ptr<OrderedTable> make(std::size_t capacity) {
    return make_ordered_table(capacity, GetParam());
  }
};

TEST_P(OrderedTableTest, StartsEmpty) {
  auto table = make(4);
  EXPECT_TRUE(table->empty());
  EXPECT_FALSE(table->full());
  EXPECT_EQ(table->size(), 0u);
  EXPECT_EQ(table->worst(), nullptr);
  EXPECT_EQ(table->best(), nullptr);
}

TEST_P(OrderedTableTest, KeepsAscendingAgedOrder) {
  auto table = make(8);
  table->insert(entry_with(1, 50, 0));
  table->insert(entry_with(2, 10, 0));
  table->insert(entry_with(3, 30, 0));
  const auto snapshot = table->snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].object, 2u);
  EXPECT_EQ(snapshot[1].object, 3u);
  EXPECT_EQ(snapshot[2].object, 1u);
  EXPECT_EQ(table->best()->object, 2u);
  EXPECT_EQ(table->worst()->object, 1u);
}

TEST_P(OrderedTableTest, OrderUsesSkewNotRawAverage) {
  auto table = make(8);
  // b has the larger raw average but was touched much more recently, so
  // its aged value is lower.
  table->insert(entry_with(1, 10, 0));    // skew 10
  table->insert(entry_with(2, 50, 100));  // skew -50
  EXPECT_EQ(table->best()->object, 2u);
  EXPECT_EQ(table->worst()->object, 1u);
}

TEST_P(OrderedTableTest, EqualSkewKeepsInsertionOrder) {
  auto table = make(8);
  table->insert(entry_with(1, 20, 0));
  table->insert(entry_with(2, 20, 0));
  table->insert(entry_with(3, 20, 0));
  const auto snapshot = table->snapshot();
  EXPECT_EQ(snapshot[0].object, 1u);
  EXPECT_EQ(snapshot[1].object, 2u);
  EXPECT_EQ(snapshot[2].object, 3u);
  EXPECT_EQ(table->worst()->object, 3u);
}

TEST_P(OrderedTableTest, FindAndContains) {
  auto table = make(4);
  table->insert(entry_with(5, 20, 3));
  EXPECT_TRUE(table->contains(5));
  EXPECT_FALSE(table->contains(6));
  ASSERT_NE(table->find(5), nullptr);
  EXPECT_EQ(table->find(5)->average, 20);
  EXPECT_EQ(table->find(6), nullptr);
}

TEST_P(OrderedTableTest, RemoveByObject) {
  auto table = make(4);
  table->insert(entry_with(1, 10, 0));
  table->insert(entry_with(2, 20, 0));
  const auto removed = table->remove(1);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->object, 1u);
  EXPECT_EQ(table->size(), 1u);
  EXPECT_FALSE(table->remove(1).has_value());
}

TEST_P(OrderedTableTest, RemoveWorstTakesLargestAged) {
  auto table = make(4);
  table->insert(entry_with(1, 10, 0));
  table->insert(entry_with(2, 90, 0));
  table->insert(entry_with(3, 40, 0));
  const auto worst = table->remove_worst();
  ASSERT_TRUE(worst.has_value());
  EXPECT_EQ(worst->object, 2u);
  EXPECT_EQ(table->size(), 2u);
}

TEST_P(OrderedTableTest, RemoveWorstOnEmpty) {
  auto table = make(4);
  EXPECT_FALSE(table->remove_worst().has_value());
}

TEST_P(OrderedTableTest, WorstAgedInfiniteWhileNotFull) {
  auto table = make(2);
  EXPECT_TRUE(std::isinf(table->worst_aged(100)));
  table->insert(entry_with(1, 10, 0));
  EXPECT_TRUE(std::isinf(table->worst_aged(100)));
  table->insert(entry_with(2, 30, 0));
  // Full: worst aged = (30 + 100 - 0) / 2 = 65.
  EXPECT_DOUBLE_EQ(table->worst_aged(100), 65.0);
}

TEST_P(OrderedTableTest, ReinsertionAfterUpdateReorders) {
  auto table = make(4);
  table->insert(entry_with(1, 100, 0));
  table->insert(entry_with(2, 10, 0));
  ASSERT_EQ(table->worst()->object, 1u);
  // Object 1 becomes hot: remove, improve, reinsert.
  auto e = table->remove(1);
  ASSERT_TRUE(e.has_value());
  e->average = 1;
  e->last = 50;
  table->insert(*e);
  EXPECT_EQ(table->best()->object, 1u);
  EXPECT_EQ(table->worst()->object, 2u);
}

TEST_P(OrderedTableTest, ClearEmpties) {
  auto table = make(4);
  table->insert(entry_with(1, 1, 0));
  table->clear();
  EXPECT_TRUE(table->empty());
  EXPECT_FALSE(table->contains(1));
}

TEST_P(OrderedTableTest, CapacityOne) {
  auto table = make(1);
  table->insert(entry_with(1, 10, 0));
  EXPECT_TRUE(table->full());
  EXPECT_EQ(table->worst()->object, 1u);
  const auto removed = table->remove_worst();
  ASSERT_TRUE(removed.has_value());
  EXPECT_TRUE(table->empty());
}

INSTANTIATE_TEST_SUITE_P(BothImpls, OrderedTableTest,
                         ::testing::Values(TableImpl::kFaithful, TableImpl::kIndexed),
                         [](const auto& info) {
                           return info.param == TableImpl::kFaithful ? "Faithful" : "Indexed";
                         });

// Property: both implementations behave identically under a long random
// operation stream — the guarantee behind the ABL-DS ablation's
// "results_identical" check.
TEST(OrderedTableEquivalence, FaithfulAndIndexedAgreeUnderRandomOps) {
  auto faithful = make_ordered_table(16, TableImpl::kFaithful);
  auto indexed = make_ordered_table(16, TableImpl::kIndexed);
  util::Rng rng(2024);
  SimTime now = 0;
  for (int step = 0; step < 20000; ++step) {
    ++now;
    const ObjectId object = rng.below(48);
    switch (rng.below(4)) {
      case 0: {  // insert (if absent and not full)
        if (!faithful->contains(object) && !faithful->full()) {
          auto e = entry_with(object, static_cast<SimTime>(rng.below(200)), now);
          faithful->insert(e);
          indexed->insert(e);
        }
        break;
      }
      case 1: {  // remove by id
        const auto a = faithful->remove(object);
        const auto b = indexed->remove(object);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          ASSERT_EQ(a->object, b->object);
        }
        break;
      }
      case 2: {  // remove worst
        const auto a = faithful->remove_worst();
        const auto b = indexed->remove_worst();
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          ASSERT_EQ(a->object, b->object);
        }
        break;
      }
      case 3: {  // update cycle: remove + recalc + insert
        auto a = faithful->remove(object);
        auto b = indexed->remove(object);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          a->calc_average(now);
          b->calc_average(now);
          faithful->insert(*a);
          indexed->insert(*b);
        }
        break;
      }
    }
    ASSERT_EQ(faithful->size(), indexed->size());
    ASSERT_DOUBLE_EQ(faithful->worst_aged(now), indexed->worst_aged(now));
    const auto sa = faithful->snapshot();
    const auto sb = indexed->snapshot();
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i].object, sb[i].object) << "step " << step << " pos " << i;
    }
  }
}

// Property: the physical order equals sorting by aged value at any time.
TEST(OrderedTableProperty, SnapshotIsSortedByAgedValue) {
  auto table = make_ordered_table(32, TableImpl::kIndexed);
  util::Rng rng(7);
  SimTime now = 0;
  for (int i = 0; i < 500; ++i) {
    ++now;
    const ObjectId object = rng.below(100);
    if (table->contains(object)) {
      auto e = table->remove(object);
      e->calc_average(now);
      table->insert(*e);
    } else {
      if (table->full()) table->remove_worst();
      table->insert(make_entry(object, 0, now));
    }
    const auto snapshot = table->snapshot();
    for (std::size_t k = 1; k < snapshot.size(); ++k) {
      ASSERT_LE(snapshot[k - 1].aged(now), snapshot[k].aged(now) + 1e-9)
          << "iteration " << i << " position " << k;
    }
  }
}

}  // namespace
}  // namespace adc::cache
