#include "cache/policies.h"

#include <gtest/gtest.h>

namespace adc::cache {
namespace {

TEST(PolicyNames, ParseAndPrint) {
  EXPECT_EQ(parse_policy("lru"), Policy::kLru);
  EXPECT_EQ(parse_policy("LRU"), Policy::kLru);
  EXPECT_EQ(parse_policy("fifo"), Policy::kFifo);
  EXPECT_EQ(parse_policy("lfu"), Policy::kLfu);
  EXPECT_EQ(parse_policy("unknown"), Policy::kLru);
  EXPECT_EQ(policy_name(Policy::kLru), "lru");
  EXPECT_EQ(policy_name(Policy::kFifo), "fifo");
  EXPECT_EQ(policy_name(Policy::kLfu), "lfu");
}

class CachePolicyTest : public ::testing::TestWithParam<Policy> {
 protected:
  std::unique_ptr<CacheSet> make(std::size_t capacity) {
    return make_cache(capacity, GetParam());
  }
};

TEST_P(CachePolicyTest, InsertAndContains) {
  auto cache = make(4);
  EXPECT_FALSE(cache->contains(1));
  cache->insert(1);
  EXPECT_TRUE(cache->contains(1));
  EXPECT_EQ(cache->size(), 1u);
}

TEST_P(CachePolicyTest, CapacityIsBounded) {
  auto cache = make(3);
  for (ObjectId id = 1; id <= 10; ++id) {
    cache->insert(id);
    ASSERT_LE(cache->size(), 3u);
  }
  EXPECT_EQ(cache->size(), 3u);
}

TEST_P(CachePolicyTest, EvictionReportsVictim) {
  auto cache = make(2);
  EXPECT_FALSE(cache->insert(1).has_value());
  EXPECT_FALSE(cache->insert(2).has_value());
  const auto victim = cache->insert(3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_FALSE(cache->contains(*victim));
  EXPECT_TRUE(cache->contains(3));
}

TEST_P(CachePolicyTest, ReinsertingPresentIsNoEviction) {
  auto cache = make(2);
  cache->insert(1);
  cache->insert(2);
  EXPECT_FALSE(cache->insert(1).has_value());
  EXPECT_EQ(cache->size(), 2u);
}

TEST_P(CachePolicyTest, EraseRemoves) {
  auto cache = make(4);
  cache->insert(1);
  EXPECT_TRUE(cache->erase(1));
  EXPECT_FALSE(cache->contains(1));
  EXPECT_FALSE(cache->erase(1));
}

TEST_P(CachePolicyTest, ClearEmpties) {
  auto cache = make(4);
  cache->insert(1);
  cache->insert(2);
  cache->clear();
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_FALSE(cache->contains(1));
}

TEST_P(CachePolicyTest, LookupCountsHitsAndMisses) {
  auto cache = make(4);
  cache->insert(1);
  EXPECT_TRUE(cache->lookup(1));
  EXPECT_FALSE(cache->lookup(2));
  EXPECT_FALSE(cache->lookup(3));
  EXPECT_EQ(cache->hits, 1u);
  EXPECT_EQ(cache->misses, 2u);
}

TEST_P(CachePolicyTest, EvictionOrderListsAllEntries) {
  auto cache = make(4);
  for (ObjectId id = 1; id <= 4; ++id) cache->insert(id);
  EXPECT_EQ(cache->eviction_order().size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyTest,
                         ::testing::Values(Policy::kLru, Policy::kFifo, Policy::kLfu),
                         [](const auto& info) {
                           return std::string(policy_name(info.param));
                         });

TEST(LruCache, TouchProtectsEntry) {
  auto cache = make_cache(2, Policy::kLru);
  cache->insert(1);
  cache->insert(2);
  cache->touch(1);  // 1 becomes most recent; 2 is now the victim
  const auto victim = cache->insert(3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
  EXPECT_TRUE(cache->contains(1));
}

TEST(LruCache, EvictionOrderIsRecency) {
  auto cache = make_cache(3, Policy::kLru);
  cache->insert(1);
  cache->insert(2);
  cache->insert(3);
  cache->touch(1);
  const auto order = cache->eviction_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);  // victim first
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 1u);
}

TEST(FifoCache, TouchDoesNotProtect) {
  auto cache = make_cache(2, Policy::kFifo);
  cache->insert(1);
  cache->insert(2);
  cache->touch(1);  // no effect under FIFO
  const auto victim = cache->insert(3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);  // oldest insertion evicted regardless
}

TEST(LfuCache, FrequencyProtects) {
  auto cache = make_cache(2, Policy::kLfu);
  cache->insert(1);
  cache->insert(2);
  cache->touch(1);
  cache->touch(1);  // freq(1) = 3, freq(2) = 1
  const auto victim = cache->insert(3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
  EXPECT_TRUE(cache->contains(1));
}

TEST(LfuCache, TieBreaksTowardOlder) {
  auto cache = make_cache(2, Policy::kLfu);
  cache->insert(1);
  cache->insert(2);  // both freq 1; 1 is older
  const auto victim = cache->insert(3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);
}

TEST(LfuCache, InsertOfPresentBumpsFrequency) {
  auto cache = make_cache(2, Policy::kLfu);
  cache->insert(1);
  cache->insert(2);
  cache->insert(1);  // acts as touch: freq(1) = 2
  const auto victim = cache->insert(3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
}

}  // namespace
}  // namespace adc::cache
