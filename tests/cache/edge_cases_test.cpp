// Edge cases across the cache structures: extreme skews, long-idle aging,
// and interactions the main suites don't reach.
#include <gtest/gtest.h>

#include <cmath>

#include "cache/ordered_table.h"
#include "cache/single_table.h"
#include "cache/table_entry.h"

namespace adc::cache {
namespace {

TEST(EdgeCases, NegativeSkewOrdersBeforePositive) {
  // A recently-touched entry has last > average: its skew is negative.
  auto table = make_ordered_table(4, TableImpl::kIndexed);
  TableEntry recent = make_entry(1, 0, 1000);
  recent.average = 100;  // skew = -900
  TableEntry stale = make_entry(2, 0, 10);
  stale.average = 5;  // skew = -5
  table->insert(stale);
  table->insert(recent);
  EXPECT_EQ(table->best()->object, 1u);
  EXPECT_EQ(table->worst()->object, 2u);
}

TEST(EdgeCases, LongIdleEntryAgesOutOfFavour) {
  // An entry with a brilliant average but touched ages ago must rank
  // behind a mediocre but fresh one.
  TableEntry once_hot = make_entry(1, 0, 0);
  once_hot.average = 2;
  once_hot.last = 100;
  TableEntry fresh = make_entry(2, 0, 0);
  fresh.average = 500;
  fresh.last = 100000;
  EXPECT_GT(once_hot.aged(100500), fresh.aged(100500));
}

TEST(EdgeCases, CalcAverageWithZeroGap) {
  // Two touches at the same local time (a looping reply passing twice):
  // the gap is 0 and the average halves — the behaviour Figure 9 encodes.
  TableEntry entry = make_entry(1, 0, 50);
  entry.calc_average(150);  // avg 100
  entry.calc_average(150);  // avg (100 + 0) / 2 = 50
  EXPECT_EQ(entry.average, 50);
  EXPECT_EQ(entry.hits, 3u);
}

TEST(EdgeCases, LargeTimesDoNotOverflow) {
  TableEntry entry = make_entry(1, 0, 1'000'000'000'000LL);
  entry.calc_average(2'000'000'000'000LL);
  EXPECT_EQ(entry.average, 1'000'000'000'000LL);
  EXPECT_GT(entry.aged(3'000'000'000'000LL), 0.0);
  EXPECT_EQ(entry.skew(), -1'000'000'000'000LL);
}

TEST(EdgeCases, OrderedTableManyEqualEntriesEvictInInsertionOrder) {
  auto table = make_ordered_table(5, TableImpl::kFaithful);
  for (ObjectId id = 1; id <= 5; ++id) {
    TableEntry entry = make_entry(id, 0, 0);
    entry.average = 10;
    table->insert(entry);
  }
  // Worst (last row) is the most recent insert among equals.
  EXPECT_EQ(table->remove_worst()->object, 5u);
  EXPECT_EQ(table->remove_worst()->object, 4u);
  EXPECT_EQ(table->remove_worst()->object, 3u);
}

TEST(EdgeCases, SingleTableFaithfulAndIndexedHandleRemoveLastInterleaving) {
  for (const TableImpl impl : {TableImpl::kFaithful, TableImpl::kIndexed}) {
    SingleTable table(3, impl);
    table.insert_on_top(make_entry(1, 0, 0));
    table.insert_on_top(make_entry(2, 0, 0));
    EXPECT_EQ(table.remove_last()->object, 1u);
    table.insert_on_top(make_entry(3, 0, 0));
    table.insert_on_top(make_entry(4, 0, 0));
    EXPECT_EQ(table.size(), 3u);
    // Order: 4, 3, 2.
    const auto snapshot = table.snapshot();
    EXPECT_EQ(snapshot[0].object, 4u);
    EXPECT_EQ(snapshot[2].object, 2u);
  }
}

TEST(EdgeCases, WorstAgedTransitionsAtExactFill) {
  auto table = make_ordered_table(2, TableImpl::kIndexed);
  TableEntry entry = make_entry(1, 0, 100);
  entry.average = 10;
  table->insert(entry);
  EXPECT_TRUE(std::isinf(table->worst_aged(100)));
  TableEntry second = make_entry(2, 0, 100);
  second.average = 50;
  table->insert(second);
  EXPECT_FALSE(std::isinf(table->worst_aged(100)));
  table->remove(2);
  EXPECT_TRUE(std::isinf(table->worst_aged(100)));
}

TEST(EdgeCases, VersionFieldSurvivesTableMoves) {
  auto table = make_ordered_table(2, TableImpl::kIndexed);
  TableEntry entry = make_entry(1, 0, 10);
  entry.version = 42;
  table->insert(entry);
  const auto removed = table->remove(1);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->version, 42u);
}

}  // namespace
}  // namespace adc::cache
