// Size-aware cache tests: byte budgets, GDSF / size-LRU victim choice,
// eviction_order determinism across identically-driven instances, and the
// full-then-shrink budget transition every policy must survive.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/policies.h"
#include "util/rng.h"

namespace adc::cache {
namespace {

/// Deterministic synthetic sizes: object id's low bits pick one of a few
/// size classes so tests can reason about exact byte totals.
std::uint64_t size_class(ObjectId object) {
  switch (object % 4) {
    case 0:
      return 100;
    case 1:
      return 10;
    case 2:
      return 50;
    default:
      return 25;
  }
}

class SizedPolicyTest : public ::testing::TestWithParam<Policy> {
 protected:
  std::unique_ptr<CacheSet> make(std::size_t capacity, std::uint64_t budget) {
    return make_sized_cache(capacity, GetParam(), budget, size_class);
  }
};

TEST_P(SizedPolicyTest, BytesTrackInsertsAndErases) {
  auto cache = make(100, 0);
  cache->insert(1);  // 10
  cache->insert(2);  // 50
  EXPECT_EQ(cache->bytes(), 60u);
  cache->erase(1);
  EXPECT_EQ(cache->bytes(), 50u);
  cache->clear();
  EXPECT_EQ(cache->bytes(), 0u);
}

TEST_P(SizedPolicyTest, ByteBudgetIsNeverExceeded) {
  auto cache = make(1000, 200);
  util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    cache->insert_evicting(static_cast<ObjectId>(rng.next() % 1000 + 1));
    ASSERT_LE(cache->bytes(), 200u);
  }
}

TEST_P(SizedPolicyTest, OversizedObjectIsRefusedNotAdmitted) {
  auto cache = make(100, 40);
  cache->insert(1);  // 10, fits
  const auto evicted = cache->insert_evicting(4);  // 100 > budget 40
  EXPECT_FALSE(cache->contains(4));
  EXPECT_TRUE(evicted.empty());  // nothing sacrificed for a hopeless admit
  EXPECT_TRUE(cache->contains(1));
}

TEST_P(SizedPolicyTest, LargeAdmitMayEvictSeveral) {
  auto cache = make(100, 120);
  cache->insert(1);   // 10
  cache->insert(3);   // 25
  cache->insert(2);   // 50
  ASSERT_EQ(cache->bytes(), 85u);
  // Admitting a 100-byte object forces out more than one resident.
  const auto evicted = cache->insert_evicting(4);
  EXPECT_TRUE(cache->contains(4));
  EXPECT_GE(evicted.size(), 2u);
  EXPECT_LE(cache->bytes(), 120u);
}

TEST_P(SizedPolicyTest, EvictionOrderIsDeterministicAcrossInstances) {
  // Two identically-driven caches must agree on the exact victim order —
  // the property that keeps --workers N runs bit-identical.
  auto a = make(50, 400);
  auto b = make(50, 400);
  util::Rng rng(23);
  std::vector<ObjectId> ops;
  for (int i = 0; i < 400; ++i) ops.push_back(static_cast<ObjectId>(rng.next() % 80 + 1));
  for (const ObjectId object : ops) {
    a->lookup(object);
    const auto ea = a->insert_evicting(object);
    b->lookup(object);
    const auto eb = b->insert_evicting(object);
    ASSERT_EQ(ea, eb);
  }
  EXPECT_EQ(a->eviction_order(), b->eviction_order());
  EXPECT_EQ(a->bytes(), b->bytes());
}

TEST_P(SizedPolicyTest, FullThenShrinkBudgetTransition) {
  auto cache = make(1000, 500);
  util::Rng rng(31);
  for (int i = 0; i < 300; ++i) {
    cache->insert_evicting(static_cast<ObjectId>(rng.next() % 600 + 1));
  }
  ASSERT_GT(cache->bytes(), 200u);
  const std::size_t before = cache->size();

  // Shrink: evictions follow the policy's order and every reported victim
  // is really gone.
  const auto evicted = cache->set_byte_budget(200);
  EXPECT_LE(cache->bytes(), 200u);
  EXPECT_EQ(cache->byte_budget(), 200u);
  EXPECT_FALSE(evicted.empty());
  EXPECT_EQ(cache->size() + evicted.size(), before);
  for (const ObjectId victim : evicted) EXPECT_FALSE(cache->contains(victim));

  // Growing back evicts nothing and accepts new residents again.
  EXPECT_TRUE(cache->set_byte_budget(500).empty());
  cache->insert_evicting(1001 * 4);  // a 100-byte object
  EXPECT_LE(cache->bytes(), 500u);
}

TEST_P(SizedPolicyTest, EvictionOrderSnapshotMatchesActualVictims) {
  // Capacity exceeds size-LRU's cold-tail window, so the hot objects the
  // loop below inserts cannot perturb the predicted victim sequence.
  auto cache = make(16, 0);
  for (ObjectId object = 1; object <= 16; ++object) cache->insert(object);
  const std::vector<ObjectId> predicted = cache->eviction_order();
  ASSERT_EQ(predicted.size(), 16u);
  // Insert fresh objects one by one; victims must come off in snapshot
  // order (the snapshot is taken victim-first).
  for (std::size_t i = 0; i < 4; ++i) {
    const auto evicted = cache->insert_evicting(static_cast<ObjectId>(100 + i));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], predicted[i]) << "victim " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SizedPolicyTest,
                         ::testing::Values(Policy::kLru, Policy::kFifo, Policy::kLfu,
                                           Policy::kGdsf, Policy::kSizeLru),
                         [](const auto& info) {
                           return std::string(policy_name(info.param)) == "size-lru"
                                      ? "SizeLru"
                                      : std::string(policy_name(info.param));
                         });

TEST(GdsfCache, PrefersEvictingLargeColdObjects) {
  // Two same-frequency objects: GDSF's H = L + freq/size makes the larger
  // one cheaper to evict.
  auto cache = make_sized_cache(2, Policy::kGdsf, 0, size_class);
  cache->insert(4);  // 100 bytes
  cache->insert(1);  // 10 bytes
  const auto evicted = cache->insert_evicting(5);  // third object forces a choice
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 4u);  // the big one goes first
}

TEST(GdsfCache, FrequencyStillProtectsSmallEnoughGap) {
  auto cache = make_sized_cache(2, Policy::kGdsf, 0, [](ObjectId) { return 10u; });
  cache->insert(1);
  cache->insert(2);
  for (int i = 0; i < 8; ++i) cache->touch(1);
  const auto evicted = cache->insert_evicting(3);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);  // equal sizes: plain frequency decides
}

TEST(SizeLruCache, EvictsLargestAmongTheColdTail) {
  auto cache = make_sized_cache(16, Policy::kSizeLru, 0, size_class);
  // Fill 16 objects; object 4 (100 bytes) sits in the cold tail.
  for (ObjectId object = 1; object <= 16; ++object) cache->insert(object);
  const auto evicted = cache->insert_evicting(17);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(size_class(evicted[0]), 100u);  // a biggest-class victim
}

TEST(SizeLruCache, RecencyStillProtectsTheHotEnd) {
  auto cache = make_sized_cache(16, Policy::kSizeLru, 0, size_class);
  for (ObjectId object = 1; object <= 16; ++object) cache->insert(object);
  // Touch the big cold objects back to the hot end; eviction must then
  // come from the (small) cold tail instead.
  cache->touch(4);
  cache->touch(8);
  cache->touch(12);
  cache->touch(16);
  const auto evicted = cache->insert_evicting(17);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_NE(size_class(evicted[0]), 100u);
}

}  // namespace
}  // namespace adc::cache
