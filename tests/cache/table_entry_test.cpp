#include "cache/table_entry.h"

#include <gtest/gtest.h>

namespace adc::cache {
namespace {

TEST(TableEntry, FreshEntryMatchesPaperPart4) {
  const TableEntry e = make_entry(42, 3, 100);
  EXPECT_EQ(e.object, 42u);
  EXPECT_EQ(e.location, 3);
  EXPECT_EQ(e.last, 100);
  EXPECT_EQ(e.average, 0);
  EXPECT_EQ(e.hits, 1u);
}

TEST(TableEntry, SecondHitSetsAverageToGap) {
  // Paper Figure 9: on the second access the raw time difference becomes
  // the average.
  TableEntry e = make_entry(1, 0, 100);
  e.calc_average(150);
  EXPECT_EQ(e.average, 50);
  EXPECT_EQ(e.hits, 2u);
  EXPECT_EQ(e.last, 150);
}

TEST(TableEntry, LaterHitsUseTwoPointMovingAverage) {
  TableEntry e = make_entry(1, 0, 0);
  e.calc_average(100);  // avg = 100
  e.calc_average(120);  // avg = (100 + 20) / 2 = 60
  EXPECT_EQ(e.average, 60);
  EXPECT_EQ(e.hits, 3u);
  e.calc_average(180);  // avg = (60 + 60) / 2 = 60
  EXPECT_EQ(e.average, 60);
  EXPECT_EQ(e.hits, 4u);
}

TEST(TableEntry, IntegerDivisionFloors) {
  TableEntry e = make_entry(1, 0, 0);
  e.calc_average(5);   // avg = 5
  e.calc_average(9);   // avg = (5 + 4) / 2 = 4 (floor of 4.5)
  EXPECT_EQ(e.average, 4);
}

TEST(TableEntry, AgedMatchesPaperFormula) {
  TableEntry e = make_entry(1, 0, 100);
  e.average = 40;
  e.last = 100;
  // T_age = (40 + (130 - 100)) / 2 = 35.
  EXPECT_DOUBLE_EQ(e.aged(130), 35.0);
}

TEST(TableEntry, AgedJustAfterUpdateIsHalfAverage) {
  TableEntry e = make_entry(1, 0, 0);
  e.calc_average(100);
  EXPECT_DOUBLE_EQ(e.aged(100), 50.0);
}

TEST(TableEntry, AgingPreservesRelativeOrder) {
  // The paper: "all objects age at the same pace and ... an established
  // table order remains the same during the aging process."
  TableEntry hot = make_entry(1, 0, 0);
  hot.average = 10;
  hot.last = 90;
  TableEntry cold = make_entry(2, 0, 0);
  cold.average = 100;
  cold.last = 95;
  ASSERT_LT(hot.aged(100), cold.aged(100));
  for (SimTime now : {200, 1000, 100000}) {
    EXPECT_LT(hot.aged(now), cold.aged(now)) << "at " << now;
  }
}

TEST(TableEntry, SkewOrderEqualsAgedOrder) {
  TableEntry a = make_entry(1, 0, 0);
  a.average = 30;
  a.last = 50;
  TableEntry b = make_entry(2, 0, 0);
  b.average = 45;
  b.last = 70;
  EXPECT_EQ(a.skew() < b.skew(), a.aged(100) < b.aged(100));
  EXPECT_EQ(a.skew() < b.skew(), a.aged(5000) < b.aged(5000));
}

TEST(TableEntry, RecentlyRequestedObjectsAgeSlower) {
  // Two entries with equal averages: the one touched more recently must
  // have the lower aged value (it is allowed to stay longer).
  TableEntry recent = make_entry(1, 0, 0);
  recent.average = 50;
  recent.last = 90;
  TableEntry stale = make_entry(2, 0, 0);
  stale.average = 50;
  stale.last = 10;
  EXPECT_LT(recent.aged(100), stale.aged(100));
}

}  // namespace
}  // namespace adc::cache
