#include "core/adc_proxy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "proxy/client.h"
#include "proxy/origin_server.h"
#include "sim/simulator.h"

namespace adc::core {
namespace {

using proxy::Client;
using proxy::OriginServer;
using proxy::VectorStream;

/// Harness: `n` ADC proxies + origin + one client replaying `requests`.
struct Deployment {
  Deployment(int n, std::vector<ObjectId> requests, const AdcConfig& config,
             std::uint64_t seed = 1)
      : sim(seed), stream(std::move(requests)) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    const NodeId origin_id = n;
    const NodeId client_id = n + 1;
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<AdcProxy>(i, "proxy[" + std::to_string(i) + "]", config,
                                             ids, origin_id);
      proxies.push_back(node.get());
      sim.add_node(std::move(node));
    }
    auto origin_node = std::make_unique<OriginServer>(origin_id, "origin");
    origin = origin_node.get();
    sim.add_node(std::move(origin_node));
    auto client_node = std::make_unique<Client>(client_id, "client", stream, ids,
                                                proxy::EntryPolicy::kRoundRobin);
    client = client_node.get();
    sim.add_node(std::move(client_node));
  }

  void run() {
    client->start(sim);
    sim.run();
  }

  sim::Simulator sim;
  VectorStream stream;
  std::vector<AdcProxy*> proxies;
  OriginServer* origin = nullptr;
  Client* client = nullptr;
};

AdcConfig tiny_config() {
  AdcConfig config;
  config.single_table_size = 32;
  config.multiple_table_size = 32;
  config.caching_table_size = 8;
  return config;
}

TEST(AdcProxy, LocalClockTicksOncePerRequest) {
  Deployment d(1, {1, 2, 3, 4}, tiny_config());
  d.run();
  // Each request reaches the proxy at least once; loops revisit it.
  EXPECT_GE(d.proxies[0]->local_time(), 4);
  EXPECT_EQ(d.proxies[0]->local_time(),
            static_cast<SimTime>(d.proxies[0]->stats().requests_received));
}

TEST(AdcProxy, SingleProxyLearnsToCacheAHotObject) {
  // One proxy, one object, many requests: the first journeys must go to
  // the origin (promotion takes three touches), then everything is a hit.
  Deployment d(1, std::vector<ObjectId>(10, 42), tiny_config());
  d.run();
  EXPECT_TRUE(d.client->drained());
  EXPECT_EQ(d.client->completed(), 10u);
  EXPECT_TRUE(d.proxies[0]->is_locally_cached(42));
  const auto& summary = d.sim.metrics().summary();
  // Journey 1 loops through the proxy (self-forward), so the backwarding
  // reply passes it twice and Update_Entry runs twice: the entry reaches
  // the multiple-table already on journey 1 and the caching table on
  // journey 2.  Requests 3..10 are local hits.
  EXPECT_EQ(summary.hits, 8u);
  EXPECT_EQ(d.origin->requests_served(), 2u);
}

TEST(AdcProxy, EveryRequestIsResolvedExactlyOnce) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 200; ++i) requests.push_back(1 + (i * 7) % 23);
  Deployment d(3, requests, tiny_config());
  d.run();
  EXPECT_TRUE(d.client->drained());
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.completed, 200u);
  // Conservation: a request is a proxy hit or exactly one origin fetch.
  EXPECT_EQ(summary.hits + d.origin->requests_served(), 200u);
}

TEST(AdcProxy, PendingRecordsDrainAfterRun) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 300; ++i) requests.push_back(1 + (i * 13) % 57);
  Deployment d(4, requests, tiny_config(), /*seed=*/7);
  d.run();
  for (const AdcProxy* proxy : d.proxies) {
    EXPECT_EQ(proxy->pending_backwards(), 0u) << proxy->name();
  }
}

TEST(AdcProxy, SelfForwardTerminatesViaLoopDetection) {
  // With a single proxy, every unknown object forces a random "peer"
  // choice of itself; the second arrival must be detected as a loop and
  // end at the origin — never an infinite cycle.
  Deployment d(1, {1, 2, 3}, tiny_config());
  d.run();
  EXPECT_TRUE(d.client->drained());
  EXPECT_EQ(d.proxies[0]->stats().loops_detected, 3u);
  EXPECT_EQ(d.origin->requests_served(), 3u);
}

TEST(AdcProxy, HopsAccountForSelfForwardJourney) {
  // Single proxy, single cold object: client->p (1), p->p self (2),
  // p->origin (3), origin->p (4), p->p backward (5), p->client (6).
  Deployment d(1, {1}, tiny_config());
  d.run();
  EXPECT_EQ(d.sim.metrics().summary().total_hops, 6u);
}

TEST(AdcProxy, CacheHitJourneyIsTwoHops) {
  Deployment d(1, std::vector<ObjectId>(10, 42), tiny_config());
  d.run();
  // Journey 1 (cold, self-loop): c->p, p->p, p->o, o->p, p->p, p->c = 6.
  // Journey 2 (THIS entry -> origin): c->p, p->o, o->p, p->c = 4.
  // Journeys 3..10 are local hits: c->p, p->c = 2 each.
  EXPECT_EQ(d.sim.metrics().summary().total_hops, 6u + 4u + 8u * 2);
}

TEST(AdcProxy, MaxForwardsBoundsSearchLength) {
  AdcConfig config = tiny_config();
  config.max_forwards = 2;
  std::vector<ObjectId> requests;
  for (int i = 0; i < 100; ++i) requests.push_back(1000 + i);  // all cold
  Deployment d(5, requests, config, /*seed=*/3);
  d.run();
  EXPECT_TRUE(d.client->drained());
  std::uint64_t max_hit = 0;
  for (const AdcProxy* proxy : d.proxies) max_hit += proxy->stats().max_forwards_hit;
  EXPECT_GT(max_hit, 0u);
  // Forward chains were bounded: hops per request <= client hop + 2
  // forwards + origin hop + backward path (same length).
  const auto& summary = d.sim.metrics().summary();
  EXPECT_LE(summary.avg_hops(), 2.0 * (2 + 2) + 2);
}

TEST(AdcProxy, BackwardingTeachesEveryProxyOnThePath) {
  // Force a known path: 2 proxies, request enters p0 for a cold object.
  // Wherever the random walk goes, after the reply returns both visited
  // proxies must know a location for the object.
  Deployment d(2, {7, 7, 7, 7, 7, 7}, tiny_config(), /*seed=*/11);
  d.run();
  int knowing = 0;
  for (const AdcProxy* proxy : d.proxies) {
    if (proxy->tables().forward_location(7).has_value()) ++knowing;
  }
  // The entry proxy is always on the path, so at least it must know.
  EXPECT_GE(knowing, 1);
  // And the object is hot enough that someone cached it.
  int holders = 0;
  for (const AdcProxy* proxy : d.proxies) {
    if (proxy->is_locally_cached(7)) ++holders;
  }
  EXPECT_GE(holders, 1);
}

TEST(AdcProxy, ConvergesToHitsOnHotSet) {
  // 5 proxies, 5 hot objects, 500 requests: after warmup, requests must
  // overwhelmingly be proxy hits.
  std::vector<ObjectId> requests;
  for (int i = 0; i < 500; ++i) requests.push_back(1 + i % 5);
  Deployment d(5, requests, tiny_config(), /*seed=*/13);
  d.run();
  const auto& summary = d.sim.metrics().summary();
  EXPECT_TRUE(d.client->drained());
  EXPECT_GT(summary.hit_rate(), 0.8);
}

TEST(AdcProxy, ResolverClaimHappensOnOriginReplies) {
  Deployment d(2, {1, 2, 3, 4, 5}, tiny_config(), /*seed=*/17);
  d.run();
  std::uint64_t claims = 0;
  for (const AdcProxy* proxy : d.proxies) claims += proxy->stats().resolver_claims;
  // Every origin-resolved journey produces at least one claim (the proxy
  // that contacted the origin).
  EXPECT_GE(claims, d.origin->requests_served());
}

TEST(AdcProxy, AblSelModeCachesEveryPassingObject) {
  AdcConfig config = tiny_config();
  config.selective_caching = false;
  // Two requests for distinct cold objects: in admit-all mode the proxy
  // caches both immediately (no three-touch threshold).
  Deployment d(1, {1, 2, 1, 2}, config);
  d.run();
  EXPECT_TRUE(d.proxies[0]->is_locally_cached(1));
  EXPECT_TRUE(d.proxies[0]->is_locally_cached(2));
  // Requests 3 and 4 were hits.
  EXPECT_EQ(d.sim.metrics().summary().hits, 2u);
}

TEST(AdcProxy, AblBwdModeStillResolvesEverything) {
  AdcConfig config = tiny_config();
  config.backward_multicast = false;
  std::vector<ObjectId> requests;
  for (int i = 0; i < 200; ++i) requests.push_back(1 + i % 10);
  Deployment d(3, requests, config, /*seed=*/19);
  d.run();
  EXPECT_TRUE(d.client->drained());
  const auto& summary = d.sim.metrics().summary();
  EXPECT_EQ(summary.completed, 200u);
  EXPECT_EQ(summary.hits + d.origin->requests_served(), 200u);
}

TEST(AdcProxy, MulticastLearnsFasterThanEndpointOnly) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 400; ++i) requests.push_back(1 + i % 8);

  AdcConfig multicast = tiny_config();
  Deployment on(5, requests, multicast, /*seed=*/23);
  on.run();

  AdcConfig endpoint = tiny_config();
  endpoint.backward_multicast = false;
  Deployment off(5, requests, endpoint, /*seed=*/23);
  off.run();

  std::uint64_t learned_on = 0;
  std::uint64_t learned_off = 0;
  for (const AdcProxy* p : on.proxies) learned_on += p->stats().forwards_learned;
  for (const AdcProxy* p : off.proxies) learned_off += p->stats().forwards_learned;
  EXPECT_GT(learned_on, learned_off);
}

TEST(AdcProxy, FlushWipesLearnedState) {
  Deployment d(1, std::vector<ObjectId>(10, 42), tiny_config());
  d.run();
  ASSERT_TRUE(d.proxies[0]->is_locally_cached(42));
  ASSERT_GT(d.proxies[0]->tables().total_entries(), 0u);
  d.proxies[0]->flush();
  EXPECT_FALSE(d.proxies[0]->is_locally_cached(42));
  EXPECT_EQ(d.proxies[0]->tables().total_entries(), 0u);
  // Pending backwarding records survive (there are none after a run).
  EXPECT_EQ(d.proxies[0]->pending_backwards(), 0u);
}

TEST(AdcProxy, DeterministicAcrossRuns) {
  std::vector<ObjectId> requests;
  for (int i = 0; i < 300; ++i) requests.push_back(1 + (i * 31) % 41);
  Deployment a(4, requests, tiny_config(), /*seed=*/29);
  Deployment b(4, requests, tiny_config(), /*seed=*/29);
  a.run();
  b.run();
  EXPECT_EQ(a.sim.metrics().summary().hits, b.sim.metrics().summary().hits);
  EXPECT_EQ(a.sim.metrics().summary().total_hops, b.sim.metrics().summary().total_hops);
  EXPECT_EQ(a.sim.now(), b.sim.now());
  for (std::size_t i = 0; i < a.proxies.size(); ++i) {
    EXPECT_EQ(a.proxies[i]->stats().requests_received,
              b.proxies[i]->stats().requests_received);
  }
}

}  // namespace
}  // namespace adc::core
