#include "core/mapping_tables.h"

#include <gtest/gtest.h>

#include <optional>

#include "util/rng.h"

namespace adc::core {
namespace {

constexpr NodeId kSelf = 0;
constexpr NodeId kPeer = 3;

AdcConfig small_config(std::size_t single = 4, std::size_t multiple = 4,
                       std::size_t caching = 2) {
  AdcConfig config;
  config.single_table_size = single;
  config.multiple_table_size = multiple;
  config.caching_table_size = caching;
  return config;
}

// --- Part 4: unknown objects -------------------------------------------

TEST(UpdateEntry, UnknownObjectEntersSingleTableTop) {
  MappingTables tables(small_config());
  const UpdateResult result = tables.update_entry(1, kPeer, 10);
  EXPECT_TRUE(result.created);
  EXPECT_EQ(result.placement, TablePlacement::kSingle);
  ASSERT_NE(tables.single().top(), nullptr);
  EXPECT_EQ(tables.single().top()->object, 1u);
  EXPECT_EQ(tables.single().top()->location, kPeer);
  EXPECT_EQ(tables.single().top()->average, 0);
  EXPECT_EQ(tables.single().top()->hits, 1u);
}

TEST(UpdateEntry, SingleTableOverflowDropsOldest) {
  MappingTables tables(small_config(/*single=*/3));
  for (ObjectId id = 1; id <= 4; ++id) tables.update_entry(id, kPeer, static_cast<SimTime>(id));
  EXPECT_EQ(tables.single().size(), 3u);
  EXPECT_FALSE(tables.single().contains(1));
  EXPECT_TRUE(tables.single().contains(4));
}

// --- Part 3: single-table hits ------------------------------------------

TEST(UpdateEntry, SecondHitPromotesToMultiple) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10);
  const UpdateResult result = tables.update_entry(1, kPeer, 25);
  EXPECT_FALSE(result.created);
  EXPECT_EQ(result.placement, TablePlacement::kMultiple);
  EXPECT_FALSE(tables.single().contains(1));
  ASSERT_TRUE(tables.multiple().contains(1));
  EXPECT_EQ(tables.multiple().find(1)->average, 15);
  EXPECT_EQ(tables.multiple().find(1)->hits, 2u);
}

TEST(UpdateEntry, SecondHitStaysInSingleWhenMultipleIsBetterEverywhere) {
  // Fill the multiple-table with hot entries (tiny averages, recent), then
  // re-hit a single-table entry whose aged value is worse than the
  // multiple-table's worst.
  MappingTables tables(small_config(/*single=*/8, /*multiple=*/2, /*caching=*/2));
  // Hot pair promoted into multiple with gap 1 at times ~100.
  tables.update_entry(10, kPeer, 99);
  tables.update_entry(10, kPeer, 100);
  tables.update_entry(11, kPeer, 100);
  tables.update_entry(11, kPeer, 101);
  ASSERT_TRUE(tables.multiple().full());
  // Cold object: first seen at 1, re-hit at 101 -> avg 100, aged 50 at 101.
  tables.update_entry(20, kPeer, 1);
  const UpdateResult result = tables.update_entry(20, kPeer, 101);
  EXPECT_EQ(result.placement, TablePlacement::kSingle);
  EXPECT_TRUE(tables.single().contains(20));
  // And it went back on top (LRU bump).
  EXPECT_EQ(tables.single().top()->object, 20u);
}

TEST(UpdateEntry, PromotionIntoFullMultipleDemotesWorstToSingleTop) {
  MappingTables tables(small_config(/*single=*/8, /*multiple=*/2, /*caching=*/2));
  // Two lukewarm entries fill the multiple-table (gap 50).
  tables.update_entry(10, kPeer, 0);
  tables.update_entry(10, kPeer, 50);
  tables.update_entry(11, kPeer, 10);
  tables.update_entry(11, kPeer, 60);
  ASSERT_TRUE(tables.multiple().full());
  const ObjectId worst_before = tables.multiple().worst()->object;
  // A hot newcomer (gap 2, fresh) must displace the worst.
  tables.update_entry(30, kPeer, 98);
  const UpdateResult result = tables.update_entry(30, kPeer, 100);
  EXPECT_EQ(result.placement, TablePlacement::kMultiple);
  EXPECT_TRUE(tables.multiple().contains(30));
  EXPECT_FALSE(tables.multiple().contains(worst_before));
  EXPECT_TRUE(tables.single().contains(worst_before));
  EXPECT_EQ(tables.single().top()->object, worst_before);
}

// --- Part 2: multiple-table hits ----------------------------------------

TEST(UpdateEntry, ThirdHitPromotesToCachingWhileCacheHasRoom) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10);
  tables.update_entry(1, kPeer, 20);  // -> multiple
  const UpdateResult result = tables.update_entry(1, kPeer, 30);
  EXPECT_EQ(result.placement, TablePlacement::kCaching);
  EXPECT_TRUE(result.promoted_to_cache);
  EXPECT_FALSE(result.demoted_from_cache);
  EXPECT_TRUE(tables.is_cached(1));
  EXPECT_FALSE(tables.multiple().contains(1));
}

TEST(UpdateEntry, MultipleEntryStaysWhenCacheIsBetter) {
  MappingTables tables(small_config(/*single=*/8, /*multiple=*/4, /*caching=*/1));
  // Hot object fills the 1-slot cache (gap 1).
  tables.update_entry(1, kPeer, 100);
  tables.update_entry(1, kPeer, 101);
  tables.update_entry(1, kPeer, 102);  // cached
  ASSERT_TRUE(tables.is_cached(1));
  // Lukewarm object reaches multiple and gets re-hit, but its aged value
  // (gap ~50) cannot beat the cache's worst (gap ~1, fresh).
  tables.update_entry(2, kPeer, 4);
  tables.update_entry(2, kPeer, 54);   // -> multiple
  const UpdateResult result = tables.update_entry(2, kPeer, 104);
  EXPECT_EQ(result.placement, TablePlacement::kMultiple);
  EXPECT_FALSE(result.promoted_to_cache);
  EXPECT_TRUE(tables.multiple().contains(2));
  EXPECT_TRUE(tables.is_cached(1));
}

TEST(UpdateEntry, CachePromotionDemotesWorstCacheEntryToMultiple) {
  MappingTables tables(small_config(/*single=*/8, /*multiple=*/4, /*caching=*/1));
  // Lukewarm object occupies the cache (gap 40).
  tables.update_entry(1, kPeer, 0);
  tables.update_entry(1, kPeer, 40);
  tables.update_entry(1, kPeer, 80);  // cached, avg 40
  ASSERT_TRUE(tables.is_cached(1));
  // Hot object (gap 1) storms through: single -> multiple -> cache.
  tables.update_entry(2, kPeer, 98);
  tables.update_entry(2, kPeer, 99);
  const UpdateResult result = tables.update_entry(2, kPeer, 100);
  EXPECT_EQ(result.placement, TablePlacement::kCaching);
  EXPECT_TRUE(result.promoted_to_cache);
  EXPECT_TRUE(result.demoted_from_cache);
  EXPECT_TRUE(tables.is_cached(2));
  EXPECT_FALSE(tables.is_cached(1));
  EXPECT_TRUE(tables.multiple().contains(1));  // demoted, not dropped
}

// --- Part 1: caching-table hits -----------------------------------------

TEST(UpdateEntry, CachedEntryIsRefreshedInPlace) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10);
  tables.update_entry(1, kPeer, 20);
  tables.update_entry(1, kPeer, 30);  // cached, avg 10
  ASSERT_TRUE(tables.is_cached(1));
  const UpdateResult result = tables.update_entry(1, kSelf, 40);
  EXPECT_EQ(result.placement, TablePlacement::kCaching);
  EXPECT_FALSE(result.promoted_to_cache);  // it was already cached
  ASSERT_TRUE(tables.is_cached(1));
  EXPECT_EQ(tables.caching().find(1)->location, kSelf);
  EXPECT_EQ(tables.caching().find(1)->average, 10);  // (10 + 10) / 2
  EXPECT_EQ(tables.caching().find(1)->hits, 4u);
}

// --- Lookup behaviour ----------------------------------------------------

TEST(MappingTables, ForwardLocationSearchesCachingFirst) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10);
  EXPECT_EQ(tables.forward_location(1), kPeer);
  tables.update_entry(1, 4, 20);  // now in multiple with location 4
  EXPECT_EQ(tables.forward_location(1), 4);
  tables.update_entry(1, 5, 30);  // now cached with location 5
  EXPECT_EQ(tables.forward_location(1), 5);
}

TEST(MappingTables, ForwardLocationUnknownIsNullopt) {
  MappingTables tables(small_config());
  EXPECT_FALSE(tables.forward_location(99).has_value());
}

TEST(MappingTables, TotalEntriesSumsAllTables) {
  MappingTables tables(small_config(8, 8, 4));
  tables.update_entry(1, kPeer, 1);   // single
  tables.update_entry(2, kPeer, 2);   // single
  tables.update_entry(2, kPeer, 3);   // multiple
  tables.update_entry(2, kPeer, 4);   // caching
  EXPECT_EQ(tables.single().size(), 1u);
  EXPECT_EQ(tables.multiple().size(), 0u);
  EXPECT_EQ(tables.caching().size(), 1u);
  EXPECT_EQ(tables.total_entries(), 2u);
}

TEST(MappingTables, ClearEmptiesAllTables) {
  MappingTables tables(small_config());
  for (ObjectId id = 1; id <= 3; ++id) {
    tables.update_entry(id, kPeer, static_cast<SimTime>(id));
    tables.update_entry(id, kPeer, static_cast<SimTime>(id + 10));
  }
  tables.clear();
  EXPECT_EQ(tables.total_entries(), 0u);
  EXPECT_FALSE(tables.forward_location(1).has_value());
}

// --- ABL-SEL mode (no caching table) -------------------------------------

TEST(MappingTables, NoCachingTableModeNeverCaches) {
  AdcConfig config = small_config();
  config.selective_caching = false;
  MappingTables tables(config);
  EXPECT_FALSE(tables.has_caching_table());
  for (int i = 0; i < 10; ++i) tables.update_entry(1, kPeer, i * 10);
  EXPECT_FALSE(tables.is_cached(1));
  EXPECT_TRUE(tables.multiple().contains(1));
}

TEST(MappingTables, NoCachingTableStillLearnsLocations) {
  AdcConfig config = small_config();
  config.selective_caching = false;
  MappingTables tables(config);
  tables.update_entry(1, kPeer, 10);
  tables.update_entry(1, 4, 20);
  EXPECT_EQ(tables.forward_location(1), 4);
}

// --- Data versions (staleness accounting) --------------------------------

TEST(UpdateEntry, DataVersionIsRecordedAndKept) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10, /*data_version=*/3);
  EXPECT_EQ(tables.single().find(1)->version, 3u);
  // A bookkeeping touch (no data in hand) keeps the stored version.
  tables.update_entry(1, kPeer, 20);
  EXPECT_EQ(tables.multiple().find(1)->version, 3u);
  // A new data pass refreshes it.
  tables.update_entry(1, kPeer, 30, /*data_version=*/7);
  ASSERT_TRUE(tables.is_cached(1));
  EXPECT_EQ(tables.caching().find(1)->version, 7u);
}

TEST(UpdateEntry, FreshEntryDefaultsToVersionZero) {
  MappingTables tables(small_config());
  tables.update_entry(9, kPeer, 5);
  EXPECT_EQ(tables.single().find(9)->version, 0u);
}

// --- Versioned resolver claims -------------------------------------------

TEST(UpdateEntry, StrictlyOlderClaimIsRejectedWithoutTouchingState) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10, std::nullopt, /*claim=*/5);
  const UpdateResult result = tables.update_entry(1, 4, 20, std::nullopt, /*claim=*/3);
  EXPECT_TRUE(result.rejected_stale);
  EXPECT_FALSE(result.created);
  // Nothing moved: no promotion to multiple, no location change, no aging.
  ASSERT_TRUE(tables.single().contains(1));
  EXPECT_EQ(tables.single().find(1)->location, kPeer);
  EXPECT_EQ(tables.single().find(1)->hits, 1u);
  EXPECT_EQ(tables.claim_of(1), 5u);
}

TEST(UpdateEntry, EqualClaimIsNotStale) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10, std::nullopt, /*claim=*/5);
  const UpdateResult result = tables.update_entry(1, 4, 20, std::nullopt, /*claim=*/5);
  EXPECT_FALSE(result.rejected_stale);
  EXPECT_EQ(result.placement, TablePlacement::kMultiple);
  EXPECT_EQ(tables.multiple().find(1)->location, 4);
}

TEST(UpdateEntry, FresherClaimRatchetsTheStoredClaimAcrossPromotions) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10, std::nullopt, /*claim=*/2);
  EXPECT_EQ(tables.claim_of(1), 2u);
  tables.update_entry(1, kPeer, 20, std::nullopt, /*claim=*/6);  // -> multiple
  EXPECT_EQ(tables.claim_of(1), 6u);
  tables.update_entry(1, kPeer, 30, std::nullopt, /*claim=*/9);  // -> caching
  ASSERT_TRUE(tables.is_cached(1));
  EXPECT_EQ(tables.claim_of(1), 9u);
}

TEST(UpdateEntry, UnversionedEntriesNeverReject) {
  // Entries that never saw a resolver claim (claim 0) accept any update —
  // the rejection rule only protects versioned opinions.
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10);
  const UpdateResult result = tables.update_entry(1, 4, 20);
  EXPECT_FALSE(result.rejected_stale);
  EXPECT_EQ(tables.claim_of(1), 0u);
  // First claim attaches cleanly.
  tables.update_entry(1, 4, 30, std::nullopt, /*claim=*/7);
  EXPECT_EQ(tables.claim_of(1), 7u);
}

TEST(MappingTables, ClaimOfUnknownObjectIsZero) {
  MappingTables tables(small_config());
  EXPECT_EQ(tables.claim_of(99), 0u);
}

TEST(MappingTables, RepairLocationOverwritesSingleAndMultipleEntriesInPlace) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10, std::nullopt, /*claim=*/9);  // single
  tables.update_entry(2, kPeer, 10, std::nullopt, /*claim=*/9);
  tables.update_entry(2, kPeer, 20, std::nullopt, /*claim=*/9);  // multiple
  EXPECT_TRUE(tables.repair_location(1, 4, /*claim=*/12));
  EXPECT_TRUE(tables.repair_location(2, 5, /*claim=*/13));
  // Repair is an overwrite, not a hit: entries stay in their tables with
  // the new location and claim, hit counts untouched.
  ASSERT_TRUE(tables.single().contains(1));
  EXPECT_EQ(tables.single().find(1)->location, 4);
  EXPECT_EQ(tables.single().find(1)->hits, 1u);
  EXPECT_EQ(tables.claim_of(1), 12u);
  ASSERT_TRUE(tables.multiple().contains(2));
  EXPECT_EQ(tables.multiple().find(2)->location, 5);
  EXPECT_EQ(tables.claim_of(2), 13u);
}

TEST(MappingTables, RepairLocationLeavesUnknownAndCachedObjectsAlone) {
  MappingTables tables(small_config());
  EXPECT_FALSE(tables.repair_location(99, 4, 12));
  // A cached entry means this proxy holds the bytes; a remote opinion must
  // not redirect it away from itself.
  tables.update_entry(1, kPeer, 10);
  tables.update_entry(1, kPeer, 20);
  tables.update_entry(1, kSelf, 30);  // cached
  ASSERT_TRUE(tables.is_cached(1));
  EXPECT_FALSE(tables.repair_location(1, 4, 12));
  EXPECT_EQ(tables.caching().find(1)->location, kSelf);
}

TEST(MappingTables, StampClaimRaisesInPlaceAndNeverLowers) {
  MappingTables tables(small_config());
  tables.update_entry(1, kPeer, 10, std::nullopt, /*claim=*/5);
  tables.stamp_claim(1, 8);
  EXPECT_EQ(tables.claim_of(1), 8u);
  tables.stamp_claim(1, 3);  // lower: ignored
  EXPECT_EQ(tables.claim_of(1), 8u);
  tables.stamp_claim(99, 8);  // unknown: no-op, no crash
  EXPECT_EQ(tables.claim_of(99), 0u);
  // No reordering happened: still a single-table entry with one hit.
  ASSERT_TRUE(tables.single().contains(1));
  EXPECT_EQ(tables.single().find(1)->hits, 1u);
}

// --- Invariants under churn ----------------------------------------------

TEST(MappingTablesProperty, CapacitiesNeverExceededAndNoDuplicates) {
  MappingTables tables(small_config(/*single=*/8, /*multiple=*/6, /*caching=*/4));
  util::Rng rng(99);
  SimTime now = 0;
  for (int step = 0; step < 30000; ++step) {
    const ObjectId object = 1 + rng.below(40);
    const auto location = static_cast<NodeId>(rng.below(5));
    tables.update_entry(object, location, ++now);

    ASSERT_LE(tables.single().size(), 8u);
    ASSERT_LE(tables.multiple().size(), 6u);
    ASSERT_LE(tables.caching().size(), 4u);

    // An object lives in at most one table.
    int homes = 0;
    if (tables.single().contains(object)) ++homes;
    if (tables.multiple().contains(object)) ++homes;
    if (tables.caching().contains(object)) ++homes;
    ASSERT_EQ(homes, 1) << "object " << object << " after step " << step;
  }
  // With 40 objects hammering 18 slots, the tables must be full.
  EXPECT_TRUE(tables.single().full());
  EXPECT_TRUE(tables.multiple().full());
  EXPECT_TRUE(tables.caching().full());
}

TEST(MappingTablesProperty, HotObjectsEndUpCached) {
  // Three objects requested every tick against a universe of noise must
  // occupy the cache: selective caching at work.
  MappingTables tables(small_config(/*single=*/16, /*multiple=*/8, /*caching=*/3));
  util::Rng rng(5);
  SimTime now = 0;
  for (int round = 0; round < 3000; ++round) {
    for (ObjectId hot = 1; hot <= 3; ++hot) tables.update_entry(hot, kPeer, ++now);
    tables.update_entry(1000 + rng.below(500), kPeer, ++now);  // noise
  }
  EXPECT_TRUE(tables.is_cached(1));
  EXPECT_TRUE(tables.is_cached(2));
  EXPECT_TRUE(tables.is_cached(3));
}

}  // namespace
}  // namespace adc::core
