// SwimDetector state-machine tests: the probe cycle, indirection,
// suspicion, refutation, death and rejoin — all driven through a recording
// transport with a hand-advanced clock, so every timeout edge is exact.
#include "membership/swim.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/message.h"
#include "sim/transport.h"
#include "util/rng.h"

namespace adc::membership {
namespace {

using sim::Message;
using sim::MessageKind;

/// Captures sends and exposes a manual clock.  rng() accesses are counted:
/// the detector documents that it never draws from the transport's stream.
class RecordingTransport final : public sim::Transport {
 public:
  void send(Message msg) override { sent.push_back(msg); }
  util::Rng& rng() noexcept override {
    ++rng_draws;
    return rng_;
  }
  SimTime now() const noexcept override { return clock; }

  std::vector<Message> of_kind(MessageKind kind) const {
    std::vector<Message> out;
    for (const Message& msg : sent) {
      if (msg.kind == kind) out.push_back(msg);
    }
    return out;
  }

  SimTime clock = 0;
  std::vector<Message> sent;
  int rng_draws = 0;

 private:
  util::Rng rng_{99};
};

SwimConfig test_config() {
  SwimConfig config;
  config.enabled = true;
  // Defaults restated so the timeline below stays valid if defaults move.
  config.ping_interval = 200;
  config.ack_timeout = 100;
  config.indirect_timeout = 100;
  config.suspect_timeout = 600;
  config.dead_probe_interval = 1600;
  return config;
}

Message swim_msg(MessageKind kind, NodeId sender, NodeId subject, std::uint64_t incarnation,
                 NodeId on_behalf_of = kInvalidNode) {
  Message msg;
  msg.kind = kind;
  msg.sender = sender;
  msg.target = 0;  // the detector under test is always node 0
  msg.resolver = subject;
  msg.version = incarnation;
  msg.client = on_behalf_of;
  return msg;
}

TEST(Swim, FirstTickProbesAPeer) {
  RecordingTransport net;
  SwimDetector detector(0, {0, 1}, test_config());  // own id is filtered out
  detector.tick(net, 0);
  const auto pings = net.of_kind(MessageKind::kSwimPing);
  ASSERT_EQ(pings.size(), 1u);
  EXPECT_EQ(pings[0].target, 1);
  EXPECT_EQ(pings[0].resolver, 1);
  EXPECT_EQ(pings[0].client, kInvalidNode);
  EXPECT_EQ(detector.stats().pings_sent, 1u);
}

TEST(Swim, UnansweredProbeEscalatesToSuspectThenDead) {
  RecordingTransport net;
  SwimDetector detector(0, {1}, test_config());
  NodeId died = kInvalidNode;
  detector.set_on_death([&died](NodeId peer) { died = peer; });

  detector.tick(net, 0);  // ping at t=0
  net.clock = 150;        // past ack_timeout: escalate (no relays exist)
  detector.tick(net, 150);
  EXPECT_EQ(detector.state(1), PeerState::kAlive);

  net.clock = 300;  // past indirect_timeout: suspicion
  detector.tick(net, 300);
  EXPECT_EQ(detector.state(1), PeerState::kSuspect);
  EXPECT_EQ(detector.stats().suspicions, 1u);
  ASSERT_EQ(net.of_kind(MessageKind::kSwimSuspect).size(), 1u);

  net.clock = 950;  // past suspect_timeout after suspicion at t=300
  detector.tick(net, 950);
  EXPECT_EQ(detector.state(1), PeerState::kDead);
  EXPECT_EQ(detector.stats().deaths, 1u);
  EXPECT_EQ(detector.epoch(), 1u);
  EXPECT_EQ(died, 1);
  EXPECT_TRUE(detector.alive_peers().empty());
}

TEST(Swim, AckCancelsTheOutstandingProbe) {
  RecordingTransport net;
  SwimDetector detector(0, {1}, test_config());
  detector.tick(net, 0);
  detector.on_message(net, swim_msg(MessageKind::kSwimAck, 1, 1, 0));
  net.clock = 300;
  detector.tick(net, 300);
  EXPECT_EQ(detector.state(1), PeerState::kAlive);
  EXPECT_EQ(detector.stats().suspicions, 0u);
}

TEST(Swim, DirectProbeTimeoutAsksRelaysBeforeSuspecting) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2, 3}, test_config());
  detector.tick(net, 0);  // ping one peer
  const auto first_pings = net.of_kind(MessageKind::kSwimPing);
  ASSERT_EQ(first_pings.size(), 1u);
  const NodeId target = first_pings[0].target;

  net.clock = 150;
  detector.tick(net, 150);
  const auto ping_reqs = net.of_kind(MessageKind::kSwimPingReq);
  ASSERT_EQ(ping_reqs.size(), 2u);  // ping_req_fanout relays
  for (const Message& req : ping_reqs) {
    EXPECT_EQ(req.resolver, target);  // subject: probe this member for me
    EXPECT_NE(req.target, target);
  }
  EXPECT_EQ(detector.state(target), PeerState::kAlive);  // not suspected yet
}

TEST(Swim, PingReqRelaysProbeAndForwardsAckToOriginalProber) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2}, test_config());

  // Member 1 asks us to probe member 2 on its behalf.
  detector.on_message(net, swim_msg(MessageKind::kSwimPingReq, 1, 2, 0));
  const auto pings = net.of_kind(MessageKind::kSwimPing);
  ASSERT_EQ(pings.size(), 1u);
  EXPECT_EQ(pings[0].target, 2);
  EXPECT_EQ(pings[0].client, 1);  // the original prober rides along
  EXPECT_EQ(detector.stats().relayed_probes, 1u);

  // Member 2 acks (the relayed client field echoed): forward it to 1.
  detector.on_message(net, swim_msg(MessageKind::kSwimAck, 2, 2, 0, /*on_behalf_of=*/1));
  const auto acks = net.of_kind(MessageKind::kSwimAck);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].target, 1);
  EXPECT_EQ(acks[0].resolver, 2);  // still about the probed subject
  EXPECT_EQ(acks[0].sender, 0);
}

TEST(Swim, IncomingPingIsAckedWithOwnIncarnation) {
  RecordingTransport net;
  SwimDetector detector(0, {1}, test_config());
  Message ping = swim_msg(MessageKind::kSwimPing, 1, 0, 0);
  ping.request_id = 77;
  detector.on_message(net, ping);
  const auto acks = net.of_kind(MessageKind::kSwimAck);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].target, 1);
  EXPECT_EQ(acks[0].request_id, 77u);
  EXPECT_EQ(acks[0].resolver, 0);  // subject: ourselves
  EXPECT_EQ(detector.stats().acks_sent, 1u);
}

TEST(Swim, SuspicionAboutSelfIsRefutedWithHigherIncarnation) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2}, test_config());
  detector.on_message(net, swim_msg(MessageKind::kSwimSuspect, 1, 0, 0));
  EXPECT_EQ(detector.self_incarnation(), 1u);
  EXPECT_EQ(detector.stats().refutations, 1u);
  const auto alives = net.of_kind(MessageKind::kSwimAlive);
  ASSERT_EQ(alives.size(), 2u);  // broadcast to both peers
  for (const Message& alive : alives) {
    EXPECT_EQ(alive.resolver, 0);
    EXPECT_EQ(alive.version, 1u);
  }
}

TEST(Swim, RefutationClearsAForeignSuspicion) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2}, test_config());
  detector.on_message(net, swim_msg(MessageKind::kSwimSuspect, 2, 1, 0));
  EXPECT_EQ(detector.state(1), PeerState::kSuspect);
  detector.on_message(net, swim_msg(MessageKind::kSwimAlive, 1, 1, 1));
  EXPECT_EQ(detector.state(1), PeerState::kAlive);
  EXPECT_EQ(detector.incarnation(1), 1u);
}

TEST(Swim, StaleSuspicionIsIgnored) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2}, test_config());
  // Member 1 refuted itself up to incarnation 3 at some point.
  detector.on_message(net, swim_msg(MessageKind::kSwimAlive, 1, 1, 3));
  // A suspicion at incarnation 2 is older news: no state change.
  detector.on_message(net, swim_msg(MessageKind::kSwimSuspect, 2, 1, 2));
  EXPECT_EQ(detector.state(1), PeerState::kAlive);
  EXPECT_EQ(detector.stats().suspicions, 0u);
}

TEST(Swim, GossipedDeathAdvancesEpochOnce) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2}, test_config());
  detector.on_message(net, swim_msg(MessageKind::kSwimDead, 2, 1, 0));
  EXPECT_EQ(detector.state(1), PeerState::kDead);
  EXPECT_EQ(detector.epoch(), 1u);
  // A duplicate death notice must not advance the epoch again.
  detector.on_message(net, swim_msg(MessageKind::kSwimDead, 2, 1, 0));
  EXPECT_EQ(detector.epoch(), 1u);
}

TEST(Swim, DirectEvidenceRejoinsADeadMember) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2}, test_config());
  NodeId joined = kInvalidNode;
  detector.set_on_join([&joined](NodeId peer) { joined = peer; });
  detector.on_message(net, swim_msg(MessageKind::kSwimDead, 2, 1, 0));
  ASSERT_EQ(detector.state(1), PeerState::kDead);

  // A message *from* the dead member itself — even at incarnation 0, as a
  // restarted daemon would send — proves it is back.
  detector.on_message(net, swim_msg(MessageKind::kSwimPing, 1, 0, 0));
  EXPECT_EQ(detector.state(1), PeerState::kAlive);
  EXPECT_EQ(detector.epoch(), 2u);
  EXPECT_EQ(detector.stats().joins, 1u);
  EXPECT_EQ(joined, 1);
}

TEST(Swim, IndirectGossipCannotRejoinADeadMember) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2}, test_config());
  detector.on_message(net, swim_msg(MessageKind::kSwimDead, 2, 1, 0));
  // Member 2 still believes in 1 — hearsay is not rejoin evidence.
  detector.on_message(net, swim_msg(MessageKind::kSwimAlive, 2, 1, 5));
  EXPECT_EQ(detector.state(1), PeerState::kDead);
  EXPECT_EQ(detector.epoch(), 1u);
}

TEST(Swim, DeadMembersKeepReceivingSlowProbes) {
  RecordingTransport net;
  SwimDetector detector(0, {1}, test_config());
  detector.on_message(net, swim_msg(MessageKind::kSwimDead, 1, 1, 0));
  net.sent.clear();
  net.clock = 2000;
  detector.tick(net, 2000);  // past dead_probe_interval
  const auto pings = net.of_kind(MessageKind::kSwimPing);
  ASSERT_GE(pings.size(), 1u);
  EXPECT_EQ(pings[0].target, 1);
}

TEST(Swim, ObserveFailureRaisesAnImmediateSuspicion) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2}, test_config());
  detector.observe_failure(net, 1, 50);
  EXPECT_EQ(detector.state(1), PeerState::kSuspect);
  EXPECT_EQ(detector.stats().suspicions, 1u);
  // And the regular suspect timeout still applies from that moment.
  net.clock = 700;
  detector.tick(net, 700);
  EXPECT_EQ(detector.state(1), PeerState::kDead);
}

TEST(Swim, ObserveAliveClearsASuspicion) {
  RecordingTransport net;
  SwimDetector detector(0, {1}, test_config());
  detector.observe_failure(net, 1, 50);
  ASSERT_EQ(detector.state(1), PeerState::kSuspect);
  detector.observe_alive(1);
  EXPECT_EQ(detector.state(1), PeerState::kAlive);
}

TEST(Swim, NeverDrawsFromTheTransportRng) {
  // The detector's randomness (probe order, relay picks) must come from
  // its private stream, exactly like fault::FaultPlan — otherwise enabling
  // it would perturb protocol-level random choices.
  RecordingTransport net;
  SwimDetector detector(0, {1, 2, 3}, test_config());
  for (SimTime t = 0; t <= 3000; t += 50) {
    net.clock = t;
    detector.tick(net, t);
  }
  EXPECT_EQ(net.rng_draws, 0);
}

TEST(Swim, SeedDiversifiesProbeOrderDeterministically) {
  SwimConfig a = test_config();
  SwimConfig b = test_config();
  b.seed = a.seed + 1;
  const auto first_target = [](SwimConfig config) {
    RecordingTransport net;
    SwimDetector detector(0, {1, 2, 3, 4, 5, 6, 7, 8}, config);
    detector.tick(net, 0);
    return net.sent.at(0).target;
  };
  // Same seed, same order; the run is reproducible.
  EXPECT_EQ(first_target(a), first_target(a));
  EXPECT_EQ(first_target(b), first_target(b));
}

TEST(Swim, DescribePeersListsStates) {
  RecordingTransport net;
  SwimDetector detector(0, {1, 2}, test_config());
  detector.on_message(net, swim_msg(MessageKind::kSwimDead, 2, 1, 0));
  const std::string text = detector.describe_peers();
  EXPECT_NE(text.find("1:dead"), std::string::npos) << text;
  EXPECT_NE(text.find("2:alive"), std::string::npos) << text;
}

}  // namespace
}  // namespace adc::membership
