// Membership at the experiment level: enabling the SWIM detector on a
// zero-churn run must not move a single protocol-level number (its traffic
// rides the same transport but never touches the protocol RNG or tables),
// detector-enabled runs must stay bit-identical across --workers counts,
// and a mid-run crash must be detected, epoch-bumped, and — for the
// hashing schemes — absorbed by an owner-map rebuild.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "driver/experiment.h"
#include "driver/parallel.h"
#include "workload/polygraph.h"

namespace adc::driver {
namespace {

workload::Trace tiny_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 800;
  config.phase2_requests = 1200;
  config.phase3_requests = 1000;
  config.hot_set_size = 100;
  config.seed = 5;
  return workload::generate_polygraph_trace(config);
}

ExperimentConfig base_config(Scheme scheme) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.proxies = 3;
  config.adc.single_table_size = 150;
  config.adc.multiple_table_size = 150;
  config.adc.caching_table_size = 80;
  config.sample_every = 500;
  return config;
}

/// The zero-churn contract: everything the protocol computes is identical;
/// only raw transport counters (messages, events, end time) may differ,
/// because SWIM probes ride the same network.
void expect_protocol_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  EXPECT_EQ(a.summary.hits, b.summary.hits);
  EXPECT_EQ(a.summary.total_hops, b.summary.total_hops);
  EXPECT_EQ(a.summary.total_forwards, b.summary.total_forwards);
  EXPECT_EQ(a.summary.total_latency, b.summary.total_latency);
  EXPECT_EQ(a.origin_served, b.origin_served);
  EXPECT_EQ(a.hops_p50, b.hops_p50);
  EXPECT_EQ(a.hops_p95, b.hops_p95);
  EXPECT_EQ(a.hops_max, b.hops_max);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p95, b.latency_p95);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].requests, b.series[i].requests);
    EXPECT_EQ(a.series[i].hit_rate, b.series[i].hit_rate);
    EXPECT_EQ(a.series[i].hops, b.series[i].hops);
    EXPECT_EQ(a.series[i].latency, b.series[i].latency);
  }
  ASSERT_EQ(a.proxies.size(), b.proxies.size());
  for (std::size_t i = 0; i < a.proxies.size(); ++i) {
    EXPECT_EQ(a.proxies[i].requests_received, b.proxies[i].requests_received);
    EXPECT_EQ(a.proxies[i].local_hits, b.proxies[i].local_hits);
    EXPECT_EQ(a.proxies[i].cached_objects, b.proxies[i].cached_objects);
    EXPECT_EQ(a.proxies[i].table_entries, b.proxies[i].table_entries);
  }
  EXPECT_EQ(a.adc_totals.requests_received, b.adc_totals.requests_received);
  EXPECT_EQ(a.adc_totals.local_hits, b.adc_totals.local_hits);
  EXPECT_EQ(a.adc_totals.forwards_learned, b.adc_totals.forwards_learned);
  EXPECT_EQ(a.adc_totals.forwards_random, b.adc_totals.forwards_random);
  EXPECT_EQ(a.adc_totals.resolver_claims, b.adc_totals.resolver_claims);
  EXPECT_EQ(a.adc_totals.cache_admissions, b.adc_totals.cache_admissions);
  EXPECT_EQ(a.adc_totals.stale_claims_rejected, b.adc_totals.stale_claims_rejected);
}

class MembershipSchemesTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(MembershipSchemesTest, ZeroChurnDetectorIsProtocolInvisible) {
  const auto trace = tiny_trace();
  const ExperimentConfig off = base_config(GetParam());
  ExperimentConfig on = off;
  on.membership.swim.enabled = true;
  const auto a = run_experiment(off, trace);
  const auto b = run_experiment(on, trace);
  expect_protocol_identical(a, b);
  // The detector ran (it is not simply disabled)...
  EXPECT_GT(b.messages, a.messages);
  // ...but with zero churn it confirmed nothing and repaired nothing.
  EXPECT_EQ(b.membership.max_epoch, 0u);
  EXPECT_EQ(b.membership.deaths, 0u);
  EXPECT_EQ(b.membership.joins, 0u);
  EXPECT_EQ(b.membership.repair_rounds, 0u);
  EXPECT_EQ(b.membership.max_reshuffle_fraction, 0.0);
  EXPECT_EQ(b.adc_totals.repair_offers, 0u);
  EXPECT_EQ(b.adc_totals.repairs_applied, 0u);
}

TEST_P(MembershipSchemesTest, DetectorRunsAreBitIdenticalAcrossWorkers) {
  const auto trace = tiny_trace();
  ExperimentConfig config = base_config(GetParam());
  config.membership.swim.enabled = true;
  // Two copies of the same config: with 3 workers both land on distinct
  // threads; with 1 they run serially.  Every copy must agree bit for bit.
  const std::vector<ExperimentConfig> configs = {config, config, config};
  const auto serial = run_parallel(configs, trace, 1);
  const auto fanned = run_parallel(configs, trace, 3);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(fanned.size(), 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("copy " + std::to_string(i));
    expect_protocol_identical(serial[i], fanned[i]);
    // Raw transport counters included: same config, same probe traffic.
    EXPECT_EQ(serial[i].messages, fanned[i].messages);
    EXPECT_EQ(serial[i].events, fanned[i].events);
    EXPECT_EQ(serial[i].sim_end_time, fanned[i].sim_end_time);
    EXPECT_EQ(serial[i].membership.max_epoch, fanned[i].membership.max_epoch);
    EXPECT_EQ(serial[i].membership.repair_rounds, fanned[i].membership.repair_rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, MembershipSchemesTest,
                         ::testing::Values(Scheme::kAdc, Scheme::kCarp, Scheme::kConsistent,
                                           Scheme::kRendezvous),
                         [](const auto& info) { return std::string(scheme_name(info.param)); });

TEST(MembershipExperiment, PermanentCrashIsDetectedAndReshufflesOwners) {
  const auto trace = tiny_trace();
  const auto probe = run_experiment(base_config(Scheme::kCarp), trace);

  ExperimentConfig config = base_config(Scheme::kCarp);
  config.membership.swim.enabled = true;
  fault::CrashWindow window;
  window.node = 1;
  window.at = probe.sim_end_time / 3;
  window.restart = kSimTimeMax;  // never comes back
  window.flush_state = true;
  config.fault_plan.crashes.push_back(window);
  config.request_timeout =
      std::max<SimTime>(static_cast<SimTime>(probe.latency_p99 * 20.0), 1000);
  const auto result = run_experiment(config, trace);

  // Every request resolved despite the permanent loss of one member.
  EXPECT_EQ(result.summary.completed + result.summary.failed, trace.size());
  // Both survivors confirmed the death and bumped their epoch.
  EXPECT_GE(result.membership.max_epoch, 1u);
  EXPECT_GE(result.membership.deaths, 2u);
  // The CARP owner map was rebuilt: the dead member's URL share moved, and
  // the move was measured.  With 1 of 3 members gone roughly a third of
  // the URL space reassigns — assert a sane, nonzero fraction.
  EXPECT_GT(result.membership.max_reshuffle_fraction, 0.1);
  EXPECT_LT(result.membership.max_reshuffle_fraction, 0.9);
  EXPECT_GT(result.summary.hit_rate(), 0.0);
}

TEST(MembershipExperiment, AdcCrashTriggersSilentPeerPurgeAndRepair) {
  const auto trace = tiny_trace();
  const auto probe = run_experiment(base_config(Scheme::kAdc), trace);

  ExperimentConfig config = base_config(Scheme::kAdc);
  config.membership.swim.enabled = true;
  fault::CrashWindow window;
  window.node = 1;
  window.at = probe.sim_end_time / 3;
  window.restart = kSimTimeMax;
  window.flush_state = true;
  config.fault_plan.crashes.push_back(window);
  config.request_timeout =
      std::max<SimTime>(static_cast<SimTime>(probe.latency_p99 * 20.0), 1000);
  const auto result = run_experiment(config, trace);

  EXPECT_EQ(result.summary.completed + result.summary.failed, trace.size());
  EXPECT_GE(result.membership.max_epoch, 1u);
  EXPECT_GE(result.membership.deaths, 2u);
  // Death armed the anti-entropy scheduler on the survivors.
  EXPECT_GT(result.membership.repair_rounds, 0u);
  EXPECT_GT(result.summary.hit_rate(), 0.0);
}

}  // namespace
}  // namespace adc::driver
