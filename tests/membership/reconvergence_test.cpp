// Partition-heal reconvergence: proxies whose resolver opinions diverged
// while a partition was up must reconverge after the heal, through the
// versioned-claim rule (stale claims rejected) plus the transition-gated
// anti-entropy rounds.  This is the simulator-level proof that the
// membership layer repairs split-brain resolver state within a bounded
// number of repair rounds.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/adc_config.h"
#include "core/adc_proxy.h"
#include "fault/fault_plan.h"
#include "fault/faulty_network.h"
#include "membership/member_agent.h"
#include "sim/simulator.h"

namespace adc::membership {
namespace {

constexpr ObjectId kObject = 42;
constexpr SimTime kHeal = 3000;
constexpr SimTime kHorizon = 12000;

struct Cluster {
  sim::Simulator sim{7};
  std::vector<core::AdcProxy*> proxies;
  std::vector<MemberAgent*> agents;
};

/// Three ADC proxies (ids 0, 1, 2) wrapped in MemberAgents wired exactly
/// the way the experiment driver wires them: deaths prune tables and
/// forwarding membership, repair rounds offer resolver opinions.
std::unique_ptr<Cluster> make_cluster() {
  auto cluster = std::make_unique<Cluster>();
  const std::vector<NodeId> proxy_ids = {0, 1, 2};
  MembershipConfig mconfig;
  mconfig.swim.enabled = true;
  for (const NodeId id : proxy_ids) {
    core::AdcConfig aconfig;
    auto inner = std::make_unique<core::AdcProxy>(id, "proxy[" + std::to_string(id) + "]",
                                                  aconfig, proxy_ids, /*origin=*/99);
    core::AdcProxy* proxy = inner.get();
    auto agent = std::make_unique<MemberAgent>(std::move(inner), proxy_ids, mconfig);
    MemberAgent::Hooks hooks;
    hooks.peer_dead = [proxy](NodeId peer) { proxy->handle_peer_dead(peer); };
    hooks.peer_joined = [proxy](NodeId peer) { proxy->handle_peer_joined(peer); };
    hooks.send_repair = [proxy](sim::Transport& net, NodeId peer, std::size_t batch) {
      proxy->send_anti_entropy(net, peer, batch);
    };
    agent->set_hooks(std::move(hooks));
    cluster->proxies.push_back(proxy);
    cluster->agents.push_back(agent.get());
    const NodeId assigned = cluster->sim.add_node(std::move(agent));
    EXPECT_EQ(assigned, id);
  }
  // Drive membership ticks over the whole test horizon (no client here to
  // gate rescheduling on, so a fixed schedule bounds the run).
  for (SimTime t = 50; t <= kHorizon; t += 50) {
    cluster->sim.schedule(t, [cluster = cluster.get(), t]() {
      for (MemberAgent* agent : cluster->agents) agent->tick(cluster->sim, t);
    });
  }
  return cluster;
}

TEST(Reconvergence, DivergentClaimsReconcileAfterPartitionHeal) {
  auto cluster = make_cluster();

  // Cut proxy 2 off from {0, 1} until kHeal.
  fault::FaultPlan plan;
  plan.partitions.push_back(fault::LinkPartition{0, 2, 0, kHeal});
  plan.partitions.push_back(fault::LinkPartition{1, 2, 0, kHeal});
  fault::FaultyNetwork chaos(plan);
  cluster->sim.set_fault_hook(&chaos);

  // Mid-partition — after both sides confirmed the split — each side forms
  // its own opinion about kObject.  The majority side's claim is fresher
  // (two resolver events happened there); the isolated side still holds a
  // pre-split claim naming itself.  Seeding twice on proxy 0 promotes the
  // entry into the multiple table, where anti-entropy offers read from.
  cluster->sim.schedule(2000, [cluster = cluster.get()]() {
    ASSERT_EQ(cluster->agents[0]->detector().state(2), PeerState::kDead);
    ASSERT_EQ(cluster->agents[2]->detector().state(0), PeerState::kDead);
    cluster->proxies[0]->seed_location(kObject, 1, 10);
    cluster->proxies[0]->seed_location(kObject, 1, 10);
    cluster->proxies[2]->seed_location(kObject, 2, 4);
  });

  cluster->sim.run();
  ASSERT_TRUE(cluster->sim.idle());

  // Both sides re-learned each other (death + rejoin = two epochs each).
  for (const MemberAgent* agent : cluster->agents) {
    EXPECT_GE(agent->detector().epoch(), 2u);
    EXPECT_EQ(agent->detector().alive_peers().size(), 2u);
  }

  // The stale opinion lost: proxy 2 now agrees with the fresher claim.
  EXPECT_EQ(cluster->proxies[2]->tables().forward_location(kObject), std::optional<NodeId>(1));
  EXPECT_EQ(cluster->proxies[2]->tables().claim_of(kObject), 10u);
  EXPECT_EQ(cluster->proxies[0]->tables().claim_of(kObject), 10u);
  EXPECT_GE(cluster->proxies[2]->stats().repairs_applied, 1u);
  EXPECT_GE(cluster->proxies[0]->stats().repair_offers, 1u);

  // Repair is transition-gated and bounded: rounds fired, but no more than
  // the per-transition budget times the (few) transitions this run saw.
  for (const MemberAgent* agent : cluster->agents) {
    EXPECT_GT(agent->repair().rounds_fired(), 0u);
    EXPECT_LE(agent->repair().rounds_fired(),
              agent->config().repair.rounds_per_transition * agent->detector().epoch() +
                  agent->config().repair.rounds_per_transition);
  }
}

TEST(Reconvergence, StaleClaimCannotOverwriteFresherOpinion) {
  auto cluster = make_cluster();

  // No partition: both proxies hold entries, proxy 0's is fresher.  A full
  // anti-entropy exchange (offer + counter-offer) must leave the fresher
  // claim standing on both sides, never regress it.
  cluster->proxies[0]->seed_location(kObject, 1, 10);
  cluster->proxies[0]->seed_location(kObject, 1, 10);
  cluster->proxies[2]->seed_location(kObject, 2, 4);
  cluster->proxies[2]->seed_location(kObject, 2, 4);

  // Offer the stale opinion to the fresh holder directly: it must be
  // rejected and countered.
  cluster->sim.schedule(100, [cluster = cluster.get()]() {
    cluster->proxies[2]->send_anti_entropy(cluster->sim, 0, 8);
  });
  cluster->sim.run();

  EXPECT_EQ(cluster->proxies[0]->tables().claim_of(kObject), 10u);
  EXPECT_EQ(cluster->proxies[0]->tables().forward_location(kObject), std::optional<NodeId>(1));
  EXPECT_GE(cluster->proxies[0]->stats().repair_counter_offers, 1u);
  // The counter-offer repaired the stale holder.
  EXPECT_EQ(cluster->proxies[2]->tables().claim_of(kObject), 10u);
  EXPECT_EQ(cluster->proxies[2]->tables().forward_location(kObject), std::optional<NodeId>(1));
}

TEST(Reconvergence, ZeroChurnKeepsRepairQuiescent) {
  auto cluster = make_cluster();
  cluster->proxies[0]->seed_location(kObject, 1, 10);
  cluster->sim.run();
  // No membership transition ever happened: the repair scheduler never
  // armed, so zero anti-entropy traffic — the property that keeps
  // zero-churn runs bit-identical to detector-free ones.
  for (const MemberAgent* agent : cluster->agents) {
    EXPECT_EQ(agent->detector().epoch(), 0u);
    EXPECT_EQ(agent->repair().rounds_fired(), 0u);
  }
  for (const core::AdcProxy* proxy : cluster->proxies) {
    EXPECT_EQ(proxy->stats().repair_offers, 0u);
  }
}

}  // namespace
}  // namespace adc::membership
