#include "net/socket.h"

#include <gtest/gtest.h>

#include <string>

#include "net/event_loop.h"

namespace adc::net {
namespace {

TEST(PeerSpec, ParsesWellFormedSpec) {
  NodeId id = kInvalidNode;
  Endpoint endpoint;
  std::string error;
  ASSERT_TRUE(parse_peer_spec("3=127.0.0.1:7003", &id, &endpoint, &error)) << error;
  EXPECT_EQ(id, 3);
  EXPECT_EQ(endpoint.host, "127.0.0.1");
  EXPECT_EQ(endpoint.port, 7003);
}

TEST(PeerSpec, RejectsMalformedSpecs) {
  NodeId id = kInvalidNode;
  Endpoint endpoint;
  std::string error;
  EXPECT_FALSE(parse_peer_spec("127.0.0.1:7003", &id, &endpoint, &error));  // no id
  EXPECT_NE(error.find("'='"), std::string::npos);
  EXPECT_FALSE(parse_peer_spec("x=127.0.0.1:7003", &id, &endpoint, &error));  // bad id
  EXPECT_FALSE(parse_peer_spec("-2=127.0.0.1:7003", &id, &endpoint, &error));  // negative id
  EXPECT_FALSE(parse_peer_spec("3=127.0.0.1", &id, &endpoint, &error));  // no port
  EXPECT_FALSE(parse_peer_spec("3=127.0.0.1:0", &id, &endpoint, &error));  // port 0
  EXPECT_FALSE(parse_peer_spec("3=127.0.0.1:99999", &id, &endpoint, &error));  // port range
  EXPECT_FALSE(parse_peer_spec("3=127.0.0.1:70x3", &id, &endpoint, &error));  // junk port
  EXPECT_FALSE(parse_peer_spec("3=:7003", &id, &endpoint, &error));  // empty host
}

TEST(Socket, EphemeralListenReportsRealPort) {
  std::string error;
  const int listener = listen_tcp(Endpoint{"127.0.0.1", 0}, &error);
  ASSERT_GE(listener, 0) << error;
  EXPECT_GT(local_port(listener), 0);
  close_fd(listener);
}

TEST(Socket, FramesSurviveLoopbackConnection) {
  std::string error;
  const int listener = listen_tcp(Endpoint{"127.0.0.1", 0}, &error);
  ASSERT_GE(listener, 0) << error;
  const Endpoint at{"127.0.0.1", local_port(listener)};

  const int client_fd = connect_tcp(at, &error);
  ASSERT_GE(client_fd, 0) << error;
  Conn client(client_fd);

  int accepted = -1;
  for (int i = 0; i < 100 && accepted < 0; ++i) accepted = accept_tcp(listener);
  ASSERT_GE(accepted, 0);
  Conn server(accepted);

  WireMessage wire;
  wire.msg.kind = sim::MessageKind::kRequest;
  wire.msg.request_id = make_request_id(6, 1);
  wire.msg.object = 77;
  wire.path = {6};
  std::vector<std::uint8_t> bytes;
  encode_message(wire, &bytes);
  encode_hello(Hello{6, sim::NodeKind::kClient}, &bytes);
  client.queue(bytes);
  ASSERT_EQ(client.flush(), Conn::Io::kOk);
  ASSERT_FALSE(client.wants_write());

  // Loopback delivery is fast but not instantaneous under O_NONBLOCK.
  Frame frame;
  DecodeResult result = DecodeResult::kNeedMore;
  for (int i = 0; i < 1000 && result == DecodeResult::kNeedMore; ++i) {
    ASSERT_NE(server.read_some(), Conn::Io::kError);
    result = server.next_frame(&frame, &error);
  }
  ASSERT_EQ(result, DecodeResult::kFrame) << error;
  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.message.msg.object, 77u);
  ASSERT_EQ(frame.message.path.size(), 1u);

  result = server.next_frame(&frame, &error);
  for (int i = 0; i < 1000 && result == DecodeResult::kNeedMore; ++i) {
    ASSERT_NE(server.read_some(), Conn::Io::kError);
    result = server.next_frame(&frame, &error);
  }
  ASSERT_EQ(result, DecodeResult::kFrame) << error;
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.hello.node_id, 6);

  close_fd(listener);
}

TEST(EventLoop, DispatchesReadableFds) {
  std::string error;
  const int listener = listen_tcp(Endpoint{"127.0.0.1", 0}, &error);
  ASSERT_GE(listener, 0) << error;

  EventLoop loop;
  int accepted_events = 0;
  loop.watch(listener, [&](int fd, bool readable, bool) {
    if (!readable) return;
    const int fd2 = accept_tcp(fd);
    if (fd2 >= 0) {
      ++accepted_events;
      close_fd(fd2);
    }
  });

  const int client = connect_tcp(Endpoint{"127.0.0.1", local_port(listener)}, &error);
  ASSERT_GE(client, 0) << error;

  for (int i = 0; i < 100 && accepted_events == 0; ++i) loop.poll_once(50);
  EXPECT_EQ(accepted_events, 1);

  close_fd(client);
  close_fd(listener);
}

TEST(EventLoop, StopWakesABlockedPoll) {
  EventLoop loop;
  loop.stop();
  // A stopped loop's poll returns immediately even with an infinite
  // timeout, because the self-pipe byte is already readable.
  EXPECT_GE(loop.poll_once(-1), 0);
  EXPECT_TRUE(loop.stopped());
}

TEST(EventLoop, UnwatchInsideHandlerIsSafe) {
  std::string error;
  const int listener = listen_tcp(Endpoint{"127.0.0.1", 0}, &error);
  ASSERT_GE(listener, 0) << error;
  EventLoop loop;
  int calls = 0;
  loop.watch(listener, [&](int fd, bool, bool) {
    ++calls;
    loop.unwatch(fd);
  });
  const int client = connect_tcp(Endpoint{"127.0.0.1", local_port(listener)}, &error);
  ASSERT_GE(client, 0) << error;
  for (int i = 0; i < 100 && calls == 0; ++i) loop.poll_once(50);
  EXPECT_EQ(calls, 1);
  // Further polls never dispatch the unwatched fd again.
  for (int i = 0; i < 3; ++i) loop.poll_once(10);
  EXPECT_EQ(calls, 1);
  close_fd(client);
  close_fd(listener);
}

}  // namespace
}  // namespace adc::net
