// Wire-protocol codec tests: structured round-trips, a seeded fuzz pass
// (random messages, split buffers, max-size paths), and rejection of
// truncated or corrupted frames.  The fuzz loops run under the asan preset
// in CI, so out-of-bounds reads in the decoder fail loudly.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace adc::net {
namespace {

sim::Message random_message(util::Rng& rng) {
  sim::Message msg;
  msg.kind = rng.chance(0.5) ? sim::MessageKind::kRequest : sim::MessageKind::kReply;
  msg.request_id = rng.next();
  msg.object = rng.next();
  msg.sender = static_cast<NodeId>(rng.range(-1, 1 << 20));
  msg.target = static_cast<NodeId>(rng.range(-1, 1 << 20));
  msg.client = static_cast<NodeId>(rng.range(-1, 1 << 20));
  msg.forward_count = static_cast<int>(rng.range(0, 64));
  msg.hops = static_cast<int>(rng.range(0, 1 << 24));
  msg.resolver = static_cast<NodeId>(rng.range(-1, 1 << 20));
  msg.cached = rng.chance(0.5);
  msg.proxy_hit = rng.chance(0.5);
  msg.version = rng.next();
  msg.claim = rng.next();
  msg.issued_at = static_cast<SimTime>(rng.next() >> 1);
  msg.payload_bytes = rng.next();
  msg.degraded = rng.chance(0.5);
  return msg;
}

std::vector<NodeId> random_path(util::Rng& rng, std::size_t length) {
  std::vector<NodeId> path;
  path.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    path.push_back(static_cast<NodeId>(rng.range(0, 1 << 16)));
  }
  return path;
}

std::vector<std::uint8_t> random_body(util::Rng& rng, std::size_t length) {
  std::vector<std::uint8_t> body(length);
  for (auto& byte : body) byte = static_cast<std::uint8_t>(rng.next());
  return body;
}

void expect_equal(const WireMessage& a, const WireMessage& b) {
  EXPECT_EQ(a.msg.kind, b.msg.kind);
  EXPECT_EQ(a.msg.request_id, b.msg.request_id);
  EXPECT_EQ(a.msg.object, b.msg.object);
  EXPECT_EQ(a.msg.sender, b.msg.sender);
  EXPECT_EQ(a.msg.target, b.msg.target);
  EXPECT_EQ(a.msg.client, b.msg.client);
  EXPECT_EQ(a.msg.forward_count, b.msg.forward_count);
  EXPECT_EQ(a.msg.hops, b.msg.hops);
  EXPECT_EQ(a.msg.resolver, b.msg.resolver);
  EXPECT_EQ(a.msg.cached, b.msg.cached);
  EXPECT_EQ(a.msg.proxy_hit, b.msg.proxy_hit);
  EXPECT_EQ(a.msg.version, b.msg.version);
  EXPECT_EQ(a.msg.claim, b.msg.claim);
  EXPECT_EQ(a.msg.issued_at, b.msg.issued_at);
  EXPECT_EQ(a.msg.payload_bytes, b.msg.payload_bytes);
  EXPECT_EQ(a.msg.degraded, b.msg.degraded);
  EXPECT_EQ(a.body, b.body);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.path, b.path);
}

TEST(Wire, MessageRoundTrip) {
  WireMessage original;
  original.msg.kind = sim::MessageKind::kReply;
  original.msg.request_id = make_request_id(6, 1234);
  original.msg.object = 42;
  original.msg.sender = 3;
  original.msg.target = 6;
  original.msg.client = 6;
  original.msg.forward_count = 2;
  original.msg.hops = 7;
  original.msg.resolver = 1;
  original.msg.cached = true;
  original.msg.proxy_hit = true;
  original.msg.version = 9;
  original.msg.issued_at = 123456789;
  original.path = {0, 3, 1, 5, 1, 3, 0};

  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);

  Frame decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded), DecodeResult::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.type, FrameType::kReply);
  expect_equal(decoded.message, original);
}

TEST(Wire, ClaimExtremeValuesRoundTrip) {
  // The resolver-claim version is a monotone floor accumulated across
  // forwards (sim/message.h); anti-entropy correctness rides on it
  // surviving the codec at every magnitude.
  for (const std::uint64_t claim :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0x8000000000000000ULL},
        ~std::uint64_t{0}}) {
    for (const sim::MessageKind kind :
         {sim::MessageKind::kRequest, sim::MessageKind::kReply,
          sim::MessageKind::kRepairOffer, sim::MessageKind::kRepairReply}) {
      WireMessage original;
      original.msg.kind = kind;
      original.msg.request_id = make_request_id(1, 7);
      original.msg.object = 99;
      original.msg.claim = claim;
      std::vector<std::uint8_t> bytes;
      encode_message(original, &bytes);
      Frame decoded;
      std::size_t consumed = 0;
      ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded),
                DecodeResult::kFrame);
      EXPECT_EQ(decoded.message.msg.claim, claim);
    }
  }
}

TEST(Wire, ClaimByteLayoutIsPinned) {
  // claim occupies payload bytes [51, 59) little-endian (wire.h v2); a
  // codec change that shifts it would silently corrupt claims between old
  // and new daemons, so the offset is pinned here.
  WireMessage original;
  original.msg.kind = sim::MessageKind::kRequest;
  original.msg.claim = 0x0123456789ABCDEFULL;
  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);

  const std::size_t claim_offset = kLengthPrefixBytes + 51;
  const std::uint8_t expected[8] = {0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(bytes[claim_offset + i], expected[i]) << "byte " << i;
  }

  // And the decoder reads exactly that span: flipping its low byte shows
  // up in the decoded claim, nowhere else.
  bytes[claim_offset] = 0x00;
  Frame decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded), DecodeResult::kFrame);
  EXPECT_EQ(decoded.message.msg.claim, 0x0123456789ABCD00ULL);
  EXPECT_EQ(decoded.message.msg.object, original.msg.object);
}

TEST(Wire, ClaimSurvivesDecodeReEncode) {
  // A daemon forwarding a request decodes and re-encodes it; the claim
  // floor must come through bit-exact or Update_Entry would learn from
  // stale resolvers.
  util::Rng rng(91);
  for (int i = 0; i < 200; ++i) {
    WireMessage original;
    original.msg = random_message(rng);
    original.path = random_path(rng, rng.range(0, 8));
    std::vector<std::uint8_t> bytes;
    encode_message(original, &bytes);
    Frame decoded;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded),
              DecodeResult::kFrame);
    std::vector<std::uint8_t> reencoded;
    encode_message(decoded.message, &reencoded);
    EXPECT_EQ(reencoded, bytes);
  }
}

TEST(Wire, ControlFramesRoundTripEveryKind) {
  // SWIM and anti-entropy control messages share the message payload; every
  // kind must survive the codec with its reused fields intact.
  const sim::MessageKind kinds[] = {
      sim::MessageKind::kSwimPing,    sim::MessageKind::kSwimAck,
      sim::MessageKind::kSwimPingReq, sim::MessageKind::kSwimSuspect,
      sim::MessageKind::kSwimAlive,   sim::MessageKind::kSwimDead,
      sim::MessageKind::kRepairOffer, sim::MessageKind::kRepairReply,
  };
  util::Rng rng(44);
  for (const sim::MessageKind kind : kinds) {
    WireMessage original;
    original.msg = random_message(rng);
    original.msg.kind = kind;

    std::vector<std::uint8_t> bytes;
    encode_message(original, &bytes);

    Frame decoded;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded),
              DecodeResult::kFrame);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(decoded.type, frame_type_for(kind));
    EXPECT_EQ(kind_for(decoded.type), kind);
    expect_equal(decoded.message, original);
  }
}

TEST(Wire, HelloRoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode_hello(Hello{42, sim::NodeKind::kOrigin}, &bytes);
  Frame decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded), DecodeResult::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded.type, FrameType::kHello);
  EXPECT_EQ(decoded.hello.node_id, 42);
  EXPECT_EQ(decoded.hello.kind, sim::NodeKind::kOrigin);
}

TEST(Wire, FuzzRoundTripRandomMessages) {
  util::Rng rng(20260805);
  for (int i = 0; i < 2000; ++i) {
    WireMessage original;
    original.msg = random_message(rng);
    original.path = random_path(rng, rng.index(32));
    original.body = random_body(rng, rng.index(kMaxBodyBytes + 1));
    original.checksum = rng.next();

    std::vector<std::uint8_t> bytes;
    encode_message(original, &bytes);

    Frame decoded;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded),
              DecodeResult::kFrame)
        << "iteration " << i;
    ASSERT_EQ(consumed, bytes.size());
    expect_equal(decoded.message, original);
  }
}

TEST(Wire, MaxSizePathRoundTrips) {
  util::Rng rng(7);
  WireMessage original;
  original.msg = random_message(rng);
  original.path = random_path(rng, kMaxPath);

  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);
  ASSERT_LE(bytes.size(), kLengthPrefixBytes + kMaxFramePayload);

  Frame decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded), DecodeResult::kFrame);
  expect_equal(decoded.message, original);
}

TEST(Wire, OverlongPathIsTruncatedToMostRecentEntries) {
  util::Rng rng(8);
  WireMessage original;
  original.msg = random_message(rng);
  original.path = random_path(rng, kMaxPath + 100);

  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);

  Frame decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded), DecodeResult::kFrame);
  ASSERT_EQ(decoded.message.path.size(), kMaxPath);
  const std::vector<NodeId> expected(original.path.end() - static_cast<std::ptrdiff_t>(kMaxPath),
                                     original.path.end());
  EXPECT_EQ(decoded.message.path, expected);
}

TEST(Wire, EveryTruncationIsNeedMoreNeverCorrupt) {
  util::Rng rng(99);
  WireMessage original;
  original.msg = random_message(rng);
  original.path = random_path(rng, 17);

  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame decoded;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_frame(bytes.data(), cut, &consumed, &decoded), DecodeResult::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(Wire, SplitBufferDecodesTwoFramesIncrementally) {
  util::Rng rng(5);
  WireMessage first;
  first.msg = random_message(rng);
  first.path = random_path(rng, 3);
  std::vector<std::uint8_t> bytes;
  encode_message(first, &bytes);
  const std::size_t first_size = bytes.size();
  encode_hello(Hello{6, sim::NodeKind::kClient}, &bytes);

  Frame decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded), DecodeResult::kFrame);
  ASSERT_EQ(consumed, first_size);
  expect_equal(decoded.message, first);

  ASSERT_EQ(decode_frame(bytes.data() + first_size, bytes.size() - first_size, &consumed,
                         &decoded),
            DecodeResult::kFrame);
  EXPECT_EQ(decoded.type, FrameType::kHello);
  EXPECT_EQ(decoded.hello.node_id, 6);
}

TEST(Wire, GarbageIsRejected) {
  // 8 random bytes whose length prefix stays in range but whose type byte
  // is invalid for every seed below.
  util::Rng rng(11);
  int rejected = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk(8 + rng.index(64));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng.next());
    Frame decoded;
    std::size_t consumed = 0;
    const DecodeResult result = decode_frame(junk.data(), junk.size(), &consumed, &decoded);
    // Random length prefixes are usually huge (> kMaxFramePayload) or
    // larger than the buffer; both must never decode as a frame.
    if (result == DecodeResult::kCorrupt) ++rejected;
    EXPECT_NE(result, DecodeResult::kFrame) << "iteration " << i;
  }
  EXPECT_GT(rejected, 0);
}

TEST(Wire, OversizeLengthPrefixIsCorrupt) {
  std::vector<std::uint8_t> bytes = {0xff, 0xff, 0xff, 0x7f, 0x01};
  Frame decoded;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded, &error),
            DecodeResult::kCorrupt);
  EXPECT_NE(error.find("kMaxFramePayload"), std::string::npos);
}

TEST(Wire, ZeroLengthPayloadIsCorrupt) {
  const std::vector<std::uint8_t> bytes = {0, 0, 0, 0};
  Frame decoded;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded),
            DecodeResult::kCorrupt);
}

TEST(Wire, UnknownFrameTypeIsCorrupt) {
  std::vector<std::uint8_t> bytes = {1, 0, 0, 0, 0x7e};
  Frame decoded;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded, &error),
            DecodeResult::kCorrupt);
  EXPECT_NE(error.find("unknown frame type"), std::string::npos);
}

TEST(Wire, PathLengthPayloadMismatchIsCorrupt) {
  WireMessage original;
  original.path = {1, 2, 3};
  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);
  // Claim a longer path than the payload carries.
  const std::size_t path_len_offset = kLengthPrefixBytes + 85;
  bytes[path_len_offset] = 200;
  Frame decoded;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded, &error),
            DecodeResult::kCorrupt);
  EXPECT_NE(error.find("path_len"), std::string::npos);
}

TEST(Wire, UnknownFlagBitsAreCorrupt) {
  WireMessage original;
  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);
  const std::size_t flags_offset = kLengthPrefixBytes + 42;
  bytes[flags_offset] = 0x80;
  Frame decoded;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded),
            DecodeResult::kCorrupt);
}

TEST(Wire, VersionMismatchIsRejectedNotGuessed) {
  // The v1 protocol had no version byte: the request_id started where the
  // version now sits, so any v1 frame reads as a version mismatch and a
  // mixed-version cluster fails deterministically at the first frame.
  util::Rng rng(21);
  WireMessage original;
  original.msg = random_message(rng);
  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);

  const std::size_t version_offset = kLengthPrefixBytes + 1;
  ASSERT_EQ(bytes[version_offset], kWireVersion);
  for (const std::uint8_t wrong : {std::uint8_t{1}, std::uint8_t{3}, std::uint8_t{0xff}}) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[version_offset] = wrong;
    Frame decoded;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(decode_frame(mutated.data(), mutated.size(), &consumed, &decoded, &error),
              DecodeResult::kCorrupt)
        << "version " << int{wrong};
    EXPECT_NE(error.find("unsupported wire version"), std::string::npos);
  }
}

TEST(Wire, HelloVersionMismatchIsRejected) {
  std::vector<std::uint8_t> bytes;
  encode_hello(Hello{3, sim::NodeKind::kProxy}, &bytes);
  const std::size_t version_offset = kLengthPrefixBytes + 1;
  ASSERT_EQ(bytes[version_offset], kWireVersion);
  bytes[version_offset] = 1;
  Frame decoded;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded, &error),
            DecodeResult::kCorrupt);
  EXPECT_NE(error.find("unsupported wire version"), std::string::npos);
}

TEST(Wire, PayloadByteExtremesRoundTrip) {
  // The payload-bytes field must survive at every magnitude: zero (store
  // disabled), one, the largest configurable object, and all-ones.
  for (const std::uint64_t payload :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{256} * 1024,
        std::uint64_t{0x8000000000000000ULL}, ~std::uint64_t{0}}) {
    WireMessage original;
    original.msg.kind = sim::MessageKind::kReply;
    original.msg.request_id = make_request_id(2, 5);
    original.msg.payload_bytes = payload;
    original.msg.degraded = payload % 2 == 1;
    original.checksum = ~payload;
    std::vector<std::uint8_t> bytes;
    encode_message(original, &bytes);
    Frame decoded;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded),
              DecodeResult::kFrame);
    EXPECT_EQ(decoded.message.msg.payload_bytes, payload);
    EXPECT_EQ(decoded.message.msg.degraded, original.msg.degraded);
    EXPECT_EQ(decoded.message.checksum, ~payload);
  }
}

TEST(Wire, BodySampleRoundTripsAndOversizeIsTruncated) {
  util::Rng rng(33);
  // Exact max size round-trips bit-for-bit.
  WireMessage original;
  original.msg = random_message(rng);
  original.body = random_body(rng, kMaxBodyBytes);
  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);
  Frame decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded), DecodeResult::kFrame);
  EXPECT_EQ(decoded.message.body, original.body);

  // Oversize bodies are clipped to the first kMaxBodyBytes on encode.
  WireMessage oversize;
  oversize.msg = random_message(rng);
  oversize.body = random_body(rng, kMaxBodyBytes + 57);
  bytes.clear();
  encode_message(oversize, &bytes);
  ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded), DecodeResult::kFrame);
  ASSERT_EQ(decoded.message.body.size(), kMaxBodyBytes);
  const std::vector<std::uint8_t> expected(oversize.body.begin(),
                                           oversize.body.begin() + kMaxBodyBytes);
  EXPECT_EQ(decoded.message.body, expected);
}

TEST(Wire, StoreFrameKindsRoundTrip) {
  // Erasure-tier traffic rides the same payload shape; the chunk-index
  // (resolver), presence (cached) and size (payload_bytes) reuses must
  // survive the codec for all three kinds.
  const sim::MessageKind kinds[] = {
      sim::MessageKind::kStripeStore,
      sim::MessageKind::kChunkRequest,
      sim::MessageKind::kChunkReply,
  };
  util::Rng rng(55);
  for (const sim::MessageKind kind : kinds) {
    WireMessage original;
    original.msg = random_message(rng);
    original.msg.kind = kind;
    std::vector<std::uint8_t> bytes;
    encode_message(original, &bytes);
    Frame decoded;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded),
              DecodeResult::kFrame);
    EXPECT_EQ(decoded.type, frame_type_for(kind));
    EXPECT_EQ(kind_for(decoded.type), kind);
    expect_equal(decoded.message, original);
  }
}

TEST(Wire, BodyLengthPayloadMismatchIsCorrupt) {
  util::Rng rng(61);
  WireMessage original;
  original.msg = random_message(rng);
  original.body = random_body(rng, 16);
  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);
  // Claim a longer body than the payload carries (body_len u16 at payload
  // offset 83).
  const std::size_t body_len_offset = kLengthPrefixBytes + 83;
  bytes[body_len_offset] = 200;
  Frame decoded;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &decoded, &error),
            DecodeResult::kCorrupt);
}

TEST(Wire, FuzzCorruptionNeverDecodesMutatedByte) {
  // Flip single bytes of a valid frame; the decoder must either reject the
  // frame or decode *something* without reading out of bounds (asan-
  // checked).  Flips in the body that decode fine are acceptable — only
  // the structural fields are protected — but flips that shrink the
  // declared sizes must never crash.
  util::Rng rng(13);
  WireMessage original;
  original.msg = random_message(rng);
  original.path = random_path(rng, 9);
  std::vector<std::uint8_t> bytes;
  encode_message(original, &bytes);

  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t at = rng.index(mutated.size());
    mutated[at] ^= static_cast<std::uint8_t>(1 + rng.index(255));
    Frame decoded;
    std::size_t consumed = 0;
    (void)decode_frame(mutated.data(), mutated.size(), &consumed, &decoded);
  }
}

}  // namespace
}  // namespace adc::net
