#include "link/link_model.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace adc::link {
namespace {

LinkConfig base_config() {
  LinkConfig config;
  config.enabled = true;
  config.ticks_per_second = 1000;
  return config;
}

TEST(LinkModel, SerializationTicksRoundsUpAndIsNeverZeroForBytes) {
  LinkModel model(base_config(), /*origin=*/9);
  // 1000 bytes at 1MB/s is exactly one 1ms tick.
  EXPECT_EQ(model.serialization_ticks(1000, 1'000'000), 1);
  // One byte more rounds up, never down.
  EXPECT_EQ(model.serialization_ticks(1001, 1'000'000), 2);
  // Even a single byte costs a tick on a finite link.
  EXPECT_EQ(model.serialization_ticks(1, 1'000'000), 1);
  // The paper-scale case: 256KB through a 1MB/s WAN link ~ 263 ticks,
  // dwarfing the 10-tick origin propagation delay.
  EXPECT_EQ(model.serialization_ticks(256 * 1024, 1'000'000), 263);
  // Unlimited rate or empty transfer costs nothing.
  EXPECT_EQ(model.serialization_ticks(1000, 0), 0);
  EXPECT_EQ(model.serialization_ticks(0, 1'000'000), 0);
}

TEST(LinkModel, SerializationTicksSurvivesLargeProducts) {
  LinkModel model(base_config(), 9);
  // bytes * ticks_per_second overflows 64 bits; the model must not.
  const std::uint64_t bytes = std::uint64_t{1} << 40;
  EXPECT_EQ(model.serialization_ticks(bytes, 1'000'000),
            static_cast<SimTime>((bytes + 999) / 1000));
}

TEST(LinkModel, TransferRateIsTheBottleneckOfPairAndEgress) {
  LinkConfig config = base_config();
  config.pair_bytes_per_sec = 2'000'000;
  config.node_egress_bytes_per_sec = 1'000'000;
  config.origin_egress_bytes_per_sec = 500'000;
  LinkModel model(config, /*origin=*/9);

  // Non-origin sender: egress (1MB/s) is tighter than the pair (2MB/s).
  EXPECT_EQ(model.transfer_rate(0, 1), 1'000'000u);
  // Origin sender gets its own egress knob.
  EXPECT_EQ(model.transfer_rate(9, 1), 500'000u);
  EXPECT_EQ(model.egress_rate(9), 500'000u);
  EXPECT_EQ(model.egress_rate(3), 1'000'000u);
}

TEST(LinkModel, PairOverrideWinsAndZeroMeansUnlimited) {
  LinkConfig config = base_config();
  config.pair_bytes_per_sec = 2'000'000;
  LinkModel model(config, 9);
  model.set_pair_rate(0, 1, 100'000);
  EXPECT_EQ(model.pair_rate(0, 1), 100'000u);
  EXPECT_EQ(model.pair_rate(1, 0), 2'000'000u);  // overrides are directional
  // No egress cap configured: the pair link is the whole bottleneck.
  EXPECT_EQ(model.transfer_rate(0, 1), 100'000u);
  // Nothing configured at all = unlimited end to end.
  LinkModel open(base_config(), 9);
  EXPECT_EQ(open.transfer_rate(0, 1), 0u);
}

TEST(LinkModel, TransferBytesChargesControlFramesAndPayloads) {
  LinkModel model(base_config(), 9);
  sim::Message msg;
  msg.kind = sim::MessageKind::kRequest;
  msg.payload_bytes = 0;
  // A payload-less frame still occupies the wire for control_bytes.
  EXPECT_EQ(model.transfer_bytes(msg), model.config().control_bytes);
  msg.kind = sim::MessageKind::kReply;
  msg.payload_bytes = 50'000;
  EXPECT_EQ(model.transfer_bytes(msg), 50'000u);
}

}  // namespace
}  // namespace adc::link
