#include "link/transfer_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace adc::link {
namespace {

/// Records delivery times off the Transport clock, like the simulator
/// suite's RecorderNode.
class ClockRecorder final : public sim::Node {
 public:
  ClockRecorder(NodeId id, sim::NodeKind kind, std::string name)
      : Node(id, kind, std::move(name)) {}

  void on_message(sim::Transport& net, const sim::Message& msg) override {
    received.push_back(msg);
    receive_times.push_back(net.now());
  }

  std::vector<sim::Message> received;
  std::vector<SimTime> receive_times;
};

struct Harness {
  sim::Simulator sim;
  ClockRecorder* sender = nullptr;
  ClockRecorder* a = nullptr;
  ClockRecorder* b = nullptr;

  explicit Harness(const sim::LatencyModel& latency) : sim(1, latency) {
    auto s = std::make_unique<ClockRecorder>(0, sim::NodeKind::kProxy, "s");
    auto na = std::make_unique<ClockRecorder>(1, sim::NodeKind::kProxy, "a");
    auto nb = std::make_unique<ClockRecorder>(2, sim::NodeKind::kProxy, "b");
    sender = s.get();
    a = na.get();
    b = nb.get();
    sim.add_node(std::move(s));
    sim.add_node(std::move(na));
    sim.add_node(std::move(nb));
  }
};

sim::LatencyModel flat_latency(SimTime ticks) {
  sim::LatencyModel latency;
  latency.client_proxy = ticks;
  latency.proxy_proxy = ticks;
  latency.proxy_origin = ticks;
  return latency;
}

LinkConfig egress_config(std::uint64_t bytes_per_sec) {
  LinkConfig config;
  config.enabled = true;
  config.ticks_per_second = 1000;
  config.node_egress_bytes_per_sec = bytes_per_sec;
  return config;
}

sim::Message payload_reply(NodeId from, NodeId to, std::uint64_t bytes) {
  sim::Message msg;
  msg.kind = sim::MessageKind::kReply;
  msg.sender = from;
  msg.target = to;
  msg.payload_bytes = bytes;
  return msg;
}

// Acceptance pin: a k-byte transfer over a c-bytes/sec link is delivered
// no earlier than k/c of simulated wall time (plus propagation) after it
// was enqueued on an idle egress.
TEST(TransferScheduler, SerializationTimeLowerBound) {
  constexpr std::uint64_t kBytes = 100'000;
  constexpr std::uint64_t kRate = 1'000'000;  // 1MB/s, 1000 ticks/s
  Harness h(flat_latency(2));
  TransferScheduler sched(h.sim, LinkModel(egress_config(kRate), kInvalidNode));
  h.sim.set_link_hook(&sched);

  h.sim.send(payload_reply(0, 1, kBytes));
  h.sim.run();

  ASSERT_EQ(h.a->receive_times.size(), 1u);
  // k/c = 0.1s = 100 ticks of serialization; propagation adds 2 more.
  const SimTime floor = static_cast<SimTime>(kBytes * 1000 / kRate) + 2;
  EXPECT_GE(h.a->receive_times[0], floor);
  // Pacing rounds each burst up, but the total must stay close: at
  // most one extra tick per quantum-sized burst.
  EXPECT_LE(h.a->receive_times[0], floor + 3);
  EXPECT_EQ(sched.stats().transfers, 1u);
  EXPECT_EQ(sched.stats().bytes, kBytes);
}

// Two transfers to the same destination serialize one after the other:
// the second's delivery reflects the first's full serialization time.
TEST(TransferScheduler, QueueingDelayAccumulates) {
  constexpr std::uint64_t kBytes = 100'000;
  Harness h(flat_latency(2));
  TransferScheduler sched(h.sim, LinkModel(egress_config(1'000'000), kInvalidNode));
  h.sim.set_link_hook(&sched);

  h.sim.send(payload_reply(0, 1, kBytes));
  h.sim.send(payload_reply(0, 1, kBytes));
  h.sim.run();

  ASSERT_EQ(h.a->receive_times.size(), 2u);
  EXPECT_GE(h.a->receive_times[0], 100 + 2);
  EXPECT_GE(h.a->receive_times[1], 200 + 2);
  EXPECT_EQ(sched.stats().queued, 1u);  // the second transfer waited
  EXPECT_GT(sched.stats().max_wait, 0);
}

// DRR: a 1KB mouse sharing the egress with a 1MB hog gets served after at
// most one quantum of the hog, not after the whole megabyte.
TEST(TransferScheduler, DrrInterleavesMouseWithHog) {
  Harness h(flat_latency(2));
  TransferScheduler sched(h.sim, LinkModel(egress_config(1'000'000), kInvalidNode));
  h.sim.set_link_hook(&sched);

  h.sim.send(payload_reply(0, 1, 1'048'576));  // hog -> a
  h.sim.send(payload_reply(0, 2, 1'024));      // mouse -> b
  h.sim.run();

  ASSERT_EQ(h.a->receive_times.size(), 1u);
  ASSERT_EQ(h.b->receive_times.size(), 1u);
  // FIFO service would hold the mouse ~1049 ticks; DRR bounds its wait by
  // one 64KB quantum (~66 ticks) plus its own serialization.
  EXPECT_LT(h.b->receive_times[0], 200);
  // The hog still pays for its full megabyte.
  EXPECT_GT(h.a->receive_times[0], 1'048);
  // Pacing split the hog into quantum-sized bursts.
  EXPECT_GE(sched.stats().bursts, 1'048'576 / sched.model().config().pacing_bytes);
}

// With no finite rate anywhere the hook declines every send and delivery
// times are bit-identical to a simulator without a link layer.
TEST(TransferScheduler, UnlimitedLinksPassThroughBitIdentical) {
  Harness plain(flat_latency(3));
  plain.sim.send(payload_reply(0, 1, 100'000));
  plain.sim.send(payload_reply(0, 2, 50'000));
  plain.sim.run();

  Harness hooked(flat_latency(3));
  LinkConfig config;
  config.enabled = true;  // enabled but all rates unlimited
  TransferScheduler sched(hooked.sim, LinkModel(config, kInvalidNode));
  hooked.sim.set_link_hook(&sched);
  hooked.sim.send(payload_reply(0, 1, 100'000));
  hooked.sim.send(payload_reply(0, 2, 50'000));
  hooked.sim.run();

  EXPECT_EQ(plain.a->receive_times, hooked.a->receive_times);
  EXPECT_EQ(plain.b->receive_times, hooked.b->receive_times);
  EXPECT_EQ(sched.stats().passthrough, 2u);
  EXPECT_EQ(sched.stats().transfers, 0u);
}

// Control frames (payload_bytes == 0) still occupy the wire for
// control_bytes, so a modeled request arrives later than an unmodeled one.
TEST(TransferScheduler, ControlFramesAreCharged) {
  Harness h(flat_latency(2));
  TransferScheduler sched(h.sim, LinkModel(egress_config(1'000'000), kInvalidNode));
  h.sim.set_link_hook(&sched);

  sim::Message request;
  request.kind = sim::MessageKind::kRequest;
  request.sender = 0;
  request.target = 1;
  h.sim.send(request);
  h.sim.run();

  ASSERT_EQ(h.a->receive_times.size(), 1u);
  // 128 control bytes at 1MB/s round up to one serialization tick.
  EXPECT_EQ(h.a->receive_times[0], 3);
}

// The backlog probe reflects accepted-but-untransmitted bytes: the load
// signal the erasure tier's recovery steering reads.
TEST(TransferScheduler, BacklogProbeTracksQueuedBytes) {
  Harness h(flat_latency(2));
  TransferScheduler sched(h.sim, LinkModel(egress_config(1'000'000), kInvalidNode));
  h.sim.set_link_hook(&sched);

  EXPECT_EQ(sched.backlog_bytes(0), 0u);
  h.sim.send(payload_reply(0, 1, 100'000));
  h.sim.send(payload_reply(0, 2, 50'000));
  EXPECT_EQ(sched.backlog_bytes(0), 150'000u);
  EXPECT_EQ(sched.queue_depth(0), 2u);
  EXPECT_GE(sched.stats().max_backlog_bytes, 150'000u);

  h.sim.run();
  EXPECT_EQ(sched.backlog_bytes(0), 0u);
  EXPECT_EQ(sched.queue_depth(0), 0u);
}

// Identical configs must produce identical delivery schedules: the
// scheduler introduces no iteration-order or wall-clock nondeterminism.
TEST(TransferScheduler, DeterministicAcrossRuns) {
  auto run_once = [] {
    Harness h(flat_latency(2));
    TransferScheduler sched(h.sim, LinkModel(egress_config(500'000), kInvalidNode));
    h.sim.set_link_hook(&sched);
    for (int i = 0; i < 20; ++i) {
      h.sim.send(payload_reply(0, 1 + (i % 2), 10'000 + 1'000 * i));
    }
    h.sim.run();
    std::vector<SimTime> all = h.a->receive_times;
    all.insert(all.end(), h.b->receive_times.begin(), h.b->receive_times.end());
    return all;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace adc::link
