// Determinism regression tests for the parallel experiment engine.
//
// run_experiment() is documented as deterministic in (config, trace), and
// every deployment is self-contained (per-run simulator, per-run RNG) —
// so fanning a sweep or seed replication across threads must produce
// bit-identical metrics to the serial path, excluding only wall_seconds
// (host time).  These tests are the contract that makes --workers > 1
// trustworthy; run them under -DADC_SANITIZE=thread to also prove the
// engine race-free.
#include "driver/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "driver/sweep.h"
#include "workload/polygraph.h"

namespace adc::driver {
namespace {

workload::Trace tiny_trace() {
  workload::PolygraphConfig config;
  config.fill_requests = 800;
  config.phase2_requests = 1200;
  config.phase3_requests = 1000;
  config.hot_set_size = 100;
  config.seed = 5;
  return workload::generate_polygraph_trace(config);
}

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.proxies = 3;
  config.adc.single_table_size = 150;
  config.adc.multiple_table_size = 150;
  config.adc.caching_table_size = 80;
  config.sample_every = 500;
  return config;
}

// Everything in an ExperimentResult except wall_seconds (host wall-clock,
// the one legitimately nondeterministic field).
void expect_identical_results(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.summary.completed, b.summary.completed);
  EXPECT_EQ(a.summary.hits, b.summary.hits);
  EXPECT_EQ(a.summary.stale_hits, b.summary.stale_hits);
  EXPECT_EQ(a.summary.total_hops, b.summary.total_hops);
  EXPECT_EQ(a.summary.total_forwards, b.summary.total_forwards);
  EXPECT_EQ(a.summary.total_latency, b.summary.total_latency);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.origin_served, b.origin_served);
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
  EXPECT_EQ(a.hops_p50, b.hops_p50);
  EXPECT_EQ(a.hops_p95, b.hops_p95);
  EXPECT_EQ(a.hops_max, b.hops_max);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].requests, b.series[i].requests);
    EXPECT_EQ(a.series[i].hit_rate, b.series[i].hit_rate);
    EXPECT_EQ(a.series[i].hops, b.series[i].hops);
    EXPECT_EQ(a.series[i].latency, b.series[i].latency);
  }
  ASSERT_EQ(a.proxies.size(), b.proxies.size());
  for (std::size_t i = 0; i < a.proxies.size(); ++i) {
    EXPECT_EQ(a.proxies[i].name, b.proxies[i].name);
    EXPECT_EQ(a.proxies[i].requests_received, b.proxies[i].requests_received);
    EXPECT_EQ(a.proxies[i].local_hits, b.proxies[i].local_hits);
    EXPECT_EQ(a.proxies[i].cached_objects, b.proxies[i].cached_objects);
    EXPECT_EQ(a.proxies[i].table_entries, b.proxies[i].table_entries);
  }
}

TEST(ResolveWorkers, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_workers(0), 1);
}

TEST(ResolveWorkers, NegativeClampsToSerial) {
  EXPECT_EQ(resolve_workers(-4), 1);
}

TEST(ResolveWorkers, PositivePassesThrough) {
  EXPECT_EQ(resolve_workers(1), 1);
  EXPECT_EQ(resolve_workers(6), 6);
}

TEST(RunParallel, EmptyConfigListYieldsEmptyResults) {
  const auto trace = tiny_trace();
  EXPECT_TRUE(run_parallel({}, trace, 4).empty());
}

TEST(RunParallel, MatchesSerialBitForBit) {
  const auto trace = tiny_trace();
  std::vector<ExperimentConfig> configs;
  for (const std::size_t caching : {40u, 80u, 120u, 160u}) {
    for (const auto scheme : {Scheme::kAdc, Scheme::kCarp}) {
      ExperimentConfig config = base_config();
      config.scheme = scheme;
      config.adc.caching_table_size = caching;
      configs.push_back(config);
    }
  }
  const auto serial = run_parallel(configs, trace, 1);
  const auto parallel = run_parallel(configs, trace, 4);
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    expect_identical_results(serial[i], parallel[i]);
  }
}

TEST(RunParallel, FaultCountersAggregateIdenticallyAcrossWorkers) {
  // Each run owns its FaultyNetwork with a private RNG, so the injected
  // and resilience counters are part of the determinism contract too: a
  // chaos sweep fanned across threads must report the exact same fault
  // tallies as the serial replay, at every worker count.
  const auto trace = tiny_trace();
  std::vector<ExperimentConfig> configs;
  for (const double loss : {0.01, 0.04}) {
    for (const auto scheme : {Scheme::kAdc, Scheme::kCarp}) {
      ExperimentConfig config = base_config();
      config.scheme = scheme;
      config.fault_plan.drop_prob = loss;
      config.fault_plan.dup_prob = 0.02;
      config.request_timeout = 2000;
      configs.push_back(config);
    }
  }
  const auto serial = run_parallel(configs, trace, 1);
  const auto two = run_parallel(configs, trace, 2);
  const auto four = run_parallel(configs, trace, 4);
  ASSERT_EQ(serial.size(), configs.size());
  for (const auto* fanned : {&two, &four}) {
    ASSERT_EQ(fanned->size(), configs.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("config " + std::to_string(i));
      const auto& a = serial[i].faults;
      const auto& b = (*fanned)[i].faults;
      EXPECT_EQ(a.drops_random, b.drops_random);
      EXPECT_EQ(a.drops_partition, b.drops_partition);
      EXPECT_EQ(a.drops_crash, b.drops_crash);
      EXPECT_EQ(a.duplicates, b.duplicates);
      EXPECT_EQ(a.delays, b.delays);
      EXPECT_EQ(a.timeouts, b.timeouts);
      EXPECT_EQ(a.entries_invalidated, b.entries_invalidated);
      EXPECT_GT(b.drops_random, 0u);  // the chaos actually fired
    }
  }
}

TEST(RunParallel, ResultsStayInSubmissionOrder) {
  const auto trace = tiny_trace();
  // Distinguishable runs: proxy counts differ, so each result reveals
  // which config produced it via the snapshot count.
  std::vector<ExperimentConfig> configs;
  for (const int proxies : {1, 2, 3, 4, 5}) {
    ExperimentConfig config = base_config();
    config.proxies = proxies;
    configs.push_back(config);
  }
  const auto results = run_parallel(configs, trace, 3);
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].proxies.size(), i + 1);
  }
}

TEST(SweepDeterminism, ParallelGridIsBitIdenticalToSerial) {
  const auto trace = tiny_trace();
  const std::vector<SweptTable> tables = {SweptTable::kCaching, SweptTable::kMultiple,
                                          SweptTable::kSingle};
  const std::vector<std::size_t> sizes = {50, 100, 150};
  const auto serial = run_table_sweep(base_config(), trace, tables, sizes, 1);
  const auto parallel = run_table_sweep(base_config(), trace, tables, sizes, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(serial[i].table, parallel[i].table);
    EXPECT_EQ(serial[i].size, parallel[i].size);
    // Bit-identical doubles, not near-equal: the parallel path must replay
    // the exact same simulation.  wall_seconds is excluded by design.
    EXPECT_EQ(serial[i].hit_rate, parallel[i].hit_rate);
    EXPECT_EQ(serial[i].avg_hops, parallel[i].avg_hops);
    EXPECT_EQ(serial[i].avg_latency, parallel[i].avg_latency);
  }
}

TEST(ReplicationDeterminism, SeedFanOutIsBitIdenticalToSerial) {
  const auto trace = tiny_trace();
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6};
  const auto serial = run_replicated(base_config(), trace, seeds, 1);
  const auto parallel = run_replicated(base_config(), trace, seeds, 4);
  ASSERT_EQ(serial.runs, seeds.size());
  ASSERT_EQ(parallel.runs, seeds.size());
  EXPECT_EQ(serial.hit_rate.mean, parallel.hit_rate.mean);
  EXPECT_EQ(serial.hit_rate.stddev, parallel.hit_rate.stddev);
  EXPECT_EQ(serial.hit_rate.ci95, parallel.hit_rate.ci95);
  EXPECT_EQ(serial.avg_hops.mean, parallel.avg_hops.mean);
  EXPECT_EQ(serial.avg_hops.stddev, parallel.avg_hops.stddev);
  EXPECT_EQ(serial.avg_hops.ci95, parallel.avg_hops.ci95);
  EXPECT_EQ(serial.avg_latency.mean, parallel.avg_latency.mean);
  EXPECT_EQ(serial.avg_latency.stddev, parallel.avg_latency.stddev);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seeds[i]));
    expect_identical_results(serial.results[i], parallel.results[i]);
  }
}

TEST(Replication, StatsAreInternallyConsistent) {
  const auto trace = tiny_trace();
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  const auto rep = run_replicated(base_config(), trace, seeds, 2);
  EXPECT_EQ(rep.runs, 5u);
  ASSERT_EQ(rep.results.size(), 5u);
  // Different seeds must actually vary the runs (entry-proxy choices and
  // random-walk targets differ) while the mean stays in the sample range.
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& result : rep.results) {
    lo = std::min(lo, result.summary.hit_rate());
    hi = std::max(hi, result.summary.hit_rate());
  }
  EXPECT_GE(rep.hit_rate.mean, lo);
  EXPECT_LE(rep.hit_rate.mean, hi);
  EXPECT_GE(rep.hit_rate.stddev, 0.0);
  // ci95 = 1.96 * sd / sqrt(n) by construction.
  EXPECT_DOUBLE_EQ(rep.hit_rate.ci95,
                   1.96 * rep.hit_rate.stddev / std::sqrt(static_cast<double>(rep.runs)));
}

TEST(Replication, SingleSeedHasZeroSpread) {
  const auto trace = tiny_trace();
  const auto rep = run_replicated(base_config(), trace, {7}, 4);
  EXPECT_EQ(rep.runs, 1u);
  EXPECT_EQ(rep.hit_rate.stddev, 0.0);
  EXPECT_EQ(rep.hit_rate.ci95, 0.0);
  EXPECT_GT(rep.hit_rate.mean, 0.0);
}

TEST(Replication, NoSeedsYieldsEmptyResult) {
  const auto trace = tiny_trace();
  const auto rep = run_replicated(base_config(), trace, {}, 4);
  EXPECT_EQ(rep.runs, 0u);
  EXPECT_TRUE(rep.results.empty());
  EXPECT_EQ(rep.hit_rate.mean, 0.0);
}

}  // namespace
}  // namespace adc::driver
